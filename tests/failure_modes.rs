//! Failure injection: every crate boundary must reject invalid input
//! with a typed, descriptive error — never a panic, never a silent
//! wrong answer.

use mmph::core::solvers::{KCenter, KMeans, StochasticGreedy};
use mmph::core::{CoreError, Kernel};
use mmph::prelude::*;
use mmph::sim::broadcast::{BroadcastConfig, FaultPlan, OutageWindow};
use mmph::sim::gen::{PointDistribution, SpaceSpec};
use mmph_geom::{GeomError, Point as GPoint};

/// Every solver in the registry, boxed for uniform sweeps.
fn all_solvers() -> Vec<(&'static str, Box<dyn Solver<2>>)> {
    vec![
        ("greedy1", Box::new(RoundBased::grid())),
        ("greedy1-sa", Box::new(RoundBased::annealing())),
        ("greedy2", Box::new(LocalGreedy::new())),
        ("greedy3", Box::new(SimpleGreedy::new())),
        ("greedy4", Box::new(ComplexGreedy::new())),
        ("lazy", Box::new(LazyGreedy::new())),
        ("stochastic", Box::new(StochasticGreedy::new())),
        ("seeded", Box::new(SeededGreedy::new())),
        ("beam", Box::new(BeamSearch::new())),
        ("local-search", Box::new(LocalSearch::new())),
        ("kcenter", Box::new(KCenter::new())),
        ("kmeans", Box::new(KMeans::new())),
        ("exhaustive", Box::new(Exhaustive::new())),
        ("adaptive", Box::new(AdaptiveSolver::new())),
    ]
}

#[test]
fn instance_rejections_are_typed_and_descriptive() {
    // NaN coordinate.
    let e = Instance::<2>::new(
        vec![GPoint::new([f64::NAN, 0.0])],
        vec![1.0],
        1.0,
        1,
        Norm::L2,
    )
    .unwrap_err();
    assert!(matches!(e, CoreError::InvalidInstance(_)));
    assert!(e.to_string().contains("non-finite"));

    // Infinite radius.
    let e = Instance::<2>::new(
        vec![GPoint::new([0.0, 0.0])],
        vec![1.0],
        f64::INFINITY,
        1,
        Norm::L2,
    )
    .unwrap_err();
    assert!(e.to_string().contains("radius"));

    // Zero weight.
    let e =
        Instance::<2>::new(vec![GPoint::new([0.0, 0.0])], vec![0.0], 1.0, 1, Norm::L2).unwrap_err();
    assert!(e.to_string().contains("weight"));

    // Empty instance.
    let e = Instance::<2>::new(vec![], vec![], 1.0, 1, Norm::L2).unwrap_err();
    assert!(e.to_string().contains("no points"));
}

#[test]
fn geometry_rejections() {
    let e = GPoint::<2>::try_from_slice(&[1.0]).unwrap_err();
    assert!(matches!(
        e,
        GeomError::DimensionMismatch {
            expected: 2,
            got: 1
        }
    ));
    assert!(e.to_string().contains("expected 2"));

    let e = mmph_geom::Norm::lp(0.3).unwrap_err();
    assert!(matches!(e, GeomError::InvalidExponent(_)));

    let e = mmph_geom::Aabb::<2>::from_points(&[]).unwrap_err();
    assert_eq!(e, GeomError::EmptyPointSet);
}

#[test]
fn solver_configuration_rejections() {
    assert!(matches!(
        StochasticGreedy::new().with_epsilon(2.0),
        Err(CoreError::InvalidConfig(_))
    ));
    assert!(matches!(
        LocalSearch::new().with_max_passes(0),
        Err(CoreError::InvalidConfig(_))
    ));
    let inst = Scenario::paper_2d(5, 2, 1.0, Norm::L1, WeightScheme::Same, 0)
        .generate_2d()
        .unwrap();
    // kmeans demands L2.
    assert!(matches!(
        KMeans::new().solve(&inst),
        Err(CoreError::InvalidConfig(_))
    ));
    // exhaustive cap.
    let big = Scenario::paper_2d(60, 4, 1.0, Norm::L2, WeightScheme::Same, 0)
        .generate_2d()
        .unwrap();
    let e = Exhaustive::new()
        .with_max_combinations(100)
        .solve(&big)
        .unwrap_err();
    assert!(e.to_string().contains("exceeds the cap"));
}

#[test]
fn kernel_rejections() {
    let inst = Scenario::paper_2d(5, 1, 1.0, Norm::L2, WeightScheme::Same, 0)
        .generate_2d()
        .unwrap();
    for lambda in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        let e = inst
            .with_kernel(Kernel::Exponential { lambda })
            .unwrap_err();
        assert!(
            matches!(e, CoreError::InvalidInstance(_)),
            "lambda={lambda}"
        );
    }
}

#[test]
fn sim_rejections() {
    assert!(SpaceSpec::new(2.0, 2.0).is_err());
    assert!(WeightScheme::UniformInt { lo: 5, hi: 2 }
        .validate()
        .is_err());
    assert!(PointDistribution::GaussianClusters {
        clusters: 0,
        rel_sigma: 0.1
    }
    .validate()
    .is_err());
    for cfg in [
        BroadcastConfig {
            horizon_slots: 0,
            ..Default::default()
        },
        BroadcastConfig {
            churn_rate: -0.1,
            ..Default::default()
        },
        BroadcastConfig {
            drift_rel_sigma: f64::NAN,
            ..Default::default()
        },
        BroadcastConfig {
            threshold: 7.0,
            ..Default::default()
        },
    ] {
        assert!(cfg.validate().is_err(), "{cfg:?} accepted");
    }
}

#[test]
fn plot_rejections() {
    use mmph::plot::{LineChart, PlotError, Series};
    let mut chart = LineChart::new("t", "x", "y");
    chart.push(Series::new("nan", vec![(0.0, f64::INFINITY)]));
    assert!(matches!(
        chart.render().unwrap_err(),
        PlotError::NonFinite { .. }
    ));
}

#[test]
fn scenario_deserialization_rejects_corrupt_configs() {
    // Radius <= 0 sneaks through Scenario (validated at generate time).
    let json = r#"{
        "label": "bad", "space": {"lo": 0.0, "hi": 4.0},
        "distribution": "Uniform", "weights": "Same",
        "n": 5, "k": 1, "r": -1.0, "norm": "L2", "seed": 0
    }"#;
    let sc: Scenario = serde_json::from_str(json).unwrap();
    assert!(sc.generate_2d().is_err());
}

#[test]
fn pathological_instances_reject_before_any_solver_runs() {
    // The instance boundary is the only gate: NaN / ±inf weights,
    // non-positive radii and empty point sets must produce a typed error
    // there, so no solver can ever observe them.
    let p = GPoint::new([0.0, 0.0]);
    for w in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, 0.0] {
        let e = Instance::<2>::new(vec![p], vec![w], 1.0, 1, Norm::L2).unwrap_err();
        assert!(matches!(e, CoreError::InvalidInstance(_)), "weight {w}");
    }
    for r in [0.0, -1.0, f64::NAN, f64::NEG_INFINITY] {
        let e = Instance::<2>::new(vec![p], vec![1.0], r, 1, Norm::L2).unwrap_err();
        assert!(matches!(e, CoreError::InvalidInstance(_)), "radius {r}");
    }
    let e = Instance::<2>::new(vec![], vec![], 1.0, 1, Norm::L2).unwrap_err();
    assert!(matches!(e, CoreError::InvalidInstance(_)));
}

#[test]
fn every_solver_handles_duplicate_points_cleanly() {
    // Six coincident heavy points plus two satellites: degenerate
    // geometry (zero-radius enclosing balls, zero-variance clusters)
    // that must never panic or return a non-finite reward.
    let dup = GPoint::new([1.0, 1.0]);
    let pts = vec![
        dup,
        dup,
        dup,
        dup,
        dup,
        dup,
        GPoint::new([3.0, 3.0]),
        GPoint::new([0.5, 2.5]),
    ];
    let ws = vec![5.0, 4.0, 3.0, 2.0, 1.0, 1.0, 2.0, 2.0];
    let inst = Instance::<2>::new(pts, ws, 1.0, 2, Norm::L2).unwrap();
    for (name, solver) in all_solvers() {
        let sol = solver
            .solve(&inst)
            .unwrap_or_else(|e| panic!("{name} failed on duplicates: {e}"));
        assert!(sol.total_reward.is_finite(), "{name}");
        assert!(
            sol.total_reward <= inst.total_weight() + 1e-9,
            "{name}: reward {} exceeds total weight",
            sol.total_reward
        );
        assert_eq!(sol.centers.len(), 2, "{name}");
    }
}

#[test]
fn every_solver_survives_an_exhausted_budget() {
    let inst = Scenario::paper_2d(12, 2, 1.0, Norm::L2, WeightScheme::Same, 3)
        .generate_2d()
        .unwrap();
    for (name, solver) in all_solvers() {
        let out = solver
            .solve_within(&inst, &SolveBudget::unlimited().with_max_evals(0))
            .unwrap_or_else(|e| panic!("{name} errored under zero budget: {e}"));
        assert!(!out.is_complete(), "{name} claimed completion");
        assert!(out.value().is_finite(), "{name}");
        let full = solver.solve(&inst).unwrap();
        assert!(
            out.value() <= full.total_reward + 1e-9,
            "{name}: degraded {} > unbudgeted {}",
            out.value(),
            full.total_reward
        );
    }
}

#[test]
fn fault_plan_rejections() {
    for loss in [-0.1, 1.1, f64::NAN] {
        let e = FaultPlan {
            loss,
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        assert!(e.to_string().contains("loss"), "loss {loss}: {e}");
    }
    let e = FaultPlan {
        outages: vec![OutageWindow { start: 0, len: 0 }],
        ..Default::default()
    }
    .validate()
    .unwrap_err();
    assert!(e.to_string().contains("outage"));
}

#[test]
fn errors_are_send_sync_for_threaded_harnesses() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CoreError>();
    assert_send_sync::<GeomError>();
    assert_send_sync::<mmph::sim::SimError>();
    assert_send_sync::<mmph::plot::PlotError>();
}
