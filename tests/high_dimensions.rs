//! The paper's m-D claim (§V-C): "the optimal problem can also be
//! extended into an m-dimensional space, and distance measurements can
//! be expressed in a general p-norm." Everything in this workspace is
//! const-generic over the dimension — these tests exercise the full
//! stack at D = 5, well beyond the paper's evaluated 2-D/3-D.

use mmph::core::submodular;
use mmph::prelude::*;
use mmph_geom::welzl::min_enclosing_ball;
use mmph_geom::{BallTree, KdTree, Point as GPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points_5d(n: usize, seed: u64) -> Vec<GPoint<5>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut c = [0.0; 5];
            for x in c.iter_mut() {
                *x = rng.gen_range(0.0..4.0);
            }
            GPoint::new(c)
        })
        .collect()
}

fn instance_5d(n: usize, k: usize, r: f64, norm: Norm, seed: u64) -> Instance<5> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabc);
    let pts = random_points_5d(n, seed);
    let ws: Vec<f64> = (0..n).map(|_| rng.gen_range(1..=5) as f64).collect();
    Instance::new(pts, ws, r, k, norm).unwrap()
}

#[test]
fn all_solvers_run_in_five_dimensions() {
    for norm in [Norm::L1, Norm::L2, Norm::LInf, Norm::Lp(3.0)] {
        let inst = instance_5d(30, 3, 2.0, norm, 1);
        for sol in [
            LocalGreedy::new().solve(&inst).unwrap(),
            SimpleGreedy::new().solve(&inst).unwrap(),
            ComplexGreedy::new().solve(&inst).unwrap(),
            LazyGreedy::new().solve(&inst).unwrap(),
            RoundBased::multistart().solve(&inst).unwrap(),
        ] {
            assert_eq!(sol.centers.len(), 3, "{} under {norm}", sol.solver);
            assert!(sol.verify_consistency(&inst), "{} under {norm}", sol.solver);
        }
    }
}

#[test]
fn theorem2_bound_holds_in_five_dimensions() {
    let inst = instance_5d(9, 2, 2.5, Norm::L2, 2);
    let opt = Exhaustive::new().solve(&inst).unwrap();
    let bound = approx_local(inst.n(), inst.k()) * opt.total_reward;
    for sol in [
        LocalGreedy::new().solve(&inst).unwrap(),
        SimpleGreedy::new().solve(&inst).unwrap(),
    ] {
        assert!(sol.total_reward >= bound - 1e-9, "{}", sol.solver);
    }
}

#[test]
fn objective_is_submodular_in_five_dimensions() {
    let inst = instance_5d(20, 2, 2.0, Norm::L1, 3);
    assert!(submodular::audit(&inst, 200, 9).passed());
}

#[test]
fn welzl_handles_five_dimensions() {
    // D+1 = 6 support points max; check containment and the centroid
    // upper bound on 5-D random sets.
    let pts = random_points_5d(60, 4);
    let ball = min_enclosing_ball(&pts);
    assert!(ball.contains_all(&pts));
    let centroid = GPoint::centroid(&pts).unwrap();
    let r_centroid = pts
        .iter()
        .map(|p| centroid.dist_l2(p))
        .fold(0.0f64, f64::max);
    assert!(ball.radius <= r_centroid + 1e-9);
}

#[test]
fn spatial_indexes_agree_in_five_dimensions() {
    let pts = random_points_5d(150, 5);
    let kd = KdTree::build(&pts);
    let ball = BallTree::build(&pts);
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..15 {
        let mut c = [0.0; 5];
        for x in c.iter_mut() {
            *x = rng.gen_range(0.0..4.0);
        }
        let c = GPoint::new(c);
        let r = rng.gen_range(0.5..3.0);
        for norm in [Norm::L1, Norm::L2, Norm::LInf] {
            let mut a: Vec<usize> = kd.within(&c, r, norm).into_iter().map(|(i, _)| i).collect();
            let mut b: Vec<usize> = ball
                .within(&c, r, norm)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            let want: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| norm.dist(&c, p) <= r)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(a, want, "kd under {norm}");
            assert_eq!(b, want, "ball under {norm}");
        }
    }
}

#[test]
fn projection_center_matches_paper_rule_in_five_dimensions() {
    // §V-B: per-dimension (min+max)/2 in m-D via projections.
    let pts = random_points_5d(25, 7);
    let c = mmph_geom::l1ball::projection_center(&pts).unwrap();
    for d in 0..5 {
        let lo = pts.iter().map(|p| p[d]).fold(f64::INFINITY, f64::min);
        let hi = pts.iter().map(|p| p[d]).fold(f64::NEG_INFINITY, f64::max);
        assert!((c[d] - (lo + hi) / 2.0).abs() < 1e-12, "dim {d}");
    }
}

#[test]
fn lazy_equals_eager_in_five_dimensions() {
    let inst = instance_5d(40, 4, 2.0, Norm::L2, 8);
    let eager = LocalGreedy::new().solve(&inst).unwrap();
    let lazy = LazyGreedy::new().solve(&inst).unwrap();
    assert_eq!(eager.centers, lazy.centers);
}
