//! Full-pipeline integration tests: scenario → trace → solve →
//! metrics → figure rendering, plus determinism of the experiment
//! drivers.

use mmph::prelude::*;
use mmph::sim::metrics::SatisfactionReport;
use mmph::sim::trace::{load_traces, save_traces, InstanceTrace};
use mmph_bench::experiments::{self, SweepOptions};
use mmph_bench::render;

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("mmph-pipeline-tests").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn scenario_to_figure_pipeline() {
    // Generate → solve → report → render, all through public APIs.
    let scenario = Scenario::paper_2d(30, 3, 1.0, Norm::L2, WeightScheme::PAPER_WEIGHTED, 12);
    let inst = scenario.generate_2d().unwrap();
    let sol = LocalGreedy::new().solve(&inst).unwrap();
    let report = SatisfactionReport::compute(&inst, &sol.centers, 0.5);
    assert!(report.total_reward > 0.0);
    assert!((report.total_reward - sol.total_reward).abs() < 1e-9);
    assert!(report.satisfied_users > 0);
    assert!(report.jain_fairness() > 0.0 && report.jain_fairness() <= 1.0);

    // Render a coverage map of the solution.
    use mmph::plot::chart::{CircleOverlay, ScatterPoint};
    use mmph::plot::svg::Marker;
    let mut plot = mmph::plot::ScatterPlot::new("pipeline", 0.0, 4.0);
    for (p, &w) in inst.points().iter().zip(inst.weights()) {
        plot.points.push(ScatterPoint {
            x: p[0],
            y: p[1],
            marker: Marker::for_weight(w as u32),
            color_index: 7,
        });
    }
    for (i, c) in sol.centers.iter().enumerate() {
        plot.circles.push(CircleOverlay {
            cx: c[0],
            cy: c[1],
            r: inst.radius(),
            color_index: i,
        });
    }
    let svg = plot.render().unwrap();
    assert!(svg.starts_with("<svg"));
    assert!(svg.contains("<circle"));
}

#[test]
fn trace_pins_the_experiment() {
    let dir = tmp_dir("trace");
    let path = dir.join("pinned.json");
    let scenario = Scenario::paper_2d(15, 2, 1.5, Norm::L1, WeightScheme::Same, 99);
    let trace = InstanceTrace::<2>::record(scenario).unwrap();
    let reward_now = LocalGreedy::new()
        .solve(&trace.instance)
        .unwrap()
        .total_reward;
    save_traces(&path, std::slice::from_ref(&trace)).unwrap();

    // Reload and resolve: identical instance, identical reward.
    let loaded: Vec<InstanceTrace<2>> = load_traces(&path).unwrap();
    assert_eq!(loaded.len(), 1);
    assert!(loaded[0].verify(), "generator drift detected");
    let reward_later = LocalGreedy::new()
        .solve(&loaded[0].instance)
        .unwrap()
        .total_reward;
    assert_eq!(reward_now, reward_later);
}

#[test]
fn experiment_drivers_are_deterministic() {
    let opts = SweepOptions {
        trials: 3,
        include_greedy1: false,
    };
    let a = experiments::ratio_config(10, 2, 1.0, Norm::L2, WeightScheme::Same, opts, 5);
    let b = experiments::ratio_config(10, 2, 1.0, Norm::L2, WeightScheme::Same, opts, 5);
    assert_eq!(a.ratio2.mean, b.ratio2.mean);
    assert_eq!(a.ratio3.mean, b.ratio3.mean);
    assert_eq!(a.ratio4.mean, b.ratio4.mean);

    let ra = experiments::reward_config_3d(40, 2, 1.0, WeightScheme::Same, opts, 6);
    let rb = experiments::reward_config_3d(40, 2, 1.0, WeightScheme::Same, opts, 6);
    assert_eq!(ra.reward2.mean, rb.reward2.mean);
    assert_eq!(ra.reward4.mean, rb.reward4.mean);
}

#[test]
fn repro_renderers_write_all_expected_artifacts() {
    let dir = tmp_dir("artifacts");
    render::render_fig2(&dir, &experiments::fig2()).unwrap();
    let run = experiments::fig3_table1(1);
    render::render_fig3(&dir, &run).unwrap();
    render::render_table1(&dir, &run).unwrap();
    let opts = SweepOptions {
        trials: 2,
        include_greedy1: false,
    };
    let rows = vec![experiments::ratio_config(
        10,
        2,
        1.0,
        Norm::L2,
        WeightScheme::Same,
        opts,
        7,
    )];
    render::render_ratio_figure(&dir, "fig_t", "test", &rows).unwrap();
    let rrows = vec![experiments::reward_config_3d(
        40,
        2,
        1.0,
        WeightScheme::Same,
        opts,
        8,
    )];
    render::render_reward_figure(&dir, "fig_r", "test3d", &rrows).unwrap();
    render::render_summary(
        &dir,
        &experiments::aggregate(&rows),
        &experiments::aggregate_3d(&rrows),
    )
    .unwrap();

    for name in [
        "fig2_bounds_n10.svg",
        "fig2_bounds_n40.svg",
        "fig2_bounds_n10.csv",
        "fig3_greedy2_round1.svg",
        "fig3_greedy4_round4.svg",
        "fig3_landscape_round1.svg",
        "fig3_landscape_round4.svg",
        "table1.md",
        "table1.csv",
        "fig_t_n10_k2.svg",
        "fig_t.csv",
        "fig_t.md",
        "fig_r_n40_k2.svg",
        "fig_r.csv",
        "summary.md",
    ] {
        assert!(dir.join(name).exists(), "missing artifact {name}");
    }
    // SVGs parse-sanity: well-formed header and footer.
    let svg = std::fs::read_to_string(dir.join("fig3_greedy2_round1.svg")).unwrap();
    assert!(svg.starts_with("<svg"));
    assert!(svg.trim_end().ends_with("</svg>"));
}

#[test]
fn three_dimensional_pipeline() {
    let scenario = Scenario::paper_3d(40, 4, 1.5, Norm::L1, WeightScheme::PAPER_WEIGHTED, 21);
    let inst = scenario.generate_3d().unwrap();
    for sol in [
        LocalGreedy::new().solve(&inst).unwrap(),
        SimpleGreedy::new().solve(&inst).unwrap(),
        ComplexGreedy::new().solve(&inst).unwrap(),
    ] {
        assert_eq!(sol.centers.len(), 4);
        assert!(sol.verify_consistency(&inst));
        let report = SatisfactionReport::compute(&inst, &sol.centers, 0.5);
        assert!((report.total_reward - sol.total_reward).abs() < 1e-9);
    }
}

#[test]
fn facade_prelude_exposes_the_advertised_api() {
    // Compile-time check that the README quickstart keeps working.
    let scenario = Scenario::paper_2d(
        40,
        4,
        1.0,
        Norm::L2,
        WeightScheme::UniformInt { lo: 1, hi: 5 },
        7,
    );
    let instance = scenario.generate_2d().unwrap();
    let solution = SimpleGreedy::new().solve(&instance).unwrap();
    assert_eq!(solution.centers.len(), 4);
    assert!(solution.total_reward > 0.0);
    // Bounds are reachable from the prelude.
    assert!(approx_local(40, 4) < approx_round_based(4));
    let bound = ONE_MINUS_INV_E;
    assert!((bound - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
}
