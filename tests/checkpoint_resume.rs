//! Checkpoint/resume determinism: interrupting a fault-injected
//! simulation at ANY period boundary, serializing the checkpoint to
//! disk, reloading it and finishing must reproduce the uninterrupted
//! run exactly — same rewards, same fault draws, same dynamics.

use mmph::core::solvers::AdaptiveSolver;
use mmph::core::SolveBudget;
use mmph::prelude::*;
use mmph::sim::broadcast::{
    run_to_completion, step_period, BroadcastConfig, BroadcastRun, Checkpoint, FaultPlan,
    OutageWindow, Population,
};
use mmph::sim::gen::{PointDistribution, SpaceSpec};
use mmph::sim::rng::SeedSeq;

fn faulty_checkpoint(seed: u64) -> Checkpoint<2> {
    let config = BroadcastConfig {
        horizon_slots: 40,
        churn_rate: 0.15,
        drift_rel_sigma: 0.03,
        threshold: 0.5,
        seed,
    };
    let faults = FaultPlan {
        loss: 0.3,
        outages: vec![
            OutageWindow { start: 6, len: 2 },
            OutageWindow { start: 20, len: 3 },
        ],
        max_retries: 2,
        backoff_slots: 1,
    };
    let population = Population::<2>::generate(
        25,
        SpaceSpec::PAPER,
        PointDistribution::Uniform,
        WeightScheme::PAPER_WEIGHTED,
        SeedSeq::new(seed),
    )
    .unwrap();
    Checkpoint::new(&config, &faults, population, 1.0, 3, Norm::L2).unwrap()
}

fn finish(ck: &mut Checkpoint<2>) -> BroadcastRun {
    run_to_completion(
        ck,
        &SimpleGreedy::new(),
        &SolveBudget::unlimited(),
        0,
        |_| Ok(()),
    )
    .unwrap()
}

#[test]
fn resume_from_any_period_boundary_is_lossless() {
    let reference = finish(&mut faulty_checkpoint(17));
    assert!(reference.periods >= 4, "need a multi-period run");
    for stop_after in 1..reference.periods {
        let mut ck = faulty_checkpoint(17);
        for _ in 0..stop_after {
            assert!(step_period(&mut ck, &SimpleGreedy::new(), &SolveBudget::unlimited()).unwrap());
        }
        // Full disk round-trip, as `mmph simulate --checkpoint/--resume`
        // performs it.
        let dir = std::env::temp_dir().join("mmph-resume-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("stop{stop_after}.json"));
        ck.save(&path).unwrap();
        let mut resumed = Checkpoint::<2>::load(&path).unwrap();
        let replay = finish(&mut resumed);
        assert_eq!(reference, replay, "diverged when stopped at {stop_after}");
    }
}

#[test]
fn resume_determinism_holds_under_budgeted_adaptive_solver() {
    let budget = SolveBudget::unlimited().with_max_evals(40);
    let drive = |ck: &mut Checkpoint<2>| {
        run_to_completion(ck, &AdaptiveSolver::new(), &budget, 0, |_| Ok(())).unwrap()
    };
    let reference = drive(&mut faulty_checkpoint(23));
    let mut ck = faulty_checkpoint(23);
    while ck.next_period < 2 {
        assert!(step_period(&mut ck, &AdaptiveSolver::new(), &budget).unwrap());
    }
    let json = serde_json::to_string(&ck).unwrap();
    let mut resumed: Checkpoint<2> = serde_json::from_str(&json).unwrap();
    let replay = drive(&mut resumed);
    assert_eq!(reference, replay);
}

#[test]
fn fault_free_engine_matches_legacy_simulate() {
    let config = BroadcastConfig {
        horizon_slots: 24,
        churn_rate: 0.1,
        drift_rel_sigma: 0.02,
        threshold: 0.5,
        seed: 3,
    };
    let make_pop = || {
        Population::<2>::generate(
            20,
            SpaceSpec::PAPER,
            PointDistribution::Uniform,
            WeightScheme::PAPER_WEIGHTED,
            SeedSeq::new(3),
        )
        .unwrap()
    };
    let mut legacy_pop = make_pop();
    let legacy = mmph::sim::broadcast::simulate(
        &SimpleGreedy::new(),
        &mut legacy_pop,
        1.0,
        2,
        Norm::L2,
        &config,
    )
    .unwrap();
    let mut ck =
        Checkpoint::new(&config, &FaultPlan::none(), make_pop(), 1.0, 2, Norm::L2).unwrap();
    let engine = finish(&mut ck);
    assert_eq!(legacy, engine);
    assert_eq!(legacy_pop, ck.population);
    assert_eq!(engine.lost_broadcasts, 0);
    assert_eq!(engine.degraded_periods, 0);
}
