//! Integration tests validating the paper's theorems and evaluation
//! invariants end-to-end, across crates.

use mmph::prelude::*;
use mmph_core::bounds;
use mmph_core::submodular;

fn sweep_scenarios(norm: Norm, weights: WeightScheme) -> Vec<Scenario> {
    Scenario::paper_sweep_2d(norm, weights, 77)
}

/// Theorem 2: every round-framework greedy achieves at least
/// `1 − (1 − 1/n)^k` of the optimum. Our denominator (point-located
/// exhaustive) is a lower bound on the true optimum, which only makes
/// the check stricter... (it makes the ratio larger, so the check stays
/// valid: greedy >= approx2 * f_opt >= approx2 * point_opt).
#[test]
fn theorem2_bound_holds_across_the_paper_sweep() {
    for norm in [Norm::L1, Norm::L2] {
        for weights in [WeightScheme::Same, WeightScheme::PAPER_WEIGHTED] {
            for scenario in sweep_scenarios(norm, weights) {
                // Keep the heavy exhaustive runs small.
                if scenario.n > 10 {
                    continue;
                }
                let inst = scenario.generate_2d().unwrap();
                let opt = Exhaustive::new().solve(&inst).unwrap().total_reward;
                let bound = bounds::approx_local(inst.n(), inst.k()) * opt;
                for sol in [
                    LocalGreedy::new().solve(&inst).unwrap(),
                    SimpleGreedy::new().solve(&inst).unwrap(),
                    ComplexGreedy::new().solve(&inst).unwrap(),
                ] {
                    assert!(
                        sol.total_reward >= bound - 1e-9,
                        "{} on {}: {} < bound {}",
                        sol.solver,
                        scenario.label,
                        sol.total_reward,
                        bound
                    );
                }
            }
        }
    }
}

/// The paper's Fig. 2 claim: approx. 1 dominates approx. 2 whenever
/// k < n, and both live in (0, 1].
#[test]
fn fig2_bound_relationships() {
    for n in [10usize, 40] {
        for k in 1..=n {
            let a1 = bounds::approx_round_based(k);
            let a2 = bounds::approx_local(n, k);
            assert!(a1 > 0.0 && a1 <= 1.0);
            assert!(a2 > 0.0 && a2 <= 1.0);
            if k < n {
                assert!(a1 >= a2, "n={n} k={k}: {a1} < {a2}");
            }
        }
    }
}

/// Exhaustive dominates every point-candidate greedy; the continuous
/// greedies (1 and 4) never verify-fail even when they beat it.
#[test]
fn exhaustive_dominates_point_candidate_greedies() {
    for seed in 0..10u64 {
        let scenario = Scenario::paper_2d(12, 3, 1.2, Norm::L2, WeightScheme::PAPER_WEIGHTED, seed);
        let inst = scenario.generate_2d().unwrap();
        let opt = Exhaustive::new().solve(&inst).unwrap();
        let g2 = LocalGreedy::new().solve(&inst).unwrap();
        let g3 = SimpleGreedy::new().solve(&inst).unwrap();
        let g4 = ComplexGreedy::new().solve(&inst).unwrap();
        assert!(opt.total_reward >= g2.total_reward - 1e-9);
        assert!(opt.total_reward >= g3.total_reward - 1e-9);
        for sol in [&opt, &g2, &g3, &g4] {
            assert!(sol.verify_consistency(&inst), "{} inconsistent", sol.solver);
        }
    }
}

/// Greedy 2 dominates greedy 3 in total reward only sometimes — but in
/// round 1 greedy 2's gain always dominates (it maximizes that round's
/// objective over the same candidate set).
#[test]
fn greedy2_round1_dominates_greedy3_round1() {
    for seed in 100..130u64 {
        let scenario = Scenario::paper_2d(25, 2, 1.0, Norm::L1, WeightScheme::PAPER_WEIGHTED, seed);
        let inst = scenario.generate_2d().unwrap();
        let g2 = LocalGreedy::new().solve(&inst).unwrap();
        let g3 = SimpleGreedy::new().solve(&inst).unwrap();
        assert!(g2.round_gains[0] >= g3.round_gains[0] - 1e-9, "seed {seed}");
    }
}

/// The objective is monotone submodular on paper-sweep instances in
/// both 2-D and 3-D (the NP-hardness proof's Lemma 0b).
#[test]
fn objective_is_monotone_submodular_on_paper_instances() {
    let sc2 = Scenario::paper_2d(20, 2, 1.5, Norm::L2, WeightScheme::PAPER_WEIGHTED, 3);
    let inst2 = sc2.generate_2d().unwrap();
    assert!(submodular::audit(&inst2, 300, 1).passed());

    let sc3 = Scenario::paper_3d(30, 2, 1.5, Norm::L1, WeightScheme::Same, 4);
    let inst3 = sc3.generate_3d().unwrap();
    assert!(submodular::audit(&inst3, 300, 2).passed());
}

/// Per-round gains of greedy 2 are monotone non-increasing (diminishing
/// returns materialized), and cumulative gains follow the recursive
/// bound of Theorem 2's proof: f(j) >= (1-(1-1/n)^j) * f_opt.
#[test]
fn per_round_structure_matches_theorem_proof() {
    let scenario = Scenario::paper_2d(10, 4, 1.5, Norm::L2, WeightScheme::Same, 9);
    let inst = scenario.generate_2d().unwrap();
    let opt = Exhaustive::new().solve(&inst).unwrap().total_reward;
    let g2 = LocalGreedy::new().solve(&inst).unwrap();
    for w in g2.round_gains.windows(2) {
        assert!(w[1] <= w[0] + 1e-9);
    }
    for (j, cum) in g2.cumulative_gains().iter().enumerate() {
        let bound = bounds::approx_local(inst.n(), j + 1) * opt;
        assert!(*cum >= bound - 1e-9, "round {}: {} < {}", j + 1, cum, bound);
    }
}

/// Regenerating Table I: per-round gains sum to the totals, every
/// algorithm fills exactly k rounds, and the totals are consistent
/// with the f(C) recomputation.
#[test]
fn table1_regeneration_invariants() {
    let run = mmph_bench::experiments::fig3_table1(42);
    for sol in &run.solutions {
        assert_eq!(sol.round_gains.len(), 4);
        let sum: f64 = sol.round_gains.iter().sum();
        assert!((sum - sol.total_reward).abs() < 1e-9);
        assert!(sol.verify_consistency(&run.instance));
        assert!(sol.round_gains.iter().all(|&g| g >= 0.0));
    }
    // The shape the paper's Table I shows: the complex greedy's total is
    // at least the local greedy's (continuous centers strictly
    // generalize point centers under improve-only growth).
    let g2 = run.solutions[0].total_reward;
    let g4 = run.solutions[2].total_reward;
    assert!(g4 >= g2 * 0.99, "g4 {g4} unexpectedly below g2 {g2}");
}

/// The §III-A trade-off in the broadcast simulator: larger k gives a
/// higher per-period reward but strictly fewer periods.
#[test]
fn broadcast_tradeoff_shape() {
    use mmph::sim::broadcast::{simulate, BroadcastConfig, Population};
    use mmph::sim::gen::{PointDistribution, SpaceSpec};
    use mmph::sim::rng::SeedSeq;
    let cfg = BroadcastConfig {
        horizon_slots: 24,
        ..Default::default()
    };
    let make = || {
        Population::<2>::generate(
            50,
            SpaceSpec::PAPER,
            PointDistribution::Uniform,
            WeightScheme::PAPER_WEIGHTED,
            SeedSeq::new(8),
        )
        .unwrap()
    };
    let mut pop2 = make();
    let mut pop8 = make();
    let run2 = simulate(&LocalGreedy::new(), &mut pop2, 1.0, 2, Norm::L2, &cfg).unwrap();
    let run8 = simulate(&LocalGreedy::new(), &mut pop8, 1.0, 8, Norm::L2, &cfg).unwrap();
    assert!(run8.per_period[0].reward > run2.per_period[0].reward);
    assert!(run8.periods < run2.periods);
}

/// Ratios in the sweep respect the paper's qualitative shape: larger r
/// raises every algorithm's absolute reward.
#[test]
fn larger_radius_raises_rewards() {
    for seed in 0..5u64 {
        let base = Scenario::paper_2d(20, 2, 1.0, Norm::L2, WeightScheme::Same, seed);
        let small = base.generate_2d().unwrap();
        let big = small.with_radius(2.0).unwrap();
        for (a, b) in [
            (
                LocalGreedy::new().solve(&small).unwrap(),
                LocalGreedy::new().solve(&big).unwrap(),
            ),
            (
                SimpleGreedy::new().solve(&small).unwrap(),
                SimpleGreedy::new().solve(&big).unwrap(),
            ),
        ] {
            assert!(
                b.total_reward >= a.total_reward - 1e-9,
                "seed {seed}: {} r=2 {} < r=1 {}",
                a.solver,
                b.total_reward,
                a.total_reward
            );
        }
    }
}
