//! Property-based tests (proptest) over the core invariants.

use mmph::prelude::*;
use mmph_core::reward;
use mmph_geom::welzl::min_enclosing_ball;
use mmph_geom::{KdTree, Point as GPoint};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

fn coord() -> impl Strategy<Value = f64> {
    // Finite coordinates in a generous box around the paper's space.
    -10.0..10.0f64
}

fn point2() -> impl Strategy<Value = GPoint<2>> {
    (coord(), coord()).prop_map(|(x, y)| GPoint::new([x, y]))
}

fn point3() -> impl Strategy<Value = GPoint<3>> {
    (coord(), coord(), coord()).prop_map(|(x, y, z)| GPoint::new([x, y, z]))
}

fn weight() -> impl Strategy<Value = f64> {
    0.1..10.0f64
}

fn norm() -> impl Strategy<Value = Norm> {
    prop_oneof![
        Just(Norm::L1),
        Just(Norm::L2),
        Just(Norm::LInf),
        (1.1..6.0f64).prop_map(|p| Norm::lp(p).unwrap()),
    ]
}

prop_compose! {
    fn instance2()(
        pts in prop::collection::vec(point2(), 1..25),
        seed_weights in prop::collection::vec(weight(), 25),
        r in 0.1..5.0f64,
        k in 1usize..5,
        norm in norm(),
    ) -> Instance<2> {
        let n = pts.len();
        let ws = seed_weights[..n].to_vec();
        Instance::new(pts, ws, r, k, norm).expect("strategy emits valid instances")
    }
}

// ---------------------------------------------------------------------
// Norm axioms
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn norm_symmetry(a in point2(), b in point2(), n in norm()) {
        prop_assert!((n.dist(&a, &b) - n.dist(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn norm_identity(a in point2(), n in norm()) {
        prop_assert!(n.dist(&a, &a).abs() < 1e-12);
    }

    #[test]
    fn norm_nonnegative(a in point2(), b in point2(), n in norm()) {
        prop_assert!(n.dist(&a, &b) >= 0.0);
    }

    #[test]
    fn norm_triangle_inequality(a in point2(), b in point2(), c in point2(), n in norm()) {
        let direct = n.dist(&a, &c);
        let via = n.dist(&a, &b) + n.dist(&b, &c);
        prop_assert!(direct <= via + 1e-9, "direct {direct} via {via}");
    }

    #[test]
    fn norm_ordering_l1_ge_l2_ge_linf(a in point2(), b in point2()) {
        let l1 = Norm::L1.dist(&a, &b);
        let l2 = Norm::L2.dist(&a, &b);
        let li = Norm::LInf.dist(&a, &b);
        prop_assert!(l1 >= l2 - 1e-12);
        prop_assert!(l2 >= li - 1e-12);
    }
}

// ---------------------------------------------------------------------
// Smallest enclosing ball
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn welzl_contains_all_points_2d(pts in prop::collection::vec(point2(), 1..60)) {
        let ball = min_enclosing_ball(&pts);
        for p in &pts {
            prop_assert!(ball.contains(p), "point {p} outside r={}", ball.radius);
        }
    }

    #[test]
    fn welzl_contains_all_points_3d(pts in prop::collection::vec(point3(), 1..40)) {
        let ball = min_enclosing_ball(&pts);
        for p in &pts {
            prop_assert!(ball.contains(p));
        }
    }

    #[test]
    fn welzl_no_smaller_than_pair_diameter(pts in prop::collection::vec(point2(), 2..30)) {
        // The ball must be at least half the largest pairwise distance.
        let mut diameter = 0.0f64;
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                diameter = diameter.max(pts[i].dist_l2(&pts[j]));
            }
        }
        let ball = min_enclosing_ball(&pts);
        prop_assert!(ball.radius >= diameter / 2.0 - 1e-9);
    }

    #[test]
    fn welzl_beats_or_ties_centroid_ball(pts in prop::collection::vec(point2(), 1..40)) {
        let ball = min_enclosing_ball(&pts);
        let centroid = GPoint::centroid(&pts).unwrap();
        let centroid_r = pts.iter().map(|p| centroid.dist_l2(p)).fold(0.0f64, f64::max);
        prop_assert!(ball.radius <= centroid_r + 1e-9);
    }
}

// ---------------------------------------------------------------------
// kd-tree vs linear scan
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn kdtree_radius_query_equals_scan(
        pts in prop::collection::vec(point2(), 1..80),
        c in point2(),
        r in 0.0..8.0f64,
        n in norm(),
    ) {
        let tree = KdTree::build(&pts);
        let mut got: Vec<usize> = tree.within(&c, r, n).into_iter().map(|(i, _)| i).collect();
        got.sort_unstable();
        let want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| n.dist(&c, p) <= r)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, want);
    }
}

// ---------------------------------------------------------------------
// Reward model invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn objective_bounded_by_total_weight(
        inst in instance2(),
        centers in prop::collection::vec(point2(), 0..6),
    ) {
        let f = reward::objective(&inst, &centers);
        prop_assert!(f >= 0.0);
        prop_assert!(f <= inst.total_weight() + 1e-9);
    }

    #[test]
    fn objective_monotone_in_centers(
        inst in instance2(),
        centers in prop::collection::vec(point2(), 1..6),
    ) {
        let mut f_prev = 0.0;
        for m in 1..=centers.len() {
            let f = reward::objective(&inst, &centers[..m]);
            prop_assert!(f >= f_prev - 1e-9);
            f_prev = f;
        }
    }

    #[test]
    fn objective_submodular_random_triples(
        inst in instance2(),
        a in prop::collection::vec(point2(), 0..3),
        extra in prop::collection::vec(point2(), 1..3),
        s in point2(),
    ) {
        prop_assert!(mmph_core::submodular::check_submodular(&inst, &a, &extra, &s, 1e-9));
    }

    #[test]
    fn residuals_stay_in_unit_interval(
        inst in instance2(),
        centers in prop::collection::vec(point2(), 1..6),
    ) {
        let mut res = reward::Residuals::new(inst.n());
        for c in &centers {
            let gain = res.apply(&inst, c);
            prop_assert!(gain >= 0.0);
            for &y in res.as_slice() {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&y), "y = {y}");
            }
        }
    }

    #[test]
    fn telescoped_gains_equal_objective(
        inst in instance2(),
        centers in prop::collection::vec(point2(), 1..6),
    ) {
        let mut res = reward::Residuals::new(inst.n());
        let total: f64 = centers.iter().map(|c| res.apply(&inst, c)).sum();
        let f = reward::objective(&inst, &centers);
        prop_assert!((total - f).abs() < 1e-9 * (1.0 + f), "{total} vs {f}");
    }
}

// ---------------------------------------------------------------------
// Solver invariants on random instances
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_solvers_produce_consistent_solutions(inst in instance2()) {
        for sol in [
            LocalGreedy::new().solve(&inst).unwrap(),
            SimpleGreedy::new().solve(&inst).unwrap(),
            ComplexGreedy::new().solve(&inst).unwrap(),
            LazyGreedy::new().solve(&inst).unwrap(),
        ] {
            prop_assert_eq!(sol.centers.len(), inst.k());
            prop_assert!(sol.verify_consistency(&inst), "{} inconsistent", sol.solver);
            prop_assert!(sol.round_gains.iter().all(|&g| g >= -1e-12));
        }
    }

    #[test]
    fn lazy_equals_eager_everywhere(inst in instance2()) {
        let eager = LocalGreedy::new().solve(&inst).unwrap();
        let lazy = LazyGreedy::new().solve(&inst).unwrap();
        prop_assert_eq!(&eager.centers, &lazy.centers);
        prop_assert!((eager.total_reward - lazy.total_reward).abs() < 1e-12);
    }

    #[test]
    fn exhaustive_dominates_on_small_instances(
        pts in prop::collection::vec(point2(), 2..9),
        r in 0.5..3.0f64,
        norm in norm(),
    ) {
        let n = pts.len();
        let inst = Instance::new(pts, vec![1.0; n], r, 2.min(n), norm).unwrap();
        let opt = Exhaustive::new().sequential().solve(&inst).unwrap();
        let g2 = LocalGreedy::new().solve(&inst).unwrap();
        let g3 = SimpleGreedy::new().solve(&inst).unwrap();
        prop_assert!(opt.total_reward >= g2.total_reward - 1e-9);
        prop_assert!(opt.total_reward >= g3.total_reward - 1e-9);
    }

    #[test]
    fn instance_serde_roundtrip(inst in instance2()) {
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance<2> = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(inst, back);
    }
}
