//! Integration tests for the reward-kernel generalization (extension;
//! DESIGN.md §3): the round framework and every guarantee-relevant
//! structural property must survive swapping the paper's linear decay
//! for other non-increasing kernels.

use mmph::core::submodular;
use mmph::core::Kernel;
use mmph::prelude::*;

const KERNELS: [Kernel; 4] = [
    Kernel::Linear,
    Kernel::Step,
    Kernel::Quadratic,
    Kernel::Exponential { lambda: 3.0 },
];

fn instance_with(kernel: Kernel, seed: u64) -> Instance<2> {
    Scenario::paper_2d(20, 3, 1.0, Norm::L2, WeightScheme::PAPER_WEIGHTED, seed)
        .generate_2d()
        .unwrap()
        .with_kernel(kernel)
        .unwrap()
}

#[test]
fn objective_stays_monotone_submodular_under_every_kernel() {
    for (i, kernel) in KERNELS.into_iter().enumerate() {
        let inst = instance_with(kernel, i as u64);
        let report = submodular::audit(&inst, 400, 7);
        assert!(report.passed(), "{kernel:?}: {report:?}");
    }
}

#[test]
fn solvers_remain_consistent_under_every_kernel() {
    for (i, kernel) in KERNELS.into_iter().enumerate() {
        let inst = instance_with(kernel, 10 + i as u64);
        for sol in [
            LocalGreedy::new().solve(&inst).unwrap(),
            SimpleGreedy::new().solve(&inst).unwrap(),
            ComplexGreedy::new().solve(&inst).unwrap(),
            LazyGreedy::new().solve(&inst).unwrap(),
        ] {
            assert!(
                sol.verify_consistency(&inst),
                "{} under {kernel:?}",
                sol.solver
            );
        }
        // CELF equivalence is kernel-independent.
        let eager = LocalGreedy::new().solve(&inst).unwrap();
        let lazy = LazyGreedy::new().solve(&inst).unwrap();
        assert_eq!(eager.centers, lazy.centers, "{kernel:?}");
    }
}

#[test]
fn step_kernel_is_weighted_max_coverage() {
    // Under the step kernel a single covering center claims the full
    // weight of every point within r — the textbook weighted
    // max-coverage objective the paper cites as its ancestor.
    let inst = InstanceBuilder::<2>::new()
        .point([0.0, 0.0], 2.0)
        .point([0.5, 0.0], 3.0)
        .point([3.0, 3.0], 1.0)
        .radius(1.0)
        .k(1)
        .kernel(Kernel::Step)
        .build()
        .unwrap();
    let sol = LocalGreedy::new().solve(&inst).unwrap();
    // Centering anywhere on the close pair covers both fully: 5.0.
    assert!((sol.total_reward - 5.0).abs() < 1e-12);
}

#[test]
fn kernel_ordering_transfers_to_rewards() {
    // Pointwise step >= quadratic >= linear implies the greedy reward
    // under step dominates quadratic dominates linear on the SAME
    // center set; compare via the objective on fixed centers.
    let base = instance_with(Kernel::Linear, 42);
    let centers = LocalGreedy::new().solve(&base).unwrap().centers;
    let f_linear = mmph::core::objective(&base, &centers);
    let f_quad = mmph::core::objective(&base.with_kernel(Kernel::Quadratic).unwrap(), &centers);
    let f_step = mmph::core::objective(&base.with_kernel(Kernel::Step).unwrap(), &centers);
    assert!(f_step >= f_quad - 1e-9);
    assert!(f_quad >= f_linear - 1e-9);
}

#[test]
fn exhaustive_dominates_greedies_under_every_kernel() {
    for (i, kernel) in KERNELS.into_iter().enumerate() {
        let inst = Scenario::paper_2d(10, 2, 1.2, Norm::L1, WeightScheme::Same, 50 + i as u64)
            .generate_2d()
            .unwrap()
            .with_kernel(kernel)
            .unwrap();
        let opt = Exhaustive::new().solve(&inst).unwrap();
        let g2 = LocalGreedy::new().solve(&inst).unwrap();
        let g3 = SimpleGreedy::new().solve(&inst).unwrap();
        assert!(opt.total_reward >= g2.total_reward - 1e-9, "{kernel:?}");
        assert!(opt.total_reward >= g3.total_reward - 1e-9, "{kernel:?}");
    }
}

#[test]
fn legacy_json_without_kernel_field_still_loads() {
    // Instances serialized before the kernel extension must default to
    // the paper's linear kernel.
    let json =
        r#"{"points":[[0.0,0.0],[1.0,1.0]],"weights":[1.0,2.0],"radius":1.0,"k":1,"norm":"L2"}"#;
    let inst: Instance<2> = serde_json::from_str(json).unwrap();
    assert_eq!(inst.kernel(), Kernel::Linear);
}

#[test]
fn invalid_kernel_parameters_rejected() {
    let inst = instance_with(Kernel::Linear, 1);
    let e = inst.with_kernel(Kernel::Exponential { lambda: -2.0 });
    assert!(e.is_err());
}

#[test]
fn kernel_survives_serde_roundtrip_on_instance() {
    let inst = instance_with(Kernel::Quadratic, 2);
    let json = serde_json::to_string(&inst).unwrap();
    let back: Instance<2> = serde_json::from_str(&json).unwrap();
    assert_eq!(back.kernel(), Kernel::Quadratic);
    assert_eq!(inst, back);
}
