//! # mmph — Making Many People Happy
//!
//! Facade crate re-exporting the whole workspace: a Rust implementation
//! of Wang, Guo & Wu, *"Making Many People Happy: Greedy Solutions for
//! Content Distribution"* (ICPP 2011).
//!
//! A base station can broadcast `k` content items to `n` users whose
//! interests are points in an m-dimensional space; a broadcast at center
//! `c` with interest radius `r` rewards user `i` with
//! `w_i · (1 − d(c, x_i)/r)` when `d(c, x_i) ≤ r`, capped at `w_i`
//! across broadcasts. This crate provides the problem model, the paper's
//! three local greedy algorithms, the round-based heuristic, exhaustive
//! baselines, theoretical approximation bounds, simulation tooling and
//! SVG figure rendering.
//!
//! ## Quick start
//!
//! ```
//! use mmph::prelude::*;
//!
//! // 40 users in the paper's 4×4 interest space, weights 1..=5.
//! let scenario = Scenario::paper_2d(40, 4, 1.0, Norm::L2, WeightScheme::UniformInt { lo: 1, hi: 5 }, 7);
//! let instance = scenario.generate_2d().unwrap();
//!
//! // The paper's best performer: the simple local greedy (Algorithm 3).
//! let solution = SimpleGreedy::new().solve(&instance).unwrap();
//! assert_eq!(solution.centers.len(), 4);
//! assert!(solution.total_reward > 0.0);
//! ```
//!
//! See the `examples/` directory for full scenarios and `mmph-bench`'s
//! `repro` binary for the paper's complete evaluation.

pub use mmph_core as core;
pub use mmph_geom as geom;
pub use mmph_plot as plot;
pub use mmph_sim as sim;

/// Most-used items in one import.
pub mod prelude {
    pub use mmph_core::bounds::{approx_local, approx_round_based, ONE_MINUS_INV_E};
    pub use mmph_core::budget::{DegradeReason, SolveBudget, SolveOutcome, SolveStatus};
    pub use mmph_core::incremental::{IncrementalInstance, ResolveConfig, ResolveOutcome};
    pub use mmph_core::instance::{Delta, Instance, InstanceBuilder};
    pub use mmph_core::reward::{coverage_reward, objective, psi, Residuals};
    pub use mmph_core::solver::{Solution, Solver};
    pub use mmph_core::solvers::{
        AdaptiveSolver, BeamSearch, ComplexGreedy, Exhaustive, LazyGreedy, LocalGreedy,
        LocalSearch, RoundBased, SeededGreedy, SimpleGreedy, StochasticGreedy,
    };
    pub use mmph_geom::{Norm, Point, Point2, Point3};
    pub use mmph_sim::churn::ChurnPlan;
    pub use mmph_sim::gen::WeightScheme;
    pub use mmph_sim::scenario::Scenario;
}
