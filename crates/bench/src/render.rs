//! Renderers: experiment results → SVG figures, CSV data, Markdown
//! tables under a results directory.

use std::fs;
use std::path::Path;

use mmph_plot::chart::{CircleOverlay, ScatterPoint};
use mmph_plot::svg::Marker;
use mmph_plot::table::{fmt_cell, fmt_percent};
use mmph_plot::{Heatmap, LineChart, ScatterPlot, Series, Table, TableFormat};

use crate::experiments::{
    Aggregate, Aggregate3d, BaselineRow, ExampleRun, Fig2Panel, RatioRow, RewardRow,
};

/// Writes a string artifact, creating the directory as needed.
fn write(dir: &Path, name: &str, content: &str) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(name), content)
}

// ---------------------------------------------------------------------
// Fig. 2
// ---------------------------------------------------------------------

/// Renders Fig. 2 (both panels) as SVG + CSV.
pub fn render_fig2(dir: &Path, panels: &[Fig2Panel]) -> std::io::Result<()> {
    for panel in panels {
        let mut chart = LineChart::new(
            format!(
                "Fig. 2 — approximation ratios, {}-node environment",
                panel.n
            ),
            "number of centers k",
            "approximation ratio",
        )
        .with_y_domain(0.0, 1.0);
        chart.push(
            Series::new(
                "approx. 1 = 1-(1-1/k)^k",
                panel
                    .rows
                    .iter()
                    .map(|&(k, a1, _)| (k as f64, a1))
                    .collect(),
            )
            .with_marker(Marker::Circle),
        );
        chart.push(
            Series::new(
                "approx. 2 = 1-(1-1/n)^k",
                panel
                    .rows
                    .iter()
                    .map(|&(k, _, a2)| (k as f64, a2))
                    .collect(),
            )
            .with_marker(Marker::Cross)
            .with_dashed(true),
        );
        let svg = chart.render().expect("fig2 data is non-empty and finite");
        write(dir, &format!("fig2_bounds_n{}.svg", panel.n), &svg)?;

        let mut table = Table::new(["k", "approx1", "approx2"]);
        for &(k, a1, a2) in &panel.rows {
            table
                .push_row([k.to_string(), fmt_cell(a1), fmt_cell(a2)])
                .expect("3 columns");
        }
        write(
            dir,
            &format!("fig2_bounds_n{}.csv", panel.n),
            &table.render(TableFormat::Csv),
        )?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Fig. 3 + Table I
// ---------------------------------------------------------------------

/// Renders the Fig. 3 panels: for each algorithm and each round, the
/// instance with the centers chosen so far (stars) and their coverage
/// disks — 12 SVGs for the paper's 3 × 4 grid.
pub fn render_fig3(dir: &Path, run: &ExampleRun) -> std::io::Result<()> {
    let inst = &run.instance;
    for sol in &run.solutions {
        for round in 0..sol.centers.len() {
            let mut plot = ScatterPlot::new(
                format!("Fig. 3 — {} after round {}", sol.solver, round + 1),
                0.0,
                4.0,
            );
            for (p, &w) in inst.points().iter().zip(inst.weights()) {
                plot.points.push(ScatterPoint {
                    x: p[0],
                    y: p[1],
                    marker: Marker::for_weight(w as u32),
                    color_index: 7, // black, as in the paper
                });
            }
            for (ci, c) in sol.centers.iter().take(round + 1).enumerate() {
                plot.points.push(ScatterPoint {
                    x: c[0],
                    y: c[1],
                    marker: Marker::Star,
                    color_index: ci,
                });
                plot.circles.push(CircleOverlay {
                    cx: c[0],
                    cy: c[1],
                    r: inst.radius(),
                    color_index: ci,
                });
            }
            let svg = plot.render().expect("fig3 panel has points");
            write(
                dir,
                &format!("fig3_{}_round{}.svg", sol.solver, round + 1),
                &svg,
            )?;
        }
    }
    // Companion heatmaps (beyond the paper): the coverage-reward
    // landscape greedy 2 faces before each round, showing the residual
    // depletion that drives center spreading.
    let mut residuals = mmph_core::Residuals::new(inst.n());
    let g2 = &run.solutions[0];
    for (round, center) in g2.centers.iter().enumerate() {
        let hm = Heatmap::new(
            format!("coverage-reward landscape before round {}", round + 1),
            0.0,
            4.0,
        )
        .sample(80, |x, y| {
            mmph_core::coverage_reward(inst, &mmph_geom::Point::new([x, y]), &residuals)
        });
        write(
            dir,
            &format!("fig3_landscape_round{}.svg", round + 1),
            &hm.render().expect("landscape renders"),
        )?;
        residuals.apply(inst, center);
    }
    Ok(())
}

/// Renders Table I: per-round coverage reward of greedy 2/3/4 plus the
/// total, in both Markdown and CSV.
pub fn render_table1(dir: &Path, run: &ExampleRun) -> std::io::Result<String> {
    let rounds = run.solutions[0].round_gains.len();
    let mut header = vec!["Coverage reward".to_owned()];
    header.extend((1..=rounds).map(|j| j.to_string()));
    header.push("Total".to_owned());
    let mut table = Table::new(header);
    for sol in &run.solutions {
        let mut row = vec![display_name(&sol.solver).to_owned()];
        row.extend(sol.round_gains.iter().map(|g| fmt_cell(*g)));
        row.push(fmt_cell(sol.total_reward));
        table.push_row(row).expect("consistent width");
    }
    let md = table.render(TableFormat::Markdown);
    write(dir, "table1.md", &md)?;
    write(dir, "table1.csv", &table.render(TableFormat::Csv))?;
    Ok(md)
}

fn display_name(solver: &str) -> &str {
    match solver {
        "greedy1" => "Greedy 1",
        "greedy2" => "Greedy 2",
        "greedy3" => "Greedy 3",
        "greedy4" => "Greedy 4",
        other => other,
    }
}

// ---------------------------------------------------------------------
// Figs. 4–7
// ---------------------------------------------------------------------

/// Renders one ratio-sweep figure (Fig. 4, 5, 6 or 7): one SVG panel
/// per `(n, k)` with the ratio-vs-radius curves of every algorithm and
/// the two theoretical bounds, plus a combined CSV.
pub fn render_ratio_figure(
    dir: &Path,
    fig_name: &str,
    title: &str,
    rows: &[RatioRow],
) -> std::io::Result<()> {
    // Group rows by (n, k); each group is one panel over r.
    let mut keys: Vec<(usize, usize)> = rows.iter().map(|r| (r.n, r.k)).collect();
    keys.sort_unstable();
    keys.dedup();
    for (n, k) in keys {
        let group: Vec<&RatioRow> = rows.iter().filter(|row| row.n == n && row.k == k).collect();
        let mut chart = LineChart::new(
            format!("{title} — n = {n}, k = {k}"),
            "radius r",
            "approximation ratio",
        )
        .with_y_domain(0.0, 1.2);
        let series_of = |label: &str, marker: Marker, f: &dyn Fn(&RatioRow) -> f64| -> Series {
            Series::new(label, group.iter().map(|row| (row.r, f(row))).collect())
                .with_marker(marker)
        };
        if group.iter().any(|r| r.ratio1.count > 0) {
            chart.push(series_of("ratio 1 (round-based)", Marker::Dot, &|r| {
                r.ratio1.mean
            }));
        }
        chart.push(series_of("ratio 2 (local)", Marker::Circle, &|r| {
            r.ratio2.mean
        }));
        chart.push(series_of("ratio 3 (simple)", Marker::Square, &|r| {
            r.ratio3.mean
        }));
        chart.push(series_of("ratio 4 (complex)", Marker::Diamond, &|r| {
            r.ratio4.mean
        }));
        chart.push(series_of("approx. 1", Marker::Plus, &|r| r.approx1).with_dashed(true));
        chart.push(series_of("approx. 2", Marker::Cross, &|r| r.approx2).with_dashed(true));
        let svg = chart.render().expect("sweep rows are non-empty");
        write(dir, &format!("{fig_name}_n{n}_k{k}.svg"), &svg)?;
    }
    write(dir, &format!("{fig_name}.csv"), &ratio_csv(rows))?;
    write(dir, &format!("{fig_name}.md"), &ratio_markdown(title, rows))?;
    Ok(())
}

/// CSV dump of ratio rows (one line per configuration).
pub fn ratio_csv(rows: &[RatioRow]) -> String {
    let mut table = Table::new([
        "n", "k", "r", "norm", "weights", "trials", "ratio1", "ratio2", "ratio3", "ratio4",
        "ci95_2", "ci95_3", "ci95_4", "approx1", "approx2",
    ]);
    for row in rows {
        table
            .push_row([
                row.n.to_string(),
                row.k.to_string(),
                row.r.to_string(),
                row.norm.name(),
                row.weights.clone(),
                row.trials.to_string(),
                fmt_cell(row.ratio1.mean),
                fmt_cell(row.ratio2.mean),
                fmt_cell(row.ratio3.mean),
                fmt_cell(row.ratio4.mean),
                fmt_cell(row.ratio2.ci95()),
                fmt_cell(row.ratio3.ci95()),
                fmt_cell(row.ratio4.ci95()),
                fmt_cell(row.approx1),
                fmt_cell(row.approx2),
            ])
            .expect("consistent width");
    }
    table.render(TableFormat::Csv)
}

/// Markdown table of ratio rows.
pub fn ratio_markdown(title: &str, rows: &[RatioRow]) -> String {
    let mut table = Table::new([
        "n", "k", "r", "ratio 1", "ratio 2", "ratio 3", "ratio 4", "approx1", "approx2",
    ]);
    for row in rows {
        table
            .push_row([
                row.n.to_string(),
                row.k.to_string(),
                row.r.to_string(),
                fmt_percent(row.ratio1.mean),
                fmt_percent(row.ratio2.mean),
                fmt_percent(row.ratio3.mean),
                fmt_percent(row.ratio4.mean),
                fmt_percent(row.approx1),
                fmt_percent(row.approx2),
            ])
            .expect("consistent width");
    }
    format!("### {title}\n\n{}", table.render(TableFormat::Markdown))
}

// ---------------------------------------------------------------------
// Figs. 8–9
// ---------------------------------------------------------------------

/// Renders one reward-sweep figure (Fig. 8 or 9): per `(n, k)` panel of
/// total reward vs radius, plus CSV and Markdown.
pub fn render_reward_figure(
    dir: &Path,
    fig_name: &str,
    title: &str,
    rows: &[RewardRow],
) -> std::io::Result<()> {
    let mut keys: Vec<(usize, usize)> = rows.iter().map(|r| (r.n, r.k)).collect();
    keys.sort_unstable();
    keys.dedup();
    for (n, k) in keys {
        let group: Vec<&RewardRow> = rows.iter().filter(|row| row.n == n && row.k == k).collect();
        let mut chart = LineChart::new(
            format!("{title} — n = {n}, k = {k}"),
            "radius r",
            "total reward",
        );
        if group.iter().any(|r| r.reward1.count > 0) {
            chart.push(
                Series::new(
                    "greedy 1 (round-based)",
                    group.iter().map(|r| (r.r, r.reward1.mean)).collect(),
                )
                .with_marker(Marker::Dot),
            );
        }
        chart.push(
            Series::new(
                "greedy 2 (local)",
                group.iter().map(|r| (r.r, r.reward2.mean)).collect(),
            )
            .with_marker(Marker::Circle),
        );
        chart.push(
            Series::new(
                "greedy 3 (simple)",
                group.iter().map(|r| (r.r, r.reward3.mean)).collect(),
            )
            .with_marker(Marker::Square),
        );
        chart.push(
            Series::new(
                "greedy 4 (complex)",
                group.iter().map(|r| (r.r, r.reward4.mean)).collect(),
            )
            .with_marker(Marker::Diamond),
        );
        let svg = chart.render().expect("sweep rows are non-empty");
        write(dir, &format!("{fig_name}_n{n}_k{k}.svg"), &svg)?;
    }
    let mut table = Table::new([
        "n",
        "k",
        "r",
        "trials",
        "greedy1",
        "greedy2",
        "greedy3",
        "greedy4",
        "max_reward",
    ]);
    for row in rows {
        table
            .push_row([
                row.n.to_string(),
                row.k.to_string(),
                row.r.to_string(),
                row.trials.to_string(),
                fmt_cell(row.reward1.mean),
                fmt_cell(row.reward2.mean),
                fmt_cell(row.reward3.mean),
                fmt_cell(row.reward4.mean),
                fmt_cell(row.max_reward.mean),
            ])
            .expect("consistent width");
    }
    write(
        dir,
        &format!("{fig_name}.csv"),
        &table.render(TableFormat::Csv),
    )?;
    write(
        dir,
        &format!("{fig_name}.md"),
        &format!("### {title}\n\n{}", table.render(TableFormat::Markdown)),
    )?;
    Ok(())
}

// ---------------------------------------------------------------------
// Baselines extension
// ---------------------------------------------------------------------

/// Renders the clustering-baseline comparison table (extension).
pub fn render_baselines(dir: &Path, rows: &[BaselineRow]) -> std::io::Result<String> {
    let mut table = Table::new([
        "n",
        "k",
        "r",
        "greedy2",
        "local-search",
        "kcenter",
        "kmeans",
    ]);
    for row in rows {
        table
            .push_row([
                row.n.to_string(),
                row.k.to_string(),
                row.r.to_string(),
                fmt_percent(row.greedy2.mean),
                fmt_percent(row.local_search.mean),
                fmt_percent(row.kcenter.mean),
                fmt_percent(row.kmeans.mean),
            ])
            .expect("consistent width");
    }
    let md = format!(
        "### Baselines (extension) — ratio to the exhaustive optimum, 2-norm, different weights\n\n{}",
        table.render(TableFormat::Markdown)
    );
    write(dir, "baselines.md", &md)?;
    write(dir, "baselines.csv", &table.render(TableFormat::Csv))?;
    Ok(md)
}

// ---------------------------------------------------------------------
// Summary (§VI-B)
// ---------------------------------------------------------------------

/// Renders the §VI-B aggregate comparison: our measured grand means
/// next to the paper's quoted numbers.
pub fn render_summary(
    dir: &Path,
    agg_2d: &Aggregate,
    agg_3d: &Aggregate3d,
) -> std::io::Result<String> {
    let mut md = String::from("## §VI-B aggregate comparison\n\n");
    md.push_str("### 2-D mean approximation ratios (Figs. 4–7)\n\n");
    let mut t = Table::new(["algorithm", "measured mean ratio"]);
    t.push_row([
        "greedy 1 (round-based, grid oracle)",
        &fmt_percent(agg_2d.mean1),
    ])
    .expect("2 cols");
    t.push_row(["greedy 2 (local)", &fmt_percent(agg_2d.mean2)])
        .expect("2 cols");
    t.push_row(["greedy 3 (simple)", &fmt_percent(agg_2d.mean3)])
        .expect("2 cols");
    t.push_row(["greedy 4 (complex)", &fmt_percent(agg_2d.mean4)])
        .expect("2 cols");
    md.push_str(&t.render(TableFormat::Markdown));
    md.push_str(
        "\nPaper (§VI-B, labels as printed): \"greedy 3 ≈ 84.22% (best), \
         greedy 1 ≈ 68.87%, greedy 2 ≈ 55.97%\" for 2-norm; \
         \"greedy 3 ≈ 82.76%, greedy 1 ≈ 68.77%, greedy 2 ≈ 57%\" for 1-norm.\n\n",
    );
    md.push_str("### 3-D mean rewards relative to the best algorithm (Figs. 8–9)\n\n");
    let mut t = Table::new(["algorithm", "relative reward"]);
    t.push_row([
        "greedy 1 (round-based, grid oracle)",
        &fmt_percent(agg_3d.rel1),
    ])
    .expect("2 cols");
    t.push_row(["greedy 2 (local)", &fmt_percent(agg_3d.rel2)])
        .expect("2 cols");
    t.push_row(["greedy 3 (simple)", &fmt_percent(agg_3d.rel3)])
        .expect("2 cols");
    t.push_row(["greedy 4 (complex)", &fmt_percent(agg_3d.rel4)])
        .expect("2 cols");
    md.push_str(&t.render(TableFormat::Markdown));
    md.push_str(
        "\nPaper (§VI-B): \"using greedy 3 will get the highest reward; greedy 1 gets \
         about 61.04% of the reward that greedy 3 gets, and greedy 2 gets about 31.14%\".\n",
    );
    write(dir, "summary.md", &md)?;
    Ok(md)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{self, SweepOptions};
    use mmph_geom::Norm;
    use mmph_sim::gen::WeightScheme;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mmph-render-tests").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fig2_renders_two_panels() {
        let dir = tmp_dir("fig2");
        render_fig2(&dir, &experiments::fig2()).unwrap();
        assert!(dir.join("fig2_bounds_n10.svg").exists());
        assert!(dir.join("fig2_bounds_n40.svg").exists());
        let csv = std::fs::read_to_string(dir.join("fig2_bounds_n10.csv")).unwrap();
        assert!(csv.starts_with("k,approx1,approx2"));
        assert_eq!(csv.lines().count(), 11);
    }

    #[test]
    fn fig3_and_table1_render() {
        let dir = tmp_dir("fig3");
        let run = experiments::fig3_table1(3);
        render_fig3(&dir, &run).unwrap();
        // 3 algorithms × 4 rounds = 12 panels.
        for solver in ["greedy2", "greedy3", "greedy4"] {
            for round in 1..=4 {
                assert!(
                    dir.join(format!("fig3_{solver}_round{round}.svg")).exists(),
                    "{solver} round {round}"
                );
            }
        }
        let md = render_table1(&dir, &run).unwrap();
        assert!(md.contains("Greedy 2"));
        assert!(md.contains("Total"));
        assert!(dir.join("table1.csv").exists());
    }

    #[test]
    fn ratio_figure_renders() {
        let dir = tmp_dir("ratio");
        let opts = SweepOptions {
            trials: 3,
            include_greedy1: false,
        };
        let rows = vec![
            experiments::ratio_config(10, 2, 1.0, Norm::L2, WeightScheme::Same, opts, 1),
            experiments::ratio_config(10, 2, 1.5, Norm::L2, WeightScheme::Same, opts, 2),
        ];
        render_ratio_figure(&dir, "figX", "test sweep", &rows).unwrap();
        assert!(dir.join("figX_n10_k2.svg").exists());
        let csv = std::fs::read_to_string(dir.join("figX.csv")).unwrap();
        assert_eq!(csv.lines().count(), 3);
        let md = std::fs::read_to_string(dir.join("figX.md")).unwrap();
        assert!(md.contains("### test sweep"));
    }

    #[test]
    fn reward_figure_renders() {
        let dir = tmp_dir("reward");
        let opts = SweepOptions {
            trials: 2,
            include_greedy1: false,
        };
        let rows = vec![
            experiments::reward_config_3d(40, 2, 1.0, WeightScheme::Same, opts, 1),
            experiments::reward_config_3d(40, 2, 1.5, WeightScheme::Same, opts, 2),
        ];
        render_reward_figure(&dir, "figY", "3d sweep", &rows).unwrap();
        assert!(dir.join("figY_n40_k2.svg").exists());
        assert!(dir.join("figY.csv").exists());
    }

    #[test]
    fn baselines_render() {
        let dir = tmp_dir("baselines");
        let rows = vec![crate::experiments::baseline_config(
            10,
            2,
            1.0,
            mmph_sim::gen::WeightScheme::Same,
            2,
            1,
        )];
        let md = render_baselines(&dir, &rows).unwrap();
        assert!(md.contains("kcenter"));
        assert!(dir.join("baselines.csv").exists());
    }

    #[test]
    fn summary_renders() {
        let dir = tmp_dir("summary");
        let agg2 = Aggregate {
            mean1: 0.69,
            mean2: 0.56,
            mean3: 0.84,
            mean4: 0.80,
        };
        let agg3 = Aggregate3d {
            rel1: 0.6,
            rel2: 0.3,
            rel3: 1.0,
            rel4: 0.9,
        };
        let md = render_summary(&dir, &agg2, &agg3).unwrap();
        assert!(md.contains("84.00%"));
        assert!(md.contains("Paper"));
        assert!(dir.join("summary.md").exists());
    }
}
