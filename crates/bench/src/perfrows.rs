//! Shared plumbing for the persisted performance baselines
//! (`perfsuite` → `BENCH_PR4.json`, `throughput` → `BENCH_PR5.json`):
//! instance construction pinned to a constant expected neighbor
//! degree, the timed single-solve runner, and the serialized row
//! shape both binaries append to their reports.

use std::f64::consts::PI;
use std::time::Instant;

use mmph_core::{
    solve_sharded, EngineKind, GainOracle, Instance, OracleStrategy, Residuals, ShardConfig,
};
use mmph_sim::gen::{PointDistribution, SpaceSpec, WeightScheme};
use mmph_sim::rng::SeedSeq;
use serde::Serialize;

/// Default root seed shared by the perf binaries.
pub const DEFAULT_SEED: u64 = 0x5EED_BA5E;
/// Target expected neighbor count within radius, held constant across n.
pub const TARGET_DEGREE: f64 = 48.0;
/// Dense scan is O(n) per eval; above this n it is skipped (recorded,
/// not silently dropped).
pub const SCAN_MAX_N: usize = 10_000;

/// One engine × strategy measurement of a full k-round greedy solve.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Instance size.
    pub n: usize,
    /// Rounds.
    pub k: usize,
    /// Oracle strategy name (`seq`, `lazy`, ...).
    pub strategy: String,
    /// Engine column name (`scan`, `kd`, `sparse`, `sparse+dirty`).
    pub engine: String,
    /// True when the combination was recorded but not run.
    pub skipped: bool,
    /// Wall time of oracle build + k rounds.
    pub wall_ms: f64,
    /// Charged candidate evaluations.
    pub evals: u64,
    /// Evaluations skipped by the dirty-region test.
    pub evals_skipped: u64,
    /// CSR build time (sparse engines only).
    pub csr_build_ms: f64,
    /// CSR footprint in bytes (sparse engines only).
    pub csr_bytes: usize,
    /// Total coverage reward.
    pub reward: f64,
    /// Selected candidate indices.
    pub selection: Vec<usize>,
}

impl Row {
    /// A placeholder row for a combination that was deliberately not
    /// run (e.g. dense scan above [`SCAN_MAX_N`]).
    pub fn skipped(n: usize, k: usize, strategy: &str, engine: &str) -> Self {
        Row {
            n,
            k,
            strategy: strategy.to_owned(),
            engine: engine.to_owned(),
            skipped: true,
            wall_ms: 0.0,
            evals: 0,
            evals_skipped: 0,
            csr_build_ms: 0.0,
            csr_bytes: 0,
            reward: 0.0,
            selection: Vec::new(),
        }
    }
}

/// Host concurrency snapshot plus one measured serial-vs-parallel
/// shard-solve ratio, persisted alongside every `BENCH_*.json` so a
/// reader can tell whether a parallel speedup gate was meaningful on
/// the recording host (a 1-core container cannot speed anything up).
#[derive(Debug, Clone, Serialize)]
pub struct HostParallelism {
    /// `std::thread::available_parallelism()` (0 when unknown).
    pub available_parallelism: usize,
    /// Threads the rayon pool actually runs.
    pub rayon_threads: usize,
    /// Instance size of the measurement solve.
    pub probe_n: usize,
    /// Shard count of the measurement solve.
    pub probe_shards: usize,
    /// Wall time of `solve_sharded` with `parallel: false`.
    pub shard_serial_ms: f64,
    /// Wall time of `solve_sharded` with `parallel: true`.
    pub shard_parallel_ms: f64,
    /// serial / parallel — ~1.0 on a 1-core host by construction.
    pub shard_speedup: f64,
}

/// Measures [`HostParallelism`] with a degree-pinned instance of
/// `probe_n` points split `probe_shards` ways. Both sweeps produce
/// bit-identical selections (pinned by the core proptests), so the
/// ratio isolates scheduling alone.
pub fn measure_host_parallelism(probe_n: usize, probe_shards: usize, seed: u64) -> HostParallelism {
    let inst = build_instance(probe_n, 8, seed);
    let time_arm = |parallel: bool| {
        let cfg = ShardConfig {
            shards: probe_shards,
            parallel,
            ..ShardConfig::default()
        };
        let t0 = Instant::now();
        let report = solve_sharded(&inst, &cfg).expect("probe instance is valid");
        std::hint::black_box(report.objective);
        t0.elapsed().as_secs_f64() * 1e3
    };
    // Untimed warmup so the serial arm doesn't eat the cold-cache /
    // allocator cost and fake a "speedup" on a 1-core host.
    let _ = time_arm(false);
    let shard_serial_ms = time_arm(false);
    let shard_parallel_ms = time_arm(true);
    HostParallelism {
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(0),
        rayon_threads: rayon::current_num_threads(),
        probe_n,
        probe_shards,
        shard_serial_ms,
        shard_parallel_ms,
        shard_speedup: shard_serial_ms / shard_parallel_ms.max(1e-9),
    }
}

/// Radius keeping the expected within-radius degree at
/// [`TARGET_DEGREE`] for n uniform points in the paper's `[0, 4]^2`
/// space.
pub fn radius_for(n: usize) -> f64 {
    SpaceSpec::PAPER.extent() * (TARGET_DEGREE / (PI * n as f64)).sqrt()
}

/// Uniform paper-space instance with the degree-pinned radius,
/// deterministically derived from `(seed, n)`.
pub fn build_instance(n: usize, k: usize, seed: u64) -> Instance<2> {
    let seeds = SeedSeq::new(seed).child(n as u64);
    let points = PointDistribution::Uniform
        .sample::<2>(n, SpaceSpec::PAPER, seeds)
        .expect("uniform sampling cannot fail");
    let weights = WeightScheme::PAPER_WEIGHTED
        .sample(n, seeds)
        .expect("weight sampling cannot fail");
    Instance::new(points, weights, radius_for(n), k, mmph_geom::Norm::L2)
        .expect("generated instance is valid")
}

/// One timed greedy run: oracle construction (including any index /
/// CSR build) plus k rounds of argmax-and-commit. Returns a filled
/// [`Row`].
pub fn run_one(
    inst: &Instance<2>,
    sname: &str,
    strategy: OracleStrategy,
    ename: &str,
    kind: EngineKind,
    dirty: bool,
) -> Row {
    let t0 = Instant::now();
    let oracle = GainOracle::with_engine(inst, kind, strategy).with_dirty_region(dirty);
    let mut residuals = Residuals::new(inst.n());
    let mut picks = Vec::with_capacity(inst.k());
    let mut reward = 0.0;
    for _ in 0..inst.k() {
        let best = oracle.best_candidate(&residuals);
        picks.push(best.index);
        reward += residuals.apply(inst, inst.point(best.index));
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (build_ms, bytes) = match oracle.sparse_stats() {
        Some(s) => (s.build_nanos as f64 / 1e6, s.bytes),
        None => (0.0, 0),
    };
    Row {
        n: inst.n(),
        k: inst.k(),
        strategy: sname.to_owned(),
        engine: ename.to_owned(),
        skipped: false,
        wall_ms,
        evals: oracle.evals(),
        evals_skipped: oracle.dirty_skips(),
        csr_build_ms: build_ms,
        csr_bytes: bytes,
        reward,
        selection: picks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_parallelism_probe_reports_sane_numbers() {
        let host = measure_host_parallelism(400, 4, DEFAULT_SEED);
        assert!(host.rayon_threads >= 1);
        assert!(host.shard_serial_ms > 0.0 && host.shard_parallel_ms > 0.0);
        assert!(host.shard_speedup.is_finite() && host.shard_speedup > 0.0);
        assert_eq!(host.probe_n, 400);
        assert_eq!(host.probe_shards, 4);
    }

    #[test]
    fn radius_tracks_target_degree() {
        // Expected degree = n * pi r^2 / extent^2 must equal the target.
        for n in [1_000usize, 100_000] {
            let r = radius_for(n);
            let degree = n as f64 * PI * r * r / SpaceSpec::PAPER.extent().powi(2);
            assert!((degree - TARGET_DEGREE).abs() < 1e-9);
        }
    }

    #[test]
    fn build_is_deterministic_and_run_consistent() {
        let a = build_instance(500, 4, DEFAULT_SEED);
        let b = build_instance(500, 4, DEFAULT_SEED);
        assert_eq!(a, b);
        let scan = run_one(
            &a,
            "seq",
            OracleStrategy::Seq,
            "scan",
            EngineKind::Scan,
            false,
        );
        let sparse = run_one(
            &a,
            "lazy",
            OracleStrategy::Lazy,
            "sparse",
            EngineKind::Sparse,
            false,
        );
        assert_eq!(scan.selection, sparse.selection);
        assert_eq!(scan.reward.to_bits(), sparse.reward.to_bits());
        assert!(sparse.evals <= scan.evals);
        assert!(sparse.csr_bytes > 0);
        assert!(!scan.skipped);
        assert!(Row::skipped(10, 2, "seq", "scan").skipped);
    }
}
