//! # mmph-bench — reproduction harness
//!
//! Experiment drivers and renderers that regenerate **every table and
//! figure** of the paper's evaluation (§VI), plus the ablations listed
//! in DESIGN.md §3. The `repro` binary orchestrates everything:
//!
//! ```text
//! cargo run --release -p mmph-bench --bin repro -- all --trials 100 --out results
//! ```
//!
//! | artifact | paper | driver |
//! |---|---|---|
//! | `fig2_bounds.{svg,csv}` | Fig. 2 | [`experiments::fig2`] |
//! | `fig3_round*.svg` | Fig. 3 | [`experiments::fig3_table1`] |
//! | `table1.{md,csv}` | Table I | [`experiments::fig3_table1`] |
//! | `fig4..fig7*.{svg,csv}` | Figs. 4–7 | [`experiments::ratio_sweep_2d`] |
//! | `fig8..fig9*.{svg,csv}` | Figs. 8–9 | [`experiments::reward_sweep_3d`] |
//! | `summary.md` | §VI-B aggregates | [`experiments::aggregate`] |
//!
//! The criterion benches under `benches/` time the same drivers at
//! reduced trial counts so performance regressions in any experiment
//! path are caught.

pub mod experiments;
pub mod perfrows;
pub mod render;
