//! Experiment drivers for every table and figure.

use mmph_core::bounds::{approx_local, approx_round_based};
use mmph_core::solvers::{
    ComplexGreedy, Exhaustive, KCenter, KMeans, LocalGreedy, LocalSearch, RoundBased, SimpleGreedy,
};
use mmph_core::{Instance, Solution, Solver};
use mmph_geom::Norm;
use mmph_sim::gen::WeightScheme;
use mmph_sim::metrics::Summary;
use mmph_sim::scenario::Scenario;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The root seed all experiments derive from, pinned so published
/// results are reproducible.
pub const ROOT_SEED: u64 = 20110913; // ICPP 2011, Taipei: Sept 13 2011

/// Human label for a weight scheme in file names and tables.
pub fn weights_label(w: WeightScheme) -> &'static str {
    match w {
        WeightScheme::Same => "same",
        WeightScheme::UniformInt { .. } => "diff",
        WeightScheme::Zipf { .. } => "zipf",
    }
}

// ---------------------------------------------------------------------
// Fig. 2 — theoretical bounds
// ---------------------------------------------------------------------

/// One Fig. 2 panel: `approx1` and `approx2` for `k = 1..=k_max` at
/// environment size `n`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Panel {
    /// Environment size (paper uses 10 and 40).
    pub n: usize,
    /// `(k, approx1, approx2)` rows.
    pub rows: Vec<(usize, f64, f64)>,
}

/// Regenerates Fig. 2's data for the paper's 10- and 40-node panels.
pub fn fig2() -> Vec<Fig2Panel> {
    [10usize, 40]
        .into_iter()
        .map(|n| Fig2Panel {
            n,
            rows: (1..=n)
                .map(|k| (k, approx_round_based(k), approx_local(n, k)))
                .collect(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 3 + Table I — the worked example
// ---------------------------------------------------------------------

/// The worked example: one pinned 40-node instance solved by greedy
/// 2/3/4 with full traces.
#[derive(Debug, Clone)]
pub struct ExampleRun {
    /// The pinned instance (paper: 40 nodes, 4×4 2-D space, 2-norm,
    /// weights 1..=5, k = 4, r = 1).
    pub instance: Instance<2>,
    /// Solutions in paper order: greedy 2, greedy 3, greedy 4.
    pub solutions: Vec<Solution<2>>,
}

/// Regenerates the Fig. 3 / Table I example. `seed` varies the drawn
/// instance; the paper's exact instance is unpublished, so any seed
/// gives an equivalent workload.
pub fn fig3_table1(seed: u64) -> ExampleRun {
    let scenario = Scenario::paper_2d(40, 4, 1.0, Norm::L2, WeightScheme::PAPER_WEIGHTED, seed);
    let instance = scenario.generate_2d().expect("valid paper scenario");
    let solutions = vec![
        LocalGreedy::new().solve(&instance).expect("greedy2"),
        SimpleGreedy::new().solve(&instance).expect("greedy3"),
        ComplexGreedy::new().solve(&instance).expect("greedy4"),
    ];
    ExampleRun {
        instance,
        solutions,
    }
}

// ---------------------------------------------------------------------
// Figs. 4–7 — 2-D approximation-ratio sweeps
// ---------------------------------------------------------------------

/// Which solvers a ratio sweep runs (greedy 1 is optional because its
/// grid oracle dominates the runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Number of random instances per configuration.
    pub trials: usize,
    /// Also run Algorithm 1 (round-based, grid oracle).
    pub include_greedy1: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            trials: 100,
            include_greedy1: true,
        }
    }
}

/// Mean approximation ratios for one `(n, k, r)` configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RatioRow {
    /// Number of points.
    pub n: usize,
    /// Number of centers.
    pub k: usize,
    /// Interest radius.
    pub r: f64,
    /// Norm used.
    pub norm: Norm,
    /// Weight scheme label ("same"/"diff").
    pub weights: String,
    /// Trials aggregated.
    pub trials: usize,
    /// Ratio of Algorithm 1 (grid oracle) to the exhaustive optimum.
    pub ratio1: Summary,
    /// Ratio of Algorithm 2 to the exhaustive optimum.
    pub ratio2: Summary,
    /// Ratio of Algorithm 3 to the exhaustive optimum.
    pub ratio3: Summary,
    /// Ratio of Algorithm 4 to the exhaustive optimum.
    pub ratio4: Summary,
    /// Theorem 1's bound `1 − (1 − 1/k)^k`.
    pub approx1: f64,
    /// Theorem 2's bound `1 − (1 − 1/n)^k`.
    pub approx2: f64,
}

/// Runs one configuration of the 2-D ratio sweep: `trials` random
/// instances, each solved by every algorithm and normalized by the
/// exhaustive point-candidate optimum.
pub fn ratio_config(
    n: usize,
    k: usize,
    r: f64,
    norm: Norm,
    weights: WeightScheme,
    opts: SweepOptions,
    seed_base: u64,
) -> RatioRow {
    let results: Vec<(f64, f64, f64, f64)> = (0..opts.trials as u64)
        .into_par_iter()
        .map(|trial| {
            let scenario = Scenario::paper_2d(n, k, r, norm, weights, seed_base ^ trial);
            let inst = scenario.generate_2d().expect("valid scenario");
            let opt = Exhaustive::new()
                .sequential()
                .solve(&inst)
                .expect("exhaustive within cap")
                .total_reward;
            let g1 = if opts.include_greedy1 {
                RoundBased::grid()
                    .solve(&inst)
                    .expect("greedy1")
                    .total_reward
            } else {
                0.0
            };
            let g2 = LocalGreedy::new()
                .solve(&inst)
                .expect("greedy2")
                .total_reward;
            let g3 = SimpleGreedy::new()
                .solve(&inst)
                .expect("greedy3")
                .total_reward;
            let g4 = ComplexGreedy::new()
                .solve(&inst)
                .expect("greedy4")
                .total_reward;
            // greedy 1 and 4 pick continuous centers, so they can exceed
            // the point-candidate optimum; ratios may exceed 1 slightly.
            (g1 / opt, g2 / opt, g3 / opt, g4 / opt)
        })
        .collect();
    let mut ratio1 = Summary::new();
    let mut ratio2 = Summary::new();
    let mut ratio3 = Summary::new();
    let mut ratio4 = Summary::new();
    for (a, b, c, d) in results {
        if opts.include_greedy1 {
            ratio1.push(a);
        }
        ratio2.push(b);
        ratio3.push(c);
        ratio4.push(d);
    }
    RatioRow {
        n,
        k,
        r,
        norm,
        weights: weights_label(weights).to_owned(),
        trials: opts.trials,
        ratio1,
        ratio2,
        ratio3,
        ratio4,
        approx1: approx_round_based(k),
        approx2: approx_local(n, k),
    }
}

/// The full Fig. 4/5/6/7 sweep for one norm and weight scheme:
/// `n ∈ {10, 40} × k ∈ {2, 4} × r ∈ {1, 1.5, 2}`.
pub fn ratio_sweep_2d(norm: Norm, weights: WeightScheme, opts: SweepOptions) -> Vec<RatioRow> {
    let mut rows = Vec::new();
    for &n in &[10usize, 40] {
        for &k in &[2usize, 4] {
            for &r in &[1.0f64, 1.5, 2.0] {
                // Seed derives from the configuration so that adding
                // configurations never perturbs existing ones.
                let seed_base = ROOT_SEED
                    ^ (n as u64) << 32
                    ^ (k as u64) << 16
                    ^ ((r * 10.0) as u64) << 8
                    ^ norm_tag(norm);
                rows.push(ratio_config(n, k, r, norm, weights, opts, seed_base));
            }
        }
    }
    rows
}

fn norm_tag(norm: Norm) -> u64 {
    match norm {
        Norm::L1 => 1,
        Norm::L2 => 2,
        Norm::LInf => 3,
        Norm::Lp(_) => 4,
    }
}

// ---------------------------------------------------------------------
// Figs. 8–9 — 3-D total-reward sweeps
// ---------------------------------------------------------------------

/// Mean total rewards for one 3-D `(n, k, r)` configuration (the paper
/// reports raw rewards here, not ratios — no exhaustive baseline at
/// n = 160).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RewardRow {
    /// Number of points.
    pub n: usize,
    /// Number of centers.
    pub k: usize,
    /// Interest radius.
    pub r: f64,
    /// Trials aggregated.
    pub trials: usize,
    /// Algorithm 1 (grid oracle) total reward.
    pub reward1: Summary,
    /// Algorithm 2 total reward.
    pub reward2: Summary,
    /// Algorithm 3 total reward.
    pub reward3: Summary,
    /// Algorithm 4 total reward.
    pub reward4: Summary,
    /// Mean total weight `Σ w_i` (the reward ceiling).
    pub max_reward: Summary,
}

/// Runs one 3-D reward configuration (1-norm, as in Figs. 8–9).
pub fn reward_config_3d(
    n: usize,
    k: usize,
    r: f64,
    weights: WeightScheme,
    opts: SweepOptions,
    seed_base: u64,
) -> RewardRow {
    let results: Vec<(f64, f64, f64, f64, f64)> = (0..opts.trials as u64)
        .into_par_iter()
        .map(|trial| {
            let scenario = Scenario::paper_3d(n, k, r, Norm::L1, weights, seed_base ^ trial);
            let inst = scenario.generate_3d().expect("valid scenario");
            let g1 = if opts.include_greedy1 {
                RoundBased::grid()
                    .solve(&inst)
                    .expect("greedy1")
                    .total_reward
            } else {
                0.0
            };
            let g2 = LocalGreedy::new()
                .solve(&inst)
                .expect("greedy2")
                .total_reward;
            let g3 = SimpleGreedy::new()
                .solve(&inst)
                .expect("greedy3")
                .total_reward;
            let g4 = ComplexGreedy::new()
                .solve(&inst)
                .expect("greedy4")
                .total_reward;
            (g1, g2, g3, g4, inst.total_weight())
        })
        .collect();
    let mut reward1 = Summary::new();
    let mut reward2 = Summary::new();
    let mut reward3 = Summary::new();
    let mut reward4 = Summary::new();
    let mut max_reward = Summary::new();
    for (a, b, c, d, m) in results {
        if opts.include_greedy1 {
            reward1.push(a);
        }
        reward2.push(b);
        reward3.push(c);
        reward4.push(d);
        max_reward.push(m);
    }
    RewardRow {
        n,
        k,
        r,
        trials: opts.trials,
        reward1,
        reward2,
        reward3,
        reward4,
        max_reward,
    }
}

/// The full Fig. 8/9 sweep for one weight scheme:
/// `n ∈ {40, 160} × k ∈ {2, 4} × r ∈ {1, 1.5, 2}`, 1-norm, 3-D.
pub fn reward_sweep_3d(weights: WeightScheme, opts: SweepOptions) -> Vec<RewardRow> {
    let mut rows = Vec::new();
    for &n in &[40usize, 160] {
        for &k in &[2usize, 4] {
            for &r in &[1.0f64, 1.5, 2.0] {
                let seed_base =
                    ROOT_SEED ^ 0x3d00 ^ (n as u64) << 32 ^ (k as u64) << 16 ^ ((r * 10.0) as u64);
                rows.push(reward_config_3d(n, k, r, weights, opts, seed_base));
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------
// Baselines extension (beyond the paper)
// ---------------------------------------------------------------------

/// Mean rewards of the extension solvers and clustering baselines
/// relative to the exhaustive optimum on one 2-D configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineRow {
    /// Number of points.
    pub n: usize,
    /// Number of centers.
    pub k: usize,
    /// Interest radius.
    pub r: f64,
    /// Trials aggregated.
    pub trials: usize,
    /// Algorithm 2 (reference greedy).
    pub greedy2: Summary,
    /// Greedy 2 + swap local search.
    pub local_search: Summary,
    /// Gonzalez k-center baseline.
    pub kcenter: Summary,
    /// Weighted Lloyd k-means baseline.
    pub kmeans: Summary,
}

/// Runs the baseline comparison for one configuration (L2 only — the
/// k-means baseline requires Euclidean centroids).
pub fn baseline_config(
    n: usize,
    k: usize,
    r: f64,
    weights: WeightScheme,
    trials: usize,
    seed_base: u64,
) -> BaselineRow {
    let results: Vec<(f64, f64, f64, f64)> = (0..trials as u64)
        .into_par_iter()
        .map(|trial| {
            let scenario = Scenario::paper_2d(n, k, r, Norm::L2, weights, seed_base ^ trial);
            let inst = scenario.generate_2d().expect("valid scenario");
            let opt = Exhaustive::new()
                .sequential()
                .solve(&inst)
                .expect("exhaustive")
                .total_reward;
            let g2 = LocalGreedy::new()
                .solve(&inst)
                .expect("greedy2")
                .total_reward;
            let ls = LocalSearch::new()
                .solve(&inst)
                .expect("local search")
                .total_reward;
            let kc = KCenter::new().solve(&inst).expect("kcenter").total_reward;
            let km = KMeans::new().solve(&inst).expect("kmeans").total_reward;
            (g2 / opt, ls / opt, kc / opt, km / opt)
        })
        .collect();
    let mut greedy2 = Summary::new();
    let mut local_search = Summary::new();
    let mut kcenter = Summary::new();
    let mut kmeans = Summary::new();
    for (a, b, c, d) in results {
        greedy2.push(a);
        local_search.push(b);
        kcenter.push(c);
        kmeans.push(d);
    }
    BaselineRow {
        n,
        k,
        r,
        trials,
        greedy2,
        local_search,
        kcenter,
        kmeans,
    }
}

/// Baseline sweep over the paper's 2-D configurations (weighted, L2).
pub fn baseline_sweep(weights: WeightScheme, trials: usize) -> Vec<BaselineRow> {
    let mut rows = Vec::new();
    for &n in &[10usize, 40] {
        for &k in &[2usize, 4] {
            for &r in &[1.0f64, 1.5, 2.0] {
                let seed_base =
                    ROOT_SEED ^ 0xba5e ^ (n as u64) << 32 ^ (k as u64) << 16 ^ ((r * 10.0) as u64);
                rows.push(baseline_config(n, k, r, weights, trials, seed_base));
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------
// §VI-B aggregates
// ---------------------------------------------------------------------

/// Overall mean ratios across a set of sweep rows, the numbers §VI-B
/// quotes ("greedy 3 is about 84.22%...").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Aggregate {
    /// Mean ratio of Algorithm 1 across all rows.
    pub mean1: f64,
    /// Mean ratio of Algorithm 2.
    pub mean2: f64,
    /// Mean ratio of Algorithm 3.
    pub mean3: f64,
    /// Mean ratio of Algorithm 4.
    pub mean4: f64,
}

/// Aggregates ratio rows into per-algorithm grand means.
pub fn aggregate(rows: &[RatioRow]) -> Aggregate {
    let n = rows.len().max(1) as f64;
    Aggregate {
        mean1: rows.iter().map(|r| r.ratio1.mean).sum::<f64>() / n,
        mean2: rows.iter().map(|r| r.ratio2.mean).sum::<f64>() / n,
        mean3: rows.iter().map(|r| r.ratio3.mean).sum::<f64>() / n,
        mean4: rows.iter().map(|r| r.ratio4.mean).sum::<f64>() / n,
    }
}

/// 3-D aggregate: each algorithm's mean reward as a fraction of greedy
/// 3's (the paper reports "greedy 1 gets about 61.04% of the reward that
/// greedy 3 gets, and greedy 2 gets about 31.14%" — with its usual label
/// confusion; see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Aggregate3d {
    /// Mean reward of Algorithm 1 relative to the best algorithm.
    pub rel1: f64,
    /// Algorithm 2 relative reward.
    pub rel2: f64,
    /// Algorithm 3 relative reward.
    pub rel3: f64,
    /// Algorithm 4 relative reward.
    pub rel4: f64,
}

/// Aggregates 3-D reward rows relative to the strongest algorithm.
pub fn aggregate_3d(rows: &[RewardRow]) -> Aggregate3d {
    let n = rows.len().max(1) as f64;
    let m1 = rows.iter().map(|r| r.reward1.mean).sum::<f64>() / n;
    let m2 = rows.iter().map(|r| r.reward2.mean).sum::<f64>() / n;
    let m3 = rows.iter().map(|r| r.reward3.mean).sum::<f64>() / n;
    let m4 = rows.iter().map(|r| r.reward4.mean).sum::<f64>() / n;
    let best = m1.max(m2).max(m3).max(m4).max(1e-12);
    Aggregate3d {
        rel1: m1 / best,
        rel2: m2 / best,
        rel3: m3 / best,
        rel4: m4 / best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts() -> SweepOptions {
        SweepOptions {
            trials: 5,
            include_greedy1: false,
        }
    }

    #[test]
    fn fig2_panels_match_paper_axes() {
        let panels = fig2();
        assert_eq!(panels.len(), 2);
        assert_eq!(panels[0].n, 10);
        assert_eq!(panels[0].rows.len(), 10);
        assert_eq!(panels[1].n, 40);
        assert_eq!(panels[1].rows.len(), 40);
        // k = 1: both bounds are 1.0 (single optimal round).
        let (k, a1, a2) = panels[0].rows[0];
        assert_eq!(k, 1);
        assert!((a1 - 1.0).abs() < 1e-12);
        assert!((a2 - 0.1).abs() < 1e-12); // 1 - (1 - 1/10)^1
    }

    #[test]
    fn example_run_shape() {
        let run = fig3_table1(7);
        assert_eq!(run.instance.n(), 40);
        assert_eq!(run.instance.k(), 4);
        assert_eq!(run.solutions.len(), 3);
        for sol in &run.solutions {
            assert_eq!(sol.centers.len(), 4);
            assert_eq!(sol.round_gains.len(), 4);
            assert!(sol.verify_consistency(&run.instance));
        }
        assert_eq!(run.solutions[0].solver, "greedy2");
        assert_eq!(run.solutions[1].solver, "greedy3");
        assert_eq!(run.solutions[2].solver, "greedy4");
    }

    #[test]
    fn ratio_config_produces_sane_ratios() {
        let row = ratio_config(10, 2, 1.0, Norm::L2, WeightScheme::Same, small_opts(), 1);
        assert_eq!(row.ratio2.count, 5);
        // Point-candidate greedies cannot exceed the point exhaustive.
        assert!(row.ratio2.max <= 1.0 + 1e-9);
        assert!(row.ratio3.max <= 1.0 + 1e-9);
        // All greedy ratios must clear Theorem 2's bound.
        assert!(row.ratio2.min >= row.approx2 - 1e-9);
        assert!(row.ratio3.min >= row.approx2 - 1e-9);
        // greedy 4 may exceed 1 (continuous centers) but not wildly.
        assert!(row.ratio4.min > 0.0 && row.ratio4.max < 1.5);
    }

    #[test]
    fn ratio_config_deterministic() {
        let a = ratio_config(10, 2, 1.5, Norm::L1, WeightScheme::Same, small_opts(), 9);
        let b = ratio_config(10, 2, 1.5, Norm::L1, WeightScheme::Same, small_opts(), 9);
        assert_eq!(a.ratio2.mean, b.ratio2.mean);
        assert_eq!(a.ratio4.mean, b.ratio4.mean);
    }

    #[test]
    fn reward_config_3d_ordering_sanity() {
        let row = reward_config_3d(40, 2, 1.5, WeightScheme::Same, small_opts(), 2);
        // Rewards are positive and below the ceiling.
        for s in [&row.reward2, &row.reward3, &row.reward4] {
            assert!(s.mean > 0.0);
            assert!(s.max <= row.max_reward.max + 1e-9);
        }
    }

    #[test]
    fn baseline_config_sane() {
        let row = baseline_config(10, 2, 1.5, WeightScheme::Same, 4, 3);
        assert_eq!(row.greedy2.count, 4);
        // Point-candidate methods cannot exceed the exhaustive optimum.
        for s in [&row.greedy2, &row.local_search, &row.kcenter, &row.kmeans] {
            assert!(s.max <= 1.0 + 1e-9, "{s:?}");
            assert!(s.min > 0.0);
        }
        // Local search dominates its greedy seed by construction.
        assert!(row.local_search.mean >= row.greedy2.mean - 1e-12);
    }

    #[test]
    fn aggregate_means() {
        let rows = vec![
            ratio_config(10, 2, 1.0, Norm::L2, WeightScheme::Same, small_opts(), 3),
            ratio_config(10, 2, 2.0, Norm::L2, WeightScheme::Same, small_opts(), 4),
        ];
        let agg = aggregate(&rows);
        assert!(agg.mean2 > 0.0 && agg.mean2 <= 1.0 + 1e-9);
        assert!((agg.mean2 - (rows[0].ratio2.mean + rows[1].ratio2.mean) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_3d_relative_to_best() {
        let rows = vec![reward_config_3d(
            40,
            2,
            1.5,
            WeightScheme::Same,
            small_opts(),
            5,
        )];
        let agg = aggregate_3d(&rows);
        let best = agg.rel2.max(agg.rel3).max(agg.rel4);
        assert!((best - 1.0).abs() < 1e-12);
    }
}
