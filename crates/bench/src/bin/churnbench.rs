//! `churnbench` — the persisted incremental re-solve baseline behind
//! `BENCH_PR9.json`.
//!
//! ```text
//! churnbench [--quick] [--out PATH] [--seed S] [--steps N] [--fraction F]
//! ```
//!
//! For each instance size the suite covers (n = 10⁴ and 10⁵; plus the
//! ROADMAP's n = 10⁶ in full mode), builds the degree-pinned uniform
//! instance once, then drives `--steps` rounds of seeded churn
//! ([`ChurnPlan`], default 1% of n per round) through an
//! [`IncrementalInstance`]. Each round is measured twice:
//!
//! - **warm** — `apply_churn` (in-place CSR delta patching) followed
//!   by `resolve` (previous centers + swap polish), i.e. the whole
//!   re-solve-after-churn hot path;
//! - **cold** — the PR5 baseline on the identical mutated point set:
//!   full CSR rebuild plus a dirty-CELF solve (lazy strategy, sparse
//!   engine, dirty-region pruning — the 6.3 s row of
//!   `BENCH_PR5.json` at n = 10⁶).
//!
//! In-binary gates (any failure exits non-zero so CI can run this
//! directly in the `churn-smoke` job):
//!
//! - every round's warm resolve actually took the warm path;
//! - warm objective ≥ cold objective every round — strict (to 1e-9)
//!   at the n = 10⁶ arm the ISSUE gate names, within 0.5% at the
//!   quick arms (a 1-swap local optimum can trail a from-scratch
//!   greedy by a hair when k is large relative to n);
//! - at n ≤ 10⁵ the patched CSR is verified equivalent to a cold
//!   rebuild after every round (`verify_against_rebuild`); at 10⁶
//!   that check is priced like a rebuild, so the proptests own it;
//! - the largest arm's median warm-vs-cold speedup clears its floor:
//!   ≥ 10× at n = 10⁶ (the ISSUE gate), ≥ 2× for the quick arms.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use mmph_bench::perfrows::{build_instance, run_one, DEFAULT_SEED};
use mmph_core::{EngineKind, IncrementalInstance, OracleStrategy, ResolveConfig, SolveScratch};
use mmph_sim::ChurnPlan;
use serde::Serialize;

#[derive(Debug, Clone)]
struct Args {
    quick: bool,
    out: PathBuf,
    seed: u64,
    steps: usize,
    fraction: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: PathBuf::from("BENCH_PR9.json"),
        seed: DEFAULT_SEED,
        steps: 3,
        fraction: 0.01,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed value: {v}"))?;
            }
            "--steps" => {
                let v = it.next().ok_or("--steps needs a value")?;
                args.steps = v.parse().map_err(|_| format!("bad --steps value: {v}"))?;
            }
            "--fraction" => {
                let v = it.next().ok_or("--fraction needs a value")?;
                args.fraction = v
                    .parse()
                    .map_err(|_| format!("bad --fraction value: {v}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: churnbench [--quick] [--out PATH] [--seed S] [--steps N] \
                     [--fraction F]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if args.steps == 0 || args.fraction <= 0.0 || args.fraction.is_nan() {
        return Err("--steps must be >= 1 and --fraction > 0".into());
    }
    Ok(args)
}

/// One churn round's warm-vs-cold measurement.
#[derive(Debug, Clone, Serialize)]
struct StepRow {
    step: usize,
    /// Deltas applied this round.
    deltas: usize,
    /// `apply_churn` + warm `resolve`, the full hot path.
    warm_ms: f64,
    /// The `apply_churn` share of `warm_ms` (in-place CSR patching).
    patch_ms: f64,
    /// The warm `resolve` share of `warm_ms` (seed + polish).
    resolve_ms: f64,
    /// Cold rebuild + dirty-CELF on the identical mutated instance.
    cold_ms: f64,
    speedup: f64,
    warm_reward: f64,
    cold_reward: f64,
    /// Must be true: 1% churn stays under the warm threshold.
    warm: bool,
    /// Swaps the polish accepted.
    swaps: usize,
    evals_warm: u64,
    evals_cold: u64,
    /// True when `verify_against_rebuild` ran (n ≤ 1e5) and passed.
    equivalence_checked: bool,
}

/// One instance size's arm.
#[derive(Debug, Clone, Serialize)]
struct Arm {
    n: usize,
    k: usize,
    fraction: f64,
    /// Initial CSR build inside `IncrementalInstance::new`.
    init_ms: f64,
    /// The seeding cold solve (first `resolve`, warm = false).
    seed_solve_ms: f64,
    seed_reward: f64,
    steps: Vec<StepRow>,
    median_speedup: f64,
    min_speedup: f64,
    /// Speedup floor this arm must clear (on the median).
    speedup_floor: f64,
    /// Set when this arm carries the ISSUE's n = 10⁶ ≥ 10× gate.
    gates_speedup: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    suite: String,
    quick: bool,
    seed: u64,
    steps_per_arm: usize,
    fraction: f64,
    arms: Vec<Arm>,
    checks_ok: bool,
}

fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[sorted.len() / 2]
}

/// Runs one instance size end to end; pushes any gate violations into
/// `failures`.
fn run_arm(
    n: usize,
    k: usize,
    args: &Args,
    gates_speedup: bool,
    speedup_floor: f64,
    strict_objective: bool,
    failures: &mut Vec<String>,
) -> Arm {
    eprintln!(
        "churnbench: n={n} k={k} ({} steps of {:.2}% churn)",
        args.steps,
        args.fraction * 1e2
    );
    let inst = build_instance(n, k, args.seed);
    let t0 = Instant::now();
    let mut inc = IncrementalInstance::new(inst, EngineKind::Sparse).expect("sparse engine builds");
    let init_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut scratch = SolveScratch::new();
    let cfg = ResolveConfig::default();
    let t0 = Instant::now();
    let seed_out = inc.resolve(&mut scratch, &cfg);
    let seed_solve_ms = t0.elapsed().as_secs_f64() * 1e3;
    if seed_out.warm {
        failures.push(format!("n={n}: seeding resolve claimed to be warm"));
    }

    let plan = ChurnPlan::new(args.seed ^ 0xC4A9, args.steps, args.fraction);
    let check_equivalence = n <= 100_000;
    let mut steps = Vec::new();
    for step in 0..args.steps {
        let deltas = plan
            .deltas(step as u64, inc.instance())
            .expect("plan draws deltas");
        let count = deltas.len();

        let t0 = Instant::now();
        inc.apply_churn(&deltas).expect("deltas apply");
        let patch_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let warm_out = inc.resolve(&mut scratch, &cfg);
        let resolve_ms = t1.elapsed().as_secs_f64() * 1e3;
        let warm_ms = t0.elapsed().as_secs_f64() * 1e3;

        if !warm_out.warm {
            failures.push(format!(
                "n={n} step {step}: resolve fell back cold ({})",
                warm_out.cold_reason.unwrap_or("?")
            ));
        }
        let equivalence_checked = if check_equivalence {
            if let Err(e) = inc.verify_against_rebuild() {
                failures.push(format!("n={n} step {step}: patched CSR diverged: {e}"));
            }
            true
        } else {
            false
        };

        // The cold baseline rebuilds everything from the mutated
        // point set — run_one times oracle construction (CSR build
        // included) plus the k greedy rounds.
        let cold = run_one(
            inc.instance(),
            "lazy",
            OracleStrategy::Lazy,
            "sparse+dirty",
            EngineKind::Sparse,
            true,
        );

        let tolerance = if strict_objective {
            1e-9
        } else {
            cold.reward * 5e-3
        };
        if warm_out.reward < cold.reward - tolerance {
            failures.push(format!(
                "n={n} step {step}: warm objective {} < cold {} (tolerance {tolerance:.3e})",
                warm_out.reward, cold.reward
            ));
        }
        let speedup = cold.wall_ms / warm_ms.max(1e-9);
        eprintln!(
            "churnbench:   step {step}: {count} deltas, warm {warm_ms:.1} ms \
             (patch {patch_ms:.1} + resolve {resolve_ms:.1}) vs cold {:.1} ms \
             ({speedup:.1}×), reward {:.6} vs {:.6}{}",
            cold.wall_ms,
            warm_out.reward,
            cold.reward,
            if warm_out.warm {
                ""
            } else {
                " [COLD FALLBACK]"
            }
        );
        steps.push(StepRow {
            step,
            deltas: count,
            warm_ms,
            patch_ms,
            resolve_ms,
            cold_ms: cold.wall_ms,
            speedup,
            warm_reward: warm_out.reward,
            cold_reward: cold.reward,
            warm: warm_out.warm,
            swaps: warm_out.swaps,
            evals_warm: warm_out.evals,
            evals_cold: cold.evals,
            equivalence_checked,
        });
    }

    let mut speedups: Vec<f64> = steps.iter().map(|s| s.speedup).collect();
    speedups.sort_by(|a, b| a.total_cmp(b));
    let med = median(&speedups);
    let min = speedups.first().copied().unwrap_or(0.0);
    if gates_speedup && med < speedup_floor {
        failures.push(format!(
            "n={n}: median warm speedup {med:.2}× below the {speedup_floor}× floor"
        ));
    }
    Arm {
        n,
        k,
        fraction: args.fraction,
        init_ms,
        seed_solve_ms,
        seed_reward: seed_out.reward,
        steps,
        median_speedup: med,
        min_speedup: min,
        speedup_floor,
        gates_speedup,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("churnbench: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failures = Vec::new();
    let mut arms = Vec::new();
    // k matches the persisted baselines: 16 at the PR4 scale, 4 at
    // the PR5 "millions of users" row the 6.3 s gate references.
    arms.push(run_arm(10_000, 16, &args, false, 2.0, false, &mut failures));
    // The quick arms still gate a speedup floor so churn-smoke means
    // something; only n = 1e6 carries the ISSUE's 10× and strict
    // warm ≥ cold objective gates.
    arms.push(run_arm(100_000, 16, &args, true, 2.0, false, &mut failures));
    if !args.quick {
        arms.push(run_arm(
            1_000_000,
            4,
            &args,
            true,
            10.0,
            true,
            &mut failures,
        ));
    }

    let checks_ok = failures.is_empty();
    let report = Report {
        suite: "churnbench".to_owned(),
        quick: args.quick,
        seed: args.seed,
        steps_per_arm: args.steps,
        fraction: args.fraction,
        arms,
        checks_ok,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes") + "\n";
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("churnbench: writing {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!("churnbench: wrote {}", args.out.display());

    if !checks_ok {
        for f in &failures {
            eprintln!("churnbench: FAIL {f}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
