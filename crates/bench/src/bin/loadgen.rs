//! `loadgen` — load generator for the `mmph serve` daemon, behind
//! `BENCH_serve.json`.
//!
//! ```text
//! loadgen [--quick] [--requests N] [--clients C] [--window W]
//!         [--mmph PATH] [--out PATH] [--skip-stdio]
//! ```
//!
//! Drives the NDJSON protocol over both transports with a fixed,
//! deterministic request mix and records client-side latency
//! percentiles plus request throughput:
//!
//! - **stdio** — spawns the real `mmph` binary (`--mmph`, default
//!   `target/release/mmph`) as `mmph serve` and pipelines requests
//!   into its stdin with a bounded in-flight window, then shuts it
//!   down with the `shutdown` op and requires exit code 0.
//! - **tcp** — starts the in-process TCP daemon
//!   ([`mmph_serve::serve_tcp`], the exact loop behind
//!   `mmph serve --tcp`) on an ephemeral port and fans `--clients`
//!   concurrent connections at it, each with its own pipeline window.
//!
//! The mix per 10 requests: 6 hot solves of one repeated scenario
//! (instance-cache + engine-reuse path), 2 varied-seed solves, 1
//! eval-budgeted solve (guaranteed `degraded` — deterministic, unlike
//! wall-clock deadlines), 1 ping. Every response must correlate to
//! its request id and nothing may be dropped; any correlation gap,
//! unexpected error, or non-graceful shutdown makes the binary exit
//! non-zero so CI can run it directly.
//!
//! A third arm (**tcp-overload**) drives the same mix at a daemon
//! configured with tiny admission caps, so a healthy run *must* shed:
//! the client honors each `overloaded` response's `retry_after_ms`
//! with exponential backoff until the request lands. Shed/retry
//! counts and server-reported queue-delay percentiles (`queue_ms`)
//! are recorded per arm.
//!
//! A fourth arm (**tcp-churn**) exercises the incremental protocol: a
//! single ordered connection (the tracked instance is per-service
//! state) initializes with `mutate {scenario}` then alternates seeded
//! `mutate {deltas}` batches with `resolve` requests, recording the
//! daemon's warm re-solve latency percentiles (`resolve_p*_us`) next
//! to the overall ones. Healthy means every mutate landed and every
//! post-seed resolve came back warm.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Command, ExitCode, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use mmph_core::{EngineKind, IncrementalInstance};
use mmph_serve::{
    merge_chunks, serve_tcp, Request, Response, Service, ServiceConfig, ShutdownFlag,
};
use mmph_sim::{ChurnPlan, Scenario, WeightScheme};
use serde::Serialize;

#[derive(Debug, Clone)]
struct Args {
    quick: bool,
    requests: usize,
    clients: usize,
    window: usize,
    mmph: PathBuf,
    out: PathBuf,
    skip_stdio: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        requests: 240,
        clients: 4,
        window: 16,
        mmph: PathBuf::from("target/release/mmph"),
        out: PathBuf::from("BENCH_serve.json"),
        skip_stdio: false,
    };
    let mut requests_set = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--skip-stdio" => args.skip_stdio = true,
            "--requests" => {
                let v = it.next().ok_or("--requests needs a value")?;
                args.requests = v.parse().map_err(|_| format!("bad --requests: {v}"))?;
                requests_set = true;
            }
            "--clients" => {
                let v = it.next().ok_or("--clients needs a value")?;
                args.clients = v.parse().map_err(|_| format!("bad --clients: {v}"))?;
            }
            "--window" => {
                let v = it.next().ok_or("--window needs a value")?;
                args.window = v.parse().map_err(|_| format!("bad --window: {v}"))?;
            }
            "--mmph" => args.mmph = PathBuf::from(it.next().ok_or("--mmph needs a value")?),
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--help" | "-h" => {
                println!(
                    "usage: loadgen [--quick] [--requests N] [--clients C] [--window W] \
                     [--mmph PATH] [--out PATH] [--skip-stdio]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if args.quick && !requests_set {
        args.requests = 60;
    }
    if args.clients == 0 || args.window == 0 || args.requests == 0 {
        return Err("--requests/--clients/--window must be >= 1".into());
    }
    Ok(args)
}

/// The deterministic request mix. Ids are offset so concurrent clients
/// never collide.
fn build_mix(count: usize, id_base: u64) -> Vec<Request> {
    let hot = Scenario::paper_2d(
        300,
        6,
        1.0,
        mmph_geom::Norm::L2,
        WeightScheme::PAPER_WEIGHTED,
        7,
    );
    (0..count)
        .map(|i| {
            let id = id_base + i as u64;
            match i % 10 {
                9 => Request::control(id, "ping"),
                8 => {
                    // Eval-budgeted large solve: the cap always bites,
                    // so every run exercises the degradation path.
                    let sc = Scenario::paper_2d(
                        1500,
                        12,
                        0.8,
                        mmph_geom::Norm::L2,
                        WeightScheme::PAPER_WEIGHTED,
                        11,
                    );
                    let mut req = Request::solve(id, sc);
                    req.max_evals = Some(50);
                    req
                }
                6 | 7 => Request::solve(
                    id,
                    Scenario::paper_2d(
                        200 + (i % 5) * 40,
                        4,
                        1.0,
                        mmph_geom::Norm::L2,
                        WeightScheme::PAPER_WEIGHTED,
                        100 + i as u64,
                    ),
                ),
                _ => Request::solve(id, hot.clone()),
            }
        })
        .collect()
}

/// The churn conversation: one init `mutate {scenario}`, a seed
/// `resolve`, then `steps` rounds of `mutate {deltas}` + `resolve`.
/// The delta batches come from a seeded [`ChurnPlan`] applied against
/// a local mirror of the instance, so every index the wire carries is
/// valid against the daemon's evolving tracked state.
fn build_churn_mix(steps: usize, id_base: u64) -> Vec<Request> {
    let sc = Scenario::paper_2d(
        600,
        6,
        1.0,
        mmph_geom::Norm::L2,
        WeightScheme::PAPER_WEIGHTED,
        21,
    );
    let inst = sc.generate_2d().expect("churn scenario generates");
    let mut inc = IncrementalInstance::new(inst, EngineKind::Sparse).expect("sparse engine");
    let plan = ChurnPlan::new(0x010A_D9E4, steps.max(1), 0.02);
    let mut reqs = vec![
        Request::mutate(id_base, Some(sc), None),
        Request::resolve(id_base + 1),
    ];
    for step in 0..steps as u64 {
        let deltas = plan
            .deltas(step, inc.instance())
            .expect("plan draws deltas");
        inc.apply_churn(&deltas).expect("mirror applies deltas");
        let id = id_base + 2 + 2 * step;
        reqs.push(Request::mutate(id, None, Some(deltas)));
        reqs.push(Request::resolve(id + 1));
    }
    reqs
}

/// What one driven connection observed.
#[derive(Debug, Default)]
struct Outcome {
    latencies_us: Vec<u64>,
    queue_us: Vec<u64>,
    /// Client-side latencies of `resolve` answers alone — the daemon's
    /// churn re-solve cost, separated from mutate/solve traffic.
    resolve_us: Vec<u64>,
    solved: usize,
    degraded: usize,
    errors: usize,
    pongs: usize,
    mutations: usize,
    warm_resolves: usize,
    uncorrelated: usize,
    shed: usize,
    retries: usize,
    gave_up: usize,
}

impl Outcome {
    fn absorb(&mut self, other: Outcome) {
        self.latencies_us.extend(other.latencies_us);
        self.queue_us.extend(other.queue_us);
        self.resolve_us.extend(other.resolve_us);
        self.solved += other.solved;
        self.degraded += other.degraded;
        self.errors += other.errors;
        self.pongs += other.pongs;
        self.mutations += other.mutations;
        self.warm_resolves += other.warm_resolves;
        self.uncorrelated += other.uncorrelated;
        self.shed += other.shed;
        self.retries += other.retries;
        self.gave_up += other.gave_up;
    }
}

/// Ceiling on backoff growth so a long shed streak cannot stall an arm.
const MAX_BACKOFF: Duration = Duration::from_millis(250);

/// Pipelines `reqs` with at most `window` in flight, measuring
/// client-side latency per response. An `overloaded` response is
/// retried (up to `max_retries` times) after the server's
/// `retry_after_ms` hint, doubled per attempt; client-side latency for
/// a retried request spans first send to final answer. Generic over
/// the wire so the child-process stdio pipes and TCP sockets share one
/// driver.
fn drive<W: Write, R: BufRead>(
    w: &mut W,
    r: &mut R,
    reqs: &[Request],
    window: usize,
    max_retries: usize,
) -> Result<Outcome, String> {
    let mut outcome = Outcome::default();
    // id → (first send, attempts so far)
    let mut sent: HashMap<u64, (Instant, usize)> = HashMap::new();
    let by_id: HashMap<u64, &Request> = reqs.iter().map(|rq| (rq.id, rq)).collect();
    // Shed requests waiting out their backoff: (ready_at, id).
    let mut parked: Vec<(Instant, u64)> = Vec::new();
    // Partial chunked responses, buffered until their last frame.
    let mut chunked: HashMap<Option<u64>, Vec<Response>> = HashMap::new();
    let mut next = 0usize;
    let mut completed = 0usize;
    let mut inflight = 0usize;
    while completed < reqs.len() {
        // Re-send any retry whose backoff has elapsed, then top the
        // window up with fresh requests.
        let now = Instant::now();
        let mut i = 0;
        while i < parked.len() {
            if inflight < window && parked[i].0 <= now {
                let (_, id) = parked.swap_remove(i);
                writeln!(w, "{}", by_id[&id].to_line()).map_err(|e| format!("send: {e}"))?;
                outcome.retries += 1;
                inflight += 1;
            } else {
                i += 1;
            }
        }
        while next < reqs.len() && inflight < window {
            let req = &reqs[next];
            sent.insert(req.id, (Instant::now(), 0));
            writeln!(w, "{}", req.to_line()).map_err(|e| format!("send: {e}"))?;
            inflight += 1;
            next += 1;
        }
        w.flush().map_err(|e| format!("flush: {e}"))?;
        if inflight == 0 {
            // Nothing on the wire: every remaining request is backing
            // off. Sleep until the earliest becomes ready.
            let earliest = parked.iter().map(|(at, _)| *at).min().expect("parked");
            thread::sleep(earliest.saturating_duration_since(Instant::now()) + TICK);
            continue;
        }
        let mut line = String::new();
        let read = r.read_line(&mut line).map_err(|e| format!("recv: {e}"))?;
        if read == 0 {
            return Err(format!(
                "server closed with {} responses outstanding",
                reqs.len() - completed
            ));
        }
        let resp = Response::parse(&line).map_err(|e| e.to_string())?;
        // A chunked selection arrives as several frames; the request
        // stays in flight until its last frame reassembles.
        let resp = if let Some(count) = resp.chunk_count {
            let key = resp.in_reply_to;
            let frames = chunked.entry(key).or_default();
            frames.push(resp);
            if (frames.len() as u64) < count {
                continue;
            }
            let frames = chunked.remove(&key).expect("complete frame set");
            merge_chunks(frames).ok_or("chunked response failed to reassemble")?
        } else {
            resp
        };
        inflight -= 1;
        if let Some(q_ms) = resp.queue_ms {
            outcome.queue_us.push((q_ms * 1e3) as u64);
        }
        if resp.op == "overloaded" {
            outcome.shed += 1;
            if let Some(&mut (_, ref mut attempts)) =
                resp.in_reply_to.and_then(|id| sent.get_mut(&id))
            {
                *attempts += 1;
                let id = resp.in_reply_to.expect("correlated shed");
                if *attempts <= max_retries {
                    let hint = Duration::from_millis(resp.retry_after_ms.unwrap_or(1).max(1));
                    let backoff = (hint * (1u32 << (*attempts - 1).min(8))).min(MAX_BACKOFF);
                    parked.push((Instant::now() + backoff, id));
                } else {
                    sent.remove(&id);
                    outcome.gave_up += 1;
                    completed += 1;
                }
            } else {
                outcome.uncorrelated += 1;
                completed += 1;
            }
            continue;
        }
        let latency_us = match resp.in_reply_to.and_then(|id| sent.remove(&id)) {
            Some((at, _)) => {
                let us = at.elapsed().as_micros() as u64;
                outcome.latencies_us.push(us);
                Some(us)
            }
            None => {
                outcome.uncorrelated += 1;
                None
            }
        };
        match resp.op.as_str() {
            "pong" => outcome.pongs += 1,
            "error" => outcome.errors += 1,
            "mutate_ok" => outcome.mutations += 1,
            "solve_ok" | "resolve_ok" => {
                if resp.op == "resolve_ok" {
                    outcome.resolve_us.extend(latency_us);
                    if resp.warm == Some(true) {
                        outcome.warm_resolves += 1;
                    }
                }
                if resp.status.as_deref() == Some("degraded") {
                    outcome.degraded += 1;
                } else {
                    outcome.solved += 1;
                }
            }
            _ => {}
        }
        completed += 1;
    }
    Ok(outcome)
}

/// Slack added when sleeping out a backoff, so the retry is ready on
/// the next pass.
const TICK: Duration = Duration::from_millis(1);

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[idx.clamp(1, sorted.len()) - 1]
}

/// One transport's measured results.
#[derive(Debug, Serialize)]
struct ArmReport {
    transport: String,
    skipped: bool,
    /// True for the admission-stress arm, which must shed to be healthy.
    overload: bool,
    /// True for the incremental-protocol arm, which must mutate and
    /// re-solve warm to be healthy (and never degrades by design).
    churn: bool,
    requests: usize,
    clients: usize,
    window: usize,
    wall_ms: f64,
    requests_per_sec: f64,
    latency_p50_us: u64,
    latency_p90_us: u64,
    latency_p99_us: u64,
    latency_max_us: u64,
    queue_p50_us: u64,
    queue_p90_us: u64,
    queue_p99_us: u64,
    resolve_p50_us: u64,
    resolve_p99_us: u64,
    solved: usize,
    degraded: usize,
    errors: usize,
    pongs: usize,
    mutations: usize,
    warm_resolves: usize,
    uncorrelated: usize,
    shed: usize,
    retries: usize,
    gave_up: usize,
    graceful_exit: bool,
}

impl ArmReport {
    fn skipped(transport: &str) -> Self {
        ArmReport {
            transport: transport.to_owned(),
            skipped: true,
            overload: false,
            churn: false,
            requests: 0,
            clients: 0,
            window: 0,
            wall_ms: 0.0,
            requests_per_sec: 0.0,
            latency_p50_us: 0,
            latency_p90_us: 0,
            latency_p99_us: 0,
            latency_max_us: 0,
            queue_p50_us: 0,
            queue_p90_us: 0,
            queue_p99_us: 0,
            resolve_p50_us: 0,
            resolve_p99_us: 0,
            solved: 0,
            degraded: 0,
            errors: 0,
            pongs: 0,
            mutations: 0,
            warm_resolves: 0,
            uncorrelated: 0,
            shed: 0,
            retries: 0,
            gave_up: 0,
            graceful_exit: false,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn from_outcome(
        transport: &str,
        overload: bool,
        churn: bool,
        outcome: Outcome,
        requests: usize,
        clients: usize,
        window: usize,
        wall_ms: f64,
        graceful_exit: bool,
    ) -> Self {
        let mut lat = outcome.latencies_us.clone();
        lat.sort_unstable();
        let mut queue = outcome.queue_us.clone();
        queue.sort_unstable();
        let mut resolve = outcome.resolve_us.clone();
        resolve.sort_unstable();
        ArmReport {
            transport: transport.to_owned(),
            skipped: false,
            overload,
            churn,
            requests,
            clients,
            window,
            wall_ms,
            requests_per_sec: requests as f64 / (wall_ms / 1e3).max(1e-9),
            latency_p50_us: percentile(&lat, 0.50),
            latency_p90_us: percentile(&lat, 0.90),
            latency_p99_us: percentile(&lat, 0.99),
            latency_max_us: lat.last().copied().unwrap_or(0),
            queue_p50_us: percentile(&queue, 0.50),
            queue_p90_us: percentile(&queue, 0.90),
            queue_p99_us: percentile(&queue, 0.99),
            resolve_p50_us: percentile(&resolve, 0.50),
            resolve_p99_us: percentile(&resolve, 0.99),
            solved: outcome.solved,
            degraded: outcome.degraded,
            errors: outcome.errors,
            pongs: outcome.pongs,
            mutations: outcome.mutations,
            warm_resolves: outcome.warm_resolves,
            uncorrelated: outcome.uncorrelated,
            shed: outcome.shed,
            retries: outcome.retries,
            gave_up: outcome.gave_up,
            graceful_exit,
        }
    }

    /// The invariants CI asserts: everything answered, correlated,
    /// error-free, with the budgeted slice of the mix degrading and a
    /// clean shutdown. The overload arm must additionally have shed
    /// and retried (the whole point of its tiny caps), and every retry
    /// must eventually land. The churn arm never degrades (no budgets,
    /// no deadlines) but every mutate must land and every post-seed
    /// resolve must come back warm.
    fn healthy(&self) -> bool {
        let base = !self.skipped
            && self.uncorrelated == 0
            && self.errors == 0
            && self.solved >= 1
            && self.graceful_exit;
        if self.churn {
            base && self.shed == 0
                && self.degraded == 0
                && self.mutations >= 2
                && self.warm_resolves >= 1
                && self.warm_resolves == self.solved - 1
        } else if self.overload {
            base && self.degraded >= 1 && self.shed >= 1 && self.retries >= 1 && self.gave_up == 0
        } else {
            base && self.degraded >= 1 && self.shed == 0
        }
    }
}

#[derive(Debug, Serialize)]
struct Report {
    suite: String,
    quick: bool,
    requests_per_arm: usize,
    arms: Vec<ArmReport>,
    checks_ok: bool,
}

/// Drives a spawned `mmph serve` child over its stdio pipes.
fn stdio_arm(args: &Args) -> Result<ArmReport, String> {
    let mut child = Command::new(&args.mmph)
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", args.mmph.display()))?;
    let mut stdin = child.stdin.take().expect("piped stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));

    let reqs = build_mix(args.requests, 0);
    let start = Instant::now();
    let outcome = drive(&mut stdin, &mut stdout, &reqs, args.window, MAX_RETRIES)?;
    let wall_ms = start.elapsed().as_nanos() as f64 / 1e6;

    // Graceful shutdown: the op gets a `bye` and the process exits 0.
    writeln!(
        stdin,
        "{}",
        Request::control(u64::MAX, "shutdown").to_line()
    )
    .and_then(|_| stdin.flush())
    .map_err(|e| format!("shutdown send: {e}"))?;
    let mut bye = String::new();
    stdout
        .read_line(&mut bye)
        .map_err(|e| format!("bye recv: {e}"))?;
    let graceful =
        bye.contains("\"bye\"") && child.wait().map_err(|e| format!("wait: {e}"))?.success();

    Ok(ArmReport::from_outcome(
        "stdio",
        false,
        false,
        outcome,
        args.requests,
        1,
        args.window,
        wall_ms,
        graceful,
    ))
}

/// Retry ceiling per request when the daemon sheds it.
const MAX_RETRIES: usize = 16;

/// Starts an in-process TCP daemon with the given config and fans
/// concurrent clients at it. `overload` tags the report arm that is
/// expected to shed.
fn tcp_arm_with(
    args: &Args,
    label: &str,
    overload: bool,
    churn: bool,
    cfg: ServiceConfig,
    mix: fn(usize, u64) -> Vec<Request>,
) -> Result<ArmReport, String> {
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let daemon = thread::spawn(move || {
        let mut service = Service::new(cfg);
        serve_tcp(&mut service, listener, &ShutdownFlag::new())
    });

    // The churn conversation is stateful (one tracked instance per
    // service), so that arm keeps a single ordered connection.
    let clients = if churn { 1 } else { args.clients };
    let per_client = args.requests / clients;
    let mut mixes: Vec<Vec<Request>> = Vec::new();
    for c in 0..clients {
        let count = if c == clients - 1 {
            args.requests - per_client * (clients - 1)
        } else {
            per_client
        };
        mixes.push(mix(count, (c as u64) << 32));
    }
    let total: usize = mixes.iter().map(Vec::len).sum();

    let start = Instant::now();
    let mut handles = Vec::new();
    for reqs in mixes {
        let window = args.window;
        handles.push(thread::spawn(move || -> Result<Outcome, String> {
            let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
            let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
            let mut reader = BufReader::new(stream);
            drive(&mut writer, &mut reader, &reqs, window, MAX_RETRIES)
        }));
    }
    let mut outcome = Outcome::default();
    for h in handles {
        outcome.absorb(h.join().map_err(|_| "client thread panicked")??);
    }
    let wall_ms = start.elapsed().as_nanos() as f64 / 1e6;

    // Shutdown on a fresh connection; under tiny caps even this can be
    // shed, so honor the hint and retry like any other client would.
    let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut graceful = false;
    for _ in 0..=MAX_RETRIES {
        writeln!(
            writer,
            "{}",
            Request::control(u64::MAX, "shutdown").to_line()
        )
        .map_err(|e| e.to_string())?;
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| e.to_string())?;
        let resp = Response::parse(&line).map_err(|e| e.to_string())?;
        if resp.op == "overloaded" {
            thread::sleep(Duration::from_millis(
                resp.retry_after_ms.unwrap_or(1).max(1),
            ));
            continue;
        }
        graceful = resp.op == "bye";
        break;
    }
    graceful = graceful && daemon.join().map_err(|_| "daemon panicked")?.is_ok();

    Ok(ArmReport::from_outcome(
        label,
        overload,
        churn,
        outcome,
        total,
        clients,
        args.window,
        wall_ms,
        graceful,
    ))
}

/// The default-config TCP arm.
fn tcp_arm(args: &Args) -> Result<ArmReport, String> {
    tcp_arm_with(
        args,
        "tcp",
        false,
        false,
        ServiceConfig::default(),
        build_mix,
    )
}

/// The admission-stress arm: caps far below the offered load, so the
/// daemon must shed and the clients must retry their way through.
fn tcp_overload_arm(args: &Args) -> Result<ArmReport, String> {
    let cfg = ServiceConfig {
        queue_cap: 4,
        per_conn_inflight: 4,
        retry_after_ms: 2,
        ..ServiceConfig::default()
    };
    tcp_arm_with(args, "tcp-overload", true, false, cfg, build_mix)
}

/// The incremental-protocol arm: mutate/resolve churn over one ordered
/// connection. `count` requests become an init pair plus
/// `(count - 2) / 2` churn rounds.
fn tcp_churn_arm(args: &Args) -> Result<ArmReport, String> {
    fn churn_mix(count: usize, id_base: u64) -> Vec<Request> {
        let steps = (count / 2).saturating_sub(1).max(2);
        build_churn_mix(steps, id_base)
    }
    tcp_arm_with(
        args,
        "tcp-churn",
        false,
        true,
        ServiceConfig::default(),
        churn_mix,
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut arms = Vec::new();
    let mut failures = Vec::new();

    if args.skip_stdio {
        eprintln!("loadgen: stdio arm skipped by flag");
        arms.push(ArmReport::skipped("stdio"));
    } else {
        match stdio_arm(&args) {
            Ok(arm) => arms.push(arm),
            Err(e) => {
                failures.push(format!("stdio arm: {e}"));
                arms.push(ArmReport::skipped("stdio"));
            }
        }
    }
    match tcp_arm(&args) {
        Ok(arm) => arms.push(arm),
        Err(e) => {
            failures.push(format!("tcp arm: {e}"));
            arms.push(ArmReport::skipped("tcp"));
        }
    }
    match tcp_overload_arm(&args) {
        Ok(arm) => arms.push(arm),
        Err(e) => {
            failures.push(format!("tcp-overload arm: {e}"));
            arms.push(ArmReport::skipped("tcp-overload"));
        }
    }
    match tcp_churn_arm(&args) {
        Ok(arm) => arms.push(arm),
        Err(e) => {
            failures.push(format!("tcp-churn arm: {e}"));
            arms.push(ArmReport::skipped("tcp-churn"));
        }
    }

    for arm in &arms {
        if arm.skipped {
            continue;
        }
        println!(
            "{:>12}: {} reqs ({} clients × window {}) in {:.1} ms = {:.1} req/s; \
             p50 {} µs, p90 {} µs, p99 {} µs, max {} µs; queue p50 {} µs, p99 {} µs; \
             {} solved, {} degraded, {} errors, {} pongs, {} mutated ({} warm), \
             {} shed, {} retries{}",
            arm.transport,
            arm.requests,
            arm.clients,
            arm.window,
            arm.wall_ms,
            arm.requests_per_sec,
            arm.latency_p50_us,
            arm.latency_p90_us,
            arm.latency_p99_us,
            arm.latency_max_us,
            arm.queue_p50_us,
            arm.queue_p99_us,
            arm.solved,
            arm.degraded,
            arm.errors,
            arm.pongs,
            arm.mutations,
            arm.warm_resolves,
            arm.shed,
            arm.retries,
            if arm.graceful_exit {
                "; graceful exit"
            } else {
                "; NOT graceful"
            }
        );
        if !arm.healthy() {
            failures.push(format!("{} arm failed its invariants", arm.transport));
        }
    }

    let checks_ok = failures.is_empty();
    let report = Report {
        suite: "serve_loadgen".to_owned(),
        quick: args.quick,
        requests_per_arm: args.requests,
        arms,
        checks_ok,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes") + "\n";
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("loadgen: writing {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!("loadgen: wrote {}", args.out.display());

    if !checks_ok {
        for f in &failures {
            eprintln!("loadgen: FAIL {f}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
