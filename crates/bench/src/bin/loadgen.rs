//! `loadgen` — load generator for the `mmph serve` daemon, behind
//! `BENCH_serve.json`.
//!
//! ```text
//! loadgen [--quick] [--requests N] [--clients C] [--window W]
//!         [--mmph PATH] [--out PATH] [--skip-stdio]
//! ```
//!
//! Drives the NDJSON protocol over both transports with a fixed,
//! deterministic request mix and records client-side latency
//! percentiles plus request throughput:
//!
//! - **stdio** — spawns the real `mmph` binary (`--mmph`, default
//!   `target/release/mmph`) as `mmph serve` and pipelines requests
//!   into its stdin with a bounded in-flight window, then shuts it
//!   down with the `shutdown` op and requires exit code 0.
//! - **tcp** — starts the in-process TCP daemon
//!   ([`mmph_serve::serve_tcp`], the exact loop behind
//!   `mmph serve --tcp`) on an ephemeral port and fans `--clients`
//!   concurrent connections at it, each with its own pipeline window.
//!
//! The mix per 10 requests: 6 hot solves of one repeated scenario
//! (instance-cache + engine-reuse path), 2 varied-seed solves, 1
//! eval-budgeted solve (guaranteed `degraded` — deterministic, unlike
//! wall-clock deadlines), 1 ping. Every response must correlate to
//! its request id and nothing may be dropped; any correlation gap,
//! unexpected error, or non-graceful shutdown makes the binary exit
//! non-zero so CI can run it directly.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Command, ExitCode, Stdio};
use std::thread;
use std::time::Instant;

use mmph_serve::{serve_tcp, Request, Response, Service, ServiceConfig, ShutdownFlag};
use mmph_sim::{Scenario, WeightScheme};
use serde::Serialize;

#[derive(Debug, Clone)]
struct Args {
    quick: bool,
    requests: usize,
    clients: usize,
    window: usize,
    mmph: PathBuf,
    out: PathBuf,
    skip_stdio: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        requests: 240,
        clients: 4,
        window: 16,
        mmph: PathBuf::from("target/release/mmph"),
        out: PathBuf::from("BENCH_serve.json"),
        skip_stdio: false,
    };
    let mut requests_set = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--skip-stdio" => args.skip_stdio = true,
            "--requests" => {
                let v = it.next().ok_or("--requests needs a value")?;
                args.requests = v.parse().map_err(|_| format!("bad --requests: {v}"))?;
                requests_set = true;
            }
            "--clients" => {
                let v = it.next().ok_or("--clients needs a value")?;
                args.clients = v.parse().map_err(|_| format!("bad --clients: {v}"))?;
            }
            "--window" => {
                let v = it.next().ok_or("--window needs a value")?;
                args.window = v.parse().map_err(|_| format!("bad --window: {v}"))?;
            }
            "--mmph" => args.mmph = PathBuf::from(it.next().ok_or("--mmph needs a value")?),
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--help" | "-h" => {
                println!(
                    "usage: loadgen [--quick] [--requests N] [--clients C] [--window W] \
                     [--mmph PATH] [--out PATH] [--skip-stdio]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if args.quick && !requests_set {
        args.requests = 60;
    }
    if args.clients == 0 || args.window == 0 || args.requests == 0 {
        return Err("--requests/--clients/--window must be >= 1".into());
    }
    Ok(args)
}

/// The deterministic request mix. Ids are offset so concurrent clients
/// never collide.
fn build_mix(count: usize, id_base: u64) -> Vec<Request> {
    let hot = Scenario::paper_2d(
        300,
        6,
        1.0,
        mmph_geom::Norm::L2,
        WeightScheme::PAPER_WEIGHTED,
        7,
    );
    (0..count)
        .map(|i| {
            let id = id_base + i as u64;
            match i % 10 {
                9 => Request::control(id, "ping"),
                8 => {
                    // Eval-budgeted large solve: the cap always bites,
                    // so every run exercises the degradation path.
                    let sc = Scenario::paper_2d(
                        1500,
                        12,
                        0.8,
                        mmph_geom::Norm::L2,
                        WeightScheme::PAPER_WEIGHTED,
                        11,
                    );
                    let mut req = Request::solve(id, sc);
                    req.max_evals = Some(50);
                    req
                }
                6 | 7 => Request::solve(
                    id,
                    Scenario::paper_2d(
                        200 + (i % 5) * 40,
                        4,
                        1.0,
                        mmph_geom::Norm::L2,
                        WeightScheme::PAPER_WEIGHTED,
                        100 + i as u64,
                    ),
                ),
                _ => Request::solve(id, hot.clone()),
            }
        })
        .collect()
}

/// What one driven connection observed.
#[derive(Debug, Default)]
struct Outcome {
    latencies_us: Vec<u64>,
    solved: usize,
    degraded: usize,
    errors: usize,
    pongs: usize,
    uncorrelated: usize,
}

impl Outcome {
    fn absorb(&mut self, other: Outcome) {
        self.latencies_us.extend(other.latencies_us);
        self.solved += other.solved;
        self.degraded += other.degraded;
        self.errors += other.errors;
        self.pongs += other.pongs;
        self.uncorrelated += other.uncorrelated;
    }
}

/// Pipelines `reqs` with at most `window` in flight, measuring
/// client-side latency per response. Generic over the wire so the
/// child-process stdio pipes and TCP sockets share one driver.
fn drive<W: Write, R: BufRead>(
    w: &mut W,
    r: &mut R,
    reqs: &[Request],
    window: usize,
) -> Result<Outcome, String> {
    let mut outcome = Outcome::default();
    let mut sent: HashMap<u64, Instant> = HashMap::new();
    let mut next = 0usize;
    let mut done = 0usize;
    while done < reqs.len() {
        while next < reqs.len() && next - done < window {
            let req = &reqs[next];
            sent.insert(req.id, Instant::now());
            writeln!(w, "{}", req.to_line()).map_err(|e| format!("send: {e}"))?;
            next += 1;
        }
        w.flush().map_err(|e| format!("flush: {e}"))?;
        let mut line = String::new();
        let read = r.read_line(&mut line).map_err(|e| format!("recv: {e}"))?;
        if read == 0 {
            return Err(format!(
                "server closed with {} responses outstanding",
                reqs.len() - done
            ));
        }
        let resp = Response::parse(&line).map_err(|e| e.to_string())?;
        match resp.in_reply_to.and_then(|id| sent.remove(&id)) {
            Some(at) => outcome.latencies_us.push(at.elapsed().as_micros() as u64),
            None => outcome.uncorrelated += 1,
        }
        match resp.op.as_str() {
            "pong" => outcome.pongs += 1,
            "error" => outcome.errors += 1,
            "solve_ok" => {
                if resp.status.as_deref() == Some("degraded") {
                    outcome.degraded += 1;
                } else {
                    outcome.solved += 1;
                }
            }
            _ => {}
        }
        done += 1;
    }
    Ok(outcome)
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[idx.clamp(1, sorted.len()) - 1]
}

/// One transport's measured results.
#[derive(Debug, Serialize)]
struct ArmReport {
    transport: String,
    skipped: bool,
    requests: usize,
    clients: usize,
    window: usize,
    wall_ms: f64,
    requests_per_sec: f64,
    latency_p50_us: u64,
    latency_p90_us: u64,
    latency_p99_us: u64,
    latency_max_us: u64,
    solved: usize,
    degraded: usize,
    errors: usize,
    pongs: usize,
    uncorrelated: usize,
    graceful_exit: bool,
}

impl ArmReport {
    fn skipped(transport: &str) -> Self {
        ArmReport {
            transport: transport.to_owned(),
            skipped: true,
            requests: 0,
            clients: 0,
            window: 0,
            wall_ms: 0.0,
            requests_per_sec: 0.0,
            latency_p50_us: 0,
            latency_p90_us: 0,
            latency_p99_us: 0,
            latency_max_us: 0,
            solved: 0,
            degraded: 0,
            errors: 0,
            pongs: 0,
            uncorrelated: 0,
            graceful_exit: false,
        }
    }

    fn from_outcome(
        transport: &str,
        outcome: Outcome,
        requests: usize,
        clients: usize,
        window: usize,
        wall_ms: f64,
        graceful_exit: bool,
    ) -> Self {
        let mut lat = outcome.latencies_us.clone();
        lat.sort_unstable();
        ArmReport {
            transport: transport.to_owned(),
            skipped: false,
            requests,
            clients,
            window,
            wall_ms,
            requests_per_sec: requests as f64 / (wall_ms / 1e3).max(1e-9),
            latency_p50_us: percentile(&lat, 0.50),
            latency_p90_us: percentile(&lat, 0.90),
            latency_p99_us: percentile(&lat, 0.99),
            latency_max_us: lat.last().copied().unwrap_or(0),
            solved: outcome.solved,
            degraded: outcome.degraded,
            errors: outcome.errors,
            pongs: outcome.pongs,
            uncorrelated: outcome.uncorrelated,
            graceful_exit,
        }
    }

    /// The invariants CI asserts: everything answered, correlated,
    /// error-free, with the budgeted slice of the mix degrading and a
    /// clean shutdown.
    fn healthy(&self) -> bool {
        !self.skipped
            && self.uncorrelated == 0
            && self.errors == 0
            && self.degraded >= 1
            && self.solved >= 1
            && self.graceful_exit
    }
}

#[derive(Debug, Serialize)]
struct Report {
    suite: String,
    quick: bool,
    requests_per_arm: usize,
    arms: Vec<ArmReport>,
    checks_ok: bool,
}

/// Drives a spawned `mmph serve` child over its stdio pipes.
fn stdio_arm(args: &Args) -> Result<ArmReport, String> {
    let mut child = Command::new(&args.mmph)
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", args.mmph.display()))?;
    let mut stdin = child.stdin.take().expect("piped stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));

    let reqs = build_mix(args.requests, 0);
    let start = Instant::now();
    let outcome = drive(&mut stdin, &mut stdout, &reqs, args.window)?;
    let wall_ms = start.elapsed().as_nanos() as f64 / 1e6;

    // Graceful shutdown: the op gets a `bye` and the process exits 0.
    writeln!(
        stdin,
        "{}",
        Request::control(u64::MAX, "shutdown").to_line()
    )
    .and_then(|_| stdin.flush())
    .map_err(|e| format!("shutdown send: {e}"))?;
    let mut bye = String::new();
    stdout
        .read_line(&mut bye)
        .map_err(|e| format!("bye recv: {e}"))?;
    let graceful =
        bye.contains("\"bye\"") && child.wait().map_err(|e| format!("wait: {e}"))?.success();

    Ok(ArmReport::from_outcome(
        "stdio",
        outcome,
        args.requests,
        1,
        args.window,
        wall_ms,
        graceful,
    ))
}

/// Starts the in-process TCP daemon and fans concurrent clients at it.
fn tcp_arm(args: &Args) -> Result<ArmReport, String> {
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let daemon = thread::spawn(move || {
        let mut service = Service::new(ServiceConfig::default());
        serve_tcp(&mut service, listener, &ShutdownFlag::new())
    });

    let per_client = args.requests / args.clients;
    let start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..args.clients {
        let window = args.window;
        let count = if c == args.clients - 1 {
            args.requests - per_client * (args.clients - 1)
        } else {
            per_client
        };
        let id_base = (c as u64) << 32;
        handles.push(thread::spawn(move || -> Result<Outcome, String> {
            let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
            let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
            let mut reader = BufReader::new(stream);
            let reqs = build_mix(count, id_base);
            drive(&mut writer, &mut reader, &reqs, window)
        }));
    }
    let mut outcome = Outcome::default();
    for h in handles {
        outcome.absorb(h.join().map_err(|_| "client thread panicked")??);
    }
    let wall_ms = start.elapsed().as_nanos() as f64 / 1e6;

    let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    writeln!(
        writer,
        "{}",
        Request::control(u64::MAX, "shutdown").to_line()
    )
    .map_err(|e| e.to_string())?;
    let mut bye = String::new();
    BufReader::new(stream)
        .read_line(&mut bye)
        .map_err(|e| e.to_string())?;
    let graceful = bye.contains("\"bye\"") && daemon.join().map_err(|_| "daemon panicked")?.is_ok();

    Ok(ArmReport::from_outcome(
        "tcp",
        outcome,
        args.requests,
        args.clients,
        args.window,
        wall_ms,
        graceful,
    ))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut arms = Vec::new();
    let mut failures = Vec::new();

    if args.skip_stdio {
        eprintln!("loadgen: stdio arm skipped by flag");
        arms.push(ArmReport::skipped("stdio"));
    } else {
        match stdio_arm(&args) {
            Ok(arm) => arms.push(arm),
            Err(e) => {
                failures.push(format!("stdio arm: {e}"));
                arms.push(ArmReport::skipped("stdio"));
            }
        }
    }
    match tcp_arm(&args) {
        Ok(arm) => arms.push(arm),
        Err(e) => {
            failures.push(format!("tcp arm: {e}"));
            arms.push(ArmReport::skipped("tcp"));
        }
    }

    for arm in &arms {
        if arm.skipped {
            continue;
        }
        println!(
            "{:>6}: {} reqs ({} clients × window {}) in {:.1} ms = {:.1} req/s; \
             p50 {} µs, p90 {} µs, p99 {} µs, max {} µs; {} solved, {} degraded, \
             {} errors, {} pongs{}",
            arm.transport,
            arm.requests,
            arm.clients,
            arm.window,
            arm.wall_ms,
            arm.requests_per_sec,
            arm.latency_p50_us,
            arm.latency_p90_us,
            arm.latency_p99_us,
            arm.latency_max_us,
            arm.solved,
            arm.degraded,
            arm.errors,
            arm.pongs,
            if arm.graceful_exit {
                "; graceful exit"
            } else {
                "; NOT graceful"
            }
        );
        if !arm.healthy() {
            failures.push(format!("{} arm failed its invariants", arm.transport));
        }
    }

    let checks_ok = failures.is_empty();
    let report = Report {
        suite: "serve_loadgen".to_owned(),
        quick: args.quick,
        requests_per_arm: args.requests,
        arms,
        checks_ok,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes") + "\n";
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("loadgen: writing {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!("loadgen: wrote {}", args.out.display());

    if !checks_ok {
        for f in &failures {
            eprintln!("loadgen: FAIL {f}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
