//! `megabench` — the large-n pipeline gate behind `BENCH_PR10.json`.
//!
//! ```text
//! megabench [--quick] [--n N] [--shard-n N] [--k K] [--cells C]
//!           [--shards S] [--cap-bytes B] [--out PATH] [--seed S]
//! ```
//!
//! Two arms over degree-pinned uniform paper-space instances:
//!
//! * **Coreset** — an instance whose estimated CSR footprint busts the
//!   engine byte cap (n = 10⁷ at the default 512 MiB cap), solved
//!   through [`solve_coreset`]: grid-cell reduction, in-cap sparse
//!   greedy on the representatives, then a streaming full-resolution
//!   objective pass. Gates: [`plan_scale`] really escalates at this
//!   (n, cap), the solve is not degraded, and the **realized** gap
//!   between the coreset objective and the full-resolution objective
//!   stays ≤ 5%.
//! * **Shard** — a smaller instance solved shard-then-merge, serial
//!   sweep vs parallel sweep. Gates: both sweeps are bit-identical
//!   (determinism), and — only when the host actually has more than
//!   one core — parallel is ≥ 1.5× faster. On a 1-core host the ratio
//!   is recorded, not enforced, and the report says so.
//!
//! `--quick` shrinks both arms and the cap for CI smoke runs; the
//! escalation gate still fires because the cap shrinks with n.
//! Violations exit non-zero so CI can run this binary directly.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use mmph_bench::perfrows::{measure_host_parallelism, HostParallelism, DEFAULT_SEED};
use mmph_core::{
    plan_scale, solve_coreset, solve_sharded, CoresetConfig, EngineKind, RewardEngine, ScalePlan,
    ShardConfig, DEFAULT_SPARSE_CAP_BYTES,
};
use mmph_sim::{uniform_degree_instance_2d, SpaceSpec};
use serde::Serialize;

/// Expected within-radius neighbor count, held constant across n so
/// the CSR footprint scales linearly and predictably (`≈ n·deg·20` B).
const DEGREE: f64 = 48.0;

#[derive(Debug, Clone)]
struct Args {
    quick: bool,
    n: Option<usize>,
    shard_n: Option<usize>,
    k: usize,
    cells: f64,
    shards: usize,
    cap_bytes: Option<usize>,
    out: Option<PathBuf>,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        n: None,
        shard_n: None,
        k: 16,
        cells: 3.0,
        shards: 8,
        cap_bytes: None,
        out: None,
        seed: DEFAULT_SEED,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--n" => args.n = Some(parse(&value("--n")?)?),
            "--shard-n" => args.shard_n = Some(parse(&value("--shard-n")?)?),
            "--k" => args.k = parse(&value("--k")?)?,
            "--cells" => args.cells = parse(&value("--cells")?)?,
            "--shards" => args.shards = parse(&value("--shards")?)?,
            "--cap-bytes" => args.cap_bytes = Some(parse(&value("--cap-bytes")?)?),
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--help" | "-h" => {
                println!(
                    "usage: megabench [--quick] [--n N] [--shard-n N] [--k K] [--cells C] \
                     [--shards S] [--cap-bytes B] [--out PATH] [--seed S]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(v: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("bad flag value: {v}"))
}

/// The coreset arm's persisted measurements.
#[derive(Debug, Serialize)]
struct CoresetArm {
    n: usize,
    k: usize,
    radius: f64,
    cells_per_radius: f64,
    cap_bytes: usize,
    /// `RewardEngine`'s full-instance CSR estimate — the number the
    /// escalation decision is made on.
    est_full_csr_bytes: usize,
    /// `plan_scale` verdict at (instance, Auto, cap).
    plan: String,
    coreset_n: usize,
    /// n / coreset_n.
    reduction: f64,
    /// Engine the coreset solve used (sparse when the reduced CSR
    /// fits the cap, kd fallback otherwise — both respect the cap).
    engine: String,
    evals: u64,
    coreset_objective: f64,
    full_objective: f64,
    /// Realized relative gap — the gated number.
    gap: f64,
    /// A-priori additive bound from the construction.
    error_bound: f64,
    degraded: bool,
    gen_ms: f64,
    build_ms: f64,
    solve_ms: f64,
    eval_ms: f64,
    total_ms: f64,
}

/// The shard arm's persisted measurements.
#[derive(Debug, Serialize)]
struct ShardArm {
    n: usize,
    k: usize,
    shards: usize,
    candidates: usize,
    objective: f64,
    serial_ms: f64,
    parallel_ms: f64,
    /// serial / parallel wall-clock.
    speedup: f64,
    /// Serial and parallel sweeps selected bit-identical centers.
    deterministic: bool,
    /// True when the ≥ 1.5× gate was actually enforced (multi-core
    /// host); false means the ratio is record-only.
    speedup_gate_enforced: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    suite: String,
    quick: bool,
    seed: u64,
    degree: f64,
    host: HostParallelism,
    coreset: CoresetArm,
    shard: ShardArm,
    checks_ok: bool,
}

/// Gate threshold on the realized coreset gap.
const MAX_GAP: f64 = 0.05;
/// Gate threshold on the shard-parallel speedup (multi-core hosts).
const MIN_SPEEDUP: f64 = 1.5;

fn run_coreset_arm(args: &Args, checks_ok: &mut bool) -> Result<CoresetArm, String> {
    let n = args
        .n
        .unwrap_or(if args.quick { 200_000 } else { 10_000_000 });
    // The default cap scales down in quick mode so the escalation
    // condition (`est > cap`) still fires on the small instance.
    let cap_bytes = args.cap_bytes.unwrap_or(if args.quick {
        8 << 20
    } else {
        DEFAULT_SPARSE_CAP_BYTES
    });

    let t0 = Instant::now();
    let inst = uniform_degree_instance_2d(n, args.k, DEGREE, SpaceSpec::PAPER, args.seed)
        .map_err(|e| e.to_string())?;
    let gen_ms = t0.elapsed().as_secs_f64() * 1e3;
    let est = RewardEngine::estimated_sparse_bytes(&inst, EngineKind::Sparse).unwrap_or(0);
    let plan = plan_scale(&inst, EngineKind::Auto, cap_bytes);
    println!(
        "coreset arm: n={n} r={:.4e} est CSR {:.1} MiB vs cap {:.1} MiB -> {plan:?} ({gen_ms:.0} ms gen)",
        inst.radius(),
        est as f64 / (1 << 20) as f64,
        cap_bytes as f64 / (1 << 20) as f64
    );
    if plan != ScalePlan::Coreset {
        eprintln!(
            "megabench: ESCALATION GATE FAILED: n={n} fits the {cap_bytes}-byte cap; \
             the coreset path was not exercised"
        );
        *checks_ok = false;
    }

    let cfg = CoresetConfig {
        cells_per_radius: args.cells,
        cap_bytes,
        ..CoresetConfig::default()
    };
    let t1 = Instant::now();
    let report = solve_coreset(&inst, &cfg).map_err(|e| e.to_string())?;
    let total_ms = t1.elapsed().as_secs_f64() * 1e3;
    println!(
        "coreset arm: {} -> {} reps ({:.0}x), engine {}, gap {:.4}% (bound {:.3e}), \
         build {:.0} ms + solve {:.0} ms + full-pass {:.0} ms",
        report.full_n,
        report.coreset_n,
        report.full_n as f64 / report.coreset_n.max(1) as f64,
        report.engine,
        report.gap * 100.0,
        report.error_bound,
        report.build_ms,
        report.solve_ms,
        report.eval_ms
    );
    if report.gap > MAX_GAP {
        eprintln!(
            "megabench: CORESET GAP GATE FAILED: realized gap {:.4} > {MAX_GAP}",
            report.gap
        );
        *checks_ok = false;
    }
    if report.degraded.is_some() {
        eprintln!(
            "megabench: CORESET SOLVE DEGRADED: {:?} (unlimited budget must complete)",
            report.degraded
        );
        *checks_ok = false;
    }

    Ok(CoresetArm {
        n,
        k: args.k,
        radius: inst.radius(),
        cells_per_radius: args.cells,
        cap_bytes,
        est_full_csr_bytes: est,
        plan: format!("{plan:?}"),
        coreset_n: report.coreset_n,
        reduction: report.full_n as f64 / report.coreset_n.max(1) as f64,
        engine: report.engine.to_string(),
        evals: report.evals,
        coreset_objective: report.coreset_objective,
        full_objective: report.full_objective,
        gap: report.gap,
        error_bound: report.error_bound,
        degraded: report.degraded.is_some(),
        gen_ms,
        build_ms: report.build_ms,
        solve_ms: report.solve_ms,
        eval_ms: report.eval_ms,
        total_ms,
    })
}

fn run_shard_arm(
    args: &Args,
    host: &HostParallelism,
    checks_ok: &mut bool,
) -> Result<ShardArm, String> {
    // Sized so each spatial shard's CSR fits the default cap on its
    // own (per-shard n ≈ n/shards at the same density).
    let n = args
        .shard_n
        .unwrap_or(if args.quick { 50_000 } else { 2_000_000 });
    let inst = uniform_degree_instance_2d(n, args.k, DEGREE, SpaceSpec::PAPER, args.seed)
        .map_err(|e| e.to_string())?;
    let arm = |parallel: bool| {
        let cfg = ShardConfig {
            shards: args.shards,
            parallel,
            ..ShardConfig::default()
        };
        let t0 = Instant::now();
        let report = solve_sharded(&inst, &cfg).map_err(|e| e.to_string())?;
        Ok::<_, String>((report, t0.elapsed().as_secs_f64() * 1e3))
    };
    let (serial, serial_ms) = arm(false)?;
    let (parallel, parallel_ms) = arm(true)?;
    let speedup = serial_ms / parallel_ms.max(1e-9);
    let deterministic = serial.selection == parallel.selection
        && serial.objective.to_bits() == parallel.objective.to_bits();
    let multi_core = host.available_parallelism > 1 && host.rayon_threads > 1;
    println!(
        "shard arm: n={n} x {} shards, serial {serial_ms:.0} ms vs parallel {parallel_ms:.0} ms \
         = {speedup:.2}x ({}; deterministic: {deterministic})",
        args.shards,
        if multi_core {
            "gate >= 1.5x enforced"
        } else {
            "1-core host: record-only"
        }
    );
    if !deterministic {
        eprintln!("megabench: SHARD DETERMINISM GATE FAILED: serial and parallel sweeps diverged");
        *checks_ok = false;
    }
    if multi_core && speedup < MIN_SPEEDUP {
        eprintln!(
            "megabench: SHARD SPEEDUP GATE FAILED: {speedup:.2}x < {MIN_SPEEDUP}x on a \
             {}-core host",
            host.available_parallelism
        );
        *checks_ok = false;
    }
    Ok(ShardArm {
        n,
        k: args.k,
        shards: args.shards,
        candidates: serial.candidates,
        objective: serial.objective,
        serial_ms,
        parallel_ms,
        speedup,
        deterministic,
        speedup_gate_enforced: multi_core,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("megabench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut checks_ok = true;

    let host = measure_host_parallelism(if args.quick { 2_000 } else { 20_000 }, 8, args.seed);
    println!(
        "host: available_parallelism={} rayon_threads={} probe shard speedup {:.2}x",
        host.available_parallelism, host.rayon_threads, host.shard_speedup
    );

    let coreset = match run_coreset_arm(&args, &mut checks_ok) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("megabench: coreset arm: {e}");
            return ExitCode::FAILURE;
        }
    };
    let shard = match run_shard_arm(&args, &host, &mut checks_ok) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("megabench: shard arm: {e}");
            return ExitCode::FAILURE;
        }
    };

    let report = Report {
        suite: "megabench".to_owned(),
        quick: args.quick,
        seed: args.seed,
        degree: DEGREE,
        host,
        coreset,
        shard,
        checks_ok,
    };
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_PR10.json"));
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("megabench: writing {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("megabench: wrote {}", out.display());
    if !checks_ok {
        eprintln!("megabench: gates FAILED");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
