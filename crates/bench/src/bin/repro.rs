//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [TARGETS...] [--trials N] [--out DIR] [--seed S] [--no-greedy1]
//!
//! TARGETS: all (default) | fig2 | fig3 | table1 | fig4 | fig5 | fig6 |
//!          fig7 | fig8 | fig9 | summary
//! ```
//!
//! Artifacts are written under `--out` (default `results/`); a summary
//! of what was produced and the headline numbers is printed to stdout.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use mmph_bench::experiments::{self, SweepOptions, ROOT_SEED};
use mmph_bench::render;
use mmph_geom::Norm;
use mmph_sim::gen::WeightScheme;

#[derive(Debug, Clone)]
struct Args {
    targets: Vec<String>,
    trials: usize,
    out: PathBuf,
    seed: u64,
    include_greedy1: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        targets: Vec::new(),
        trials: 50,
        out: PathBuf::from("results"),
        seed: ROOT_SEED,
        include_greedy1: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trials" => {
                let v = it.next().ok_or("--trials needs a value")?;
                args.trials = v.parse().map_err(|_| format!("bad --trials value: {v}"))?;
                if args.trials == 0 {
                    return Err("--trials must be >= 1".into());
                }
            }
            "--out" => {
                args.out = PathBuf::from(it.next().ok_or("--out needs a value")?);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed value: {v}"))?;
            }
            "--no-greedy1" => args.include_greedy1 = false,
            "--help" | "-h" => {
                println!(
                    "usage: repro [TARGETS...] [--trials N] [--out DIR] [--seed S] [--no-greedy1]\n\
                     targets: all fig2 fig3 table1 fig4 fig5 fig6 fig7 fig8 fig9 summary baselines"
                );
                std::process::exit(0);
            }
            t if !t.starts_with('-') => args.targets.push(t.to_owned()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if args.targets.is_empty() {
        args.targets.push("all".to_owned());
    }
    Ok(args)
}

fn wants(args: &Args, target: &str) -> bool {
    args.targets.iter().any(|t| t == target || t == "all")
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("repro: {e}");
            return ExitCode::FAILURE;
        }
    };
    let known = [
        "all",
        "fig2",
        "fig3",
        "table1",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "summary",
        "baselines",
    ];
    for t in &args.targets {
        if !known.contains(&t.as_str()) {
            eprintln!("repro: unknown target `{t}` (known: {})", known.join(" "));
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = run(&args) {
        eprintln!("repro: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run(args: &Args) -> std::io::Result<()> {
    let dir = &args.out;
    let opts = SweepOptions {
        trials: args.trials,
        include_greedy1: args.include_greedy1,
    };
    let t0 = Instant::now();
    println!(
        "repro: targets {:?}, {} trials/config, out = {}",
        args.targets,
        args.trials,
        dir.display()
    );

    if wants(args, "fig2") {
        let t = Instant::now();
        render::render_fig2(dir, &experiments::fig2())?;
        println!("fig2: bounds panels written ({:.1?})", t.elapsed());
    }

    if wants(args, "fig3") || wants(args, "table1") {
        let t = Instant::now();
        let run = experiments::fig3_table1(args.seed);
        if wants(args, "fig3") {
            render::render_fig3(dir, &run)?;
            println!("fig3: 12 example panels written ({:.1?})", t.elapsed());
        }
        if wants(args, "table1") {
            let md = render::render_table1(dir, &run)?;
            println!("table1 (per-round coverage rewards):\n{md}");
        }
    }

    let mut ratio_rows_all = Vec::new();
    let two_d: [(&str, &str, Norm, WeightScheme); 4] = [
        (
            "fig4",
            "Fig. 4 — 2-norm, 2-D, different weights",
            Norm::L2,
            WeightScheme::PAPER_WEIGHTED,
        ),
        (
            "fig5",
            "Fig. 5 — 2-norm, 2-D, same weight",
            Norm::L2,
            WeightScheme::Same,
        ),
        (
            "fig6",
            "Fig. 6 — 1-norm, 2-D, different weights",
            Norm::L1,
            WeightScheme::PAPER_WEIGHTED,
        ),
        (
            "fig7",
            "Fig. 7 — 1-norm, 2-D, same weight",
            Norm::L1,
            WeightScheme::Same,
        ),
    ];
    let need_sweeps_for_summary = wants(args, "summary");
    for (name, title, norm, weights) in two_d {
        if wants(args, name) || need_sweeps_for_summary {
            let t = Instant::now();
            let rows = experiments::ratio_sweep_2d(norm, weights, opts);
            if wants(args, name) {
                render::render_ratio_figure(dir, name, title, &rows)?;
                println!("{name}: 4 panels + csv written ({:.1?})", t.elapsed());
                println!("{}", render::ratio_markdown(title, &rows));
            }
            ratio_rows_all.extend(rows);
        }
    }

    let mut reward_rows_all = Vec::new();
    let three_d: [(&str, &str, WeightScheme); 2] = [
        (
            "fig8",
            "Fig. 8 — 1-norm, 3-D, different weights",
            WeightScheme::PAPER_WEIGHTED,
        ),
        (
            "fig9",
            "Fig. 9 — 1-norm, 3-D, same weight",
            WeightScheme::Same,
        ),
    ];
    for (name, title, weights) in three_d {
        if wants(args, name) || need_sweeps_for_summary {
            let t = Instant::now();
            let rows = experiments::reward_sweep_3d(weights, opts);
            if wants(args, name) {
                render::render_reward_figure(dir, name, title, &rows)?;
                println!("{name}: 4 panels + csv written ({:.1?})", t.elapsed());
            }
            reward_rows_all.extend(rows);
        }
    }

    if wants(args, "baselines") {
        let t = Instant::now();
        let rows = experiments::baseline_sweep(WeightScheme::PAPER_WEIGHTED, args.trials);
        let md = render::render_baselines(dir, &rows)?;
        println!("baselines: table written ({:.1?})\n{md}", t.elapsed());
    }

    if wants(args, "summary") {
        let agg2 = experiments::aggregate(&ratio_rows_all);
        let agg3 = experiments::aggregate_3d(&reward_rows_all);
        let md = render::render_summary(dir, &agg2, &agg3)?;
        println!("{md}");
    }

    println!("repro: done in {:.1?}", t0.elapsed());
    Ok(())
}
