//! `throughput` — the persisted batched-solving baseline behind
//! `BENCH_PR5.json`.
//!
//! ```text
//! throughput [--quick] [--out PATH] [--seed S] [--threads N] [--engine E]
//! ```
//!
//! Sweeps batch shapes (distinct instances × adjacent repeats) ×
//! {cold, warm-scratch} × {serial, parallel CSR build} through the
//! [`BatchRunner`] pipeline at the PR4 baseline scale (n=10⁴, k=16,
//! degree-pinned radius), and records:
//!
//! - per-arm throughput (requests/s) with warm-vs-cold speedups;
//! - the parallel-vs-serial CSR build ratio plus a byte-identity
//!   check of the two adjacency structures;
//! - the steady-state allocation count of the warm solve path,
//!   measured with a counting global allocator (must be 0);
//! - in full mode, perfsuite-style rows at n=10⁶ (lazy × sparse only)
//!   — the ROADMAP's "millions of users" scale.
//!
//! Every warm arm is verified bit-identical to the cold unbatched
//! reference in-binary; any mismatch, nonzero steady-state allocation
//! count, or CSR divergence exits non-zero so CI can run this binary
//! directly (`--quick` in the `throughput-smoke` job).

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use mmph_bench::perfrows::{build_instance, run_one, Row, DEFAULT_SEED, TARGET_DEGREE};
use mmph_core::{
    solve_rounds, verify_reports, BatchRunner, CsrScratch, EngineKind, Instance, OracleStrategy,
    RewardEngine, SolveScratch,
};
use serde::Serialize;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[derive(Debug, Clone)]
struct Args {
    quick: bool,
    out: PathBuf,
    seed: u64,
    threads: Option<usize>,
    engine: EngineKind,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: PathBuf::from("BENCH_PR5.json"),
        seed: DEFAULT_SEED,
        threads: None,
        engine: EngineKind::Sparse,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed value: {v}"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = Some(v.parse().map_err(|_| format!("bad --threads value: {v}"))?);
            }
            "--engine" => {
                let v = it.next().ok_or("--engine needs a value")?;
                args.engine = match v.as_str() {
                    "sparse" => EngineKind::Sparse,
                    "sparse-f32" => EngineKind::SparseF32,
                    other => {
                        return Err(format!(
                            "--engine must be sparse or sparse-f32, got {other}"
                        ))
                    }
                };
            }
            "--help" | "-h" => {
                println!(
                    "usage: throughput [--quick] [--out PATH] [--seed S] [--threads N] \
                     [--engine sparse|sparse-f32]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

/// One batch configuration's measured throughput.
#[derive(Debug, Clone, Serialize)]
struct Arm {
    distinct: usize,
    repeat: usize,
    mode: String,
    csr: String,
    requests: usize,
    workers: usize,
    wall_ms: f64,
    throughput_per_sec: f64,
    engines_reused: usize,
    mean_solve_ms: f64,
    verified: bool,
}

#[derive(Debug, Clone, Serialize)]
struct WarmCold {
    distinct: usize,
    repeat: usize,
    cold_rps: f64,
    warm_rps: f64,
    speedup: f64,
}

#[derive(Debug, Clone, Serialize)]
struct CsrBuild {
    n: usize,
    threads: usize,
    serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
    byte_identical: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    suite: String,
    quick: bool,
    seed: u64,
    n: usize,
    k: usize,
    engine: String,
    target_degree: f64,
    arms: Vec<Arm>,
    warm_vs_cold: Vec<WarmCold>,
    csr_build: CsrBuild,
    steady_state_allocs: Vec<(String, u64)>,
    huge_rows: Vec<Row>,
    checks_ok: bool,
}

/// Builds the request stream: `distinct` degree-pinned instances with
/// consecutive seeds, each repeated `repeat` times adjacently (the
/// serving pattern the warm path amortizes over).
fn stream(n: usize, k: usize, seed: u64, distinct: usize, repeat: usize) -> Vec<Instance<2>> {
    let mut out = Vec::with_capacity(distinct * repeat);
    for d in 0..distinct {
        let inst = build_instance(n, k, seed + d as u64);
        for _ in 0..repeat {
            out.push(inst.clone());
        }
    }
    out
}

fn arm(
    runner: &BatchRunner,
    insts: &[Instance<2>],
    distinct: usize,
    repeat: usize,
    mode: &str,
    csr: &str,
) -> (Arm, mmph_core::BatchReport) {
    let report = runner.run(insts);
    let a = Arm {
        distinct,
        repeat,
        mode: mode.to_owned(),
        csr: csr.to_owned(),
        requests: report.results.len(),
        workers: report.workers,
        wall_ms: report.wall_nanos as f64 / 1e6,
        throughput_per_sec: report.throughput(),
        engines_reused: report.engines_reused(),
        mean_solve_ms: report.total_solve_nanos() as f64 / report.results.len().max(1) as f64 / 1e6,
        verified: false,
    };
    (a, report)
}

/// Times serial vs parallel CSR construction on a fresh scratch each
/// and checks byte-identity of the resulting adjacency.
fn csr_build_check(inst: &Instance<2>) -> CsrBuild {
    let mut s1 = CsrScratch::new();
    let mut s2 = CsrScratch::new();
    // Warm both scratches so the comparison is build work, not growth.
    RewardEngine::sparse_with_scratch(inst, &mut s1, false).reclaim(&mut s1);
    RewardEngine::sparse_with_scratch(inst, &mut s2, true).reclaim(&mut s2);

    let t0 = Instant::now();
    let serial = RewardEngine::sparse_with_scratch(inst, &mut s1, false);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let parallel = RewardEngine::sparse_with_scratch(inst, &mut s2, true);
    let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;

    let (so, sd, si, sf, sw) = serial.csr_parts().expect("serial CSR present");
    let (po, pd, pi, pf, pw) = parallel.csr_parts().expect("parallel CSR present");
    fn bits_eq(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }
    let byte_identical = so == po && sd == pd && si == pi && bits_eq(sf, pf) && bits_eq(sw, pw);
    CsrBuild {
        n: inst.n(),
        threads: rayon::current_num_threads(),
        serial_ms,
        parallel_ms,
        speedup: serial_ms / parallel_ms,
        byte_identical,
    }
}

/// Counts allocations during a steady-state warm solve (after one
/// warmup solve on the same oracle + scratch). Must return 0.
fn steady_state_allocs(inst: &Instance<2>, strategy: OracleStrategy, engine: EngineKind) -> u64 {
    let runner = BatchRunner::new()
        .with_strategy(strategy)
        .with_engine(engine);
    let mut scratch = SolveScratch::new();
    let oracle = runner.build_oracle(inst, &mut scratch);
    solve_rounds(&oracle, &mut scratch); // warmup
    let before = ALLOCS.load(Ordering::Relaxed);
    solve_rounds(&oracle, &mut scratch);
    ALLOCS.load(Ordering::Relaxed) - before
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("throughput: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(threads) = args.threads {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("thread pool config");
    }
    let (n, k, distinct, repeats): (usize, usize, usize, &[usize]) = if args.quick {
        (2_000, 8, 2, &[1, 4])
    } else {
        (10_000, 16, 4, &[1, 2, 4, 8])
    };

    let mut arms = Vec::new();
    let mut warm_vs_cold = Vec::new();
    let mut checks_ok = true;

    let cold_runner = BatchRunner::new().with_warm(false).with_engine(args.engine);
    let warm_serial = BatchRunner::new().with_engine(args.engine);
    let warm_parallel = BatchRunner::new()
        .with_parallel_csr(true)
        .with_engine(args.engine);

    for &repeat in repeats {
        let insts = stream(n, k, args.seed, distinct, repeat);
        let (cold_arm, cold_report) = arm(&cold_runner, &insts, distinct, repeat, "cold", "serial");
        println!(
            "n={n} k={k} distinct={distinct} repeat={repeat} cold          {:>8.1} req/s",
            cold_arm.throughput_per_sec
        );
        let mut cold_arm = cold_arm;
        cold_arm.verified = true; // cold IS the unbatched reference
        let cold_rps = cold_arm.throughput_per_sec;
        arms.push(cold_arm);

        for (runner, csr) in [(&warm_serial, "serial"), (&warm_parallel, "parallel")] {
            let (mut warm_arm, warm_report) = arm(runner, &insts, distinct, repeat, "warm", csr);
            match verify_reports(&warm_report, &cold_report) {
                Ok(()) => warm_arm.verified = true,
                Err(e) => {
                    eprintln!("throughput: VERIFICATION FAILED (warm/{csr} repeat={repeat}): {e}");
                    checks_ok = false;
                }
            }
            println!(
                "n={n} k={k} distinct={distinct} repeat={repeat} warm/{csr:<8} {:>8.1} req/s  ({} engines reused, verified={})",
                warm_arm.throughput_per_sec, warm_arm.engines_reused, warm_arm.verified
            );
            if csr == "serial" {
                warm_vs_cold.push(WarmCold {
                    distinct,
                    repeat,
                    cold_rps,
                    warm_rps: warm_arm.throughput_per_sec,
                    speedup: warm_arm.throughput_per_sec / cold_rps,
                });
            }
            arms.push(warm_arm);
        }
    }

    for wc in &warm_vs_cold {
        println!(
            "warm/cold n={n} repeat={:>2}: {:>8.1} vs {:>8.1} req/s = {:.2}x",
            wc.repeat, wc.warm_rps, wc.cold_rps, wc.speedup
        );
    }

    // Parallel CSR build ratio + byte-identity, on one stream instance.
    let probe = build_instance(n, k, args.seed);
    let csr_build = csr_build_check(&probe);
    println!(
        "csr build n={n} threads={}: serial {:.2} ms vs parallel {:.2} ms = {:.2}x (byte-identical: {})",
        csr_build.threads, csr_build.serial_ms, csr_build.parallel_ms, csr_build.speedup,
        csr_build.byte_identical
    );
    if !csr_build.byte_identical {
        eprintln!("throughput: PARALLEL CSR DIVERGED from serial build");
        checks_ok = false;
    }

    // Zero-allocation steady state, per serving strategy.
    let alloc_probe = build_instance(if args.quick { 2_000 } else { 10_000 }, k, args.seed);
    let mut steady = Vec::new();
    for (name, strategy) in [("seq", OracleStrategy::Seq), ("lazy", OracleStrategy::Lazy)] {
        let allocs = steady_state_allocs(&alloc_probe, strategy, args.engine);
        println!("steady-state allocs ({name}): {allocs}");
        if allocs != 0 {
            eprintln!("throughput: STEADY-STATE SOLVE ALLOCATED ({name}: {allocs})");
            checks_ok = false;
        }
        steady.push((name.to_owned(), allocs));
    }

    // The "millions of users" rows (full mode only): n=10⁶, lazy ×
    // sparse, with the skipped columns recorded as in perfsuite.
    let mut huge_rows = Vec::new();
    if !args.quick {
        let huge_n = 1_000_000;
        let inst = build_instance(huge_n, 4, args.seed);
        for (ename, dirty) in [("sparse", false), ("sparse+dirty", true)] {
            let row = run_one(
                &inst,
                "lazy",
                OracleStrategy::Lazy,
                ename,
                EngineKind::Sparse,
                dirty,
            );
            println!(
                "huge n={huge_n} k=4 lazy {ename:<12} {:>10.2} ms  evals {:>9}  dirty-skips {:>7}",
                row.wall_ms, row.evals, row.evals_skipped
            );
            huge_rows.push(row);
        }
        for ename in ["scan", "kd"] {
            huge_rows.push(Row::skipped(huge_n, 4, "lazy", ename));
        }
        for ename in ["scan", "kd", "sparse", "sparse+dirty"] {
            huge_rows.push(Row::skipped(huge_n, 4, "seq", ename));
        }
        let ran: Vec<&Row> = huge_rows.iter().filter(|r| !r.skipped).collect();
        if ran.len() == 2 {
            if ran[0].selection != ran[1].selection {
                eprintln!("throughput: HUGE SELECTION MISMATCH sparse vs sparse+dirty");
                checks_ok = false;
            }
            if ran[1].evals > ran[0].evals {
                eprintln!("throughput: HUGE EVAL REGRESSION: dirty charged more than plain sparse");
                checks_ok = false;
            }
        }
    }

    let report = Report {
        suite: "throughput".to_owned(),
        quick: args.quick,
        seed: args.seed,
        n,
        k,
        engine: args.engine.name().to_owned(),
        target_degree: TARGET_DEGREE,
        arms,
        warm_vs_cold,
        csr_build,
        steady_state_allocs: steady,
        huge_rows,
        checks_ok,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(e) = std::fs::write(&args.out, json + "\n") {
        eprintln!("throughput: writing {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!("throughput: wrote {}", args.out.display());

    if !checks_ok {
        eprintln!("throughput: cross-checks FAILED");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
