//! `perfsuite` — the persisted engine-performance baseline behind
//! `BENCH_PR4.json`.
//!
//! ```text
//! perfsuite [--quick] [--out PATH] [--seed S]
//! ```
//!
//! Sweeps n × k × oracle strategy × evaluation engine over uniform
//! paper-space instances whose radius is chosen so the expected
//! neighbor degree stays ~48 at every n, and records wall time,
//! charged/skipped evaluation counts, and CSR build cost per row.
//!
//! The suite doubles as a correctness gate: within each
//! `(n, k, strategy)` group every engine must select byte-identical
//! centers, and the sparse engine must never charge more evaluations
//! than the dense scan. Violations exit non-zero so CI can run this
//! binary directly.

use std::f64::consts::PI;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use mmph_core::{EngineKind, GainOracle, Instance, OracleStrategy, Residuals};
use mmph_sim::gen::{PointDistribution, SpaceSpec, WeightScheme};
use mmph_sim::rng::SeedSeq;
use serde::Serialize;

const DEFAULT_SEED: u64 = 0x5EED_BA5E;
/// Target expected neighbor count within radius, held constant across n.
const TARGET_DEGREE: f64 = 48.0;
/// Dense scan is O(n) per eval; above this n it is skipped (recorded,
/// not silently dropped).
const SCAN_MAX_N: usize = 10_000;

#[derive(Debug, Clone)]
struct Args {
    quick: bool,
    out: PathBuf,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: PathBuf::from("BENCH_PR4.json"),
        seed: DEFAULT_SEED,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed value: {v}"))?;
            }
            "--help" | "-h" => {
                println!("usage: perfsuite [--quick] [--out PATH] [--seed S]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

#[derive(Debug, Clone, Serialize)]
struct Row {
    n: usize,
    k: usize,
    strategy: String,
    engine: String,
    skipped: bool,
    wall_ms: f64,
    evals: u64,
    evals_skipped: u64,
    csr_build_ms: f64,
    csr_bytes: usize,
    reward: f64,
    selection: Vec<usize>,
}

#[derive(Debug, Clone, Serialize)]
struct Speedup {
    n: usize,
    k: usize,
    strategy: String,
    scan_wall_ms: f64,
    sparse_wall_ms: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    suite: String,
    quick: bool,
    seed: u64,
    target_degree: f64,
    rows: Vec<Row>,
    speedups: Vec<Speedup>,
    checks_ok: bool,
}

/// The four engine columns of the sweep: forced engine kind plus
/// whether the dirty-region CELF upgrade is enabled on top.
const ENGINES: [(&str, EngineKind, bool); 4] = [
    ("scan", EngineKind::Scan, false),
    ("kd", EngineKind::Kd, false),
    ("sparse", EngineKind::Sparse, false),
    ("sparse+dirty", EngineKind::Sparse, true),
];

fn strategies() -> [(&'static str, OracleStrategy); 2] {
    [("seq", OracleStrategy::Seq), ("lazy", OracleStrategy::Lazy)]
}

/// Radius keeping the expected within-radius degree at `TARGET_DEGREE`
/// for n uniform points in the paper's `[0, 4]^2` space.
fn radius_for(n: usize) -> f64 {
    SpaceSpec::PAPER.extent() * (TARGET_DEGREE / (PI * n as f64)).sqrt()
}

fn build_instance(n: usize, k: usize, seed: u64) -> Instance<2> {
    let seeds = SeedSeq::new(seed).child(n as u64);
    let points = PointDistribution::Uniform
        .sample::<2>(n, SpaceSpec::PAPER, seeds)
        .expect("uniform sampling cannot fail");
    let weights = WeightScheme::PAPER_WEIGHTED
        .sample(n, seeds)
        .expect("weight sampling cannot fail");
    Instance::new(points, weights, radius_for(n), k, mmph_geom::Norm::L2)
        .expect("generated instance is valid")
}

/// One timed greedy run: oracle construction (including any index /
/// CSR build) plus k rounds of argmax-and-commit.
fn run_one(
    inst: &Instance<2>,
    strategy: OracleStrategy,
    kind: EngineKind,
    dirty: bool,
) -> (f64, u64, u64, f64, usize, f64, Vec<usize>) {
    let t0 = Instant::now();
    let oracle = GainOracle::with_engine(inst, kind, strategy).with_dirty_region(dirty);
    let mut residuals = Residuals::new(inst.n());
    let mut picks = Vec::with_capacity(inst.k());
    let mut reward = 0.0;
    for _ in 0..inst.k() {
        let best = oracle.best_candidate(&residuals);
        picks.push(best.index);
        reward += residuals.apply(inst, inst.point(best.index));
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (build_ms, bytes) = match oracle.sparse_stats() {
        Some(s) => (s.build_nanos as f64 / 1e6, s.bytes),
        None => (0.0, 0),
    };
    (
        wall_ms,
        oracle.evals(),
        oracle.dirty_skips(),
        build_ms,
        bytes,
        reward,
        picks,
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perfsuite: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sizes: &[usize] = if args.quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let ks = [4usize, 16];

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut checks_ok = true;

    for &n in sizes {
        for &k in &ks {
            let inst = build_instance(n, k, args.seed);
            for (sname, strategy) in strategies() {
                let mut group: Vec<&Row> = Vec::new();
                let start = rows.len();
                for (ename, kind, dirty) in ENGINES {
                    if kind == EngineKind::Scan && n > SCAN_MAX_N {
                        rows.push(Row {
                            n,
                            k,
                            strategy: sname.to_owned(),
                            engine: ename.to_owned(),
                            skipped: true,
                            wall_ms: 0.0,
                            evals: 0,
                            evals_skipped: 0,
                            csr_build_ms: 0.0,
                            csr_bytes: 0,
                            reward: 0.0,
                            selection: Vec::new(),
                        });
                        println!(
                            "n={n:>6} k={k:>2} {sname:<4} {ename:<12} skipped (n > {SCAN_MAX_N})"
                        );
                        continue;
                    }
                    let (wall_ms, evals, skips, build_ms, bytes, reward, picks) =
                        run_one(&inst, strategy, kind, dirty);
                    println!(
                        "n={n:>6} k={k:>2} {sname:<4} {ename:<12} {wall_ms:>10.2} ms  evals {evals:>9}  dirty-skips {skips:>7}"
                    );
                    rows.push(Row {
                        n,
                        k,
                        strategy: sname.to_owned(),
                        engine: ename.to_owned(),
                        skipped: false,
                        wall_ms,
                        evals,
                        evals_skipped: skips,
                        csr_build_ms: build_ms,
                        csr_bytes: bytes,
                        reward,
                        selection: picks,
                    });
                }
                group.extend(rows[start..].iter());

                // Cross-check 1: every engine in the group selected
                // byte-identical centers.
                let reference = group.iter().find(|r| !r.skipped);
                if let Some(reference) = reference {
                    for row in &group {
                        if !row.skipped && row.selection != reference.selection {
                            eprintln!(
                                "perfsuite: SELECTION MISMATCH at n={n} k={k} {sname}: {} {:?} vs {} {:?}",
                                reference.engine, reference.selection, row.engine, row.selection
                            );
                            checks_ok = false;
                        }
                    }
                }
                // Cross-check 2: sparse never charges more evals than
                // scan, and dirty-region never charges more than plain
                // sparse.
                let find = |name: &str| group.iter().find(|r| r.engine == name && !r.skipped);
                if let (Some(scan), Some(sparse)) = (find("scan"), find("sparse")) {
                    if sparse.evals > scan.evals {
                        eprintln!(
                            "perfsuite: EVAL REGRESSION at n={n} k={k} {sname}: sparse {} > scan {}",
                            sparse.evals, scan.evals
                        );
                        checks_ok = false;
                    }
                    speedups.push(Speedup {
                        n,
                        k,
                        strategy: sname.to_owned(),
                        scan_wall_ms: scan.wall_ms,
                        sparse_wall_ms: sparse.wall_ms,
                        speedup: scan.wall_ms / sparse.wall_ms,
                    });
                }
                if let (Some(sparse), Some(dirty)) = (find("sparse"), find("sparse+dirty")) {
                    if dirty.evals > sparse.evals {
                        eprintln!(
                            "perfsuite: EVAL REGRESSION at n={n} k={k} {sname}: sparse+dirty {} > sparse {}",
                            dirty.evals, sparse.evals
                        );
                        checks_ok = false;
                    }
                }
            }
        }
    }

    for s in &speedups {
        println!(
            "speedup n={:>6} k={:>2} {:<4} scan/sparse = {:.1}x",
            s.n, s.k, s.strategy, s.speedup
        );
    }

    let report = Report {
        suite: "perfsuite".to_owned(),
        quick: args.quick,
        seed: args.seed,
        target_degree: TARGET_DEGREE,
        rows,
        speedups,
        checks_ok,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(e) = std::fs::write(&args.out, json + "\n") {
        eprintln!("perfsuite: writing {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!("perfsuite: wrote {}", args.out.display());

    if !checks_ok {
        eprintln!("perfsuite: cross-checks FAILED");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
