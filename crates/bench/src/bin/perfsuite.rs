//! `perfsuite` — the persisted engine-performance baseline behind
//! `BENCH_PR4.json`, and (with `--kernels`) the blocked-kernel /
//! mixed-precision baseline behind `BENCH_PR8.json`.
//!
//! ```text
//! perfsuite [--quick] [--huge] [--out PATH] [--seed S]
//! perfsuite --kernels [--quick] [--out PATH] [--seed S]
//! ```
//!
//! Sweeps n × k × oracle strategy × evaluation engine over uniform
//! paper-space instances whose radius is chosen so the expected
//! neighbor degree stays ~48 at every n, and records wall time,
//! charged/skipped evaluation counts, and CSR build cost per row.
//! `--huge` appends an n=10⁶ group — the "millions of users" scale of
//! the ROADMAP — where only the sparse engines under the lazy strategy
//! are run (scan, kd and seq are recorded as skipped rows).
//!
//! `--kernels` runs the PR8 microbench instead: per n it measures the
//! blocked lane kernel against the scalar per-entry reference walk
//! (evals/sec at a mid-solve residual state, best of 3 trials) and the
//! `f32` mixed-precision engine against the `f64` one (lazy solve wall
//! time, measured per-eval and end-to-end objective error against the
//! DESIGN.md bounds).
//!
//! Both modes double as correctness gates: the sweep requires
//! byte-identical selections per `(n, k, strategy)` group and
//! monotone eval counts; the kernel mode requires blocked/scalar bit
//! identity, blocked throughput at least matching scalar, and all
//! measured `f32` errors within their documented bounds. Violations
//! exit non-zero so CI can run this binary directly.

use std::hint::black_box;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use mmph_bench::perfrows::{
    build_instance, measure_host_parallelism, run_one, HostParallelism, Row, DEFAULT_SEED,
    SCAN_MAX_N, TARGET_DEGREE,
};
use mmph_core::{objective, EngineKind, OracleStrategy, Residuals, RewardEngine, SPARSE_LANES};
use serde::Serialize;

/// Above this n only `(lazy, sparse*)` combinations run; everything
/// else is recorded as skipped.
const HUGE_MIN_N: usize = 1_000_000;

#[derive(Debug, Clone)]
struct Args {
    quick: bool,
    huge: bool,
    kernels: bool,
    out: Option<PathBuf>,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        huge: false,
        kernels: false,
        out: None,
        seed: DEFAULT_SEED,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--huge" => args.huge = true,
            "--kernels" => args.kernels = true,
            "--out" => args.out = Some(PathBuf::from(it.next().ok_or("--out needs a value")?)),
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed value: {v}"))?;
            }
            "--help" | "-h" => {
                println!("usage: perfsuite [--kernels] [--quick] [--huge] [--out PATH] [--seed S]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

#[derive(Debug, Clone, Serialize)]
struct Speedup {
    n: usize,
    k: usize,
    strategy: String,
    scan_wall_ms: f64,
    sparse_wall_ms: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    suite: String,
    quick: bool,
    huge: bool,
    seed: u64,
    target_degree: f64,
    host: HostParallelism,
    rows: Vec<Row>,
    speedups: Vec<Speedup>,
    checks_ok: bool,
}

/// The four engine columns of the sweep: forced engine kind plus
/// whether the dirty-region CELF upgrade is enabled on top.
const ENGINES: [(&str, EngineKind, bool); 4] = [
    ("scan", EngineKind::Scan, false),
    ("kd", EngineKind::Kd, false),
    ("sparse", EngineKind::Sparse, false),
    ("sparse+dirty", EngineKind::Sparse, true),
];

fn strategies() -> [(&'static str, OracleStrategy); 2] {
    [("seq", OracleStrategy::Seq), ("lazy", OracleStrategy::Lazy)]
}

/// Sweeps one `(n, k)` cell, appending rows/speedups and running the
/// in-binary cross-checks. Returns false when a check failed.
fn sweep_cell(
    n: usize,
    k: usize,
    seed: u64,
    rows: &mut Vec<Row>,
    speedups: &mut Vec<Speedup>,
) -> bool {
    let mut checks_ok = true;
    let inst = build_instance(n, k, seed);
    for (sname, strategy) in strategies() {
        let start = rows.len();
        for (ename, kind, dirty) in ENGINES {
            let scan_too_big = kind == EngineKind::Scan && n > SCAN_MAX_N;
            // At huge n only the ROADMAP-scale serving combination
            // (lazy × sparse) runs; O(n²)-leaning columns are recorded
            // as skipped rather than silently dropped.
            let huge_cut = n >= HUGE_MIN_N
                && !(strategy == OracleStrategy::Lazy && kind == EngineKind::Sparse);
            if scan_too_big || huge_cut {
                rows.push(Row::skipped(n, k, sname, ename));
                let why = if scan_too_big {
                    format!("n > {SCAN_MAX_N}")
                } else {
                    format!("huge n: only lazy/sparse runs at n >= {HUGE_MIN_N}")
                };
                println!("n={n:>7} k={k:>2} {sname:<4} {ename:<12} skipped ({why})");
                continue;
            }
            let row = run_one(&inst, sname, strategy, ename, kind, dirty);
            println!(
                "n={n:>7} k={k:>2} {sname:<4} {ename:<12} {:>10.2} ms  evals {:>9}  dirty-skips {:>7}",
                row.wall_ms, row.evals, row.evals_skipped
            );
            rows.push(row);
        }
        let group: Vec<&Row> = rows[start..].iter().collect();

        // Cross-check 1: every engine in the group selected
        // byte-identical centers.
        if let Some(reference) = group.iter().find(|r| !r.skipped) {
            for row in &group {
                if !row.skipped && row.selection != reference.selection {
                    eprintln!(
                        "perfsuite: SELECTION MISMATCH at n={n} k={k} {sname}: {} {:?} vs {} {:?}",
                        reference.engine, reference.selection, row.engine, row.selection
                    );
                    checks_ok = false;
                }
            }
        }
        // Cross-check 2: sparse never charges more evals than scan,
        // and dirty-region never charges more than plain sparse.
        let find = |name: &str| group.iter().find(|r| r.engine == name && !r.skipped);
        if let (Some(scan), Some(sparse)) = (find("scan"), find("sparse")) {
            if sparse.evals > scan.evals {
                eprintln!(
                    "perfsuite: EVAL REGRESSION at n={n} k={k} {sname}: sparse {} > scan {}",
                    sparse.evals, scan.evals
                );
                checks_ok = false;
            }
            speedups.push(Speedup {
                n,
                k,
                strategy: sname.to_owned(),
                scan_wall_ms: scan.wall_ms,
                sparse_wall_ms: sparse.wall_ms,
                speedup: scan.wall_ms / sparse.wall_ms,
            });
        }
        if let (Some(sparse), Some(dirty)) = (find("sparse"), find("sparse+dirty")) {
            if dirty.evals > sparse.evals {
                eprintln!(
                    "perfsuite: EVAL REGRESSION at n={n} k={k} {sname}: sparse+dirty {} > sparse {}",
                    dirty.evals, sparse.evals
                );
                checks_ok = false;
            }
        }
    }
    checks_ok
}

/// One blocked-vs-scalar gain-throughput measurement at a mid-solve
/// residual state.
#[derive(Debug, Clone, Serialize)]
struct KernelRow {
    n: usize,
    k: usize,
    /// Greedy rounds committed before timing, so residuals are partially
    /// consumed the way a real solve sees them.
    mid_rounds: usize,
    /// Gain evaluations per timed trial (full eval-order passes).
    evals_per_trial: usize,
    blocked_evals_per_sec: f64,
    scalar_evals_per_sec: f64,
    blocked_over_scalar: f64,
    /// Blocked and scalar gains agreed to the bit at the timed state.
    bit_identical: bool,
}

/// One f32-vs-f64 lazy-solve comparison with the measured precision
/// errors against the DESIGN.md bounds.
#[derive(Debug, Clone, Serialize)]
struct PrecisionRow {
    n: usize,
    k: usize,
    f64_wall_ms: f64,
    f32_wall_ms: f64,
    f64_objective: f64,
    f32_objective: f64,
    /// |f64 − f32| of the true (recomputed in f64) objectives.
    objective_gap: f64,
    /// DESIGN.md end-to-end bound: k · 2⁻²⁰ · f64 objective.
    objective_gap_bound: f64,
    /// Largest |g32 − g64| over all candidates at fresh residuals.
    max_per_eval_error: f64,
    /// DESIGN.md per-eval bound at the heaviest row: 2⁻²² · max mass.
    per_eval_error_bound: f64,
    /// Reported reward vs recomputed objective (both engines apply
    /// rewards in exact f64, so these are summation-order noise only).
    reported_vs_true_f64: f64,
    reported_vs_true_f32: f64,
    selections_match: bool,
}

#[derive(Debug, Serialize)]
struct KernelReport {
    suite: String,
    quick: bool,
    seed: u64,
    target_degree: f64,
    lanes: usize,
    host: HostParallelism,
    kernel_rows: Vec<KernelRow>,
    precision_rows: Vec<PrecisionRow>,
    checks_ok: bool,
}

/// Documented per-eval relative error of the f32 engine (DESIGN.md
/// "Kernel layout & precision").
const F32_PER_EVAL_REL: f64 = 1.0 / (1u64 << 22) as f64;
/// Documented end-to-end relative objective drift per selected center.
const F32_END_TO_END_REL: f64 = 1.0 / (1u64 << 20) as f64;

/// Minimum of `trials` timed runs of `pass`, in seconds.
fn best_of(trials: usize, mut pass: impl FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let t0 = Instant::now();
        black_box(pass());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The `--kernels` microbench: blocked-vs-scalar gain throughput and
/// f32-vs-f64 solve arms, per instance size. Returns false when a
/// correctness or performance gate failed.
fn kernel_cell(
    n: usize,
    k: usize,
    seed: u64,
    kernel_rows: &mut Vec<KernelRow>,
    precision_rows: &mut Vec<PrecisionRow>,
) -> bool {
    let mut checks_ok = true;
    let inst = build_instance(n, k, seed);

    // --- Blocked vs scalar, f64 engine, mid-solve residual state. ---
    let engine = RewardEngine::sparse(&inst);
    let mut residuals = Residuals::new(inst.n());
    let mid_rounds = k / 2;
    for _ in 0..mid_rounds {
        let mut best = 0usize;
        let mut best_gain = f64::NEG_INFINITY;
        for i in 0..inst.n() {
            let g = engine.candidate_gain(i, &residuals);
            if g > best_gain {
                best_gain = g;
                best = i;
            }
        }
        residuals.apply(&inst, inst.point(best));
    }
    let mut bit_identical = true;
    for i in 0..inst.n() {
        let blocked = engine.candidate_gain(i, &residuals);
        let scalar = engine
            .candidate_gain_unblocked(i, &residuals)
            .expect("sparse");
        if blocked.to_bits() != scalar.to_bits() {
            eprintln!(
                "perfsuite: KERNEL BIT MISMATCH n={n} candidate {i}: blocked {blocked} vs scalar {scalar}"
            );
            bit_identical = false;
            checks_ok = false;
            break;
        }
    }
    // Both kernels walk candidates in storage order so the comparison
    // is purely the inner loop, not the memory access pattern.
    let order: Vec<u32> = engine.eval_order().expect("sparse").to_vec();
    let reps = (2_000_000 / n).max(1);
    let evals_per_trial = n * reps;
    let time_pass = |scalar: bool| {
        best_of(3, || {
            let mut acc = 0.0;
            for _ in 0..reps {
                for &i in &order {
                    acc += if scalar {
                        engine
                            .candidate_gain_unblocked(i as usize, &residuals)
                            .expect("sparse")
                    } else {
                        engine.candidate_gain(i as usize, &residuals)
                    };
                }
            }
            acc
        })
    };
    let blocked_secs = time_pass(false);
    let scalar_secs = time_pass(true);
    let blocked_eps = evals_per_trial as f64 / blocked_secs;
    let scalar_eps = evals_per_trial as f64 / scalar_secs;
    let ratio = blocked_eps / scalar_eps;
    println!(
        "kernel n={n:>7}: blocked {blocked_eps:>12.0} evals/s vs scalar {scalar_eps:>12.0} = {ratio:.2}x (bit-identical: {bit_identical})"
    );
    if ratio < 1.0 {
        eprintln!("perfsuite: BLOCKED KERNEL SLOWER THAN SCALAR at n={n} ({ratio:.2}x)");
        checks_ok = false;
    }
    kernel_rows.push(KernelRow {
        n,
        k,
        mid_rounds,
        evals_per_trial,
        blocked_evals_per_sec: blocked_eps,
        scalar_evals_per_sec: scalar_eps,
        blocked_over_scalar: ratio,
        bit_identical,
    });

    // Fresh-state f64 gains double as the per-row masses of the error
    // model (every stored frac <= 1).
    let fresh = Residuals::new(inst.n());
    let g64: Vec<f64> = (0..inst.n())
        .map(|i| engine.candidate_gain(i, &fresh))
        .collect();
    drop(engine);

    // --- f32 vs f64: per-eval error at fresh residuals. ---
    let engine32 = RewardEngine::sparse_f32(&inst);
    let mut max_err = 0.0f64;
    let mut max_mass = 0.0f64;
    for (i, &m) in g64.iter().enumerate() {
        let err = (engine32.candidate_gain(i, &fresh) - m).abs();
        max_err = max_err.max(err);
        max_mass = max_mass.max(m);
        if err > F32_PER_EVAL_REL * m + 1e-12 {
            eprintln!(
                "perfsuite: F32 PER-EVAL ERROR OUT OF BOUND n={n} candidate {i}: {err:e} > {:e}",
                F32_PER_EVAL_REL * m
            );
            checks_ok = false;
        }
    }
    drop(engine32);

    // --- f32 vs f64: full lazy solve arms. ---
    let row64 = run_one(
        &inst,
        "lazy",
        OracleStrategy::Lazy,
        "sparse",
        EngineKind::Sparse,
        false,
    );
    let row32 = run_one(
        &inst,
        "lazy",
        OracleStrategy::Lazy,
        "sparse-f32",
        EngineKind::SparseF32,
        false,
    );
    let centers = |row: &Row| -> Vec<_> { row.selection.iter().map(|&i| *inst.point(i)).collect() };
    let obj64 = objective(&inst, &centers(&row64));
    let obj32 = objective(&inst, &centers(&row32));
    let gap = (obj64 - obj32).abs();
    let gap_bound = k as f64 * F32_END_TO_END_REL * obj64 + 1e-9;
    let rvt64 = (row64.reward - obj64).abs();
    let rvt32 = (row32.reward - obj32).abs();
    println!(
        "precision n={n:>7}: f64 {:.2} ms vs f32 {:.2} ms; objective gap {gap:.3e} (bound {gap_bound:.3e}); max per-eval err {max_err:.3e}",
        row64.wall_ms, row32.wall_ms
    );
    if gap > gap_bound {
        eprintln!("perfsuite: F32 OBJECTIVE GAP OUT OF BOUND n={n}: {gap:e} > {gap_bound:e}");
        checks_ok = false;
    }
    for (name, rvt, obj) in [("f64", rvt64, obj64), ("f32", rvt32, obj32)] {
        if rvt > 1e-9 * obj.max(1.0) {
            eprintln!(
                "perfsuite: {name} REPORTED REWARD DRIFTED FROM TRUE OBJECTIVE n={n}: {rvt:e}"
            );
            checks_ok = false;
        }
    }
    precision_rows.push(PrecisionRow {
        n,
        k,
        f64_wall_ms: row64.wall_ms,
        f32_wall_ms: row32.wall_ms,
        f64_objective: obj64,
        f32_objective: obj32,
        objective_gap: gap,
        objective_gap_bound: gap_bound,
        max_per_eval_error: max_err,
        per_eval_error_bound: F32_PER_EVAL_REL * max_mass,
        reported_vs_true_f64: rvt64,
        reported_vs_true_f32: rvt32,
        selections_match: row64.selection == row32.selection,
    });
    checks_ok
}

/// The shared host-concurrency probe: cheap in `--quick` mode, a
/// slightly larger solve otherwise so per-shard work dominates the
/// scheduling overhead being measured.
fn host_probe(args: &Args) -> HostParallelism {
    let probe_n = if args.quick { 2_000 } else { 20_000 };
    let host = measure_host_parallelism(probe_n, 8, args.seed);
    println!(
        "host: available_parallelism={} rayon_threads={} shard speedup {:.2}x (serial {:.1} ms / parallel {:.1} ms)",
        host.available_parallelism,
        host.rayon_threads,
        host.shard_speedup,
        host.shard_serial_ms,
        host.shard_parallel_ms
    );
    host
}

fn run_kernels(args: &Args) -> ExitCode {
    let sizes: Vec<usize> = if args.quick {
        vec![10_000]
    } else {
        vec![10_000, 100_000, 1_000_000]
    };
    let k = 16;
    let mut kernel_rows = Vec::new();
    let mut precision_rows = Vec::new();
    let mut checks_ok = true;
    for &n in &sizes {
        checks_ok &= kernel_cell(n, k, args.seed, &mut kernel_rows, &mut precision_rows);
    }
    let report = KernelReport {
        suite: "perfsuite-kernels".to_owned(),
        quick: args.quick,
        seed: args.seed,
        target_degree: TARGET_DEGREE,
        lanes: SPARSE_LANES,
        host: host_probe(args),
        kernel_rows,
        precision_rows,
        checks_ok,
    };
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_PR8.json"));
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("perfsuite: writing {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("perfsuite: wrote {}", out.display());
    if !checks_ok {
        eprintln!("perfsuite: kernel checks FAILED");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perfsuite: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.kernels {
        return run_kernels(&args);
    }
    let mut sizes: Vec<usize> = if args.quick {
        vec![1_000, 10_000]
    } else {
        vec![1_000, 10_000, 100_000]
    };
    if args.huge {
        sizes.push(1_000_000);
    }
    let ks = [4usize, 16];

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut checks_ok = true;

    for &n in &sizes {
        for &k in &ks {
            checks_ok &= sweep_cell(n, k, args.seed, &mut rows, &mut speedups);
        }
    }

    for s in &speedups {
        println!(
            "speedup n={:>6} k={:>2} {:<4} scan/sparse = {:.1}x",
            s.n, s.k, s.strategy, s.speedup
        );
    }

    let report = Report {
        suite: "perfsuite".to_owned(),
        quick: args.quick,
        huge: args.huge,
        seed: args.seed,
        target_degree: TARGET_DEGREE,
        host: host_probe(&args),
        rows,
        speedups,
        checks_ok,
    };
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_PR4.json"));
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("perfsuite: writing {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("perfsuite: wrote {}", out.display());

    if !checks_ok {
        eprintln!("perfsuite: cross-checks FAILED");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
