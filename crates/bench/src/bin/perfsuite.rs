//! `perfsuite` — the persisted engine-performance baseline behind
//! `BENCH_PR4.json`.
//!
//! ```text
//! perfsuite [--quick] [--huge] [--out PATH] [--seed S]
//! ```
//!
//! Sweeps n × k × oracle strategy × evaluation engine over uniform
//! paper-space instances whose radius is chosen so the expected
//! neighbor degree stays ~48 at every n, and records wall time,
//! charged/skipped evaluation counts, and CSR build cost per row.
//! `--huge` appends an n=10⁶ group — the "millions of users" scale of
//! the ROADMAP — where only the sparse engines under the lazy strategy
//! are run (scan, kd and seq are recorded as skipped rows).
//!
//! The suite doubles as a correctness gate: within each
//! `(n, k, strategy)` group every engine must select byte-identical
//! centers, and the sparse engine must never charge more evaluations
//! than the dense scan. Violations exit non-zero so CI can run this
//! binary directly.

use std::path::PathBuf;
use std::process::ExitCode;

use mmph_bench::perfrows::{build_instance, run_one, Row, DEFAULT_SEED, SCAN_MAX_N, TARGET_DEGREE};
use mmph_core::{EngineKind, OracleStrategy};
use serde::Serialize;

/// Above this n only `(lazy, sparse*)` combinations run; everything
/// else is recorded as skipped.
const HUGE_MIN_N: usize = 1_000_000;

#[derive(Debug, Clone)]
struct Args {
    quick: bool,
    huge: bool,
    out: PathBuf,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        huge: false,
        out: PathBuf::from("BENCH_PR4.json"),
        seed: DEFAULT_SEED,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--huge" => args.huge = true,
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed value: {v}"))?;
            }
            "--help" | "-h" => {
                println!("usage: perfsuite [--quick] [--huge] [--out PATH] [--seed S]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

#[derive(Debug, Clone, Serialize)]
struct Speedup {
    n: usize,
    k: usize,
    strategy: String,
    scan_wall_ms: f64,
    sparse_wall_ms: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    suite: String,
    quick: bool,
    huge: bool,
    seed: u64,
    target_degree: f64,
    rows: Vec<Row>,
    speedups: Vec<Speedup>,
    checks_ok: bool,
}

/// The four engine columns of the sweep: forced engine kind plus
/// whether the dirty-region CELF upgrade is enabled on top.
const ENGINES: [(&str, EngineKind, bool); 4] = [
    ("scan", EngineKind::Scan, false),
    ("kd", EngineKind::Kd, false),
    ("sparse", EngineKind::Sparse, false),
    ("sparse+dirty", EngineKind::Sparse, true),
];

fn strategies() -> [(&'static str, OracleStrategy); 2] {
    [("seq", OracleStrategy::Seq), ("lazy", OracleStrategy::Lazy)]
}

/// Sweeps one `(n, k)` cell, appending rows/speedups and running the
/// in-binary cross-checks. Returns false when a check failed.
fn sweep_cell(
    n: usize,
    k: usize,
    seed: u64,
    rows: &mut Vec<Row>,
    speedups: &mut Vec<Speedup>,
) -> bool {
    let mut checks_ok = true;
    let inst = build_instance(n, k, seed);
    for (sname, strategy) in strategies() {
        let start = rows.len();
        for (ename, kind, dirty) in ENGINES {
            let scan_too_big = kind == EngineKind::Scan && n > SCAN_MAX_N;
            // At huge n only the ROADMAP-scale serving combination
            // (lazy × sparse) runs; O(n²)-leaning columns are recorded
            // as skipped rather than silently dropped.
            let huge_cut = n >= HUGE_MIN_N
                && !(strategy == OracleStrategy::Lazy && kind == EngineKind::Sparse);
            if scan_too_big || huge_cut {
                rows.push(Row::skipped(n, k, sname, ename));
                let why = if scan_too_big {
                    format!("n > {SCAN_MAX_N}")
                } else {
                    format!("huge n: only lazy/sparse runs at n >= {HUGE_MIN_N}")
                };
                println!("n={n:>7} k={k:>2} {sname:<4} {ename:<12} skipped ({why})");
                continue;
            }
            let row = run_one(&inst, sname, strategy, ename, kind, dirty);
            println!(
                "n={n:>7} k={k:>2} {sname:<4} {ename:<12} {:>10.2} ms  evals {:>9}  dirty-skips {:>7}",
                row.wall_ms, row.evals, row.evals_skipped
            );
            rows.push(row);
        }
        let group: Vec<&Row> = rows[start..].iter().collect();

        // Cross-check 1: every engine in the group selected
        // byte-identical centers.
        if let Some(reference) = group.iter().find(|r| !r.skipped) {
            for row in &group {
                if !row.skipped && row.selection != reference.selection {
                    eprintln!(
                        "perfsuite: SELECTION MISMATCH at n={n} k={k} {sname}: {} {:?} vs {} {:?}",
                        reference.engine, reference.selection, row.engine, row.selection
                    );
                    checks_ok = false;
                }
            }
        }
        // Cross-check 2: sparse never charges more evals than scan,
        // and dirty-region never charges more than plain sparse.
        let find = |name: &str| group.iter().find(|r| r.engine == name && !r.skipped);
        if let (Some(scan), Some(sparse)) = (find("scan"), find("sparse")) {
            if sparse.evals > scan.evals {
                eprintln!(
                    "perfsuite: EVAL REGRESSION at n={n} k={k} {sname}: sparse {} > scan {}",
                    sparse.evals, scan.evals
                );
                checks_ok = false;
            }
            speedups.push(Speedup {
                n,
                k,
                strategy: sname.to_owned(),
                scan_wall_ms: scan.wall_ms,
                sparse_wall_ms: sparse.wall_ms,
                speedup: scan.wall_ms / sparse.wall_ms,
            });
        }
        if let (Some(sparse), Some(dirty)) = (find("sparse"), find("sparse+dirty")) {
            if dirty.evals > sparse.evals {
                eprintln!(
                    "perfsuite: EVAL REGRESSION at n={n} k={k} {sname}: sparse+dirty {} > sparse {}",
                    dirty.evals, sparse.evals
                );
                checks_ok = false;
            }
        }
    }
    checks_ok
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perfsuite: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut sizes: Vec<usize> = if args.quick {
        vec![1_000, 10_000]
    } else {
        vec![1_000, 10_000, 100_000]
    };
    if args.huge {
        sizes.push(1_000_000);
    }
    let ks = [4usize, 16];

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut checks_ok = true;

    for &n in &sizes {
        for &k in &ks {
            checks_ok &= sweep_cell(n, k, args.seed, &mut rows, &mut speedups);
        }
    }

    for s in &speedups {
        println!(
            "speedup n={:>6} k={:>2} {:<4} scan/sparse = {:.1}x",
            s.n, s.k, s.strategy, s.speedup
        );
    }

    let report = Report {
        suite: "perfsuite".to_owned(),
        quick: args.quick,
        huge: args.huge,
        seed: args.seed,
        target_degree: TARGET_DEGREE,
        rows,
        speedups,
        checks_ok,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(e) = std::fs::write(&args.out, json + "\n") {
        eprintln!("perfsuite: writing {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!("perfsuite: wrote {}", args.out.display());

    if !checks_ok {
        eprintln!("perfsuite: cross-checks FAILED");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
