//! Ablation benches for the design choices called out in DESIGN.md §3:
//!
//! * `lazy_greedy` — CELF vs eager Algorithm 2 (identical output,
//!   fewer coverage-reward evaluations ⇒ faster for large n).
//! * `spatial_index` — kd-tree-backed vs linear-scan reward evaluation
//!   inside Algorithm 2, across radii (small radius favors the index).
//! * `round_oracle` — grid vs multistart oracle for Algorithm 1:
//!   quality is printed, time is measured.
//! * `l1_center` — the paper's projection "new-center" vs the exact
//!   2-D L1 minimax center inside Algorithm 4 under the 1-norm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmph_core::solvers::{
    ComplexGreedy, Exhaustive, LazyGreedy, LocalGreedy, LocalSearch, RecenterRule, RoundBased,
    SeededGreedy,
};
use mmph_core::{Kernel, Solver};
use mmph_geom::l1ball::{l1_minimax_center_2d, l1_radius_at, projection_center};
use mmph_geom::Norm;
use mmph_sim::gen::WeightScheme;
use mmph_sim::scenario::Scenario;

fn bench_lazy_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_lazy_greedy");
    group.sample_size(10);
    for n in [100usize, 400, 1000] {
        let scenario = Scenario::paper_2d(n, 8, 0.8, Norm::L2, WeightScheme::PAPER_WEIGHTED, 7);
        let inst = scenario.generate_2d().unwrap();
        // Print the work saved once per size.
        let eager = LocalGreedy::new().solve(&inst).unwrap();
        let lazy = LazyGreedy::new().solve(&inst).unwrap();
        assert_eq!(eager.centers, lazy.centers, "CELF must be exact");
        println!(
            "n = {n}: eager {} evals, lazy {} evals ({:.1}% of eager)",
            eager.evals,
            lazy.evals,
            100.0 * lazy.evals as f64 / eager.evals as f64
        );
        group.bench_with_input(BenchmarkId::new("eager", n), &inst, |b, inst| {
            b.iter(|| LocalGreedy::new().solve(inst).unwrap().total_reward)
        });
        group.bench_with_input(BenchmarkId::new("lazy_celf", n), &inst, |b, inst| {
            b.iter(|| LazyGreedy::new().solve(inst).unwrap().total_reward)
        });
    }
    group.finish();
}

fn bench_oracle(c: &mut Criterion) {
    use mmph_core::{GainOracle, OracleStrategy, Residuals};
    let mut group = c.benchmark_group("ablation_oracle");
    group.sample_size(10);
    // On a single-core host the parallel oracle degenerates to one
    // worker; report the thread count so timings can be interpreted.
    println!(
        "oracle ablation on {} rayon thread(s)",
        rayon::current_num_threads()
    );
    for n in [2_000usize, 10_000] {
        let scenario = Scenario::paper_2d(n, 4, 0.5, Norm::L2, WeightScheme::PAPER_WEIGHTED, 29);
        let inst = scenario.generate_2d().unwrap();
        // Exactness across strategies plus the CELF work saved, once
        // per size (the acceptance check behind `--oracle`).
        let seq = LocalGreedy::new()
            .with_oracle(OracleStrategy::Seq)
            .solve(&inst)
            .unwrap();
        let par = LocalGreedy::new()
            .with_oracle(OracleStrategy::Par)
            .solve(&inst)
            .unwrap();
        let lazy = LocalGreedy::new()
            .with_oracle(OracleStrategy::Lazy)
            .solve(&inst)
            .unwrap();
        assert_eq!(seq.centers, par.centers, "par oracle must be exact");
        assert_eq!(seq.centers, lazy.centers, "lazy oracle must be exact");
        println!(
            "n = {n}: seq {} evals, lazy {} evals ({:.1}% of seq), identical centers",
            seq.evals,
            lazy.evals,
            100.0 * lazy.evals as f64 / seq.evals as f64
        );
        // The per-round hot path the strategies compete on: one full
        // candidate sweep against fresh residuals.
        let residuals = Residuals::new(inst.n());
        for (name, strategy) in [("seq", OracleStrategy::Seq), ("par", OracleStrategy::Par)] {
            let oracle = GainOracle::new(&inst, strategy);
            group.bench_with_input(
                BenchmarkId::new(format!("score_all_{name}"), n),
                &inst,
                |b, _| b.iter(|| oracle.score_all(&residuals).iter().sum::<f64>()),
            );
        }
        group.bench_with_input(BenchmarkId::new("solve_lazy", n), &inst, |b, inst| {
            b.iter(|| LazyGreedy::new().solve(inst).unwrap().total_reward)
        });
    }
    group.finish();
}

fn bench_spatial_index(c: &mut Criterion) {
    use mmph_core::reward::RewardEngine;
    use mmph_core::Residuals;
    let mut group = c.benchmark_group("ablation_spatial_index");
    group.sample_size(10);
    for r in [0.2f64, 0.5, 1.0, 2.0] {
        let scenario = Scenario::paper_2d(600, 4, r, Norm::L2, WeightScheme::PAPER_WEIGHTED, 11);
        let inst = scenario.generate_2d().unwrap();
        group.bench_with_input(
            BenchmarkId::new("scan", format!("r{r}")),
            &inst,
            |b, inst| b.iter(|| LocalGreedy::new().solve(inst).unwrap().total_reward),
        );
        group.bench_with_input(
            BenchmarkId::new("kdtree", format!("r{r}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    LocalGreedy::new()
                        .with_spatial_index(true)
                        .solve(inst)
                        .unwrap()
                        .total_reward
                })
            },
        );
        // Raw gain-evaluation throughput of all three engines (one
        // full candidate sweep against fresh residuals).
        let residuals = Residuals::new(inst.n());
        let sweep = |engine: &RewardEngine<2>| -> f64 {
            inst.points()
                .iter()
                .map(|p| engine.gain(p, &residuals))
                .sum()
        };
        group.bench_with_input(
            BenchmarkId::new("engine_scan_sweep", format!("r{r}")),
            &inst,
            |b, inst| b.iter(|| sweep(&RewardEngine::scan(inst))),
        );
        group.bench_with_input(
            BenchmarkId::new("engine_kd_sweep", format!("r{r}")),
            &inst,
            |b, inst| b.iter(|| sweep(&RewardEngine::indexed(inst))),
        );
        group.bench_with_input(
            BenchmarkId::new("engine_ball_sweep", format!("r{r}")),
            &inst,
            |b, inst| b.iter(|| sweep(&RewardEngine::ball_indexed(inst))),
        );
    }
    group.finish();
}

fn bench_round_oracle(c: &mut Criterion) {
    let scenario = Scenario::paper_2d(40, 4, 1.0, Norm::L2, WeightScheme::PAPER_WEIGHTED, 13);
    let inst = scenario.generate_2d().unwrap();
    let grid = RoundBased::grid().solve(&inst).unwrap();
    let multi = RoundBased::multistart().solve(&inst).unwrap();
    println!(
        "oracle quality on the example: grid {:.4}, multistart {:.4}",
        grid.total_reward, multi.total_reward
    );
    let mut group = c.benchmark_group("ablation_round_oracle");
    group.sample_size(10);
    group.bench_function("grid_17x3", |b| {
        b.iter(|| RoundBased::grid().solve(&inst).unwrap().total_reward)
    });
    group.bench_function("multistart_default", |b| {
        b.iter(|| RoundBased::multistart().solve(&inst).unwrap().total_reward)
    });
    group.finish();
}

fn bench_l1_center(c: &mut Criterion) {
    // Inside Algorithm 4 under L1: paper projection vs exact rotation
    // center — quality printed, component cost measured.
    let scenario = Scenario::paper_2d(40, 4, 1.5, Norm::L1, WeightScheme::PAPER_WEIGHTED, 17);
    let inst = scenario.generate_2d().unwrap();
    let paper = ComplexGreedy::new().solve(&inst).unwrap();
    let ball = ComplexGreedy::new()
        .with_recenter_rule(RecenterRule::EuclideanBall)
        .solve(&inst)
        .unwrap();
    println!(
        "greedy4 under L1: projection center {:.4}, euclidean-ball recenter {:.4}",
        paper.total_reward, ball.total_reward
    );
    let pts = inst.points().to_vec();
    println!(
        "minimax L1 radius over the instance: projection {:.4}, exact {:.4}",
        l1_radius_at(&projection_center(&pts).unwrap(), &pts),
        l1_minimax_center_2d(&pts).unwrap().1,
    );
    let mut group = c.benchmark_group("ablation_l1_center");
    group.bench_function("projection_center", |b| {
        b.iter(|| projection_center(&pts).unwrap())
    });
    group.bench_function("exact_rotation_center", |b| {
        b.iter(|| l1_minimax_center_2d(&pts).unwrap())
    });
    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    // Quality/cost of the extension solvers vs plain greedy 2 and the
    // exhaustive optimum on a paper-sized instance.
    let scenario = Scenario::paper_2d(40, 4, 1.0, Norm::L2, WeightScheme::PAPER_WEIGHTED, 19);
    let inst = scenario.generate_2d().unwrap();
    let opt = Exhaustive::new().solve(&inst).unwrap();
    for (name, sol) in [
        ("greedy2", LocalGreedy::new().solve(&inst).unwrap()),
        ("local-search", LocalSearch::new().solve(&inst).unwrap()),
        ("seeded(t=1)", SeededGreedy::new().solve(&inst).unwrap()),
    ] {
        println!(
            "{name:<14} reward {:.4} ({:.2}% of exhaustive), {} evals",
            sol.total_reward,
            100.0 * sol.total_reward / opt.total_reward,
            sol.evals
        );
    }
    let mut group = c.benchmark_group("ablation_extensions");
    group.sample_size(10);
    group.bench_function("greedy2", |b| {
        b.iter(|| LocalGreedy::new().solve(&inst).unwrap().total_reward)
    });
    group.bench_function("local_search", |b| {
        b.iter(|| LocalSearch::new().solve(&inst).unwrap().total_reward)
    });
    group.bench_function("seeded_t1", |b| {
        b.iter(|| SeededGreedy::new().solve(&inst).unwrap().total_reward)
    });
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    // Reward-kernel ablation: how the decay shape changes solve time
    // and achieved reward for the same geometry.
    let base = Scenario::paper_2d(40, 4, 1.0, Norm::L2, WeightScheme::PAPER_WEIGHTED, 23)
        .generate_2d()
        .unwrap();
    let kernels = [
        ("linear", Kernel::Linear),
        ("step_maxcov", Kernel::Step),
        ("quadratic", Kernel::Quadratic),
        ("exponential", Kernel::Exponential { lambda: 3.0 }),
    ];
    for (name, kernel) in kernels {
        let inst = base.with_kernel(kernel).unwrap();
        let sol = LocalGreedy::new().solve(&inst).unwrap();
        println!(
            "kernel {name:<12} greedy2 reward {:.4} (ceiling {:.0})",
            sol.total_reward,
            inst.total_weight()
        );
    }
    let mut group = c.benchmark_group("ablation_kernels");
    for (name, kernel) in kernels {
        let inst = base.with_kernel(kernel).unwrap();
        group.bench_with_input(BenchmarkId::new("greedy2", name), &inst, |b, inst| {
            b.iter(|| LocalGreedy::new().solve(inst).unwrap().total_reward)
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lazy_greedy,
    bench_oracle,
    bench_spatial_index,
    bench_round_oracle,
    bench_l1_center,
    bench_extensions,
    bench_kernels
);
criterion_main!(benches);
