//! Bench for Table I / Fig. 3: the worked 40-node example.
//!
//! Times each greedy on the pinned example instance and prints the
//! regenerated per-round coverage-reward table.

use criterion::{criterion_group, criterion_main, Criterion};
use mmph_bench::experiments;
use mmph_core::solvers::{ComplexGreedy, LocalGreedy, SimpleGreedy};
use mmph_core::Solver;

fn bench_table1(c: &mut Criterion) {
    let run = experiments::fig3_table1(experiments::ROOT_SEED);
    println!("Table I regeneration (n = 40, k = 4, r = 1, L2, weights 1..=5):");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "algorithm", "round 1", "round 2", "round 3", "round 4", "total"
    );
    for sol in &run.solutions {
        println!(
            "{:<10} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
            sol.solver,
            sol.round_gains[0],
            sol.round_gains[1],
            sol.round_gains[2],
            sol.round_gains[3],
            sol.total_reward
        );
    }

    let inst = run.instance.clone();
    let mut group = c.benchmark_group("table1_example");
    group.bench_function("greedy2_local", |b| {
        b.iter(|| LocalGreedy::new().solve(&inst).unwrap().total_reward)
    });
    group.bench_function("greedy3_simple", |b| {
        b.iter(|| SimpleGreedy::new().solve(&inst).unwrap().total_reward)
    });
    group.bench_function("greedy4_complex", |b| {
        b.iter(|| ComplexGreedy::new().solve(&inst).unwrap().total_reward)
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
