//! Benches for Figs. 8–9: the 3-D total-reward sweeps (1-norm).
//!
//! Times the per-configuration driver at both paper sizes (n = 40 and
//! n = 160) and each solver individually at n = 160, where the cubic
//! complex greedy dominates the figure's cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmph_bench::experiments::{reward_config_3d, SweepOptions};
use mmph_core::solvers::{ComplexGreedy, LocalGreedy, SimpleGreedy};
use mmph_core::Solver;
use mmph_geom::Norm;
use mmph_sim::gen::WeightScheme;
use mmph_sim::scenario::Scenario;

fn bench_3d_configs(c: &mut Criterion) {
    let opts = SweepOptions {
        trials: 3,
        include_greedy1: false,
    };
    let mut group = c.benchmark_group("reward_sweep_3d");
    group.sample_size(10);
    for (weights, tag) in [
        (WeightScheme::PAPER_WEIGHTED, "fig8_diff"),
        (WeightScheme::Same, "fig9_same"),
    ] {
        for n in [40usize, 160] {
            group.bench_with_input(BenchmarkId::new(tag, format!("n{n}")), &n, |b, &n| {
                b.iter(|| reward_config_3d(n, 4, 1.5, weights, opts, 1).reward3.mean)
            });
        }
    }
    group.finish();
}

fn bench_3d_solvers_at_160(c: &mut Criterion) {
    let scenario = Scenario::paper_3d(160, 4, 1.5, Norm::L1, WeightScheme::PAPER_WEIGHTED, 5);
    let inst = scenario.generate_3d().unwrap();
    let mut group = c.benchmark_group("solvers_3d_n160");
    group.sample_size(10);
    group.bench_function("greedy2_local", |b| {
        b.iter(|| LocalGreedy::new().solve(&inst).unwrap().total_reward)
    });
    group.bench_function("greedy3_simple", |b| {
        b.iter(|| SimpleGreedy::new().solve(&inst).unwrap().total_reward)
    });
    group.bench_function("greedy4_complex", |b| {
        b.iter(|| ComplexGreedy::new().solve(&inst).unwrap().total_reward)
    });
    group.finish();
}

criterion_group!(benches, bench_3d_configs, bench_3d_solvers_at_160);
criterion_main!(benches);
