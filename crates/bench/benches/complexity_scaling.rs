//! Complexity scaling bench: measured runtime vs n for the three local
//! greedies, validating the paper's O(kn), O(kn²), O(kn³) claims
//! (Theorems 3 and 4, §V-A).
//!
//! Criterion reports per-n times; the expected shape is greedy 3 ≪
//! greedy 2 ≪ greedy 4 with slopes ~1, ~2 and ~3 on a log-log plot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mmph_core::solvers::{ComplexGreedy, LazyGreedy, LocalGreedy, SimpleGreedy};
use mmph_core::Solver;
use mmph_geom::Norm;
use mmph_sim::gen::WeightScheme;
use mmph_sim::scenario::Scenario;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("complexity_scaling");
    group.sample_size(10);
    for n in [25usize, 50, 100, 200, 400] {
        let scenario = Scenario::paper_2d(n, 4, 1.0, Norm::L2, WeightScheme::PAPER_WEIGHTED, 3);
        let inst = scenario.generate_2d().unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("greedy3_O(kn)", n), &inst, |b, inst| {
            b.iter(|| SimpleGreedy::new().solve(inst).unwrap().total_reward)
        });
        group.bench_with_input(BenchmarkId::new("greedy2_O(kn2)", n), &inst, |b, inst| {
            b.iter(|| LocalGreedy::new().solve(inst).unwrap().total_reward)
        });
        group.bench_with_input(
            BenchmarkId::new("greedy2_lazy_celf", n),
            &inst,
            |b, inst| b.iter(|| LazyGreedy::new().solve(inst).unwrap().total_reward),
        );
        // The cubic algorithm gets a reduced top size to keep the bench
        // wall-clock sane.
        if n <= 200 {
            group.bench_with_input(BenchmarkId::new("greedy4_O(kn3)", n), &inst, |b, inst| {
                b.iter(|| ComplexGreedy::new().solve(inst).unwrap().total_reward)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
