//! Simulation-substrate throughput: workload generation and the
//! time-slotted broadcast loop. Guards the cost of the Monte-Carlo
//! sweeps (every figure runs hundreds of generate+solve cycles).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mmph_core::solvers::SimpleGreedy;
use mmph_geom::Norm;
use mmph_sim::broadcast::{simulate, BroadcastConfig, Population};
use mmph_sim::gen::{PointDistribution, SpaceSpec, WeightScheme};
use mmph_sim::rng::SeedSeq;
use mmph_sim::scenario::Scenario;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_generators");
    for n in [100usize, 1000, 10_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("uniform", n), &n, |b, &n| {
            b.iter(|| {
                PointDistribution::Uniform
                    .sample::<2>(n, SpaceSpec::PAPER, SeedSeq::new(1))
                    .unwrap()
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("gaussian_clusters", n), &n, |b, &n| {
            b.iter(|| {
                PointDistribution::GaussianClusters {
                    clusters: 5,
                    rel_sigma: 0.05,
                }
                .sample::<2>(n, SpaceSpec::PAPER, SeedSeq::new(2))
                .unwrap()
                .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("zipf_weights", n), &n, |b, &n| {
            b.iter(|| {
                WeightScheme::Zipf {
                    n_ranks: 10,
                    s: 1.1,
                }
                .sample(n, SeedSeq::new(3))
                .unwrap()
                .len()
            })
        });
    }
    group.finish();
}

fn bench_scenario_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_scenarios");
    for n in [40usize, 160, 1000] {
        group.bench_with_input(BenchmarkId::new("paper_2d", n), &n, |b, &n| {
            let sc = Scenario::paper_2d(n, 4, 1.0, Norm::L2, WeightScheme::PAPER_WEIGHTED, 7);
            b.iter(|| sc.generate_2d().unwrap().n())
        });
    }
    group.finish();
}

fn bench_broadcast_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_broadcast");
    group.sample_size(10);
    for (n, label) in [(100usize, "static"), (100, "dynamic")] {
        let dynamic = label == "dynamic";
        group.bench_function(BenchmarkId::new("horizon64_k4", label), |b| {
            b.iter(|| {
                let mut pop = Population::<2>::generate(
                    n,
                    SpaceSpec::PAPER,
                    PointDistribution::Uniform,
                    WeightScheme::PAPER_WEIGHTED,
                    SeedSeq::new(11),
                )
                .unwrap();
                let cfg = BroadcastConfig {
                    horizon_slots: 64,
                    churn_rate: if dynamic { 0.05 } else { 0.0 },
                    drift_rel_sigma: if dynamic { 0.02 } else { 0.0 },
                    threshold: 0.5,
                    seed: 12,
                };
                simulate(&SimpleGreedy::new(), &mut pop, 1.0, 4, Norm::L2, &cfg)
                    .unwrap()
                    .total_reward
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_generators,
    bench_scenario_generation,
    bench_broadcast_loop
);
criterion_main!(benches);
