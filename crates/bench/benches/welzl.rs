//! Smallest-enclosing-ball throughput: exact Welzl vs Ritter's
//! approximation, across point counts and dimensions. The complex
//! greedy calls this in its inner loop, so its constant factor matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmph_geom::welzl::{min_enclosing_ball, ritter_ball};
use mmph_geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn points2(n: usize, seed: u64) -> Vec<Point<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
        .collect()
}

fn points3(n: usize, seed: u64) -> Vec<Point<3>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new([
                rng.gen_range(0.0..4.0),
                rng.gen_range(0.0..4.0),
                rng.gen_range(0.0..4.0),
            ])
        })
        .collect()
}

fn bench_welzl(c: &mut Criterion) {
    let mut group = c.benchmark_group("welzl_2d");
    for n in [10usize, 100, 1000, 10_000] {
        let pts = points2(n, 42);
        group.bench_with_input(BenchmarkId::new("exact", n), &pts, |b, pts| {
            b.iter(|| min_enclosing_ball(pts).radius)
        });
        group.bench_with_input(BenchmarkId::new("ritter8", n), &pts, |b, pts| {
            b.iter(|| ritter_ball(pts, 8).radius)
        });
    }
    group.finish();

    let mut group = c.benchmark_group("welzl_3d");
    for n in [100usize, 1000] {
        let pts = points3(n, 43);
        group.bench_with_input(BenchmarkId::new("exact", n), &pts, |b, pts| {
            b.iter(|| min_enclosing_ball(pts).radius)
        });
        group.bench_with_input(BenchmarkId::new("ritter8", n), &pts, |b, pts| {
            b.iter(|| ritter_ball(pts, 8).radius)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_welzl);
criterion_main!(benches);
