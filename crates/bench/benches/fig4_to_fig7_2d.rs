//! Benches for Figs. 4–7: the 2-D approximation-ratio sweeps.
//!
//! One benchmark per figure (norm × weight scheme), timing a single
//! representative configuration at a reduced trial count, plus separate
//! timings for the exhaustive denominator — the dominant cost of the
//! sweep. The full-resolution regeneration lives in the `repro` binary;
//! these benches guard the performance of its building blocks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmph_bench::experiments::{ratio_config, SweepOptions};
use mmph_core::solvers::Exhaustive;
use mmph_core::Solver;
use mmph_geom::Norm;
use mmph_sim::gen::WeightScheme;
use mmph_sim::scenario::Scenario;

fn bench_sweep_configs(c: &mut Criterion) {
    let opts = SweepOptions {
        trials: 3,
        include_greedy1: false,
    };
    let figures: [(&str, Norm, WeightScheme); 4] = [
        ("fig4_l2_diff", Norm::L2, WeightScheme::PAPER_WEIGHTED),
        ("fig5_l2_same", Norm::L2, WeightScheme::Same),
        ("fig6_l1_diff", Norm::L1, WeightScheme::PAPER_WEIGHTED),
        ("fig7_l1_same", Norm::L1, WeightScheme::Same),
    ];
    let mut group = c.benchmark_group("ratio_sweep_2d");
    group.sample_size(10);
    for (name, norm, weights) in figures {
        // The cheapest and the most expensive configuration of each
        // figure bound the sweep's per-config cost.
        for (n, k) in [(10usize, 2usize), (40, 4)] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("n{n}_k{k}")),
                &(n, k),
                |b, &(n, k)| b.iter(|| ratio_config(n, k, 1.0, norm, weights, opts, 1).ratio3.mean),
            );
        }
    }
    group.finish();
}

fn bench_exhaustive_denominator(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive_denominator");
    group.sample_size(10);
    for (n, k) in [(10usize, 2usize), (10, 4), (40, 2), (40, 4)] {
        let scenario = Scenario::paper_2d(n, k, 1.0, Norm::L2, WeightScheme::PAPER_WEIGHTED, 5);
        let inst = scenario.generate_2d().unwrap();
        group.bench_with_input(
            BenchmarkId::new("point_multisets", format!("n{n}_k{k}")),
            &inst,
            |b, inst| b.iter(|| Exhaustive::new().solve(inst).unwrap().total_reward),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_configs, bench_exhaustive_denominator);
criterion_main!(benches);
