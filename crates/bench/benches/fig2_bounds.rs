//! Bench for Fig. 2: generating the theoretical-bound series.
//!
//! Closed-form math, so this mostly pins the cost of the bound helpers
//! and prints the exact series the paper plots (run with
//! `cargo bench -p mmph-bench --bench fig2_bounds`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mmph_bench::experiments;
use mmph_core::bounds::{approx_local, approx_round_based};

fn bench_fig2(c: &mut Criterion) {
    // Print the regenerated series once, like the paper's figure.
    for panel in experiments::fig2() {
        println!("fig2 panel n = {}", panel.n);
        for &(k, a1, a2) in panel.rows.iter().take(8) {
            println!("  k = {k:>2}: approx1 = {a1:.4}  approx2 = {a2:.4}");
        }
        println!("  ... ({} rows total)", panel.rows.len());
    }

    let mut group = c.benchmark_group("fig2");
    group.bench_function("bounds_series_n40", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for k in 1..=40 {
                acc += approx_round_based(black_box(k)) + approx_local(black_box(40), k);
            }
            acc
        })
    });
    group.bench_function("full_fig2_regeneration", |b| b.iter(experiments::fig2));
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
