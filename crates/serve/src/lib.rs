//! # mmph-serve — request/response service layer
//!
//! Lifts the batch solve pipeline behind a versioned NDJSON protocol
//! so the solver can run as a long-lived daemon (`mmph serve`) while
//! `mmph batch` stays a thin in-process client of the very same code
//! path.
//!
//! Layers, bottom to top:
//!
//! - [`envelope`] — the wire format: [`envelope::Request`] /
//!   [`envelope::Response`] lines with `id`/`in_reply_to` correlation
//!   and a protocol version gate.
//! - [`service`] — transport-independent dispatch: a
//!   [`service::Service`] turns rounds of requests into rounds of
//!   responses by multiplexing solves onto
//!   [`mmph_core::BatchRunner`], keeping its scratch-arena and
//!   adjacent-identical engine reuse under request traffic.
//! - [`transport`] — byte movers: NDJSON over stdin/stdout
//!   ([`transport::serve_stdio`]) and over TCP
//!   ([`transport::serve_tcp`]), both draining into one shared
//!   dispatch queue.
//! - [`signals`] — a SIGINT-to-flag bridge so Ctrl-C drains in-flight
//!   requests instead of killing them.
//! - [`chaos`] — a seeded, reproducible transport-fault injector
//!   ([`chaos::ChaosPlan`]) the soak tests drive against both
//!   transports: truncation, frame splits/merges, delays, mid-request
//!   disconnects, and burst floods, all on the client side.

pub mod chaos;
pub mod envelope;
pub mod service;
pub mod signals;
pub mod transport;

pub use chaos::{ChaosConfig, ChaosPlan, LineFate, SOAK_SEEDS};
pub use envelope::{
    merge_chunks, salvage_id, Request, Response, ServiceStats, PROTOCOL_VERSION, REQUEST_OPS,
};
pub use service::{parse_solver, report_from_responses, Incoming, Service, ServiceConfig};
pub use signals::{install_sigint_flag, ShutdownFlag};
pub use transport::{serve_stdio, serve_tcp, TcpServerConfig};

/// Service-layer error type.
#[derive(Debug, thiserror::Error)]
pub enum ServeError {
    /// Malformed or unsupported request/response content (message is
    /// wire-facing).
    #[error("{0}")]
    Protocol(String),
    /// Propagated core error.
    #[error(transparent)]
    Core(#[from] mmph_core::CoreError),
    /// Propagated simulation error (scenario generation/validation).
    #[error(transparent)]
    Sim(#[from] mmph_sim::SimError),
    /// I/O failure on a transport.
    #[error("io: {0}")]
    Io(#[from] std::io::Error),
    /// JSON (de)serialization failure.
    #[error("json: {0}")]
    Json(#[from] serde_json::Error),
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
