//! Byte movers: NDJSON over stdio and over TCP.
//!
//! Both transports are thin: they read lines, stamp them with a
//! receive instant, and feed *rounds* (everything queued, up to
//! `max_batch`) into one [`Service`]. All solver behavior — engine
//! reuse, budgets, panic isolation — lives below the transport, which
//! is what keeps `mmph batch` and `mmph serve` on one code path.
//!
//! Overload never grows the dispatch backlog past
//! `ServiceConfig::queue_cap`: each round first sheds the *newest*
//! queued lines with `overloaded` responses (the oldest have waited
//! longest and must not be starved), then serves the oldest
//! `max_batch`. The shed/served split of [`admission_round`] is a pure
//! function of the backlog order — no randomness, no clocks — so a
//! given arrival sequence always partitions the same way. TCP
//! additionally sheds at the reader when a single connection exceeds
//! `per_conn_inflight` unanswered requests, before those lines consume
//! shared queue space, and trips the connection's
//! [`CancelToken`](mmph_core::CancelToken) on disconnect or a jammed
//! write so queued and in-flight solves are abandoned instead of
//! computed into a dead socket.
//!
//! Shutdown is cooperative everywhere: stdin EOF, a `shutdown`
//! request, or a tripped [`ShutdownFlag`] (SIGINT) all drain the
//! already-queued requests, flush responses, and return the final
//! stats — in-flight work is answered, never dropped.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use mmph_core::CancelToken;

use crate::envelope::{salvage_id, Response, ServiceStats};
use crate::service::{Incoming, Service};
use crate::signals::ShutdownFlag;
use crate::Result;

/// How long a dispatcher blocks waiting for the first event of a
/// round before re-checking the shutdown flag.
const DISPATCH_POLL: Duration = Duration::from_millis(50);

/// Runs one round through the service and writes the responses,
/// splitting any response whose selection exceeds the configured
/// chunk threshold into multiple frames.
fn write_round(service: &mut Service, batch: &[Incoming], out: &mut dyn Write) -> Result<()> {
    if batch.is_empty() {
        return Ok(());
    }
    let chunk = service.config().chunk_selection;
    for resp in service.handle_lines(batch) {
        for frame in resp.into_chunks(chunk) {
            writeln!(out, "{}", frame.to_line())?;
        }
    }
    out.flush()?;
    Ok(())
}

/// One admission + dispatch round over the queued backlog: sheds the
/// newest lines past `queue_cap` with `overloaded` responses, then
/// serves the oldest `max_batch`. Leftovers stay queued for the next
/// round. Deterministic given the backlog contents (see module docs).
fn admission_round(
    service: &mut Service,
    backlog: &mut VecDeque<Incoming>,
    out: &mut dyn Write,
) -> Result<()> {
    let queue_cap = service.config().queue_cap.max(1);
    let max_batch = service.config().max_batch.max(1);
    while backlog.len() > queue_cap {
        let inc = backlog.pop_back().expect("backlog longer than cap");
        let resp = service.shed_response(salvage_id(&inc.line), inc.received);
        writeln!(out, "{}", resp.to_line())?;
    }
    let take = max_batch.min(backlog.len());
    let round: Vec<Incoming> = backlog.drain(..take).collect();
    write_round(service, &round, out)?;
    out.flush()?;
    Ok(())
}

/// Serves NDJSON requests from `reader` (stdin in production, any
/// buffered reader in tests), writing responses to `out`. Returns the
/// final stats when the input reaches EOF, a `shutdown` request is
/// handled, or `shutdown` trips — in every case the already-queued
/// requests are answered (served or shed per admission control) and
/// `out` is flushed first.
pub fn serve_stdio<R>(
    service: &mut Service,
    reader: R,
    out: &mut dyn Write,
    shutdown: &ShutdownFlag,
) -> Result<ServiceStats>
where
    R: Read + Send + 'static,
{
    let (tx, rx) = mpsc::channel::<Incoming>();
    // The reader thread is detached on purpose: a blocking read of
    // stdin cannot be interrupted, so shutdown must not wait on it.
    thread::spawn(move || {
        let buf = BufReader::new(reader);
        for line in buf.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if tx.send(Incoming::now(line)).is_err() {
                break;
            }
        }
    });

    let mut backlog: VecDeque<Incoming> = VecDeque::new();
    loop {
        if shutdown.is_tripped() {
            break;
        }
        // Block only while idle; with work queued, rounds run
        // back-to-back and new lines ride along each drain.
        if backlog.is_empty() {
            match rx.recv_timeout(DISPATCH_POLL) {
                Ok(first) => backlog.push_back(first),
                Err(RecvTimeoutError::Timeout) => continue,
                // Reader hit EOF and the queue is fully drained.
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        while let Ok(inc) = rx.try_recv() {
            backlog.push_back(inc);
        }
        admission_round(service, &mut backlog, out)?;
        if service.shutdown_requested() {
            break;
        }
    }

    // Final drain: answer whatever was queued before the stop signal,
    // still under the cap so a flooded queue cannot stall exit.
    loop {
        while let Ok(inc) = rx.try_recv() {
            backlog.push_back(inc);
        }
        if backlog.is_empty() {
            break;
        }
        admission_round(service, &mut backlog, out)?;
    }
    out.flush()?;
    Ok(service.stats().clone())
}

/// TCP transport tunables.
#[derive(Debug, Clone)]
pub struct TcpServerConfig {
    /// Bind address, e.g. `127.0.0.1:7311`.
    pub addr: String,
}

impl Default for TcpServerConfig {
    fn default() -> Self {
        TcpServerConfig {
            addr: "127.0.0.1:7311".into(),
        }
    }
}

/// One event from the accept thread or a connection reader thread.
enum ConnEvent {
    Accepted(TcpStream),
    Line { conn: u64, inc: Incoming },
    Closed { conn: u64 },
}

/// Dispatcher-side connection state.
struct ConnState {
    /// Shared with the connection's reader thread, which writes
    /// `overloaded` responses for reader-shed lines directly.
    writer: Arc<Mutex<TcpStream>>,
    /// Trips when the client disconnects or stops absorbing writes.
    token: CancelToken,
    /// Admitted-but-unanswered lines from this connection.
    inflight: Arc<AtomicUsize>,
}

/// Immutable context the dispatcher hands each new connection.
struct ConnCtx {
    tx: Sender<ConnEvent>,
    per_conn_inflight: usize,
    retry_after_ms: u64,
    write_timeout: Option<Duration>,
    /// Reader-side sheds, folded into the service stats every round.
    reader_sheds: Arc<AtomicU64>,
}

/// Locks a connection writer, recovering the guard if a previous
/// holder panicked — a poisoned stream is still a valid stream.
fn lock_writer(writer: &Mutex<TcpStream>) -> std::sync::MutexGuard<'_, TcpStream> {
    match writer.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Spawns the reader thread for a newly accepted connection and
/// registers its dispatcher-side state.
fn spawn_conn(
    stream: TcpStream,
    conn: u64,
    conns: &mut HashMap<u64, ConnState>,
    ctx: &ConnCtx,
) -> Result<()> {
    stream.set_nodelay(true).ok();
    if let Some(t) = ctx.write_timeout {
        stream.set_write_timeout(Some(t)).ok();
    }
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let token = CancelToken::new();
    let inflight = Arc::new(AtomicUsize::new(0));
    conns.insert(
        conn,
        ConnState {
            writer: Arc::clone(&writer),
            token: token.clone(),
            inflight: Arc::clone(&inflight),
        },
    );
    let tx = ctx.tx.clone();
    let per_conn = ctx.per_conn_inflight.max(1);
    let retry_after = ctx.retry_after_ms;
    let sheds = Arc::clone(&ctx.reader_sheds);
    // Detached: exits when the client closes or the dispatcher drops
    // its receiver on the way out.
    thread::spawn(move || {
        let buf = BufReader::new(stream);
        for line in buf.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if inflight.load(Ordering::Relaxed) >= per_conn {
                // Per-connection cap: refuse at the reader, before the
                // line consumes shared queue space or a worker.
                sheds.fetch_add(1, Ordering::Relaxed);
                let resp = Response::overloaded(salvage_id(&line), retry_after);
                let mut w = lock_writer(&writer);
                if writeln!(w, "{}", resp.to_line())
                    .and_then(|_| w.flush())
                    .is_err()
                {
                    break;
                }
                continue;
            }
            inflight.fetch_add(1, Ordering::Relaxed);
            if tx
                .send(ConnEvent::Line {
                    conn,
                    inc: Incoming::with_cancel(line, token.clone()),
                })
                .is_err()
            {
                return;
            }
        }
        // The client hung up (or its socket died): abandon this
        // connection's queued and in-flight work.
        token.cancel();
        let _ = tx.send(ConnEvent::Closed { conn });
    });
    Ok(())
}

/// Writes one response to its connection, releasing the in-flight
/// slot. A selection past `chunk` entries goes out as multiple frames
/// (`chunk` of `0` disables splitting). A write failure means the
/// client is gone or jammed past its write timeout: the connection
/// token trips (abandoning its queued and in-flight solves) and the
/// writer is dropped.
fn route_response(conns: &mut HashMap<u64, ConnState>, conn: u64, resp: &Response, chunk: usize) {
    let Some(st) = conns.get(&conn) else { return };
    st.inflight.fetch_sub(1, Ordering::Relaxed);
    let mut w = lock_writer(&st.writer);
    let mut ok = Ok(());
    for frame in resp.clone().into_chunks(chunk) {
        ok = writeln!(w, "{}", frame.to_line());
        if ok.is_err() {
            break;
        }
    }
    let ok = ok.and_then(|_| w.flush());
    drop(w);
    if ok.is_err() {
        st.token.cancel();
        conns.remove(&conn);
    }
}

/// Unblocks the accept thread so it can observe the stop flag: a
/// throwaway self-connection is the portable way to interrupt a
/// blocking `accept`.
fn wake_acceptor(stop: &AtomicBool, addr: SocketAddr) {
    stop.store(true, Ordering::Relaxed);
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(100));
}

/// Serves NDJSON requests over TCP. Every connection gets a reader
/// thread feeding one shared queue; the dispatch loop batches lines
/// from *all* connections into admission-controlled service rounds
/// (so concurrent clients still amortize engine builds) and routes
/// each response back to the connection its request came from.
/// Returns the final stats once a `shutdown` request is handled or
/// `shutdown` trips; the queued backlog is drained (served or shed)
/// before returning.
pub fn serve_tcp(
    service: &mut Service,
    listener: TcpListener,
    shutdown: &ShutdownFlag,
) -> Result<ServiceStats> {
    let local_addr = listener.local_addr()?;
    let (tx, rx) = mpsc::channel::<ConnEvent>();
    let accept_stop = Arc::new(AtomicBool::new(false));
    {
        let tx = tx.clone();
        let stop = Arc::clone(&accept_stop);
        // Blocking accept thread; `recv_timeout` on the unified event
        // queue replaces the old fixed idle sleep, so accepted
        // connections and first lines wake the dispatcher immediately.
        thread::spawn(move || {
            while let Ok((stream, _peer)) = listener.accept() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                if tx.send(ConnEvent::Accepted(stream)).is_err() {
                    break;
                }
            }
        });
    }

    let cfg = service.config();
    let ctx = ConnCtx {
        tx,
        per_conn_inflight: cfg.per_conn_inflight,
        retry_after_ms: cfg.retry_after_ms,
        write_timeout: match cfg.write_timeout_ms {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        },
        reader_sheds: Arc::new(AtomicU64::new(0)),
    };
    let queue_cap = cfg.queue_cap.max(1);
    let max_batch = cfg.max_batch.max(1);
    let chunk_selection = cfg.chunk_selection;

    let mut conns: HashMap<u64, ConnState> = HashMap::new();
    let mut next_conn: u64 = 0;
    let mut backlog: VecDeque<(u64, Incoming)> = VecDeque::new();
    let mut stopping = false;

    let mut handle_event = |ev: ConnEvent,
                            conns: &mut HashMap<u64, ConnState>,
                            backlog: &mut VecDeque<(u64, Incoming)>,
                            stopping: bool|
     -> Result<()> {
        match ev {
            ConnEvent::Accepted(stream) => {
                // Late arrivals during drain are turned away by
                // closing the socket; accepting them would let a
                // persistent client stall shutdown forever.
                if !stopping {
                    let conn = next_conn;
                    next_conn += 1;
                    spawn_conn(stream, conn, conns, &ctx)?;
                }
            }
            ConnEvent::Line { conn, inc } => backlog.push_back((conn, inc)),
            ConnEvent::Closed { conn } => {
                // The reader already tripped the token; queued lines
                // from this connection resolve cheaply as cancelled.
                conns.remove(&conn);
            }
        }
        Ok(())
    };

    loop {
        if shutdown.is_tripped() && !stopping {
            stopping = true;
            wake_acceptor(&accept_stop, local_addr);
        }
        if backlog.is_empty() && !stopping {
            match rx.recv_timeout(DISPATCH_POLL) {
                Ok(ev) => handle_event(ev, &mut conns, &mut backlog, stopping)?,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        while let Ok(ev) = rx.try_recv() {
            handle_event(ev, &mut conns, &mut backlog, stopping)?;
        }
        service.record_transport_sheds(ctx.reader_sheds.swap(0, Ordering::Relaxed));

        // Admission control: refuse the newest lines past the cap.
        while backlog.len() > queue_cap {
            let (conn, inc) = backlog.pop_back().expect("backlog longer than cap");
            let resp = service.shed_response(salvage_id(&inc.line), inc.received);
            route_response(&mut conns, conn, &resp, chunk_selection);
        }

        if backlog.is_empty() {
            if stopping {
                break;
            }
            continue;
        }

        let take = max_batch.min(backlog.len());
        let (ids, batch): (Vec<u64>, Vec<Incoming>) = backlog.drain(..take).unzip();
        let responses = service.handle_lines(&batch);
        for (conn, resp) in ids.iter().zip(&responses) {
            route_response(&mut conns, *conn, resp, chunk_selection);
        }
        if service.shutdown_requested() && !stopping {
            stopping = true;
            wake_acceptor(&accept_stop, local_addr);
        }
    }
    service.record_transport_sheds(ctx.reader_sheds.swap(0, Ordering::Relaxed));
    // Close every surviving connection so clients reading to EOF (and
    // our own blocked reader threads) observe the server going away.
    for st in conns.values() {
        lock_writer(&st.writer)
            .shutdown(std::net::Shutdown::Both)
            .ok();
    }
    Ok(service.stats().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{Request, Response};
    use crate::service::ServiceConfig;
    use mmph_geom::Norm;
    use mmph_sim::{Scenario, WeightScheme};
    use std::io::Cursor;

    fn scenario(seed: u64) -> Scenario {
        Scenario::paper_2d(25, 3, 1.0, Norm::L2, WeightScheme::PAPER_WEIGHTED, seed)
    }

    /// Big enough that a solve takes milliseconds — long enough for a
    /// test client to disconnect or flood while it runs.
    fn slow_scenario(seed: u64) -> Scenario {
        Scenario::paper_2d(800, 10, 1.0, Norm::L2, WeightScheme::PAPER_WEIGHTED, seed)
    }

    fn script(reqs: &[Request]) -> Cursor<Vec<u8>> {
        let mut s = String::new();
        for r in reqs {
            s.push_str(&r.to_line());
            s.push('\n');
        }
        Cursor::new(s.into_bytes())
    }

    fn parse_out(buf: &[u8]) -> Vec<Response> {
        String::from_utf8(buf.to_vec())
            .unwrap()
            .lines()
            .map(|l| Response::parse(l).unwrap())
            .collect()
    }

    #[test]
    fn stdio_eof_drains_answers_everything_and_returns() {
        let mut svc = Service::new(ServiceConfig::default());
        let reqs = vec![
            Request::control(1, "ping"),
            Request::solve(2, scenario(1)),
            Request::solve(3, scenario(1)),
        ];
        let mut out = Vec::new();
        let stats = serve_stdio(&mut svc, script(&reqs), &mut out, &ShutdownFlag::new()).unwrap();
        let responses = parse_out(&out);
        assert_eq!(responses.len(), 3, "EOF drained every request");
        assert_eq!(responses[0].op, "pong");
        assert!(responses[1].is_completed_solve());
        assert!(responses[2].is_completed_solve());
        assert_eq!(stats.received, 3);
        assert_eq!(stats.responded, 3);
    }

    #[test]
    fn stdio_shutdown_request_answers_bye_and_exits() {
        let mut svc = Service::new(ServiceConfig::default());
        let reqs = vec![
            Request::solve(1, scenario(2)),
            Request::control(2, "shutdown"),
        ];
        let mut out = Vec::new();
        let stats = serve_stdio(&mut svc, script(&reqs), &mut out, &ShutdownFlag::new()).unwrap();
        let responses = parse_out(&out);
        assert!(responses.iter().any(|r| r.op == "bye"));
        assert!(responses.iter().any(|r| r.is_completed_solve()));
        assert_eq!(stats.responded, 2);
    }

    #[test]
    fn stdio_tripped_flag_still_drains_queued_lines() {
        let reqs = vec![Request::control(1, "ping"), Request::control(2, "ping")];
        let flag = ShutdownFlag::new();
        flag.trip(); // tripped before the loop ever runs
        let mut out = Vec::new();
        // Give the reader thread a moment to enqueue by retrying: the
        // final-drain pass runs after the main loop exits immediately.
        let mut responses = Vec::new();
        for _ in 0..50 {
            out.clear();
            let mut fresh = Service::new(ServiceConfig::default());
            serve_stdio(&mut fresh, script(&reqs), &mut out, &flag).unwrap();
            responses = parse_out(&out);
            if responses.len() == 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(responses.len(), 2, "queued pings answered before exit");
    }

    #[test]
    fn stdio_huge_selection_streams_as_chunks() {
        let mut svc = Service::new(ServiceConfig {
            chunk_selection: 2,
            ..ServiceConfig::default()
        });
        // k=3 selections against a 2-entry chunk cap: two frames.
        let reqs = vec![Request::solve(1, scenario(4))];
        let mut out = Vec::new();
        serve_stdio(&mut svc, script(&reqs), &mut out, &ShutdownFlag::new()).unwrap();
        let responses = parse_out(&out);
        assert_eq!(responses.len(), 2, "one solve, two frames");
        assert_eq!(responses[0].chunk, Some(0));
        assert_eq!(responses[1].chunk, Some(1));
        assert_eq!(responses[1].reward, None, "scalars ride frame 0 only");
        let merged = crate::envelope::merge_chunks(responses).unwrap();
        assert!(merged.is_completed_solve());
        assert_eq!(merged.selection.as_ref().unwrap().len(), 3);
    }

    #[test]
    fn admission_round_partition_is_deterministic() {
        // The shed/served split is a pure function of backlog order:
        // newest past the cap are shed, oldest max_batch served.
        let run = || {
            let mut svc = Service::new(ServiceConfig {
                queue_cap: 3,
                max_batch: 2,
                ..ServiceConfig::default()
            });
            let mut backlog: VecDeque<Incoming> = (1..=8)
                .map(|id| Incoming::now(Request::control(id, "ping").to_line()))
                .collect();
            let mut out = Vec::new();
            admission_round(&mut svc, &mut backlog, &mut out).unwrap();
            assert_eq!(
                backlog
                    .iter()
                    .map(|i| salvage_id(&i.line).unwrap())
                    .collect::<Vec<_>>(),
                vec![3],
                "only the under-cap leftover stays queued"
            );
            parse_out(&out)
                .iter()
                .map(|r| (r.op.clone(), r.in_reply_to.unwrap()))
                .collect::<Vec<_>>()
        };
        let first = run();
        let shed: Vec<u64> = first
            .iter()
            .filter(|(op, _)| op == "overloaded")
            .map(|(_, id)| *id)
            .collect();
        let served: Vec<u64> = first
            .iter()
            .filter(|(op, _)| op == "pong")
            .map(|(_, id)| *id)
            .collect();
        assert_eq!(shed, vec![8, 7, 6, 5, 4], "newest shed first");
        assert_eq!(served, vec![1, 2], "oldest served first");
        assert_eq!(first, run(), "identical backlog, identical partition");
    }

    #[test]
    fn stdio_flood_past_queue_cap_sheds_with_retry_hint() {
        let mut svc = Service::new(ServiceConfig {
            queue_cap: 3,
            max_batch: 2,
            retry_after_ms: 7,
            ..ServiceConfig::default()
        });
        // A slow head-of-line solve lets the remaining lines pile up
        // past the cap while it runs.
        let mut reqs = vec![Request::solve(0, slow_scenario(1))];
        reqs.extend((1..=10).map(|id| Request::control(id, "ping")));
        let mut out = Vec::new();
        let stats = serve_stdio(&mut svc, script(&reqs), &mut out, &ShutdownFlag::new()).unwrap();
        let responses = parse_out(&out);
        assert_eq!(responses.len(), 11, "exactly one response per request");
        let mut ids: Vec<u64> = responses.iter().map(|r| r.in_reply_to.unwrap()).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..=10).collect::<Vec<_>>(), "every id answered once");
        let shed: Vec<&Response> = responses.iter().filter(|r| r.op == "overloaded").collect();
        assert!(!shed.is_empty(), "flood past the cap must shed");
        for r in &shed {
            assert_eq!(r.retry_after_ms, Some(7));
            assert!(r.queue_ms.is_some());
        }
        assert_eq!(stats.shed, shed.len() as u64);
        assert_eq!(stats.received, 11);
        assert_eq!(stats.responded, 11);
    }

    #[test]
    fn tcp_round_trips_and_shuts_down() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let mut svc = Service::new(ServiceConfig::default());
            serve_tcp(&mut svc, listener, &ShutdownFlag::new()).unwrap()
        });

        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut send = move |req: &Request| {
            writer.write_all(req.to_line().as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
        };
        send(&Request::control(7, "ping"));
        send(&Request::solve(8, scenario(3)));
        let mut reader = BufReader::new(stream);
        let mut read_resp = move || {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            Response::parse(&line).unwrap()
        };
        let pong = read_resp();
        assert_eq!(pong.op, "pong");
        assert_eq!(pong.in_reply_to, Some(7));
        let solved = read_resp();
        assert!(solved.is_completed_solve(), "{:?}", solved.error);
        assert_eq!(solved.in_reply_to, Some(8));
        assert!(solved.latency_us.is_some());
        assert!(solved.queue_ms.is_some());

        send(&Request::control(9, "shutdown"));
        let bye = read_resp();
        assert_eq!(bye.op, "bye");
        let stats = server.join().unwrap();
        assert_eq!(stats.responded, 3);
        assert_eq!(stats.solved, 1);
    }

    #[test]
    fn tcp_two_clients_get_their_own_answers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let mut svc = Service::new(ServiceConfig::default());
            serve_tcp(&mut svc, listener, &ShutdownFlag::new()).unwrap()
        });

        let exchange = move |id: u64| {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all((Request::solve(id, scenario(id)).to_line() + "\n").as_bytes())
                .unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            Response::parse(&line).unwrap()
        };
        let a = thread::spawn(move || exchange(100));
        let b = thread::spawn(move || exchange(200));
        let ra = a.join().unwrap();
        let rb = b.join().unwrap();
        assert_eq!(ra.in_reply_to, Some(100));
        assert_eq!(rb.in_reply_to, Some(200));
        assert!(ra.is_completed_solve() && rb.is_completed_solve());

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all((Request::control(1, "shutdown").to_line() + "\n").as_bytes())
            .unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        assert_eq!(Response::parse(&line).unwrap().op, "bye");
        server.join().unwrap();
    }

    #[test]
    fn tcp_disconnect_abandons_queued_and_inflight_work() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let mut svc = Service::new(ServiceConfig::default());
            serve_tcp(&mut svc, listener, &ShutdownFlag::new()).unwrap()
        });

        // Two slow solves, then hang up without reading a byte. The
        // reader thread's EOF trips the connection token: whichever
        // solve is in flight abandons at its next eval check and the
        // queued one never burns a worker.
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all((Request::solve(1, slow_scenario(5)).to_line() + "\n").as_bytes())
                .unwrap();
            stream
                .write_all((Request::solve(2, slow_scenario(6)).to_line() + "\n").as_bytes())
                .unwrap();
            // dropped here: disconnect
        }
        // Let the server chew through the round before shutting down.
        thread::sleep(Duration::from_millis(50));
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all((Request::control(9, "shutdown").to_line() + "\n").as_bytes())
            .unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        assert_eq!(Response::parse(&line).unwrap().op, "bye");
        let stats = server.join().unwrap();
        assert!(
            stats.cancelled >= 1,
            "disconnect must cancel at least the queued solve (stats: {stats:?})"
        );
        assert_eq!(stats.received, 3);
        assert_eq!(stats.responded, 3);
    }

    #[test]
    fn tcp_per_conn_inflight_cap_sheds_at_the_reader() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let mut svc = Service::new(ServiceConfig {
                per_conn_inflight: 1,
                retry_after_ms: 13,
                ..ServiceConfig::default()
            });
            serve_tcp(&mut svc, listener, &ShutdownFlag::new()).unwrap()
        });

        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        // One slow solve holds the single in-flight slot; the pings
        // behind it are shed by the reader without queueing.
        writer
            .write_all((Request::solve(0, slow_scenario(7)).to_line() + "\n").as_bytes())
            .unwrap();
        for id in 1..=5u64 {
            writer
                .write_all((Request::control(id, "ping").to_line() + "\n").as_bytes())
                .unwrap();
        }
        let mut reader = BufReader::new(stream);
        let mut shed = 0;
        let mut solved = 0;
        for _ in 0..6 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let resp = Response::parse(&line).unwrap();
            match resp.op.as_str() {
                "overloaded" => {
                    assert_eq!(resp.retry_after_ms, Some(13));
                    shed += 1;
                }
                "solve_ok" => solved += 1,
                other => panic!("unexpected op {other}"),
            }
        }
        assert_eq!(solved, 1);
        assert_eq!(shed, 5, "every ping behind the cap shed at the reader");

        writer
            .write_all((Request::control(9, "shutdown").to_line() + "\n").as_bytes())
            .unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::parse(&line).unwrap().op, "bye");
        let stats = server.join().unwrap();
        assert_eq!(stats.shed, 5);
        assert_eq!(stats.received, 7, "reader sheds count as received");
    }
}
