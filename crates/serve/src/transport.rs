//! Byte movers: NDJSON over stdio and over TCP.
//!
//! Both transports are thin: they read lines, stamp them with a
//! receive instant, and feed *rounds* (everything queued, up to
//! `max_batch`) into one [`Service`]. All solver behavior — engine
//! reuse, budgets, panic isolation — lives below the transport, which
//! is what keeps `mmph batch` and `mmph serve` on one code path.
//!
//! Shutdown is cooperative everywhere: stdin EOF, a `shutdown`
//! request, or a tripped [`ShutdownFlag`] (SIGINT) all drain the
//! already-queued requests, flush responses, and return the final
//! stats — in-flight work is answered, never dropped.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, TryRecvError};
use std::thread;
use std::time::Duration;

use crate::envelope::ServiceStats;
use crate::service::{Incoming, Service};
use crate::signals::ShutdownFlag;
use crate::Result;

/// How long the stdio dispatcher blocks waiting for the first line of
/// a round before re-checking the shutdown flag.
const DISPATCH_POLL: Duration = Duration::from_millis(50);

/// Idle sleep of the TCP accept/dispatch loop when nothing is queued.
const TCP_IDLE_SLEEP: Duration = Duration::from_millis(2);

/// Pulls everything currently queued (up to `cap` items) without
/// blocking.
fn drain_queue<T>(rx: &Receiver<T>, first: Option<T>, cap: usize) -> Vec<T> {
    let mut batch = Vec::new();
    if let Some(item) = first {
        batch.push(item);
    }
    while batch.len() < cap {
        match rx.try_recv() {
            Ok(item) => batch.push(item),
            Err(_) => break,
        }
    }
    batch
}

/// Runs one round through the service and writes the responses.
fn write_round(service: &mut Service, batch: &[Incoming], out: &mut dyn Write) -> Result<()> {
    if batch.is_empty() {
        return Ok(());
    }
    for resp in service.handle_lines(batch) {
        writeln!(out, "{}", resp.to_line())?;
    }
    out.flush()?;
    Ok(())
}

/// Serves NDJSON requests from `reader` (stdin in production, any
/// buffered reader in tests), writing responses to `out`. Returns the
/// final stats when the input reaches EOF, a `shutdown` request is
/// handled, or `shutdown` trips — in every case the already-queued
/// requests are answered and `out` is flushed first.
pub fn serve_stdio<R>(
    service: &mut Service,
    reader: R,
    out: &mut dyn Write,
    shutdown: &ShutdownFlag,
) -> Result<ServiceStats>
where
    R: Read + Send + 'static,
{
    let (tx, rx) = mpsc::channel::<Incoming>();
    // The reader thread is detached on purpose: a blocking read of
    // stdin cannot be interrupted, so shutdown must not wait on it.
    thread::spawn(move || {
        let buf = BufReader::new(reader);
        for line in buf.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if tx.send(Incoming::now(line)).is_err() {
                break;
            }
        }
    });

    let max_batch = service.config().max_batch.max(1);
    loop {
        if shutdown.is_tripped() {
            break;
        }
        match rx.recv_timeout(DISPATCH_POLL) {
            Ok(first) => {
                let batch = drain_queue(&rx, Some(first), max_batch);
                write_round(service, &batch, out)?;
                if service.shutdown_requested() {
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout) => continue,
            // Reader hit EOF and the queue is fully drained.
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    // Final drain: answer whatever was queued before the stop signal.
    loop {
        let batch = drain_queue(&rx, None, max_batch);
        if batch.is_empty() {
            break;
        }
        write_round(service, &batch, out)?;
    }
    out.flush()?;
    Ok(service.stats().clone())
}

/// TCP transport tunables.
#[derive(Debug, Clone)]
pub struct TcpServerConfig {
    /// Bind address, e.g. `127.0.0.1:7311`.
    pub addr: String,
}

impl Default for TcpServerConfig {
    fn default() -> Self {
        TcpServerConfig {
            addr: "127.0.0.1:7311".into(),
        }
    }
}

/// One event from a connection reader thread.
enum ConnEvent {
    Line { conn: u64, inc: Incoming },
    Closed { conn: u64 },
}

/// Serves NDJSON requests over TCP. Every connection gets a reader
/// thread feeding one shared queue; the dispatch loop batches lines
/// from *all* connections into service rounds (so concurrent clients
/// still amortize engine builds) and routes each response back to the
/// connection its request came from. Returns the final stats once a
/// `shutdown` request is handled or `shutdown` trips.
pub fn serve_tcp(
    service: &mut Service,
    listener: TcpListener,
    shutdown: &ShutdownFlag,
) -> Result<ServiceStats> {
    listener.set_nonblocking(true)?;
    let (tx, rx) = mpsc::channel::<ConnEvent>();
    let mut writers: HashMap<u64, TcpStream> = HashMap::new();
    let mut next_conn: u64 = 0;
    let max_batch = service.config().max_batch.max(1);

    let mut stopping = false;
    loop {
        if shutdown.is_tripped() {
            stopping = true;
        }
        // Accept any waiting connections (non-blocking).
        if !stopping {
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        stream.set_nodelay(true).ok();
                        let writer = stream.try_clone()?;
                        let conn = next_conn;
                        next_conn += 1;
                        writers.insert(conn, writer);
                        let tx = tx.clone();
                        // Detached: exits when the client closes or the
                        // dispatcher drops `rx` on its way out.
                        thread::spawn(move || {
                            let buf = BufReader::new(stream);
                            for line in buf.lines() {
                                let Ok(line) = line else { break };
                                if line.trim().is_empty() {
                                    continue;
                                }
                                if tx
                                    .send(ConnEvent::Line {
                                        conn,
                                        inc: Incoming::now(line),
                                    })
                                    .is_err()
                                {
                                    return;
                                }
                            }
                            let _ = tx.send(ConnEvent::Closed { conn });
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) => return Err(e.into()),
                }
            }
        }

        // Gather one round across all connections.
        let mut conns: Vec<u64> = Vec::new();
        let mut batch: Vec<Incoming> = Vec::new();
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(ConnEvent::Line { conn, inc }) => {
                    conns.push(conn);
                    batch.push(inc);
                }
                Ok(ConnEvent::Closed { conn }) => {
                    writers.remove(&conn);
                }
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }

        if batch.is_empty() {
            if stopping {
                break;
            }
            thread::sleep(TCP_IDLE_SLEEP);
            continue;
        }

        let responses = service.handle_lines(&batch);
        for (conn, resp) in conns.iter().zip(&responses) {
            if let Some(w) = writers.get_mut(conn) {
                let ok = writeln!(w, "{}", resp.to_line()).and_then(|_| w.flush());
                if ok.is_err() {
                    writers.remove(conn);
                }
            }
        }
        if service.shutdown_requested() {
            stopping = true;
        }
    }
    Ok(service.stats().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{Request, Response};
    use crate::service::ServiceConfig;
    use mmph_geom::Norm;
    use mmph_sim::{Scenario, WeightScheme};
    use std::io::Cursor;

    fn scenario(seed: u64) -> Scenario {
        Scenario::paper_2d(25, 3, 1.0, Norm::L2, WeightScheme::PAPER_WEIGHTED, seed)
    }

    fn script(reqs: &[Request]) -> Cursor<Vec<u8>> {
        let mut s = String::new();
        for r in reqs {
            s.push_str(&r.to_line());
            s.push('\n');
        }
        Cursor::new(s.into_bytes())
    }

    fn parse_out(buf: &[u8]) -> Vec<Response> {
        String::from_utf8(buf.to_vec())
            .unwrap()
            .lines()
            .map(|l| Response::parse(l).unwrap())
            .collect()
    }

    #[test]
    fn stdio_eof_drains_answers_everything_and_returns() {
        let mut svc = Service::new(ServiceConfig::default());
        let reqs = vec![
            Request::control(1, "ping"),
            Request::solve(2, scenario(1)),
            Request::solve(3, scenario(1)),
        ];
        let mut out = Vec::new();
        let stats = serve_stdio(&mut svc, script(&reqs), &mut out, &ShutdownFlag::new()).unwrap();
        let responses = parse_out(&out);
        assert_eq!(responses.len(), 3, "EOF drained every request");
        assert_eq!(responses[0].op, "pong");
        assert!(responses[1].is_completed_solve());
        assert!(responses[2].is_completed_solve());
        assert_eq!(stats.received, 3);
        assert_eq!(stats.responded, 3);
    }

    #[test]
    fn stdio_shutdown_request_answers_bye_and_exits() {
        let mut svc = Service::new(ServiceConfig::default());
        let reqs = vec![
            Request::solve(1, scenario(2)),
            Request::control(2, "shutdown"),
        ];
        let mut out = Vec::new();
        let stats = serve_stdio(&mut svc, script(&reqs), &mut out, &ShutdownFlag::new()).unwrap();
        let responses = parse_out(&out);
        assert!(responses.iter().any(|r| r.op == "bye"));
        assert!(responses.iter().any(|r| r.is_completed_solve()));
        assert_eq!(stats.responded, 2);
    }

    #[test]
    fn stdio_tripped_flag_still_drains_queued_lines() {
        let reqs = vec![Request::control(1, "ping"), Request::control(2, "ping")];
        let flag = ShutdownFlag::new();
        flag.trip(); // tripped before the loop ever runs
        let mut out = Vec::new();
        // Give the reader thread a moment to enqueue by retrying: the
        // final-drain pass runs after the main loop exits immediately.
        let mut responses = Vec::new();
        for _ in 0..50 {
            out.clear();
            let mut fresh = Service::new(ServiceConfig::default());
            serve_stdio(&mut fresh, script(&reqs), &mut out, &flag).unwrap();
            responses = parse_out(&out);
            if responses.len() == 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(responses.len(), 2, "queued pings answered before exit");
    }

    #[test]
    fn tcp_round_trips_and_shuts_down() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let mut svc = Service::new(ServiceConfig::default());
            serve_tcp(&mut svc, listener, &ShutdownFlag::new()).unwrap()
        });

        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut send = move |req: &Request| {
            writer.write_all(req.to_line().as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
        };
        send(&Request::control(7, "ping"));
        send(&Request::solve(8, scenario(3)));
        let mut reader = BufReader::new(stream);
        let mut read_resp = move || {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            Response::parse(&line).unwrap()
        };
        let pong = read_resp();
        assert_eq!(pong.op, "pong");
        assert_eq!(pong.in_reply_to, Some(7));
        let solved = read_resp();
        assert!(solved.is_completed_solve(), "{:?}", solved.error);
        assert_eq!(solved.in_reply_to, Some(8));
        assert!(solved.latency_us.is_some());

        send(&Request::control(9, "shutdown"));
        let bye = read_resp();
        assert_eq!(bye.op, "bye");
        let stats = server.join().unwrap();
        assert_eq!(stats.responded, 3);
        assert_eq!(stats.solved, 1);
    }

    #[test]
    fn tcp_two_clients_get_their_own_answers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let mut svc = Service::new(ServiceConfig::default());
            serve_tcp(&mut svc, listener, &ShutdownFlag::new()).unwrap()
        });

        let exchange = move |id: u64| {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all((Request::solve(id, scenario(id)).to_line() + "\n").as_bytes())
                .unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            Response::parse(&line).unwrap()
        };
        let a = thread::spawn(move || exchange(100));
        let b = thread::spawn(move || exchange(200));
        let ra = a.join().unwrap();
        let rb = b.join().unwrap();
        assert_eq!(ra.in_reply_to, Some(100));
        assert_eq!(rb.in_reply_to, Some(200));
        assert!(ra.is_completed_solve() && rb.is_completed_solve());

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all((Request::control(1, "shutdown").to_line() + "\n").as_bytes())
            .unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        assert_eq!(Response::parse(&line).unwrap().op, "bye");
        server.join().unwrap();
    }
}
