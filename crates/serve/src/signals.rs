//! SIGINT → shutdown-flag bridge.
//!
//! The daemon must drain in-flight requests on Ctrl-C rather than die
//! mid-solve. The container has no `libc`/`signal-hook` crate, but on
//! Unix `std` itself links libc, so the one symbol needed —
//! `signal(2)` — is declared directly. The handler does the only
//! async-signal-safe thing possible: it flips a static atomic that
//! the dispatch loops poll.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Set by the signal handler. Only flags handed out by
/// [`install_sigint_flag`] observe it; plain [`ShutdownFlag::new`]
/// flags stay independent (important for tests sharing one process).
static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);

/// Shared "please stop" switch polled by the transport loops. Clone is
/// cheap (an `Arc`); any holder can trip it.
#[derive(Debug, Clone, Default)]
pub struct ShutdownFlag {
    local: Arc<AtomicBool>,
    observe_sigint: bool,
}

impl ShutdownFlag {
    /// A fresh, untripped flag that ignores SIGINT.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag.
    pub fn trip(&self) {
        self.local.store(true, Ordering::SeqCst);
    }

    /// True once tripped — programmatically via [`trip`](Self::trip),
    /// or by SIGINT for flags from [`install_sigint_flag`].
    pub fn is_tripped(&self) -> bool {
        self.local.load(Ordering::SeqCst)
            || (self.observe_sigint && SIGINT_SEEN.load(Ordering::SeqCst))
    }
}

#[cfg(unix)]
mod imp {
    use super::*;

    const SIGINT: i32 = 2;

    // `std` links libc on every Unix target, so the symbol resolves
    // without a libc crate dependency. The handler travels as a plain
    // `usize` function address.
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_sig: i32) {
        // Only async-signal-safe operation: store to an atomic.
        SIGINT_SEEN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal plumbing off Unix; the flag still works when tripped
    /// programmatically (stdin EOF, `shutdown` op).
    pub fn install() {}
}

/// Installs a process-wide SIGINT handler (idempotent) and returns a
/// [`ShutdownFlag`] that observes it in addition to manual trips.
pub fn install_sigint_flag() -> ShutdownFlag {
    imp::install();
    ShutdownFlag {
        local: Arc::default(),
        observe_sigint: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_trip_is_visible_through_clones() {
        let flag = ShutdownFlag::new();
        let peer = flag.clone();
        assert!(!peer.is_tripped());
        flag.trip();
        assert!(peer.is_tripped());
    }

    #[cfg(unix)]
    #[test]
    fn sigint_trips_installed_flags_only() {
        unsafe extern "C" {
            fn raise(sig: i32) -> i32;
        }
        let flag = install_sigint_flag();
        let plain = ShutdownFlag::new();
        assert!(!flag.is_tripped());
        unsafe {
            raise(2);
        }
        assert!(flag.is_tripped());
        assert!(!plain.is_tripped(), "plain flags ignore the signal");
    }
}
