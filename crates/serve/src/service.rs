//! Transport-independent request handling.
//!
//! A [`Service`] owns the solver configuration, the scenario→instance
//! cache, and the aggregate counters. Transports (stdio, TCP, or the
//! in-process `mmph batch` driver) feed it *rounds* of requests —
//! everything queued at dispatch time, up to `max_batch` — and get
//! back exactly one [`Response`] per input, in input order.
//!
//! Dispatching a whole round at once is what lets the daemon reuse the
//! batch pipeline unchanged: the round becomes one
//! [`BatchRunner::run_budgeted`] call, so adjacent identical requests
//! share an engine build and every worker keeps its
//! [`SolveScratch`](mmph_core::SolveScratch) arena — the same
//! amortizations `mmph batch` gets, now under sustained request
//! traffic. Per-request deadlines ride along as [`SolveBudget`]s; a
//! tripped budget degrades that request (prefix selection, `degraded`
//! status), a panicking worker becomes an `error` response, and
//! neither ever stalls the round.
//!
//! Overload and disconnects are handled *before* a worker is burned:
//! queueing delay is measured per request and subtracted from its
//! effective deadline (a request whose positive deadline the queue
//! already ate is shed as `overloaded` with a `retry_after_ms` hint),
//! and a request whose connection [`CancelToken`] has tripped — the
//! client hung up or stopped reading — is answered degraded without
//! solving. Tokens also thread into the [`SolveBudget`], so a
//! disconnect mid-solve abandons the remaining rounds at the next
//! eval check and returns the committed prefix.

use std::time::{Duration, Instant};

use mmph_core::{
    plan_scale, solve_coreset, solve_sharded, BatchReport, BatchResult, BatchRunner, CancelToken,
    CoresetConfig, EngineKind, IncrementalInstance, Instance, OracleStrategy, ResolveConfig,
    ScalePlan, ShardConfig, SolveBudget, SolveScratch, SolveStatus, DEFAULT_CORESET_CELLS,
    DEFAULT_SPARSE_CAP_BYTES,
};
use mmph_sim::{parse_spec, validate_scenario, Scenario};

use crate::envelope::{salvage_id, Request, Response, ServiceStats};
use crate::{Result, ServeError};

/// How many scenario→instance pairs the service keeps generated.
/// Streams of repeated scenarios (the serving workload) hit the cache;
/// a varied stream regenerates at most one instance per request.
const INSTANCE_CACHE: usize = 4;

/// Tunables shared by every transport.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Default candidate-argmax strategy when a request has no
    /// `solver` override.
    pub strategy: OracleStrategy,
    /// Default reward engine when a request has no `engine` override.
    pub engine: EngineKind,
    /// Build CSR adjacencies with the rayon-parallel path.
    pub parallel_csr: bool,
    /// Scratch/engine reuse (the warm batch pipeline). `false` is the
    /// cold per-request baseline.
    pub warm: bool,
    /// Dirty-region CELF upgrade on sparse engines.
    pub dirty_region: bool,
    /// Budget applied to requests that carry none of their own.
    pub default_budget: SolveBudget,
    /// Most requests drained into one dispatch round by the
    /// transports. Larger rounds amortize better; smaller rounds
    /// bound per-request queueing delay.
    pub max_batch: usize,
    /// Dispatch-backlog depth at which transports shed the newest
    /// queued requests with `overloaded` responses instead of letting
    /// the queue grow without bound.
    pub queue_cap: usize,
    /// Per-connection in-flight cap (TCP): a connection with this many
    /// unanswered requests gets further lines shed at the reader,
    /// before they consume global queue space.
    pub per_conn_inflight: usize,
    /// Back-off hint stamped on every `overloaded` response.
    pub retry_after_ms: u64,
    /// TCP write timeout in milliseconds; a client that cannot absorb
    /// its responses within this window is treated as disconnected
    /// (its connection token trips, abandoning its pending work).
    /// `0` disables the timeout.
    pub write_timeout_ms: u64,
    /// Sparse-engine memory cap handed to the large-n pipelines: a
    /// `solve` whose engine resolves to `auto` and whose CSR estimate
    /// busts this cap escalates to the coreset pipeline instead of
    /// silently degrading to the kd engine.
    pub sparse_cap_bytes: usize,
    /// Selections longer than this stream back as multiple chunked
    /// frames (see [`Response::into_chunks`]); `0` disables chunking.
    pub chunk_selection: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            strategy: OracleStrategy::Lazy,
            engine: EngineKind::Sparse,
            parallel_csr: false,
            warm: true,
            dirty_region: false,
            default_budget: SolveBudget::unlimited(),
            max_batch: 64,
            queue_cap: 1024,
            per_conn_inflight: 64,
            retry_after_ms: 25,
            write_timeout_ms: 2000,
            sparse_cap_bytes: DEFAULT_SPARSE_CAP_BYTES,
            chunk_selection: 4096,
        }
    }
}

/// Parses a request-level solver name. `greedy2`/`seq` is the eager
/// sequential argmax, `lazy` the CELF oracle, `par` the rayon argmax.
pub fn parse_solver(raw: &str) -> Result<OracleStrategy> {
    match raw {
        "greedy2" | "seq" => Ok(OracleStrategy::Seq),
        "lazy" => Ok(OracleStrategy::Lazy),
        "par" => Ok(OracleStrategy::Par),
        other => Err(ServeError::Protocol(format!(
            "unknown solver `{other}` (known: greedy2, lazy, par)"
        ))),
    }
}

/// One queued line with the instant the transport read it; latency in
/// the response is measured from `received`.
#[derive(Debug)]
pub struct Incoming {
    /// The raw NDJSON line.
    pub line: String,
    /// When the transport read it off the wire.
    pub received: Instant,
    /// The originating connection's cancel token; `None` for
    /// transports without disconnect semantics (stdio, in-process).
    pub cancel: Option<CancelToken>,
}

impl Incoming {
    /// Wraps a line, stamping it now.
    pub fn now(line: String) -> Self {
        Incoming {
            line,
            received: Instant::now(),
            cancel: None,
        }
    }

    /// Wraps a line carrying its connection's cancel token.
    pub fn with_cancel(line: String, cancel: CancelToken) -> Self {
        Incoming {
            line,
            received: Instant::now(),
            cancel: Some(cancel),
        }
    }
}

/// What one round item turns into before the solve pass runs.
enum Plan {
    /// Control op or error: the response is already known.
    Ready(Box<Response>),
    /// Solve request `slot` positions into the round's solve stream.
    Solve { slot: usize, id: u64 },
}

/// A solve extracted from a request, pre-generation.
struct SolveItem {
    instance: Instance<2>,
    budget: SolveBudget,
    strategy: OracleStrategy,
    engine: EngineKind,
    received: Instant,
    queue_delay: Duration,
}

/// What `prepare_solve` decided for a well-formed solve request.
enum Prepared {
    /// Admitted: run it through the round's solve pass.
    Solve(Box<SolveItem>),
    /// Answered without solving: the queue ate its deadline
    /// (`overloaded`) or its connection is gone (degraded, cancelled).
    Ready(Box<Response>),
}

/// One dispatched item: the parse outcome (or the ready error
/// response), the instant the transport read it, and its connection's
/// cancel token.
type ParsedItem = (
    std::result::Result<Request, Response>,
    Instant,
    Option<CancelToken>,
);

/// The service's tracked incremental instance: the state behind the
/// `mutate`/`resolve` ops. One per service — the serving analogue of a
/// long-lived solver process watching one evolving population.
struct Tracked {
    inc: IncrementalInstance<2>,
    scratch: SolveScratch,
}

/// The transport-independent request handler. See the module docs.
pub struct Service {
    config: ServiceConfig,
    stats: ServiceStats,
    cache: Vec<(Scenario, Instance<2>)>,
    tracked: Option<Tracked>,
    shutdown: bool,
}

impl Service {
    /// A service with the given tunables.
    pub fn new(config: ServiceConfig) -> Self {
        Service {
            config,
            stats: ServiceStats::default(),
            cache: Vec::new(),
            tracked: None,
            shutdown: false,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// True once a `shutdown` request has been handled; transports
    /// drain their queues and exit when they observe this.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// Handles one round of raw lines: exactly one response per input,
    /// in input order. Never fails — malformed lines become `error`
    /// responses (correlated via best-effort id salvage).
    pub fn handle_lines(&mut self, batch: &[Incoming]) -> Vec<Response> {
        self.stats.received += batch.len() as u64;
        let parsed: Vec<ParsedItem> = batch
            .iter()
            .map(|inc| {
                let item = Request::parse(&inc.line)
                    .map_err(|e| Response::error(salvage_id(&inc.line), e.to_string()));
                (item, inc.received, inc.cancel.clone())
            })
            .collect();
        self.dispatch(parsed)
    }

    /// Handles one round of already-parsed requests (the in-process
    /// transport used by `mmph batch`). Stamps every request with the
    /// same receive instant, `now`.
    pub fn handle_requests(&mut self, requests: Vec<Request>, now: Instant) -> Vec<Response> {
        self.stats.received += requests.len() as u64;
        let parsed = requests
            .into_iter()
            .map(|r| {
                (
                    r.validate()
                        .map_err(|e| Response::error(None, e.to_string())),
                    now,
                    None,
                )
            })
            .collect();
        self.dispatch(parsed)
    }

    /// The dispatch core shared by both entry points.
    fn dispatch(&mut self, parsed: Vec<ParsedItem>) -> Vec<Response> {
        let mut plans: Vec<Plan> = Vec::with_capacity(parsed.len());
        let mut solves: Vec<SolveItem> = Vec::new();
        for (item, received, cancel) in parsed {
            let req = match item {
                Ok(req) => req,
                Err(resp) => {
                    plans.push(Plan::Ready(Box::new(resp)));
                    continue;
                }
            };
            match req.op.as_str() {
                "ping" => plans.push(Plan::Ready(Box::new(Response::new(Some(req.id), "pong")))),
                "stats" => {
                    let mut resp = Response::new(Some(req.id), "stats_ok");
                    resp.stats = Some(self.stats.clone());
                    plans.push(Plan::Ready(Box::new(resp)));
                }
                "shutdown" => {
                    self.shutdown = true;
                    plans.push(Plan::Ready(Box::new(Response::new(Some(req.id), "bye"))));
                }
                "mutate" => {
                    let resp = match self.handle_mutate(&req) {
                        Ok(resp) => resp,
                        Err(e) => Response::error(Some(req.id), e.to_string()),
                    };
                    plans.push(Plan::Ready(Box::new(resp)));
                }
                "resolve" => {
                    let resp = self.handle_resolve(&req, received, cancel);
                    plans.push(Plan::Ready(Box::new(resp)));
                }
                "solve" => match self.prepare_solve(&req, received, cancel) {
                    Ok(Prepared::Solve(item)) => {
                        solves.push(*item);
                        plans.push(Plan::Solve {
                            slot: solves.len() - 1,
                            id: req.id,
                        });
                    }
                    Ok(Prepared::Ready(resp)) => plans.push(Plan::Ready(resp)),
                    Err(e) => plans.push(Plan::Ready(Box::new(Response::error(
                        Some(req.id),
                        e.to_string(),
                    )))),
                },
                // validate() already rejected anything else.
                other => plans.push(Plan::Ready(Box::new(Response::error(
                    Some(req.id),
                    format!("unknown op `{other}`"),
                )))),
            }
        }

        let solved = self.run_solves(&solves);
        let out: Vec<Response> = plans
            .into_iter()
            .map(|plan| match plan {
                Plan::Ready(resp) => *resp,
                Plan::Solve { slot, id } => Self::solve_response(
                    id,
                    &solved[slot],
                    solves[slot].received,
                    solves[slot].queue_delay,
                ),
            })
            .collect();
        for resp in &out {
            match resp.op.as_str() {
                "error" => self.stats.errors += 1,
                "overloaded" => self.stats.shed += 1,
                "mutate_ok" => self.stats.mutations += 1,
                "resolve_ok" => {
                    if resp.status.as_deref() == Some("completed") {
                        self.stats.solved += 1;
                        if resp.warm == Some(true) {
                            self.stats.warm_resolves += 1;
                        }
                    } else {
                        self.stats.degraded += 1;
                        if resp.degrade_reason.as_deref() == Some("solve cancelled") {
                            self.stats.cancelled += 1;
                        }
                    }
                }
                "solve_ok" => {
                    if resp.status.as_deref() == Some("completed") {
                        self.stats.solved += 1;
                    } else {
                        self.stats.degraded += 1;
                        // Cancelled solves are a subset of `degraded`.
                        if resp.degrade_reason.as_deref() == Some("solve cancelled") {
                            self.stats.cancelled += 1;
                        }
                    }
                    if resp.engine_reused == Some(true) {
                        self.stats.engines_reused += 1;
                    }
                }
                _ => {}
            }
        }
        self.stats.responded += out.len() as u64;
        out
    }

    /// Resolves one solve request to an instance + budget + config, or
    /// to an immediate response when queueing already decided its
    /// fate: a tripped connection token means the client is gone
    /// (degraded, no solve), and a *positive* deadline fully consumed
    /// by queueing delay is shed as `overloaded` without burning a
    /// worker. A zero deadline stays an explicit empty-prefix probe
    /// and degrades through the clock as before. Otherwise queueing
    /// delay is subtracted from the effective deadline so
    /// `deadline_ms` bounds end-to-end latency, not just solve time.
    fn prepare_solve(
        &mut self,
        req: &Request,
        received: Instant,
        cancel: Option<CancelToken>,
    ) -> Result<Prepared> {
        let scenario = Self::scenario_from(req)?.ok_or_else(|| {
            ServeError::Protocol("solve request needs a `scenario` or a `spec`".into())
        })?;
        validate_scenario(&scenario)?;
        let instance = self.instance_for(&scenario)?;
        let queue_delay = received.elapsed();
        if cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
            return Ok(Prepared::Ready(Box::new(Self::cancelled_response(
                req.id,
                &instance,
                received,
                queue_delay,
            ))));
        }
        let mut budget = self.config.default_budget.clone();
        if req.deadline_ms.is_some() || req.max_evals.is_some() {
            budget = SolveBudget::unlimited();
            if let Some(ms) = req.deadline_ms {
                budget = budget.with_deadline_ms(ms);
            }
            if let Some(cap) = req.max_evals {
                budget = budget.with_max_evals(cap);
            }
        }
        if let Some(deadline) = budget.deadline() {
            if !deadline.is_zero() {
                match deadline.checked_sub(queue_delay).filter(|d| !d.is_zero()) {
                    Some(left) => budget = budget.with_deadline(left),
                    None => {
                        let mut resp =
                            Response::overloaded(Some(req.id), self.config.retry_after_ms);
                        resp.queue_ms = Some(queue_delay.as_secs_f64() * 1e3);
                        resp.latency_us = Some(received.elapsed().as_micros() as u64);
                        return Ok(Prepared::Ready(Box::new(resp)));
                    }
                }
            }
        }
        if let Some(token) = cancel {
            budget = budget.with_cancel(token);
        }
        let strategy = match &req.solver {
            Some(name) => parse_solver(name)?,
            None => self.config.strategy,
        };
        let engine = match &req.engine {
            Some(name) => EngineKind::parse(name).map_err(ServeError::Protocol)?,
            None => self.config.engine,
        };
        if req.coreset_cells.is_some() && req.shards.is_some() {
            return Err(ServeError::Protocol(
                "request carries both `coreset_cells` and `shards`; pick one pipeline".into(),
            ));
        }
        // Explicit pipeline request, or an `auto` engine whose CSR
        // estimate busts the sparse cap: answer through the large-n
        // pipeline instead of the direct batch path.
        let escalate = req.coreset_cells.is_none()
            && req.shards.is_none()
            && plan_scale(&instance, engine, self.config.sparse_cap_bytes) == ScalePlan::Coreset;
        if req.coreset_cells.is_some() || req.shards.is_some() || escalate {
            let resp = self.pipeline_response(
                req,
                &instance,
                budget,
                strategy,
                engine,
                received,
                queue_delay,
            )?;
            return Ok(Prepared::Ready(Box::new(resp)));
        }
        Ok(Prepared::Solve(Box::new(SolveItem {
            instance,
            budget,
            strategy,
            engine,
            received,
            queue_delay,
        })))
    }

    /// Runs one solve through a large-n pipeline — coreset reduction
    /// (`coreset_cells` or auto-escalation) or shard-then-merge
    /// (`shards`) — and maps the report onto the solve wire shape with
    /// the pipeline extras (`pipeline`, `coreset_n`, `gap`, `centers`)
    /// filled in. Pipelines run inline on the dispatch thread: they
    /// parallelize internally, so fanning them out per-request would
    /// only oversubscribe the pool.
    #[allow(clippy::too_many_arguments)]
    fn pipeline_response(
        &self,
        req: &Request,
        instance: &Instance<2>,
        budget: SolveBudget,
        strategy: OracleStrategy,
        engine: EngineKind,
        received: Instant,
        queue_delay: Duration,
    ) -> Result<Response> {
        let solve_start = Instant::now();
        let mut resp = Response::new(Some(req.id), "solve_ok");
        resp.n = Some(instance.n());
        resp.k = Some(instance.k());
        resp.engine_reused = Some(false);
        let degraded = if let Some(shards) = req.shards {
            let cfg = ShardConfig {
                shards,
                engine,
                strategy,
                budget,
                cap_bytes: self.config.sparse_cap_bytes,
                parallel: true,
            };
            let report = solve_sharded(instance, &cfg)?;
            resp.pipeline = Some("shard".into());
            resp.reward = Some(report.objective);
            resp.selection = Some(report.selection);
            resp.centers = Some(report.centers.iter().map(|p| p.0).collect());
            report.degraded
        } else {
            let cfg = CoresetConfig {
                cells_per_radius: req.coreset_cells.unwrap_or(DEFAULT_CORESET_CELLS),
                engine,
                strategy,
                budget,
                cap_bytes: self.config.sparse_cap_bytes,
            };
            let report = solve_coreset(instance, &cfg)?;
            resp.pipeline = Some("coreset".into());
            resp.coreset_n = Some(report.coreset_n as u64);
            resp.gap = Some(report.gap);
            resp.evals = Some(report.evals);
            resp.reward = Some(report.full_objective);
            resp.selection = Some(report.selection);
            resp.centers = Some(report.centers.iter().map(|p| p.0).collect());
            report.degraded
        };
        match degraded {
            Some(reason) => {
                resp.status = Some("degraded".into());
                resp.degrade_reason = Some(reason.to_string());
            }
            None => resp.status = Some("completed".into()),
        }
        resp.solve_us = Some(solve_start.elapsed().as_micros() as u64);
        resp.latency_us = Some(received.elapsed().as_micros() as u64);
        resp.queue_ms = Some(queue_delay.as_secs_f64() * 1e3);
        Ok(resp)
    }

    /// The scenario a request names, inline or by spec; `None` when it
    /// names neither, an error when it names both or the spec expands
    /// to more than one scenario.
    fn scenario_from(req: &Request) -> Result<Option<Scenario>> {
        match (&req.scenario, &req.spec) {
            (Some(sc), None) => Ok(Some(sc.clone())),
            (None, Some(spec)) => {
                let spec = parse_spec(spec)?;
                if spec.count != 1 || spec.repeat != 1 {
                    return Err(ServeError::Protocol(
                        "a solve request names exactly one scenario (count=repeat=1)".into(),
                    ));
                }
                Ok(Some(spec.scenarios().remove(0)))
            }
            (Some(_), Some(_)) => Err(ServeError::Protocol(
                "request carries both `scenario` and `spec`; pick one".into(),
            )),
            (None, None) => Ok(None),
        }
    }

    /// `mutate`: initialize the tracked incremental instance from the
    /// request's scenario (when given) and/or patch it with the
    /// request's deltas, in order. Initialization and patching compose
    /// in one request; a request carrying neither is an error.
    fn handle_mutate(&mut self, req: &Request) -> Result<Response> {
        let scenario = Self::scenario_from(req)?;
        if scenario.is_none() && req.deltas.is_none() {
            return Err(ServeError::Protocol(
                "mutate request needs a `scenario`/`spec` to track and/or `deltas` to apply".into(),
            ));
        }
        if let Some(scenario) = scenario {
            validate_scenario(&scenario)?;
            let instance = self.instance_for(&scenario)?;
            let kind = match req
                .engine
                .as_deref()
                .map(EngineKind::parse)
                .transpose()
                .map_err(ServeError::Protocol)?
                .unwrap_or(self.config.engine)
            {
                EngineKind::Auto | EngineKind::Sparse => EngineKind::Sparse,
                EngineKind::SparseF32 => EngineKind::SparseF32,
                other => {
                    return Err(ServeError::Protocol(format!(
                        "mutate needs a sparse engine (auto, sparse or sparse-f32), got {other:?}"
                    )))
                }
            };
            self.tracked = Some(Tracked {
                inc: IncrementalInstance::new(instance, kind)?,
                scratch: SolveScratch::new(),
            });
        }
        let tracked = self.tracked.as_mut().ok_or_else(|| {
            ServeError::Protocol(
                "no tracked instance: send a mutate with a `scenario` first".into(),
            )
        })?;
        if let Some(deltas) = &req.deltas {
            tracked.inc.apply_churn(deltas)?;
        }
        let mut resp = Response::new(Some(req.id), "mutate_ok");
        resp.n = Some(tracked.inc.instance().n());
        resp.k = Some(tracked.inc.instance().k());
        resp.churn_version = Some(tracked.inc.churn_version());
        Ok(resp)
    }

    /// `resolve`: warm re-solve the tracked instance. Shed/cancel
    /// semantics match `solve`: a connection that already hung up gets
    /// a degraded response without burning the solver, a positive
    /// deadline the queue consumed is shed as `overloaded`, and a
    /// token tripping mid-solve degrades the response while the
    /// pending churn (and the previous seed) survive for the next
    /// clean resolve.
    fn handle_resolve(
        &mut self,
        req: &Request,
        received: Instant,
        cancel: Option<CancelToken>,
    ) -> Response {
        let queue_delay = received.elapsed();
        let Some(tracked) = self.tracked.as_mut() else {
            return Response::error(
                Some(req.id),
                "no tracked instance: send a mutate with a `scenario` first",
            );
        };
        if let Some(ms) = req.deadline_ms {
            if ms > 0 && queue_delay >= Duration::from_millis(ms) {
                let mut resp = Response::overloaded(Some(req.id), self.config.retry_after_ms);
                resp.queue_ms = Some(queue_delay.as_secs_f64() * 1e3);
                resp.latency_us = Some(received.elapsed().as_micros() as u64);
                return resp;
            }
        }
        let cfg = ResolveConfig {
            cancel: cancel.clone(),
            ..ResolveConfig::default()
        };
        let solve_start = Instant::now();
        let outcome = tracked.inc.resolve(&mut tracked.scratch, &cfg);
        let solve_us = solve_start.elapsed().as_micros() as u64;
        let mut resp = Response::new(Some(req.id), "resolve_ok");
        if outcome.cancelled {
            resp.status = Some("degraded".into());
            resp.degrade_reason = Some(mmph_core::DegradeReason::Cancelled.to_string());
        } else {
            resp.status = Some("completed".into());
        }
        resp.n = Some(tracked.inc.instance().n());
        resp.k = Some(tracked.inc.instance().k());
        resp.reward = Some(outcome.reward);
        resp.selection = Some(outcome.selection);
        resp.evals = Some(outcome.evals);
        resp.warm = Some(outcome.warm);
        resp.churn_version = Some(outcome.churn_version);
        resp.solve_us = Some(solve_us);
        resp.latency_us = Some(received.elapsed().as_micros() as u64);
        resp.queue_ms = Some(queue_delay.as_secs_f64() * 1e3);
        resp
    }

    /// The response for a request whose connection died before its
    /// solve started: same shape as a budget-degraded solve (empty
    /// prefix, `degraded`/`solve cancelled`), zero evals burned.
    fn cancelled_response(
        id: u64,
        instance: &Instance<2>,
        received: Instant,
        queue_delay: Duration,
    ) -> Response {
        let mut resp = Response::new(Some(id), "solve_ok");
        resp.status = Some("degraded".into());
        resp.degrade_reason = Some(mmph_core::DegradeReason::Cancelled.to_string());
        resp.reward = Some(0.0);
        resp.selection = Some(Vec::new());
        resp.n = Some(instance.n());
        resp.k = Some(instance.k());
        resp.evals = Some(0);
        resp.engine_reused = Some(false);
        resp.solve_us = Some(0);
        resp.latency_us = Some(received.elapsed().as_micros() as u64);
        resp.queue_ms = Some(queue_delay.as_secs_f64() * 1e3);
        resp
    }

    /// Builds and counts an `overloaded` response for a request shed
    /// at dispatch (backlog past `queue_cap`). `received` stamps
    /// `queue_ms` so the client sees how long the line waited before
    /// being refused.
    pub fn shed_response(&mut self, id: Option<u64>, received: Instant) -> Response {
        self.stats.received += 1;
        self.stats.shed += 1;
        self.stats.responded += 1;
        let mut resp = Response::overloaded(id, self.config.retry_after_ms);
        resp.queue_ms = Some(received.elapsed().as_secs_f64() * 1e3);
        resp
    }

    /// Folds in requests a transport shed on its own threads (TCP
    /// readers answer per-connection cap violations directly, without
    /// routing through dispatch).
    pub fn record_transport_sheds(&mut self, n: u64) {
        self.stats.received += n;
        self.stats.shed += n;
        self.stats.responded += n;
    }

    /// Generates (or recalls) the instance a scenario pins. The cache
    /// is MRU-ordered and returns *clones of one generation*, so
    /// repeated scenarios are `==` by pointer-free structural equality
    /// and the batch layer's adjacent-identical engine reuse fires.
    fn instance_for(&mut self, scenario: &Scenario) -> Result<Instance<2>> {
        if let Some(pos) = self.cache.iter().position(|(sc, _)| sc == scenario) {
            let entry = self.cache.remove(pos);
            let inst = entry.1.clone();
            self.cache.push(entry);
            return Ok(inst);
        }
        let inst = scenario.generate_2d()?;
        if self.cache.len() == INSTANCE_CACHE {
            self.cache.remove(0);
        }
        self.cache.push((scenario.clone(), inst.clone()));
        Ok(inst)
    }

    /// Runs the round's solve stream through the batch pipeline.
    /// Consecutive items with the same (strategy, engine) form one
    /// `run_budgeted` call; results come back aligned with `solves`.
    fn run_solves(&self, solves: &[SolveItem]) -> Vec<BatchResult> {
        let mut out: Vec<BatchResult> = Vec::with_capacity(solves.len());
        let mut i = 0;
        while i < solves.len() {
            let (strategy, engine) = (solves[i].strategy, solves[i].engine);
            let mut j = i + 1;
            while j < solves.len() && solves[j].strategy == strategy && solves[j].engine == engine {
                j += 1;
            }
            let seg = &solves[i..j];
            let instances: Vec<Instance<2>> = seg.iter().map(|s| s.instance.clone()).collect();
            let budgets: Vec<SolveBudget> = seg.iter().map(|s| s.budget.clone()).collect();
            let runner = BatchRunner::new()
                .with_strategy(strategy)
                .with_engine(engine)
                .with_parallel_csr(self.config.parallel_csr)
                .with_warm(self.config.warm)
                .with_dirty_region(self.config.dirty_region);
            let report = runner.run_budgeted(&instances, &budgets);
            out.extend(report.results);
            i = j;
        }
        out
    }

    /// Maps one batch result into its wire response.
    fn solve_response(
        id: u64,
        result: &BatchResult,
        received: Instant,
        queue_delay: Duration,
    ) -> Response {
        let mut resp = if let Some(msg) = &result.error {
            Response::error(Some(id), format!("solve panicked: {msg}"))
        } else {
            let mut r = Response::new(Some(id), "solve_ok");
            match &result.status {
                SolveStatus::Completed => r.status = Some("completed".into()),
                SolveStatus::Degraded { reason } => {
                    r.status = Some("degraded".into());
                    r.degrade_reason = Some(reason.to_string());
                }
            }
            r.reward = Some(result.reward);
            r.selection = Some(result.selection.clone());
            r
        };
        resp.n = Some(result.n);
        resp.k = Some(result.k);
        resp.evals = Some(result.evals);
        resp.engine_reused = Some(result.engine_reused);
        resp.solve_us = Some(result.solve_nanos / 1_000);
        resp.latency_us = Some(received.elapsed().as_micros() as u64);
        resp.queue_ms = Some(queue_delay.as_secs_f64() * 1e3);
        resp
    }
}

/// Rebuilds a [`BatchReport`] from solve responses so serve-side
/// streams can be pinned against `mmph batch` with
/// [`mmph_core::verify_reports`]. Responses are ordered by
/// `in_reply_to`, which the batch driver assigns as the 0-based stream
/// position. Control responses are rejected; error responses become
/// error entries (empty selection), matching the batch layer's
/// panic-isolation shape.
pub fn report_from_responses(
    responses: &[Response],
    wall_nanos: u64,
    workers: usize,
    warm: bool,
) -> Result<BatchReport> {
    let mut sorted: Vec<&Response> = responses.iter().collect();
    for r in &sorted {
        if r.op != "solve_ok" && r.op != "error" {
            return Err(ServeError::Protocol(format!(
                "response op `{}` has no batch equivalent",
                r.op
            )));
        }
        if r.in_reply_to.is_none() {
            return Err(ServeError::Protocol(
                "response with no in_reply_to cannot be ordered".into(),
            ));
        }
    }
    sorted.sort_by_key(|r| r.in_reply_to.unwrap());
    let results = sorted
        .iter()
        .map(|r| {
            let status = match r.status.as_deref() {
                Some("completed") | None => SolveStatus::Completed,
                Some(_) => SolveStatus::Degraded {
                    reason: mmph_core::DegradeReason::RungFailed {
                        rung: "service".into(),
                        error: r.degrade_reason.clone().unwrap_or_default(),
                    },
                },
            };
            BatchResult {
                index: r.in_reply_to.unwrap() as usize,
                n: r.n.unwrap_or(0),
                k: r.k.unwrap_or(0),
                reward: r.reward.unwrap_or(0.0),
                evals: r.evals.unwrap_or(0),
                solve_nanos: r.solve_us.unwrap_or(0) * 1_000,
                engine_reused: r.engine_reused.unwrap_or(false),
                status: if r.op == "error" {
                    SolveStatus::Degraded {
                        reason: mmph_core::DegradeReason::RungFailed {
                            rung: "service".into(),
                            error: r.error.clone().unwrap_or_default(),
                        },
                    }
                } else {
                    status
                },
                error: r.error.clone(),
                selection: r.selection.clone().unwrap_or_default(),
            }
        })
        .collect();
    Ok(BatchReport {
        results,
        wall_nanos,
        workers,
        warm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmph_geom::Norm;
    use mmph_sim::WeightScheme;

    fn scenario(seed: u64) -> Scenario {
        Scenario::paper_2d(30, 3, 1.0, Norm::L2, WeightScheme::PAPER_WEIGHTED, seed)
    }

    fn lines(reqs: &[Request]) -> Vec<Incoming> {
        reqs.iter().map(|r| Incoming::now(r.to_line())).collect()
    }

    #[test]
    fn ping_stats_shutdown() {
        let mut svc = Service::new(ServiceConfig::default());
        let batch = lines(&[
            Request::control(1, "ping"),
            Request::control(2, "stats"),
            Request::control(3, "shutdown"),
        ]);
        let out = svc.handle_lines(&batch);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].op, "pong");
        assert_eq!(out[0].in_reply_to, Some(1));
        assert_eq!(out[1].op, "stats_ok");
        assert_eq!(out[1].stats.as_ref().unwrap().received, 3);
        assert_eq!(out[2].op, "bye");
        assert!(svc.shutdown_requested());
    }

    #[test]
    fn solve_round_reuses_engines_and_orders_responses() {
        let mut svc = Service::new(ServiceConfig::default());
        let sc = scenario(5);
        let batch = lines(&[
            Request::solve(10, sc.clone()),
            Request::solve(11, sc.clone()),
            Request::solve(12, scenario(6)),
        ]);
        let out = svc.handle_lines(&batch);
        assert_eq!(out.len(), 3);
        for (resp, id) in out.iter().zip([10u64, 11, 12]) {
            assert_eq!(resp.op, "solve_ok", "{:?}", resp.error);
            assert_eq!(resp.in_reply_to, Some(id));
            assert!(resp.is_completed_solve());
            assert!(resp.latency_us.is_some());
        }
        assert_eq!(
            out[0].selection, out[1].selection,
            "same scenario, same pick"
        );
        assert_eq!(out[1].engine_reused, Some(true), "adjacent identical reuse");
        assert_eq!(svc.stats().solved, 3);
        assert_eq!(svc.stats().engines_reused, 1);
    }

    #[test]
    fn repeated_scenarios_hit_the_instance_cache() {
        let mut svc = Service::new(ServiceConfig::default());
        let sc = scenario(7);
        let a = svc.handle_lines(&lines(&[Request::solve(0, sc.clone())]));
        let b = svc.handle_lines(&lines(&[Request::solve(1, sc.clone())]));
        assert_eq!(a[0].selection, b[0].selection);
        assert_eq!(svc.cache.len(), 1, "one distinct scenario, one entry");
    }

    #[test]
    fn spec_requests_resolve_to_one_scenario() {
        let mut svc = Service::new(ServiceConfig::default());
        let mut req = Request::control(4, "solve");
        req.spec = Some("n=25,k=2,seed=9".into());
        let out = svc.handle_lines(&lines(&[req]));
        assert!(out[0].is_completed_solve(), "{:?}", out[0].error);
        assert_eq!(out[0].n, Some(25));
        assert_eq!(out[0].k, Some(2));

        let mut multi = Request::control(5, "solve");
        multi.spec = Some("n=25,repeat=3".into());
        let out = svc.handle_lines(&lines(&[multi]));
        assert_eq!(out[0].op, "error");
        assert!(out[0].error.as_deref().unwrap().contains("exactly one"));
    }

    #[test]
    fn malformed_and_bad_requests_get_error_responses() {
        let mut svc = Service::new(ServiceConfig::default());
        let batch = vec![
            Incoming::now("not json at all".into()),
            Incoming::now(r#"{"id": 9, "op": "solve""#.into()), // truncated
            Incoming::now(r#"{"id": 8, "op": "solve"}"#.into()), // no scenario
            Incoming::now(Request::solve(7, scenario(1)).to_line()),
        ];
        let out = svc.handle_lines(&batch);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].op, "error");
        assert_eq!(out[0].in_reply_to, None);
        assert_eq!(out[1].op, "error");
        assert_eq!(out[1].in_reply_to, Some(9), "id salvaged from truncation");
        assert_eq!(out[2].op, "error");
        assert!(out[2].error.as_deref().unwrap().contains("scenario"));
        assert!(out[3].is_completed_solve(), "good request still served");
        assert_eq!(svc.stats().errors, 3);
        assert_eq!(svc.stats().solved, 1);
    }

    #[test]
    fn zero_deadline_degrades_without_hanging() {
        let mut svc = Service::new(ServiceConfig::default());
        let mut req = Request::solve(1, scenario(2));
        req.deadline_ms = Some(0);
        let out = svc.handle_lines(&lines(&[req]));
        assert_eq!(out[0].op, "solve_ok");
        assert_eq!(out[0].status.as_deref(), Some("degraded"));
        assert!(out[0]
            .degrade_reason
            .as_deref()
            .unwrap()
            .contains("deadline"));
        assert_eq!(out[0].selection.as_deref(), Some(&[][..]));
        assert_eq!(svc.stats().degraded, 1);
    }

    #[test]
    fn mid_solve_cancellation_frees_the_worker_within_an_eval_check() {
        let mut svc = Service::new(ServiceConfig::default());
        let token = CancelToken::tripping_after(12);
        let line = Request::solve(1, scenario(20)).to_line();
        let out = svc.handle_lines(&[Incoming::with_cancel(line, token)]);
        assert_eq!(out[0].op, "solve_ok");
        assert_eq!(out[0].status.as_deref(), Some("degraded"));
        assert_eq!(out[0].degrade_reason.as_deref(), Some("solve cancelled"));
        // The solve stopped within one eval-check of the trip:
        // post-trip scoring charges no evals, so the reported count
        // can never pass the tripping point.
        assert!(out[0].evals.unwrap() <= 12, "evals: {:?}", out[0].evals);
        assert_eq!(svc.stats().cancelled, 1);
        assert_eq!(svc.stats().degraded, 1);
    }

    #[test]
    fn pre_cancelled_request_skips_the_solve_entirely() {
        let mut svc = Service::new(ServiceConfig::default());
        let token = CancelToken::new();
        token.cancel();
        let line = Request::solve(2, scenario(21)).to_line();
        let out = svc.handle_lines(&[Incoming::with_cancel(line, token)]);
        assert_eq!(out[0].status.as_deref(), Some("degraded"));
        assert_eq!(out[0].degrade_reason.as_deref(), Some("solve cancelled"));
        assert_eq!(out[0].evals, Some(0), "no worker burned");
        assert_eq!(out[0].selection.as_deref(), Some(&[][..]));
        assert_eq!(svc.stats().cancelled, 1);
    }

    #[test]
    fn queue_spent_deadline_sheds_instead_of_solving() {
        let mut svc = Service::new(ServiceConfig::default());
        let mut req = Request::solve(3, scenario(22));
        req.deadline_ms = Some(5);
        // Stamp the request as received 50ms ago: its whole deadline
        // was eaten in the queue, so solving would be wasted work.
        let inc = Incoming {
            line: req.to_line(),
            received: Instant::now() - Duration::from_millis(50),
            cancel: None,
        };
        let out = svc.handle_lines(&[inc]);
        assert_eq!(out[0].op, "overloaded");
        assert_eq!(out[0].in_reply_to, Some(3));
        assert_eq!(out[0].retry_after_ms, Some(svc.config().retry_after_ms));
        assert!(out[0].queue_ms.unwrap() >= 50.0);
        assert_eq!(svc.stats().shed, 1);
        assert_eq!(svc.stats().degraded, 0, "shed, not degraded");
    }

    #[test]
    fn per_request_solver_and_engine_overrides() {
        let mut svc = Service::new(ServiceConfig::default());
        let sc = scenario(11);
        let mut a = Request::solve(0, sc.clone());
        a.solver = Some("greedy2".into());
        a.engine = Some("scan".into());
        let b = Request::solve(1, sc.clone());
        let out = svc.handle_lines(&lines(&[a, b]));
        assert!(out[0].is_completed_solve());
        assert!(out[1].is_completed_solve());
        assert_eq!(
            out[0].selection, out[1].selection,
            "engines are bit-identical"
        );
        assert_eq!(out[1].engine_reused, Some(false), "segment split, no reuse");

        let mut bad = Request::solve(2, sc);
        bad.solver = Some("quantum".into());
        let out = svc.handle_lines(&lines(&[bad]));
        assert_eq!(out[0].op, "error");
        assert!(out[0].error.as_deref().unwrap().contains("unknown solver"));
    }

    #[test]
    fn coreset_request_reports_pipeline_fields() {
        let mut svc = Service::new(ServiceConfig::default());
        let mut req = Request::solve(1, scenario(30));
        req.coreset_cells = Some(6.0);
        let out = svc.handle_lines(&lines(&[req]));
        assert!(out[0].is_completed_solve(), "{:?}", out[0].error);
        assert_eq!(out[0].pipeline.as_deref(), Some("coreset"));
        assert!(out[0].coreset_n.unwrap() >= 1);
        assert!(out[0].gap.unwrap() >= 0.0);
        assert!(out[0].reward.unwrap() > 0.0);
        assert_eq!(
            out[0].centers.as_ref().unwrap().len(),
            out[0].selection.as_ref().unwrap().len(),
            "centers ride parallel to selection"
        );
        assert_eq!(svc.stats().solved, 1);
    }

    #[test]
    fn shard_request_reports_pipeline_fields() {
        let mut svc = Service::new(ServiceConfig::default());
        let mut req = Request::solve(2, scenario(31));
        req.shards = Some(3);
        let out = svc.handle_lines(&lines(&[req]));
        assert!(out[0].is_completed_solve(), "{:?}", out[0].error);
        assert_eq!(out[0].pipeline.as_deref(), Some("shard"));
        assert_eq!(out[0].selection.as_ref().unwrap().len(), 3);
        assert_eq!(out[0].centers.as_ref().unwrap().len(), 3);
        assert!(out[0].reward.unwrap() > 0.0);
    }

    #[test]
    fn both_pipeline_knobs_rejected() {
        let mut svc = Service::new(ServiceConfig::default());
        let mut req = Request::solve(3, scenario(32));
        req.coreset_cells = Some(4.0);
        req.shards = Some(2);
        let out = svc.handle_lines(&lines(&[req]));
        assert_eq!(out[0].op, "error");
        assert!(out[0]
            .error
            .as_deref()
            .unwrap()
            .contains("pick one pipeline"));
    }

    #[test]
    fn auto_engine_past_cap_escalates_to_coreset() {
        // A 1-byte cap makes every CSR estimate bust it: an `auto`
        // request must escalate to the coreset pipeline, not silently
        // fall back to the kd engine.
        let mut svc = Service::new(ServiceConfig {
            sparse_cap_bytes: 1,
            ..ServiceConfig::default()
        });
        let mut req = Request::solve(4, scenario(33));
        req.engine = Some("auto".into());
        let out = svc.handle_lines(&lines(&[req]));
        assert!(out[0].is_completed_solve(), "{:?}", out[0].error);
        assert_eq!(out[0].pipeline.as_deref(), Some("coreset"));

        // An explicit engine never escalates.
        let mut direct = Request::solve(5, scenario(33));
        direct.engine = Some("kd".into());
        let out = svc.handle_lines(&lines(&[direct]));
        assert!(out[0].is_completed_solve());
        assert_eq!(out[0].pipeline, None);
    }

    #[test]
    fn report_from_responses_matches_direct_batch() {
        let sc = scenario(13);
        let insts: Vec<Instance<2>> = vec![
            sc.generate_2d().unwrap(),
            sc.generate_2d().unwrap(),
            scenario(14).generate_2d().unwrap(),
        ];
        let direct = BatchRunner::new().run(&insts);

        let mut svc = Service::new(ServiceConfig::default());
        let reqs = vec![
            Request::solve(0, sc.clone()),
            Request::solve(1, sc),
            Request::solve(2, scenario(14)),
        ];
        let responses = svc.handle_requests(reqs, Instant::now());
        let report = report_from_responses(&responses, 0, 1, true).unwrap();
        mmph_core::verify_reports(&direct, &report).unwrap();
    }
}
