//! The versioned NDJSON request/response envelope.
//!
//! One request or response per line, Maelstrom-style: every request
//! carries a client-chosen `id`, every response echoes it back as
//! `in_reply_to`, so clients may pipeline arbitrarily many requests
//! over one connection and correlate replies in any order.
//!
//! Request line (`op` selects the handler):
//!
//! ```json
//! {"v":1,"id":7,"op":"solve","scenario":{...},"solver":"lazy",
//!  "engine":"sparse","deadline_ms":50,"max_evals":100000}
//! ```
//!
//! The scenario may be inline (`scenario`, a full
//! [`mmph_sim::Scenario`] document) or by reference (`spec`, an inline
//! `n=..,k=..` stream spec naming exactly one scenario). Control ops:
//! `ping` (liveness), `stats` (service counters), `shutdown` (drain
//! and exit).
//!
//! Incremental ops maintain one *tracked* instance per service:
//! `mutate` initializes it from a `scenario`/`spec` and/or patches it
//! in place with a `deltas` array of insert/remove/move edits
//! (answered with `mutate_ok` carrying the new `churn_version`), and
//! `resolve` warm re-solves the tracked instance from the previous
//! selection (`resolve_ok` with `warm` saying whether the warm path
//! was taken or the solver fell back to a cold greedy). Responses:
//!
//! ```json
//! {"v":1,"in_reply_to":7,"op":"solve_ok","status":"degraded",
//!  "degrade_reason":"deadline of 50 ms exceeded","selection":[3,1],
//!  "reward":812.5,"evals":420,"latency_us":1930,...}
//! ```
//!
//! A request the service cannot parse or execute gets `op: "error"`
//! with `in_reply_to` set when an `id` could still be extracted, and
//! `null` otherwise. Unknown protocol versions are rejected, never
//! guessed at.
//!
//! Under overload the service sheds rather than queues without bound:
//! a shed request gets `op: "overloaded"` carrying `retry_after_ms`,
//! the client's cue to back off and retry. Solve responses additionally
//! report `queue_ms` — the time the request waited between the
//! transport reading it and the dispatcher starting its round — so
//! clients can split end-to-end latency into queueing and solving:
//!
//! ```json
//! {"v":1,"in_reply_to":7,"op":"overloaded","retry_after_ms":25,
//!  "queue_ms":12.4}
//! ```

use serde::{Deserialize, Serialize};

use mmph_sim::Scenario;

use crate::{Result, ServeError};

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u32 = 1;

/// Request operations understood by the service.
pub const REQUEST_OPS: &[&str] = &["solve", "mutate", "resolve", "ping", "stats", "shutdown"];

/// One request line. Fields beyond `id`/`op` are op-specific; see the
/// module docs for the wire shapes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Protocol version; 0 (absent) is treated as the current version.
    #[serde(default)]
    pub v: u32,
    /// Client-chosen correlation id, echoed back as `in_reply_to`.
    pub id: u64,
    /// Operation: `solve`, `ping`, `stats`, or `shutdown`.
    pub op: String,
    /// Inline scenario for `solve`.
    #[serde(default)]
    pub scenario: Option<Scenario>,
    /// Scenario by reference: an inline `n=..,k=..` spec naming
    /// exactly one scenario (`count`/`repeat` must stay 1).
    #[serde(default)]
    pub spec: Option<String>,
    /// Solver override: `greedy2` (eager) or `lazy` (CELF).
    #[serde(default)]
    pub solver: Option<String>,
    /// Engine override: `auto|scan|kd|ball|sparse|sparse-f32`.
    #[serde(default)]
    pub engine: Option<String>,
    /// Per-request wall-clock deadline in milliseconds.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Per-request objective-evaluation cap.
    #[serde(default)]
    pub max_evals: Option<u64>,
    /// Point edits for `mutate`: applied in order to the tracked
    /// incremental instance.
    #[serde(default)]
    pub deltas: Option<Vec<mmph_core::Delta<2>>>,
    /// Force the coreset pipeline with this grid resolution
    /// (cells per radius). Mutually exclusive with `shards`.
    #[serde(default)]
    pub coreset_cells: Option<f64>,
    /// Force the shard-then-merge pipeline with this many spatial
    /// shards. Mutually exclusive with `coreset_cells`.
    #[serde(default)]
    pub shards: Option<usize>,
}

impl Request {
    /// A minimal solve request for an inline scenario.
    pub fn solve(id: u64, scenario: Scenario) -> Self {
        Request {
            v: PROTOCOL_VERSION,
            id,
            op: "solve".into(),
            scenario: Some(scenario),
            spec: None,
            solver: None,
            engine: None,
            deadline_ms: None,
            max_evals: None,
            deltas: None,
            coreset_cells: None,
            shards: None,
        }
    }

    /// A control request (`ping`, `stats`, `shutdown`, bare `resolve`).
    pub fn control(id: u64, op: &str) -> Self {
        Request {
            v: PROTOCOL_VERSION,
            id,
            op: op.into(),
            scenario: None,
            spec: None,
            solver: None,
            engine: None,
            deadline_ms: None,
            max_evals: None,
            deltas: None,
            coreset_cells: None,
            shards: None,
        }
    }

    /// A `mutate` request: initialize the tracked instance from
    /// `scenario` (when given) and/or apply `deltas` to it.
    pub fn mutate(
        id: u64,
        scenario: Option<Scenario>,
        deltas: Option<Vec<mmph_core::Delta<2>>>,
    ) -> Self {
        let mut req = Self::control(id, "mutate");
        req.scenario = scenario;
        req.deltas = deltas;
        req
    }

    /// A `resolve` request: warm re-solve the tracked instance.
    pub fn resolve(id: u64) -> Self {
        Self::control(id, "resolve")
    }

    /// Checks version and op; normalizes an absent version to the
    /// current one.
    pub fn validate(mut self) -> Result<Self> {
        if self.v == 0 {
            self.v = PROTOCOL_VERSION;
        }
        if self.v != PROTOCOL_VERSION {
            return Err(ServeError::Protocol(format!(
                "unsupported protocol version {} (this build speaks {PROTOCOL_VERSION})",
                self.v
            )));
        }
        if !REQUEST_OPS.contains(&self.op.as_str()) {
            return Err(ServeError::Protocol(format!(
                "unknown op `{}` (known: {})",
                self.op,
                REQUEST_OPS.join(", ")
            )));
        }
        Ok(self)
    }

    /// Serializes to one NDJSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("request serialization is infallible")
    }

    /// Parses and validates one request line.
    pub fn parse(line: &str) -> Result<Self> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Err(ServeError::Protocol("empty request line".into()));
        }
        let req: Request = serde_json::from_str(trimmed)
            .map_err(|e| ServeError::Protocol(format!("request JSON: {e}")))?;
        req.validate()
    }
}

/// Best-effort extraction of the `id` from a line that failed full
/// parsing, so even garbled requests can get a correlated error
/// response. Returns `None` when no numeric `"id"` key is readable.
pub fn salvage_id(line: &str) -> Option<u64> {
    let bytes = line.as_bytes();
    let key = b"\"id\"";
    let pos = line.find("\"id\"")?;
    let mut i = pos + key.len();
    while i < bytes.len() && (bytes[i] == b' ' || bytes[i] == b':') {
        i += 1;
    }
    let start = i;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    line[start..i].parse().ok()
}

/// Aggregate service counters, reported by the `stats` op and
/// returned by the transport loops when they exit.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Request lines received (including malformed ones).
    pub received: u64,
    /// Responses written.
    pub responded: u64,
    /// Solve requests completed within budget.
    pub solved: u64,
    /// Solve requests degraded by a budget trip.
    pub degraded: u64,
    /// Error responses (parse failures, bad scenarios, worker panics).
    pub errors: u64,
    /// Engine reuses across adjacent identical requests.
    pub engines_reused: u64,
    /// Requests shed by admission control (`overloaded` responses):
    /// queue over capacity, per-connection in-flight cap hit, or the
    /// deadline already spent in the queue.
    #[serde(default)]
    pub shed: u64,
    /// Solves abandoned by a tripped cancel token (client disconnect
    /// or write failure), before or during the solve.
    #[serde(default)]
    pub cancelled: u64,
    /// `mutate` requests applied to the tracked instance.
    #[serde(default)]
    pub mutations: u64,
    /// `resolve` requests answered by the warm path (seed + polish,
    /// no cold fallback).
    #[serde(default)]
    pub warm_resolves: u64,
}

/// One response line. `op` is `solve_ok`, `mutate_ok`, `resolve_ok`,
/// `pong`, `stats_ok`, `bye`, `overloaded`, or `error`; the optional
/// fields are filled per op.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Protocol version of the responding service.
    pub v: u32,
    /// The request id this answers; `null` when the request line was
    /// too garbled to extract one.
    pub in_reply_to: Option<u64>,
    /// Response operation (see type docs).
    pub op: String,
    /// `completed` or `degraded` (solve responses).
    #[serde(default)]
    pub status: Option<String>,
    /// Human-readable reason when `status` is `degraded`.
    #[serde(default)]
    pub degrade_reason: Option<String>,
    /// Error message for `op: "error"`.
    #[serde(default)]
    pub error: Option<String>,
    /// Instance size of the solved scenario.
    #[serde(default)]
    pub n: Option<usize>,
    /// Centers requested.
    #[serde(default)]
    pub k: Option<usize>,
    /// Total coverage reward of the selection.
    #[serde(default)]
    pub reward: Option<f64>,
    /// Objective evaluations charged to this request.
    #[serde(default)]
    pub evals: Option<u64>,
    /// Selected candidate indices, in pick order.
    #[serde(default)]
    pub selection: Option<Vec<usize>>,
    /// Whether this request reused the previous request's engine.
    #[serde(default)]
    pub engine_reused: Option<bool>,
    /// Solve wall time in microseconds (engine build included on the
    /// first request of a reuse run).
    #[serde(default)]
    pub solve_us: Option<u64>,
    /// Queue + solve latency in microseconds, measured from the
    /// moment the transport read the line to response serialization.
    #[serde(default)]
    pub latency_us: Option<u64>,
    /// Time the request spent queued between the transport reading it
    /// and the dispatcher picking it up, in milliseconds (fractional
    /// for sub-millisecond queues). Solve and `overloaded` responses.
    #[serde(default)]
    pub queue_ms: Option<f64>,
    /// Back-off hint on `op: "overloaded"`: retry no sooner than this
    /// many milliseconds from now.
    #[serde(default)]
    pub retry_after_ms: Option<u64>,
    /// Service counters (`stats_ok` responses).
    #[serde(default)]
    pub stats: Option<ServiceStats>,
    /// Whether a `resolve` took the warm path (`resolve_ok`).
    #[serde(default)]
    pub warm: Option<bool>,
    /// Churn version of the tracked instance after this op
    /// (`mutate_ok` / `resolve_ok`): bumps once per applied delta.
    #[serde(default)]
    pub churn_version: Option<u64>,
    /// Which large-n pipeline produced this solve: `coreset` or
    /// `shard`; absent for direct solves.
    #[serde(default)]
    pub pipeline: Option<String>,
    /// Number of coreset representatives the reduced solve ran on
    /// (`pipeline: "coreset"`).
    #[serde(default)]
    pub coreset_n: Option<u64>,
    /// Realized full-resolution objective gap of the coreset solve:
    /// `|coreset_obj − full_obj| / coreset_obj`.
    #[serde(default)]
    pub gap: Option<f64>,
    /// Selected center coordinates, parallel to `selection`. Filled by
    /// the pipeline paths, whose indices are pipeline-internal.
    #[serde(default)]
    pub centers: Option<Vec<[f64; 2]>>,
    /// Chunk index (0-based) when a huge selection is streamed as
    /// multiple frames; absent on single-frame responses.
    #[serde(default)]
    pub chunk: Option<u64>,
    /// Total frame count of a chunked response.
    #[serde(default)]
    pub chunk_count: Option<u64>,
}

impl Response {
    /// A blank response of the given op.
    pub fn new(in_reply_to: Option<u64>, op: &str) -> Self {
        Response {
            v: PROTOCOL_VERSION,
            in_reply_to,
            op: op.into(),
            status: None,
            degrade_reason: None,
            error: None,
            n: None,
            k: None,
            reward: None,
            evals: None,
            selection: None,
            engine_reused: None,
            solve_us: None,
            latency_us: None,
            queue_ms: None,
            retry_after_ms: None,
            stats: None,
            warm: None,
            churn_version: None,
            pipeline: None,
            coreset_n: None,
            gap: None,
            centers: None,
            chunk: None,
            chunk_count: None,
        }
    }

    /// An error response.
    pub fn error(in_reply_to: Option<u64>, msg: impl Into<String>) -> Self {
        let mut r = Self::new(in_reply_to, "error");
        r.error = Some(msg.into());
        r
    }

    /// A load-shed response: the service refused this request and the
    /// client should retry after `retry_after_ms`.
    pub fn overloaded(in_reply_to: Option<u64>, retry_after_ms: u64) -> Self {
        let mut r = Self::new(in_reply_to, "overloaded");
        r.retry_after_ms = Some(retry_after_ms);
        r
    }

    /// Serializes to one NDJSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("response serialization is infallible")
    }

    /// Parses one response line (client side: loadgen, tests).
    pub fn parse(line: &str) -> Result<Self> {
        serde_json::from_str(line.trim())
            .map_err(|e| ServeError::Protocol(format!("response JSON: {e}")))
    }

    /// True for a solve response that completed within budget.
    pub fn is_completed_solve(&self) -> bool {
        self.op == "solve_ok" && self.status.as_deref() == Some("completed")
    }

    /// Splits a response whose `selection` exceeds `max_per_chunk`
    /// entries into a sequence of frames, each carrying at most
    /// `max_per_chunk` selection entries (and the parallel `centers`
    /// slice, when present). Frame 0 keeps every scalar field; later
    /// frames carry only the correlation id, op, chunk coordinates,
    /// and their slice, so a client reassembles by concatenating
    /// slices in `chunk` order. Responses at or under the threshold
    /// come back unchanged as a single frame with no chunk fields.
    pub fn into_chunks(self, max_per_chunk: usize) -> Vec<Response> {
        let len = self.selection.as_ref().map_or(0, Vec::len);
        if max_per_chunk == 0 || len <= max_per_chunk {
            return vec![self];
        }
        let selection = self.selection.clone().unwrap_or_default();
        let centers = self.centers.clone();
        let count = len.div_ceil(max_per_chunk) as u64;
        let mut frames = Vec::with_capacity(count as usize);
        for (i, sel_part) in selection.chunks(max_per_chunk).enumerate() {
            let mut frame = if i == 0 {
                self.clone()
            } else {
                Response::new(self.in_reply_to, &self.op)
            };
            frame.selection = Some(sel_part.to_vec());
            frame.centers = centers.as_ref().map(|c| {
                let lo = i * max_per_chunk;
                c[lo.min(c.len())..(lo + sel_part.len()).min(c.len())].to_vec()
            });
            frame.chunk = Some(i as u64);
            frame.chunk_count = Some(count);
            frames.push(frame);
        }
        frames
    }
}

/// Reassembles a chunked response from its frames (client side:
/// loadgen, tests). Frames may arrive in any order; they are sorted
/// by `chunk` index and their `selection`/`centers` slices
/// concatenated onto the frame carrying the scalar fields (chunk 0).
/// A single un-chunked response passes through untouched. Returns
/// `None` on an empty, incomplete, or mismatched frame set.
pub fn merge_chunks(mut frames: Vec<Response>) -> Option<Response> {
    match frames.len() {
        0 => return None,
        1 if frames[0].chunk.is_none() => return frames.pop(),
        _ => {}
    }
    frames.sort_by_key(|f| f.chunk.unwrap_or(u64::MAX));
    let count = frames[0].chunk_count?;
    if frames.len() as u64 != count {
        return None;
    }
    for (i, f) in frames.iter().enumerate() {
        if f.chunk != Some(i as u64) || f.chunk_count != Some(count) {
            return None;
        }
    }
    let mut merged = frames.remove(0);
    for f in frames {
        if let (Some(sel), Some(part)) = (merged.selection.as_mut(), f.selection) {
            sel.extend(part);
        }
        if let (Some(cen), Some(part)) = (merged.centers.as_mut(), f.centers) {
            cen.extend(part);
        }
    }
    merged.chunk = None;
    merged.chunk_count = None;
    Some(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmph_geom::Norm;
    use mmph_sim::WeightScheme;

    fn scenario() -> Scenario {
        Scenario::paper_2d(10, 2, 1.0, Norm::L2, WeightScheme::Same, 3)
    }

    #[test]
    fn request_roundtrip() {
        let mut req = Request::solve(42, scenario());
        req.deadline_ms = Some(25);
        req.engine = Some("sparse".into());
        let line = req.to_line();
        let back = Request::parse(&line).unwrap();
        assert_eq!(req, back);
        assert_eq!(back.to_line(), line, "reserialization is stable");
    }

    #[test]
    fn absent_version_defaults_to_current() {
        let req = Request::parse(r#"{"id":1,"op":"ping"}"#).unwrap();
        assert_eq!(req.v, PROTOCOL_VERSION);
    }

    #[test]
    fn future_version_rejected() {
        let err = Request::parse(r#"{"v":9,"id":1,"op":"ping"}"#).unwrap_err();
        assert!(err.to_string().contains("unsupported protocol version"));
    }

    #[test]
    fn unknown_op_rejected() {
        let err = Request::parse(r#"{"id":1,"op":"fly"}"#).unwrap_err();
        assert!(err.to_string().contains("unknown op"));
    }

    #[test]
    fn malformed_lines_rejected() {
        for line in ["", "   ", "{", "[1]", r#"{"op":"ping"}"#, "junk"] {
            assert!(Request::parse(line).is_err(), "`{line}`");
        }
    }

    #[test]
    fn id_salvage_from_garbled_lines() {
        assert_eq!(salvage_id(r#"{"id": 77, "op": "sol"#), Some(77));
        assert_eq!(salvage_id(r#"{"op":"x","id":3}"#), Some(3));
        assert_eq!(salvage_id("total garbage"), None);
        assert_eq!(salvage_id(r#"{"id":"seven"}"#), None);
    }

    #[test]
    fn response_roundtrip() {
        let mut r = Response::new(Some(9), "solve_ok");
        r.status = Some("completed".into());
        r.reward = Some(123.456789012345);
        r.selection = Some(vec![4, 0, 2]);
        r.evals = Some(99);
        let line = r.to_line();
        let back = Response::parse(&line).unwrap();
        assert_eq!(r, back);
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn small_selection_stays_single_frame() {
        let mut r = Response::new(Some(1), "solve_ok");
        r.selection = Some(vec![1, 2, 3]);
        let frames = r.clone().into_chunks(8);
        assert_eq!(frames, vec![r]);
        assert!(frames[0].chunk.is_none());
    }

    #[test]
    fn chunked_response_reassembles_exactly() {
        let mut r = Response::new(Some(7), "solve_ok");
        r.status = Some("completed".into());
        r.reward = Some(812.5);
        r.selection = Some((0..10).collect());
        r.centers = Some((0..10).map(|i| [i as f64, -(i as f64)]).collect());
        let frames = r.clone().into_chunks(3);
        assert_eq!(frames.len(), 4);
        assert_eq!(frames[0].reward, Some(812.5));
        assert_eq!(frames[1].reward, None, "later frames carry no scalars");
        assert_eq!(frames[3].selection.as_ref().unwrap().len(), 1);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.chunk, Some(i as u64));
            assert_eq!(f.chunk_count, Some(4));
            assert_eq!(f.in_reply_to, Some(7));
            // Every frame survives the wire independently.
            assert_eq!(Response::parse(&f.to_line()).unwrap(), *f);
        }
        // Reassembly is order-independent.
        let mut shuffled = frames.clone();
        shuffled.reverse();
        assert_eq!(merge_chunks(shuffled).unwrap(), r);
    }

    #[test]
    fn merge_rejects_incomplete_frame_sets() {
        let mut r = Response::new(Some(7), "solve_ok");
        r.selection = Some((0..10).collect());
        let mut frames = r.into_chunks(3);
        frames.remove(2);
        assert!(merge_chunks(frames).is_none());
        assert!(merge_chunks(Vec::new()).is_none());
    }

    #[test]
    fn reward_bits_survive_the_wire() {
        // A value whose decimal form does not round-trip through a
        // short float literal: exercise exact bit preservation.
        let reward = f64::from_bits(0x4093_4800_0000_0001);
        let mut r = Response::new(Some(1), "solve_ok");
        r.reward = Some(reward);
        let back = Response::parse(&r.to_line()).unwrap();
        assert_eq!(back.reward.unwrap().to_bits(), reward.to_bits());
    }
}
