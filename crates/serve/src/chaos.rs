//! Deterministic chaos: a seeded transport-fault injector.
//!
//! A [`ChaosPlan`] assigns every request line of a client script a
//! [`LineFate`] — delivered whole, truncated mid-byte, split across
//! two flushes, merged with the next line, delayed, delivered and then
//! disconnected, or fired as part of a burst. The plan is drawn from a
//! dedicated RNG stream seeded only by `(seed, len, config)`, in the
//! style of the simulator's `FaultPlan`: regenerating with the same
//! inputs is bit-identical, so a failing soak seed replays the exact
//! same fault schedule.
//!
//! The plan compiles to a [`WriteStep`] script that any `Write`-half
//! can execute — a TCP stream, or the in-memory [`pipe`] that stands
//! in for stdin when soaking the stdio transport. Faults are applied
//! strictly on the *client* side: the server under test runs
//! unmodified production code, which is the point.

use std::io::{self, Read, Write};
use std::sync::mpsc::{self, Receiver, Sender};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Domain-separation constant for the chaos RNG stream, so a chaos
/// seed never collides with the scenario seeds a soak script uses.
const CHAOS_STREAM: u64 = 0x0063_6861_6f73_u64; // "chaos"

/// Seeds the CI soak matrix; kept here so the workflow and the tests
/// cannot drift apart.
pub const SOAK_SEEDS: &[u64] = &[101, 202, 303];

/// Per-line fault probabilities. Probabilities are checked in the
/// order of the struct fields against a single uniform draw, so they
/// must sum to at most 1; the remainder delivers the line intact.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Cut the line mid-byte (a malformed frame the service must
    /// still answer, correlated via id salvage when possible).
    pub truncate: f64,
    /// Write the line in two chunks with a pause between flushes.
    pub split: f64,
    /// Hold the line unflushed and write it together with the next
    /// one (frame merging: line framing must not depend on packet
    /// boundaries).
    pub merge: f64,
    /// Pause before delivering.
    pub delay: f64,
    /// Deliver, then drop the connection before reading responses
    /// (TCP arm; the stdio pipe has no disconnect, keep this 0 there).
    pub disconnect: f64,
    /// Deliver with no pacing pause, piling requests into the queue.
    pub burst: f64,
    /// Upper bound for drawn pauses.
    pub max_delay_ms: u64,
    /// Baseline pacing pause before each intact delivery (`burst`
    /// skips it). 0 floods at full speed.
    pub pace_ms: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            truncate: 0.0,
            split: 0.0,
            merge: 0.0,
            delay: 0.0,
            disconnect: 0.0,
            burst: 0.0,
            max_delay_ms: 2,
            pace_ms: 0,
        }
    }
}

impl ChaosConfig {
    /// The fault mix the soak tests use on transports that can
    /// reconnect (TCP).
    pub fn aggressive() -> Self {
        ChaosConfig {
            truncate: 0.08,
            split: 0.10,
            merge: 0.10,
            delay: 0.05,
            disconnect: 0.04,
            burst: 0.25,
            max_delay_ms: 2,
            pace_ms: 0,
        }
    }

    /// [`Self::aggressive`] minus disconnects, for the stdio pipe.
    pub fn aggressive_no_disconnect() -> Self {
        ChaosConfig {
            disconnect: 0.0,
            ..Self::aggressive()
        }
    }
}

/// What the plan does to one scripted line.
#[derive(Debug, Clone, PartialEq)]
pub enum LineFate {
    /// Written whole and flushed.
    Deliver,
    /// Cut after `keep_frac` of its bytes; the stub still ends in a
    /// newline, so the server sees one malformed frame.
    Truncate { keep_frac: f64 },
    /// Written in two chunks with `pause_ms` between the flushes.
    Split { at_frac: f64, pause_ms: u64 },
    /// Held unflushed until the next line's flush point.
    MergeWithNext,
    /// Delivered whole after `pause_ms`.
    Delay { pause_ms: u64 },
    /// Delivered whole, then the connection drops.
    DisconnectAfter,
    /// Delivered whole with pacing suppressed (burst flood).
    Burst,
}

impl LineFate {
    /// Whether the line's bytes reach the server unmangled.
    pub fn intact(&self) -> bool {
        !matches!(self, LineFate::Truncate { .. })
    }
}

/// A seeded, reproducible fault schedule for `len` request lines.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// The seed the schedule was drawn from.
    pub seed: u64,
    /// Baseline pacing before intact deliveries (`Burst` skips it).
    pub pace: Duration,
    /// One fate per scripted line.
    pub fates: Vec<LineFate>,
}

impl ChaosPlan {
    /// Draws the schedule. Pure in `(seed, len, cfg)`: calling twice
    /// yields identical plans, which the soak tests assert.
    pub fn generate(seed: u64, len: usize, cfg: &ChaosConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ CHAOS_STREAM);
        let fates = (0..len)
            .map(|_| {
                let roll: f64 = rng.gen_range(0.0..1.0);
                let mut edge = cfg.truncate;
                if roll < edge {
                    return LineFate::Truncate {
                        keep_frac: rng.gen_range(0.2..0.9),
                    };
                }
                edge += cfg.split;
                if roll < edge {
                    return LineFate::Split {
                        at_frac: rng.gen_range(0.1..0.9),
                        pause_ms: rng.gen_range(0..=cfg.max_delay_ms),
                    };
                }
                edge += cfg.merge;
                if roll < edge {
                    return LineFate::MergeWithNext;
                }
                edge += cfg.delay;
                if roll < edge {
                    return LineFate::Delay {
                        pause_ms: rng.gen_range(0..=cfg.max_delay_ms),
                    };
                }
                edge += cfg.disconnect;
                if roll < edge {
                    return LineFate::DisconnectAfter;
                }
                edge += cfg.burst;
                if roll < edge {
                    return LineFate::Burst;
                }
                LineFate::Deliver
            })
            .collect();
        ChaosPlan {
            seed,
            pace: Duration::from_millis(cfg.pace_ms),
            fates,
        }
    }

    /// Compiles the plan against concrete request lines (without
    /// trailing newlines) into an executable write script, with the
    /// per-line bookkeeping the soak correlation checks need.
    pub fn script(&self, lines: &[String]) -> ChaosScript {
        assert_eq!(lines.len(), self.fates.len(), "plan length mismatch");
        let mut steps = Vec::with_capacity(lines.len() * 2);
        let mut intact = Vec::with_capacity(lines.len());
        let mut line_starts = Vec::with_capacity(lines.len());
        for (line, fate) in lines.iter().zip(&self.fates) {
            let bytes = format!("{line}\n").into_bytes();
            intact.push(fate.intact());
            line_starts.push(steps.len());
            match fate {
                LineFate::Deliver => {
                    if !self.pace.is_zero() {
                        steps.push(WriteStep::Pause(self.pace));
                    }
                    steps.push(WriteStep::Chunk(bytes));
                    steps.push(WriteStep::Flush);
                }
                LineFate::Truncate { keep_frac } => {
                    // Keep at least one byte and never the full line,
                    // so the frame is reliably malformed.
                    let cut = ((line.len() as f64 * keep_frac) as usize)
                        .clamp(1, line.len().saturating_sub(1).max(1));
                    let mut stub = line.as_bytes()[..cut].to_vec();
                    stub.push(b'\n');
                    steps.push(WriteStep::Chunk(stub));
                    steps.push(WriteStep::Flush);
                }
                LineFate::Split { at_frac, pause_ms } => {
                    let cut = ((bytes.len() as f64 * at_frac) as usize).clamp(1, bytes.len() - 1);
                    steps.push(WriteStep::Chunk(bytes[..cut].to_vec()));
                    steps.push(WriteStep::Flush);
                    steps.push(WriteStep::Pause(Duration::from_millis(*pause_ms)));
                    steps.push(WriteStep::Chunk(bytes[cut..].to_vec()));
                    steps.push(WriteStep::Flush);
                }
                LineFate::MergeWithNext => {
                    // No flush: these bytes ride in the same write as
                    // whatever comes next (the final drain flushes a
                    // trailing merge).
                    steps.push(WriteStep::Chunk(bytes));
                }
                LineFate::Delay { pause_ms } => {
                    steps.push(WriteStep::Pause(Duration::from_millis(*pause_ms)));
                    steps.push(WriteStep::Chunk(bytes));
                    steps.push(WriteStep::Flush);
                }
                LineFate::DisconnectAfter => {
                    steps.push(WriteStep::Chunk(bytes));
                    steps.push(WriteStep::Flush);
                    steps.push(WriteStep::Disconnect);
                }
                LineFate::Burst => {
                    steps.push(WriteStep::Chunk(bytes));
                    steps.push(WriteStep::Flush);
                }
            }
        }
        steps.push(WriteStep::Flush);
        ChaosScript {
            steps,
            intact,
            line_starts,
        }
    }
}

/// A compiled chaos script plus per-line bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosScript {
    /// The executable instruction stream.
    pub steps: Vec<WriteStep>,
    /// Per line: whether its bytes go out unmangled.
    pub intact: Vec<bool>,
    /// Per line: the index of its first step, so a resume point from
    /// [`ScriptOutcome::Disconnected`] maps back to which lines went
    /// out on which connection.
    pub line_starts: Vec<usize>,
}

/// One instruction of a compiled chaos script.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteStep {
    /// Write these bytes (buffered until the next flush).
    Chunk(Vec<u8>),
    /// Flush buffered bytes to the transport.
    Flush,
    /// Sleep before continuing.
    Pause(Duration),
    /// Drop the connection; the executor returns so the caller can
    /// reconnect and resume from the next step.
    Disconnect,
}

/// Why [`run_script`] returned.
#[derive(Debug, PartialEq, Eq)]
pub enum ScriptOutcome {
    /// Every step executed.
    Completed,
    /// Hit a [`WriteStep::Disconnect`]; resume from `resume_at` on a
    /// fresh connection.
    Disconnected {
        /// Index of the first unexecuted step.
        resume_at: usize,
    },
}

/// Executes script steps starting at `start` against one writer.
/// Returns at the first `Disconnect` (the caller reconnects and
/// resumes) or when the script is exhausted. Write errors surface so
/// TCP soaks notice a dead server.
pub fn run_script(
    steps: &[WriteStep],
    start: usize,
    w: &mut dyn Write,
) -> io::Result<ScriptOutcome> {
    for (i, step) in steps.iter().enumerate().skip(start) {
        match step {
            WriteStep::Chunk(bytes) => w.write_all(bytes)?,
            WriteStep::Flush => w.flush()?,
            WriteStep::Pause(d) => {
                if !d.is_zero() {
                    std::thread::sleep(*d);
                }
            }
            WriteStep::Disconnect => return Ok(ScriptOutcome::Disconnected { resume_at: i + 1 }),
        }
    }
    Ok(ScriptOutcome::Completed)
}

/// The write half of an in-memory byte pipe; see [`pipe`].
pub struct PipeWriter {
    tx: Sender<Vec<u8>>,
    buf: Vec<u8>,
}

/// The read half of an in-memory byte pipe; see [`pipe`].
pub struct PipeReader {
    rx: Receiver<Vec<u8>>,
    buf: Vec<u8>,
    pos: usize,
}

/// An in-memory pipe whose read half implements `Read` and write half
/// `Write`: lets a chaos client drive `serve_stdio` exactly as a
/// process would drive stdin, including EOF when the writer drops.
/// Writes buffer until `flush`, so chunk/flush boundaries in a chaos
/// script translate into the read sizes the transport observes.
pub fn pipe() -> (PipeWriter, PipeReader) {
    let (tx, rx) = mpsc::channel();
    (
        PipeWriter {
            tx,
            buf: Vec::new(),
        },
        PipeReader {
            rx,
            buf: Vec::new(),
            pos: 0,
        },
    )
}

impl Write for PipeWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let chunk = std::mem::take(&mut self.buf);
        self.tx
            .send(chunk)
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "pipe reader dropped"))
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        while self.pos >= self.buf.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.buf = chunk;
                    self.pos = 0;
                }
                // Writer dropped: EOF, the stdio drain contract.
                Err(_) => return Ok(0),
            }
        }
        let n = (self.buf.len() - self.pos).min(out.len());
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let cfg = ChaosConfig::aggressive();
        let a = ChaosPlan::generate(42, 500, &cfg);
        let b = ChaosPlan::generate(42, 500, &cfg);
        assert_eq!(a, b, "regeneration is bit-identical");
        let c = ChaosPlan::generate(43, 500, &cfg);
        assert_ne!(a.fates, c.fates, "different seed, different schedule");
    }

    #[test]
    fn aggressive_plan_exercises_every_fate() {
        let plan = ChaosPlan::generate(7, 2000, &ChaosConfig::aggressive());
        let has = |f: fn(&LineFate) -> bool| plan.fates.iter().any(f);
        assert!(has(|f| matches!(f, LineFate::Deliver)));
        assert!(has(|f| matches!(f, LineFate::Truncate { .. })));
        assert!(has(|f| matches!(f, LineFate::Split { .. })));
        assert!(has(|f| matches!(f, LineFate::MergeWithNext)));
        assert!(has(|f| matches!(f, LineFate::Delay { .. })));
        assert!(has(|f| matches!(f, LineFate::DisconnectAfter)));
        assert!(has(|f| matches!(f, LineFate::Burst)));
    }

    #[test]
    fn inactive_config_delivers_everything() {
        let plan = ChaosPlan::generate(9, 100, &ChaosConfig::default());
        assert!(plan.fates.iter().all(|f| *f == LineFate::Deliver));
    }

    #[test]
    fn script_truncation_mangles_only_the_truncated_line() {
        let mut plan = ChaosPlan::generate(1, 2, &ChaosConfig::default());
        plan.fates[0] = LineFate::Truncate { keep_frac: 0.5 };
        let lines = vec!["abcdefgh".to_string(), "ijklmnop".to_string()];
        let script = plan.script(&lines);
        assert_eq!(script.intact, vec![false, true]);
        let mut wire = Vec::new();
        assert_eq!(
            run_script(&script.steps, 0, &mut wire).unwrap(),
            ScriptOutcome::Completed
        );
        let text = String::from_utf8(wire).unwrap();
        assert_eq!(text, "abcd\nijklmnop\n", "half the first line survives");
    }

    #[test]
    fn script_resumes_after_disconnect() {
        let mut plan = ChaosPlan::generate(1, 3, &ChaosConfig::default());
        plan.fates[1] = LineFate::DisconnectAfter;
        let lines: Vec<String> = (0..3).map(|i| format!("line{i}")).collect();
        let script = plan.script(&lines);
        let mut first = Vec::new();
        let ScriptOutcome::Disconnected { resume_at } =
            run_script(&script.steps, 0, &mut first).unwrap()
        else {
            panic!("expected a disconnect");
        };
        assert_eq!(String::from_utf8(first).unwrap(), "line0\nline1\n");
        let mut second = Vec::new();
        assert_eq!(
            run_script(&script.steps, resume_at, &mut second).unwrap(),
            ScriptOutcome::Completed
        );
        assert_eq!(String::from_utf8(second).unwrap(), "line2\n");
        // The resume point lands exactly on the post-disconnect line.
        assert!(script.line_starts[2] >= resume_at);
        assert!(script.line_starts[1] < resume_at);
    }

    #[test]
    fn pipe_carries_chunks_and_signals_eof() {
        let (mut w, mut r) = pipe();
        w.write_all(b"hello ").unwrap();
        w.write_all(b"world\n").unwrap();
        w.flush().unwrap();
        drop(w);
        let mut all = String::new();
        r.read_to_string(&mut all).unwrap();
        assert_eq!(all, "hello world\n");
        let mut buf = [0u8; 8];
        assert_eq!(r.read(&mut buf).unwrap(), 0, "EOF after writer drop");
    }
}
