//! Chaos soak: thousands of requests through both transports under a
//! seeded fault injector, asserting the overload-safety contract:
//!
//! - every frame the client put on the wire — intact or mangled —
//!   gets exactly one correlated response (`solve_ok`, `error`, or
//!   `overloaded`); the server never double-answers an id;
//! - no worker panic escapes the server (thread joins cleanly and the
//!   service counters balance: received == responded);
//! - shutdown always drains: EOF on stdio and a `shutdown` request on
//!   TCP both answer everything admitted before returning;
//! - re-running a seed regenerates the identical fault schedule.
//!
//! The seeds come from [`mmph_serve::SOAK_SEEDS`], the same matrix the
//! CI `chaos-soak` job iterates.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::thread;

use mmph_serve::chaos::{pipe, run_script, ChaosConfig, ChaosPlan, ScriptOutcome};
use mmph_serve::{
    serve_stdio, serve_tcp, Request, Response, Service, ServiceConfig, ShutdownFlag, SOAK_SEEDS,
};
use mmph_sim::{Scenario, WeightScheme};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Small scenario pool (fits the service's 4-entry instance cache) so
/// the soak exercises cache hits and engine reuse, not generation.
fn scenario(slot: u64) -> Scenario {
    Scenario::paper_2d(
        30 + (slot as usize % 3) * 5,
        3,
        1.0,
        mmph_geom::Norm::L2,
        WeightScheme::PAPER_WEIGHTED,
        slot % 3,
    )
}

/// A heavier scenario so rounds occasionally take long enough for the
/// backlog (and admission control) to matter.
fn heavy_scenario() -> Scenario {
    Scenario::paper_2d(
        220,
        6,
        1.0,
        mmph_geom::Norm::L2,
        WeightScheme::PAPER_WEIGHTED,
        77,
    )
}

/// Id of the `i`-th scripted line. Offset into a 4-digit range so no
/// id is a decimal prefix of another: truncation chopping id digits
/// mid-number then salvages a value that cannot collide with any real
/// line's id (e.g. `"id":1600` cut to `"id":160` → 160, not in range).
fn line_id(i: usize) -> u64 {
    1000 + i as u64 + 1
}

/// Builds the request mix for one soak run: mostly cached small
/// solves, some eval-budgeted, a few heavy, a sprinkle of pings.
/// Ids come from [`line_id`], so correlation checks are direct.
fn build_lines(seed: u64, len: usize) -> (Vec<String>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lines = Vec::with_capacity(len);
    let mut ids = Vec::with_capacity(len);
    for i in 0..len {
        let id = line_id(i);
        let line = match rng.gen_range(0..10u32) {
            0 => Request::control(id, "ping").to_line(),
            1 => {
                let mut req = Request::solve(id, scenario(rng.gen_range(0..3)));
                req.max_evals = Some(rng.gen_range(10..80));
                req.to_line()
            }
            2 => Request::solve(id, heavy_scenario()).to_line(),
            _ => Request::solve(id, scenario(rng.gen_range(0..3))).to_line(),
        };
        lines.push(line);
        ids.push(id);
    }
    (lines, ids)
}

/// Ops a request is allowed to resolve to.
fn assert_sane_op(resp: &Response) {
    assert!(
        matches!(
            resp.op.as_str(),
            "solve_ok" | "pong" | "error" | "overloaded" | "bye"
        ),
        "unexpected op {:?}",
        resp.op
    );
}

#[test]
fn stdio_soak_over_seed_matrix() {
    for &seed in SOAK_SEEDS {
        stdio_soak(seed);
    }
}

fn stdio_soak(seed: u64) {
    const LEN: usize = 600;
    let cfg = ChaosConfig::aggressive_no_disconnect();
    let (lines, _ids) = build_lines(seed, LEN);
    let plan = ChaosPlan::generate(seed, LEN, &cfg);
    assert_eq!(
        plan,
        ChaosPlan::generate(seed, LEN, &cfg),
        "seed {seed}: schedule must regenerate bit-identically"
    );
    let script = plan.script(&lines);

    // Small queue so bursts actually shed; small rounds so the
    // backlog sees multiple admission passes.
    let svc_cfg = ServiceConfig {
        queue_cap: 32,
        max_batch: 8,
        ..ServiceConfig::default()
    };
    let (mut w, r) = pipe();
    let server = thread::spawn(move || {
        let mut svc = Service::new(svc_cfg);
        let mut out = Vec::new();
        let stats = serve_stdio(&mut svc, r, &mut out, &ShutdownFlag::new()).unwrap();
        (stats, out)
    });
    assert_eq!(
        run_script(&script.steps, 0, &mut w).unwrap(),
        ScriptOutcome::Completed,
        "stdio scripts carry no disconnects"
    );
    drop(w); // EOF: the transport drains and returns.
    let (stats, out) = server.join().expect("no panic escapes the server");

    let responses: Vec<Response> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| Response::parse(l).unwrap())
        .collect();
    assert_eq!(
        responses.len(),
        LEN,
        "seed {seed}: exactly one response per frame"
    );
    assert_eq!(stats.received, LEN as u64);
    assert_eq!(stats.responded, stats.received, "shutdown always drains");

    // Correlation: every intact line's id answered exactly once with
    // a success-or-shed op; mangled frames resolve to errors.
    let mut by_id: HashMap<u64, Vec<&Response>> = HashMap::new();
    let mut uncorrelated = 0usize;
    for resp in &responses {
        assert_sane_op(resp);
        match resp.in_reply_to {
            Some(id) => by_id.entry(id).or_default().push(resp),
            None => uncorrelated += 1,
        }
    }
    let mut mangled = 0usize;
    for (i, intact) in script.intact.iter().enumerate() {
        let id = line_id(i);
        if *intact {
            let got = by_id
                .get(&id)
                .unwrap_or_else(|| panic!("seed {seed}: intact id {id} never answered"));
            assert_eq!(got.len(), 1, "seed {seed}: id {id} answered once");
            assert!(
                matches!(got[0].op.as_str(), "solve_ok" | "pong" | "overloaded"),
                "seed {seed}: intact id {id} resolved to {:?}",
                got[0].op
            );
        } else {
            mangled += 1;
            // A mangled frame either errors at parse or is shed at
            // admission before parsing — never a success op.
            if let Some(got) = by_id.get(&id) {
                assert!(
                    got.iter()
                        .all(|r| matches!(r.op.as_str(), "error" | "overloaded")),
                    "seed {seed}: mangled id {id} resolved to a success op"
                );
            }
        }
    }
    let errors = responses.iter().filter(|r| r.op == "error").count();
    assert!(
        errors <= mangled,
        "seed {seed}: only mangled frames may error ({errors} errors, {mangled} mangled)"
    );
    assert_eq!(
        stats.errors as usize, errors,
        "seed {seed}: stats agree with the wire"
    );
    assert!(
        uncorrelated <= mangled,
        "only mangled frames may lose their id"
    );
    let sheds = responses.iter().filter(|r| r.op == "overloaded").count();
    assert_eq!(stats.shed as usize, sheds);
    for r in responses.iter().filter(|r| r.op == "overloaded") {
        assert!(r.retry_after_ms.is_some(), "sheds carry the retry hint");
    }
}

#[test]
fn tcp_soak_over_seed_matrix() {
    for &seed in SOAK_SEEDS {
        tcp_soak(seed);
    }
}

fn tcp_soak(seed: u64) {
    const LEN: usize = 400;
    let cfg = ChaosConfig::aggressive();
    let (lines, _ids) = build_lines(seed, LEN);
    let plan = ChaosPlan::generate(seed, LEN, &cfg);
    assert_eq!(
        plan,
        ChaosPlan::generate(seed, LEN, &cfg),
        "seed {seed}: schedule must regenerate bit-identically"
    );
    let script = plan.script(&lines);

    // Generous caps: this arm stresses framing, disconnects and
    // drain; shedding is the stdio arm's job (a shed `shutdown`
    // could stall the run).
    let svc_cfg = ServiceConfig {
        queue_cap: 4096,
        per_conn_inflight: 4096,
        ..ServiceConfig::default()
    };
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = thread::spawn(move || {
        let mut svc = Service::new(svc_cfg);
        serve_tcp(&mut svc, listener, &ShutdownFlag::new()).unwrap()
    });

    let mut collected: Vec<Response> = Vec::new();
    let mut start = 0usize;
    loop {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).ok();
        let read_half = stream.try_clone().unwrap();
        let collector = thread::spawn(move || {
            let mut got = Vec::new();
            for line in BufReader::new(read_half).lines() {
                let Ok(line) = line else { break };
                let resp = Response::parse(&line).unwrap();
                let done = resp.op == "bye";
                got.push(resp);
                if done {
                    break;
                }
            }
            got
        });
        let mut write_half = stream.try_clone().unwrap();
        match run_script(&script.steps, start, &mut write_half).unwrap() {
            ScriptOutcome::Disconnected { resume_at } => {
                // Mid-request hangup: close both halves and resume on
                // a fresh connection.
                stream.shutdown(Shutdown::Both).ok();
                collected.extend(collector.join().unwrap());
                start = resume_at;
            }
            ScriptOutcome::Completed => {
                // Script done; this connection stays up, so every one
                // of its admitted requests must be answered before
                // the `bye` that ends the run.
                write_half
                    .write_all((Request::control(u64::MAX, "shutdown").to_line() + "\n").as_bytes())
                    .unwrap();
                write_half.flush().unwrap();
                let final_responses = collector.join().unwrap();
                collected.extend(final_responses);
                break;
            }
        }
    }
    let stats = server.join().expect("no panic escapes the server");

    // Server-side exactly-once: every admitted frame was answered,
    // even the ones whose connection died before the write.
    assert_eq!(
        stats.received, stats.responded,
        "seed {seed}: shutdown always drains ({stats:?})"
    );

    // Client-side: ids are never double-answered, and everything the
    // final (surviving) connection sent intact came back correlated.
    let mut seen: HashMap<u64, &Response> = HashMap::new();
    for resp in &collected {
        assert_sane_op(resp);
        if let Some(id) = resp.in_reply_to {
            assert!(
                seen.insert(id, resp).is_none(),
                "seed {seed}: id {id} answered twice"
            );
        }
    }
    assert_eq!(
        seen.get(&u64::MAX).map(|r| r.op.as_str()),
        Some("bye"),
        "seed {seed}: shutdown acknowledged"
    );
    let final_start = start;
    for (i, intact) in script.intact.iter().enumerate() {
        if script.line_starts[i] >= final_start && *intact {
            let id = line_id(i);
            let got = seen.get(&id).unwrap_or_else(|| {
                panic!("seed {seed}: id {id} sent on the surviving connection, never answered")
            });
            assert!(
                matches!(got.op.as_str(), "solve_ok" | "pong" | "overloaded"),
                "seed {seed}: intact id {id} resolved to {:?}",
                got.op
            );
        }
    }
}
