//! The equivalence pin behind the whole refactor: a scenario stream
//! answered by the service — in-process, or over the stdio transport's
//! actual wire bytes — produces selections and rewards bit-identical
//! to `BatchRunner` driving the same instances directly. `mmph batch`
//! and `mmph serve` are two transports over one code path, and this
//! test is the proof.

use std::io::Cursor;
use std::time::Instant;

use mmph_core::{verify_reports, BatchRunner, Instance, SolveBudget};
use mmph_serve::{
    report_from_responses, serve_stdio, Incoming, Request, Response, Service, ServiceConfig,
    ShutdownFlag,
};
use mmph_sim::{Scenario, WeightScheme};

/// A mixed stream with repeats (engine reuse) and size changes.
fn stream() -> Vec<Scenario> {
    let sc = |n, k, seed| {
        Scenario::paper_2d(
            n,
            k,
            1.0,
            mmph_geom::Norm::L2,
            WeightScheme::PAPER_WEIGHTED,
            seed,
        )
    };
    vec![
        sc(40, 4, 1),
        sc(40, 4, 1),
        sc(40, 4, 1),
        sc(25, 3, 2),
        sc(40, 4, 1),
        sc(60, 5, 3),
        sc(60, 5, 3),
    ]
}

fn instances(scenarios: &[Scenario]) -> Vec<Instance<2>> {
    scenarios.iter().map(|s| s.generate_2d().unwrap()).collect()
}

fn requests(scenarios: &[Scenario]) -> Vec<Request> {
    scenarios
        .iter()
        .enumerate()
        .map(|(i, s)| Request::solve(i as u64, s.clone()))
        .collect()
}

#[test]
fn in_process_service_matches_direct_batch() {
    let scenarios = stream();
    let direct = BatchRunner::new().run(&instances(&scenarios));

    let mut svc = Service::new(ServiceConfig::default());
    let responses = svc.handle_requests(requests(&scenarios), Instant::now());
    let served = report_from_responses(&responses, 0, 1, true).unwrap();

    verify_reports(&direct, &served).expect("service must be bit-identical to batch");
    assert!(
        served
            .results
            .iter()
            .skip(1)
            .take(2)
            .all(|r| r.engine_reused),
        "repeated scenarios keep the batch pipeline's engine reuse"
    );
}

#[test]
fn stdio_wire_bytes_match_direct_batch() {
    let scenarios = stream();
    let direct = BatchRunner::new().run(&instances(&scenarios));

    let mut input = String::new();
    for req in requests(&scenarios) {
        input.push_str(&req.to_line());
        input.push('\n');
    }
    let mut svc = Service::new(ServiceConfig::default());
    let mut out = Vec::new();
    serve_stdio(
        &mut svc,
        Cursor::new(input.into_bytes()),
        &mut out,
        &ShutdownFlag::new(),
    )
    .unwrap();

    let responses: Vec<Response> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| Response::parse(l).unwrap())
        .collect();
    let served = report_from_responses(&responses, 0, 1, true).unwrap();
    verify_reports(&direct, &served)
        .expect("responses re-parsed from actual wire bytes must match batch bit-for-bit");
}

#[test]
fn eval_budgets_degrade_identically_on_both_paths() {
    let scenarios = stream();
    let budgets: Vec<SolveBudget> = (0..scenarios.len())
        .map(|i| {
            if i % 2 == 0 {
                SolveBudget::unlimited().with_max_evals(60)
            } else {
                SolveBudget::unlimited()
            }
        })
        .collect();
    let direct = BatchRunner::new().run_budgeted(&instances(&scenarios), &budgets);

    let mut reqs = requests(&scenarios);
    for (i, req) in reqs.iter_mut().enumerate() {
        if i % 2 == 0 {
            req.max_evals = Some(60);
        }
    }
    let mut svc = Service::new(ServiceConfig::default());
    let responses = svc.handle_requests(reqs, Instant::now());
    let served = report_from_responses(&responses, 0, 1, true).unwrap();

    verify_reports(&direct, &served)
        .expect("eval-budget degradation is deterministic, so prefixes must agree");
    assert!(
        responses
            .iter()
            .any(|r| r.status.as_deref() == Some("degraded")),
        "the cap must actually bite for this pin to mean anything"
    );
}

#[test]
fn cold_pipeline_matches_too() {
    let scenarios = stream();
    let direct = BatchRunner::new()
        .with_warm(false)
        .run(&instances(&scenarios));

    let mut svc = Service::new(ServiceConfig {
        warm: false,
        ..ServiceConfig::default()
    });
    let batch: Vec<Incoming> = requests(&scenarios)
        .iter()
        .map(|r| Incoming::now(r.to_line()))
        .collect();
    let responses = svc.handle_lines(&batch);
    let served = report_from_responses(&responses, 0, 1, false).unwrap();
    verify_reports(&direct, &served).expect("cold path equivalence");
}
