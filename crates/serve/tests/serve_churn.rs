//! The churn analogue of `serve_equals_batch`: a mutate → resolve
//! conversation through the service — including the stdio transport's
//! actual wire bytes — is bit-identical to driving
//! [`IncrementalInstance`] directly, and PR 7's shed/cancel semantics
//! hold for the incremental ops too.

use std::io::Cursor;
use std::time::{Duration, Instant};

use mmph_core::{
    CancelToken, Delta, EngineKind, IncrementalInstance, Instance, ResolveConfig, SolveScratch,
};
use mmph_geom::Point;
use mmph_serve::{serve_stdio, Incoming, Request, Response, Service, ServiceConfig, ShutdownFlag};
use mmph_sim::{ChurnPlan, Scenario, WeightScheme};

fn scenario(n: usize, k: usize, seed: u64) -> Scenario {
    Scenario::paper_2d(
        n,
        k,
        1.0,
        mmph_geom::Norm::L2,
        WeightScheme::PAPER_WEIGHTED,
        seed,
    )
}

/// The library-side reference: same instance, same deltas, same
/// resolve cadence as the request script.
fn reference(inst: Instance<2>, batches: &[Vec<Delta<2>>]) -> Vec<(Vec<usize>, f64, bool, u64)> {
    let mut inc = IncrementalInstance::new(inst, EngineKind::Sparse).unwrap();
    let mut scratch = SolveScratch::new();
    let mut out = Vec::new();
    let record = |inc: &IncrementalInstance<2>, o: mmph_core::ResolveOutcome| {
        (o.selection, o.reward, o.warm, inc.churn_version())
    };
    let o = inc.resolve(&mut scratch, &ResolveConfig::default());
    out.push(record(&inc, o));
    for deltas in batches {
        inc.apply_churn(deltas).unwrap();
        let o = inc.resolve(&mut scratch, &ResolveConfig::default());
        out.push(record(&inc, o));
    }
    out
}

/// Seeded delta batches, generated the same way the loadgen mix does.
fn batches(inst: &Instance<2>, steps: u64) -> Vec<Vec<Delta<2>>> {
    // Mirror the instance's evolution while generating: each batch is
    // drawn against the instance state the previous batches produced.
    let mut inc = IncrementalInstance::new(inst.clone(), EngineKind::Sparse).unwrap();
    let plan = ChurnPlan::new(0xC0FFEE, steps as usize, 0.04);
    let mut out = Vec::new();
    for step in 0..steps {
        let deltas = plan.deltas(step, inc.instance()).unwrap();
        inc.apply_churn(&deltas).unwrap();
        out.push(deltas);
    }
    out
}

#[test]
fn stdio_wire_bytes_mutate_resolve_match_direct_library() {
    let sc = scenario(80, 4, 17);
    let inst = sc.generate_2d().unwrap();
    let batches = batches(&inst, 3);
    let expect = reference(inst, &batches);

    // Script: init + resolve, then (mutate deltas + resolve) per batch.
    let mut input = String::new();
    let mut id = 0u64;
    let push = |req: Request, input: &mut String| {
        input.push_str(&req.to_line());
        input.push('\n');
    };
    push(Request::mutate(id, Some(sc.clone()), None), &mut input);
    id += 1;
    push(Request::resolve(id), &mut input);
    for deltas in &batches {
        id += 1;
        push(Request::mutate(id, None, Some(deltas.clone())), &mut input);
        id += 1;
        push(Request::resolve(id), &mut input);
    }

    let mut svc = Service::new(ServiceConfig::default());
    let mut out = Vec::new();
    serve_stdio(
        &mut svc,
        Cursor::new(input.into_bytes()),
        &mut out,
        &ShutdownFlag::new(),
    )
    .unwrap();
    let responses: Vec<Response> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| Response::parse(l).unwrap())
        .collect();
    assert_eq!(responses.len(), 2 + 2 * batches.len());

    let resolves: Vec<&Response> = responses.iter().filter(|r| r.op == "resolve_ok").collect();
    assert_eq!(resolves.len(), expect.len());
    for (resp, (selection, reward, warm, version)) in resolves.iter().zip(&expect) {
        assert_eq!(resp.status.as_deref(), Some("completed"));
        assert_eq!(resp.selection.as_ref().unwrap(), selection);
        assert_eq!(
            resp.reward.unwrap().to_bits(),
            reward.to_bits(),
            "rewards must survive the wire bit-for-bit"
        );
        assert_eq!(resp.warm, Some(*warm));
        assert_eq!(resp.churn_version, Some(*version));
    }
    // First resolve is the cold seed solve; 4%-churn follow-ups warm.
    assert_eq!(resolves[0].warm, Some(false));
    assert!(
        resolves[1..].iter().all(|r| r.warm == Some(true)),
        "4% churn stays under the warm threshold"
    );
    // mutate_ok responses carry the advancing churn version.
    let mutates: Vec<&Response> = responses.iter().filter(|r| r.op == "mutate_ok").collect();
    assert_eq!(mutates[0].churn_version, Some(0));
    assert!(mutates[1].churn_version.unwrap() > 0);
    assert_eq!(svc.stats().mutations as usize, mutates.len());
    assert_eq!(svc.stats().warm_resolves as usize, resolves.len() - 1);
}

#[test]
fn resolve_without_tracked_instance_is_an_error() {
    let mut svc = Service::new(ServiceConfig::default());
    let out = svc.handle_lines(&[Incoming::now(Request::resolve(1).to_line())]);
    assert_eq!(out[0].op, "error");
    assert!(out[0]
        .error
        .as_deref()
        .unwrap()
        .contains("no tracked instance"));
    let out = svc.handle_lines(&[Incoming::now(
        Request::mutate(2, None, Some(vec![Delta::Remove { index: 0 }])).to_line(),
    )]);
    assert_eq!(out[0].op, "error");
}

#[test]
fn bad_delta_reports_its_position_in_the_batch() {
    let mut svc = Service::new(ServiceConfig::default());
    let init = Request::mutate(0, Some(scenario(10, 2, 3)), None);
    svc.handle_lines(&[Incoming::now(init.to_line())]);
    let deltas = vec![
        Delta::Insert {
            point: Point::new([1.0, 1.0]),
            weight: 2.0,
        },
        Delta::Remove { index: 999 },
    ];
    let out = svc.handle_lines(&[Incoming::now(
        Request::mutate(1, None, Some(deltas)).to_line(),
    )]);
    assert_eq!(out[0].op, "error");
    let msg = out[0].error.as_deref().unwrap();
    assert!(msg.contains("churn delta 1"), "{msg}");
}

#[test]
fn non_sparse_engine_rejected_for_mutate() {
    let mut svc = Service::new(ServiceConfig::default());
    let mut req = Request::mutate(0, Some(scenario(10, 2, 3)), None);
    req.engine = Some("kd".into());
    let out = svc.handle_lines(&[Incoming::now(req.to_line())]);
    assert_eq!(out[0].op, "error");
    assert!(out[0].error.as_deref().unwrap().contains("sparse engine"));
}

#[test]
fn pre_cancelled_resolve_degrades_and_keeps_churn_pending() {
    let mut svc = Service::new(ServiceConfig::default());
    let sc = scenario(60, 3, 9);
    svc.handle_lines(&[
        Incoming::now(Request::mutate(0, Some(sc), None).to_line()),
        Incoming::now(Request::resolve(1).to_line()),
    ]);
    let deltas = vec![Delta::Insert {
        point: Point::new([2.0, 2.0]),
        weight: 3.0,
    }];
    let out = svc.handle_lines(&[Incoming::now(
        Request::mutate(2, None, Some(deltas)).to_line(),
    )]);
    let version_after_mutate = out[0].churn_version.unwrap();

    // A resolve whose client already hung up: degraded, no commit.
    let token = CancelToken::new();
    token.cancel();
    let out = svc.handle_lines(&[Incoming::with_cancel(Request::resolve(3).to_line(), token)]);
    assert_eq!(out[0].op, "resolve_ok");
    assert_eq!(out[0].status.as_deref(), Some("degraded"));
    assert_eq!(out[0].degrade_reason.as_deref(), Some("solve cancelled"));
    assert_eq!(svc.stats().cancelled, 1);
    assert_eq!(svc.stats().degraded, 1);

    // The churn survived the cancellation: a clean resolve completes
    // warm at the same churn version.
    let out = svc.handle_lines(&[Incoming::now(Request::resolve(4).to_line())]);
    assert_eq!(out[0].status.as_deref(), Some("completed"), "{:?}", out[0]);
    assert_eq!(out[0].warm, Some(true));
    assert_eq!(out[0].churn_version, Some(version_after_mutate));
}

#[test]
fn queue_eaten_deadline_sheds_resolve_as_overloaded() {
    let mut svc = Service::new(ServiceConfig::default());
    svc.handle_lines(&[Incoming::now(
        Request::mutate(0, Some(scenario(40, 3, 5)), None).to_line(),
    )]);
    let mut req = Request::resolve(1);
    req.deadline_ms = Some(5);
    let inc = Incoming {
        line: req.to_line(),
        received: Instant::now() - Duration::from_millis(50),
        cancel: None,
    };
    let out = svc.handle_lines(&[inc]);
    assert_eq!(out[0].op, "overloaded");
    assert_eq!(out[0].in_reply_to, Some(1));
    assert!(out[0].queue_ms.unwrap() >= 50.0);
    assert_eq!(svc.stats().shed, 1);
}
