//! Property tests for the NDJSON envelope: any request or response the
//! types can express survives a serialize → parse → serialize cycle
//! bit-for-bit, so pipelined clients can rely on stable lines.

use mmph_core::Delta;
use mmph_geom::Point;
use mmph_serve::{Request, Response, ServiceStats, PROTOCOL_VERSION};
use mmph_sim::{Scenario, WeightScheme};
use proptest::prelude::*;

/// `Option<T>` strategy: present half the time.
fn opt<S>(inner: S) -> impl Strategy<Value = Option<S::Value>>
where
    S: Strategy,
{
    (0u32..2, inner).prop_map(|(flag, v)| if flag == 1 { Some(v) } else { None })
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (1usize..200, 1usize..8, 0.1..3.0f64, 0u64..1000).prop_map(|(n, k, r, seed)| {
        Scenario::paper_2d(
            n,
            k,
            r,
            mmph_geom::Norm::L2,
            WeightScheme::PAPER_WEIGHTED,
            seed,
        )
    })
}

fn delta() -> impl Strategy<Value = Delta<2>> {
    prop_oneof![
        ((-4.0..4.0f64, -4.0..4.0f64), 1.0..5.0f64).prop_map(|((x, y), weight)| Delta::Insert {
            point: Point::new([x, y]),
            weight,
        }),
        (0usize..1000).prop_map(|index| Delta::Remove { index }),
        (0usize..1000, (-4.0..4.0f64, -4.0..4.0f64)).prop_map(|(index, (x, y))| Delta::Move {
            index,
            to: Point::new([x, y]),
        }),
    ]
}

fn request() -> impl Strategy<Value = Request> {
    let op = prop_oneof![
        Just("ping".to_string()),
        Just("stats".to_string()),
        Just("shutdown".to_string()),
        Just("solve".to_string()),
        Just("mutate".to_string()),
        Just("resolve".to_string()),
    ];
    let solver = prop_oneof![Just("greedy2".to_string()), Just("lazy".to_string())];
    let engine = prop_oneof![
        Just("sparse".to_string()),
        Just("scan".to_string()),
        Just("kd".to_string())
    ];
    (
        (0u64..u64::MAX, op),
        opt(scenario()),
        (opt(solver), opt(engine)),
        (opt(0u64..10_000), opt(0u64..1_000_000)),
        opt(prop::collection::vec(delta(), 0..6)),
        (opt(0.5..64.0f64), opt(1usize..64)),
    )
        .prop_map(
            |(
                (id, op),
                scenario,
                (solver, engine),
                (deadline_ms, max_evals),
                deltas,
                (coreset_cells, shards),
            )| Request {
                v: PROTOCOL_VERSION,
                id,
                op,
                scenario,
                spec: None,
                solver,
                engine,
                deadline_ms,
                max_evals,
                deltas,
                coreset_cells,
                shards,
            },
        )
}

fn response() -> impl Strategy<Value = Response> {
    let op = prop_oneof![
        Just("solve_ok".to_string()),
        Just("pong".to_string()),
        Just("stats_ok".to_string()),
        Just("bye".to_string()),
        Just("error".to_string()),
        Just("overloaded".to_string()),
    ];
    let status = prop_oneof![Just("completed".to_string()), Just("degraded".to_string())];
    (
        (opt(0u64..u64::MAX), op, opt(status)),
        opt(-1e12..1e12f64),
        opt(prop::collection::vec(0usize..100_000, 0..12)),
        (opt(0u64..u64::MAX), 0u32..2),
        (opt(0.0..1e6f64), opt(0u64..100_000)),
    )
        .prop_map(
            |(
                (in_reply_to, op, status),
                reward,
                selection,
                (latency_us, with_stats),
                (queue_ms, retry_after_ms),
            )| {
                let mut r = Response::new(in_reply_to, &op);
                r.status = status;
                r.reward = reward;
                r.selection = selection;
                r.latency_us = latency_us;
                r.queue_ms = queue_ms;
                r.retry_after_ms = retry_after_ms;
                if with_stats == 1 {
                    r.stats = Some(ServiceStats {
                        received: 10,
                        responded: 9,
                        solved: 7,
                        degraded: 1,
                        errors: 1,
                        engines_reused: 4,
                        shed: 2,
                        cancelled: 1,
                        mutations: 3,
                        warm_resolves: 2,
                    });
                }
                r
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_lines_roundtrip(req in request()) {
        let line = req.to_line();
        let back = Request::parse(&line).unwrap();
        prop_assert_eq!(&back, &req);
        prop_assert_eq!(back.to_line(), line, "reserialization is stable");
    }

    #[test]
    fn response_lines_roundtrip(resp in response()) {
        let line = resp.to_line();
        let back = Response::parse(&line).unwrap();
        prop_assert_eq!(&back, &resp);
        prop_assert_eq!(back.to_line(), line, "reserialization is stable");
    }

    #[test]
    fn rewards_cross_the_wire_bit_identically(bits in 0u64..u64::MAX) {
        // Arbitrary bit patterns, folded back to finite when the draw
        // lands on an inf/NaN encoding (JSON has no tokens for those).
        let mut reward = f64::from_bits(bits);
        if !reward.is_finite() {
            reward = (bits >> 12) as f64 * 1e-3;
        }
        let mut r = Response::new(Some(1), "solve_ok");
        r.reward = Some(reward);
        let back = Response::parse(&r.to_line()).unwrap();
        prop_assert_eq!(back.reward.unwrap().to_bits(), reward.to_bits());
    }

    #[test]
    fn ids_salvage_from_any_prefix_truncation(
        id in 0u64..u64::MAX,
        cut in 0usize..40,
    ) {
        // A request line truncated anywhere after its id digits still
        // yields the id for error correlation.
        let line = format!(r#"{{"v":1,"id":{id},"op":"solve","spec":"n=10"}}"#);
        let id_end = line.find(",\"op\"").unwrap();
        let keep = line.len().min(id_end + cut);
        prop_assert_eq!(mmph_serve::salvage_id(&line[..keep]), Some(id));
    }
}
