//! Property-based cross-checks of the geometry substrate against slow
//! oracles.

use mmph_geom::hull::{convex_hull, hull_contains};
use mmph_geom::l1ball::{l1_minimax_center_2d, l1_radius_at, projection_center};
use mmph_geom::welzl::{circumball, min_enclosing_ball, ritter_ball};
use mmph_geom::{Aabb, BallTree, GridIndex, KdTree, Norm, Point};
use proptest::prelude::*;

type P2 = Point<2>;

fn coord() -> impl Strategy<Value = f64> {
    -8.0..8.0f64
}

fn point2() -> impl Strategy<Value = P2> {
    (coord(), coord()).prop_map(|(x, y)| Point::new([x, y]))
}

fn points(max: usize) -> impl Strategy<Value = Vec<P2>> {
    prop::collection::vec(point2(), 1..max)
}

proptest! {
    // ------------------------------------------------------------------
    // Aabb
    // ------------------------------------------------------------------

    #[test]
    fn aabb_contains_its_points_and_center(pts in points(40)) {
        let b = Aabb::from_points(&pts).unwrap();
        for p in &pts {
            prop_assert!(b.contains(p));
        }
        prop_assert!(b.contains(&b.center()));
    }

    #[test]
    fn aabb_linf_radius_is_minimax(pts in points(30)) {
        // The box center's L∞ radius must not exceed any point's.
        let b = Aabb::from_points(&pts).unwrap();
        let c = b.center();
        let r_center = pts.iter().map(|p| c.dist_linf(p)).fold(0.0f64, f64::max);
        prop_assert!((r_center - b.linf_radius()).abs() < 1e-9);
        for probe in &pts {
            let r_probe = pts.iter().map(|p| probe.dist_linf(p)).fold(0.0f64, f64::max);
            prop_assert!(r_probe >= b.linf_radius() - 1e-9);
        }
    }

    #[test]
    fn aabb_clamp_is_idempotent_and_inside(p in point2(), q in point2(), probe in point2()) {
        let b = Aabb::new(p, q);
        let clamped = b.clamp(&probe);
        prop_assert!(b.contains(&clamped));
        prop_assert_eq!(b.clamp(&clamped), clamped);
        // Clamp distance equals box distance under L2.
        prop_assert!((probe.dist_l2(&clamped).powi(2) - b.dist_sq_to(&probe)).abs() < 1e-9);
    }

    // ------------------------------------------------------------------
    // Enclosing balls
    // ------------------------------------------------------------------

    #[test]
    fn welzl_support_is_at_most_three_in_2d(pts in points(50)) {
        // The optimal ball is determined by <= 3 points: verify that the
        // ball's boundary touches enough points to pin it, by checking
        // that shrinking the radius by epsilon always excludes a point.
        let ball = min_enclosing_ball(&pts);
        if ball.radius > 1e-6 {
            let shrunk = ball.radius * (1.0 - 1e-6);
            let all_inside_shrunk = pts
                .iter()
                .all(|p| ball.center.dist_l2(p) <= shrunk);
            prop_assert!(!all_inside_shrunk, "ball was not tight");
        }
    }

    #[test]
    fn ritter_never_smaller_than_exact(pts in points(60)) {
        let exact = min_enclosing_ball(&pts);
        let approx = ritter_ball(&pts, 4);
        prop_assert!(approx.radius >= exact.radius - 1e-9);
        for p in &pts {
            prop_assert!(approx.contains(p));
        }
    }

    #[test]
    fn circumball_passes_through_support(a in point2(), b in point2(), c in point2()) {
        let ball = circumball(&[a, b, c]);
        // All three support points are within the ball; the farthest is
        // on the boundary by construction.
        for p in [a, b, c] {
            prop_assert!(ball.contains(&p));
        }
        let max_d = [a, b, c]
            .iter()
            .map(|p| ball.center.dist_l2(p))
            .fold(0.0f64, f64::max);
        prop_assert!((max_d - ball.radius).abs() < 1e-6 * (1.0 + ball.radius));
    }

    // ------------------------------------------------------------------
    // L1 minimax centers
    // ------------------------------------------------------------------

    #[test]
    fn l1_exact_center_beats_projection_and_all_points(pts in points(25)) {
        let (c_exact, r_exact) = l1_minimax_center_2d(&pts).unwrap();
        prop_assert!((l1_radius_at(&c_exact, &pts) - r_exact).abs() < 1e-9);
        let r_proj = l1_radius_at(&projection_center(&pts).unwrap(), &pts);
        prop_assert!(r_exact <= r_proj + 1e-9);
        for p in &pts {
            prop_assert!(r_exact <= l1_radius_at(p, &pts) + 1e-9);
        }
    }

    // ------------------------------------------------------------------
    // Spatial indexes agree with each other
    // ------------------------------------------------------------------

    #[test]
    fn all_three_spatial_indexes_agree(
        pts in points(60),
        c in point2(),
        r in 0.0..6.0f64,
    ) {
        let tree = KdTree::build(&pts);
        let grid = GridIndex::build(&pts, 1.0).unwrap();
        let ball = BallTree::build(&pts);
        for norm in [Norm::L1, Norm::L2, Norm::LInf] {
            let mut a: Vec<usize> = tree.within(&c, r, norm).into_iter().map(|(i, _)| i).collect();
            let mut b: Vec<usize> = grid.within(&c, r, norm).into_iter().map(|(i, _)| i).collect();
            let mut w: Vec<usize> = ball.within(&c, r, norm).into_iter().map(|(i, _)| i).collect();
            a.sort_unstable();
            b.sort_unstable();
            w.sort_unstable();
            prop_assert_eq!(&a, &b, "grid disagrees under {}", norm);
            prop_assert_eq!(&a, &w, "ball tree disagrees under {}", norm);
        }
    }

    // ------------------------------------------------------------------
    // Convex hull
    // ------------------------------------------------------------------

    #[test]
    fn hull_vertices_are_input_points_and_contain_everything(pts in points(40)) {
        let hull = convex_hull(&pts);
        for v in &hull {
            prop_assert!(pts.iter().any(|p| p.approx_eq(v, 0.0)));
        }
        for p in &pts {
            prop_assert!(hull_contains(&hull, p, 1e-7));
        }
    }

    #[test]
    fn hull_is_invariant_to_input_order(pts in points(25)) {
        let mut reversed = pts.clone();
        reversed.reverse();
        prop_assert_eq!(convex_hull(&pts), convex_hull(&reversed));
    }
}
