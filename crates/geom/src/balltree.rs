//! A ball tree over `Point<D>` supporting within-radius queries.
//!
//! Third spatial index next to [`crate::KdTree`] and
//! [`crate::GridIndex`]. Ball trees bound each subtree by an enclosing
//! *ball* instead of an axis-aligned box, which prunes better when the
//! data is not axis-aligned or when dimensionality grows — the regime
//! where the paper's m-D generalization (§V-C) lives.
//!
//! Construction splits on the diameter endpoints (the classic
//! "farthest-pair seeds" heuristic): pick the point farthest from the
//! node centroid, then the point farthest from it, and partition by
//! nearer-seed. Pruning uses the triangle inequality in L2 and falls
//! back to the enclosing-ball-vs-query-ball test via the norm-specific
//! center distance for L1/L∞/Lp (valid because every p-norm ball of
//! radius `s` is contained in the L2 ball of radius `s·D^{1/2}`; we
//! store per-node radii measured in the query norm directly, see
//! `radius_under`).

use crate::norm::Norm;
use crate::point::Point;

/// Node of the ball tree, stored in a flat arena.
#[derive(Debug, Clone)]
struct Node<const D: usize> {
    /// Pivot (centroid) of the subtree's points.
    center: Point<D>,
    /// Radius under L2 — distances to `center` of all member points.
    radius_l2: f64,
    /// Radius under L1 (precomputed so L1 queries prune exactly).
    radius_l1: f64,
    /// Radius under L∞.
    radius_linf: f64,
    kind: NodeKind,
}

#[derive(Debug, Clone)]
enum NodeKind {
    Leaf { start: u32, end: u32 },
    Internal { left: u32, right: u32 },
}

/// Immutable ball tree over a point set.
///
/// ```
/// use mmph_geom::{BallTree, Norm, Point};
///
/// let pts = vec![Point::new([0.0, 0.0]), Point::new([2.0, 2.0])];
/// let tree = BallTree::build(&pts);
/// assert_eq!(tree.within(&Point::new([2.0, 2.0]), 0.5, Norm::L1).len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BallTree<const D: usize> {
    nodes: Vec<Node<D>>,
    order: Vec<u32>,
    points: Vec<Point<D>>,
}

impl<const D: usize> BallTree<D> {
    /// Default leaf capacity.
    pub const DEFAULT_LEAF_SIZE: usize = 16;

    /// Builds a ball tree over `points` (copied into the tree).
    pub fn build(points: &[Point<D>]) -> Self {
        Self::build_with_leaf_size(points, Self::DEFAULT_LEAF_SIZE)
    }

    /// Builds with an explicit leaf size (>= 1).
    pub fn build_with_leaf_size(points: &[Point<D>], leaf_size: usize) -> Self {
        let leaf_size = leaf_size.max(1);
        let n = points.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::new();
        if n > 0 {
            build_node(points, &mut order, 0, n, leaf_size, &mut nodes);
        }
        BallTree {
            nodes,
            order,
            points: points.to_vec(),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Calls `f(index, distance)` for every point within `radius` of
    /// `center` under `norm` (boundary inclusive).
    pub fn for_each_within(
        &self,
        center: &Point<D>,
        radius: f64,
        norm: Norm,
        mut f: impl FnMut(usize, f64),
    ) {
        if self.nodes.is_empty() || radius < 0.0 {
            return;
        }
        self.visit(0, center, radius, norm, &mut f);
    }

    /// Collects `(index, distance)` pairs within `radius` of `center`.
    pub fn within(&self, center: &Point<D>, radius: f64, norm: Norm) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        self.for_each_within(center, radius, norm, |i, d| out.push((i, d)));
        out
    }

    /// True as soon as any point within `radius` of `center` satisfies
    /// `pred` — short-circuits on the first hit instead of walking the
    /// whole ball like [`Self::for_each_within`].
    pub fn any_within(
        &self,
        center: &Point<D>,
        radius: f64,
        norm: Norm,
        mut pred: impl FnMut(usize, f64) -> bool,
    ) -> bool {
        if self.nodes.is_empty() || radius < 0.0 {
            return false;
        }
        self.visit_any(0, center, radius, norm, &mut pred)
    }

    fn visit_any(
        &self,
        node: usize,
        center: &Point<D>,
        radius: f64,
        norm: Norm,
        pred: &mut impl FnMut(usize, f64) -> bool,
    ) -> bool {
        let n = &self.nodes[node];
        let pivot_d = norm.dist(center, &n.center);
        if pivot_d - n.radius_under(norm) > radius {
            return false;
        }
        match n.kind {
            NodeKind::Leaf { start, end } => {
                for &idx in &self.order[start as usize..end as usize] {
                    let p = &self.points[idx as usize];
                    let d = norm.dist(center, p);
                    if d <= radius && pred(idx as usize, d) {
                        return true;
                    }
                }
                false
            }
            NodeKind::Internal { left, right } => {
                self.visit_any(left as usize, center, radius, norm, pred)
                    || self.visit_any(right as usize, center, radius, norm, pred)
            }
        }
    }

    fn visit(
        &self,
        node: usize,
        center: &Point<D>,
        radius: f64,
        norm: Norm,
        f: &mut impl FnMut(usize, f64),
    ) {
        let n = &self.nodes[node];
        // Triangle inequality in the query norm: any member point p has
        // norm(center, p) >= norm(center, pivot) - node_radius(norm).
        let pivot_d = norm.dist(center, &n.center);
        if pivot_d - n.radius_under(norm) > radius {
            return;
        }
        match n.kind {
            NodeKind::Leaf { start, end } => {
                for &idx in &self.order[start as usize..end as usize] {
                    let p = &self.points[idx as usize];
                    let d = norm.dist(center, p);
                    if d <= radius {
                        f(idx as usize, d);
                    }
                }
            }
            NodeKind::Internal { left, right } => {
                self.visit(left as usize, center, radius, norm, f);
                self.visit(right as usize, center, radius, norm, f);
            }
        }
    }
}

impl<const D: usize> Node<D> {
    /// The node radius measured in the query norm. For Lp norms other
    /// than the precomputed three, the L1 radius upper-bounds every
    /// `p >= 1` radius, so pruning stays conservative (correct).
    fn radius_under(&self, norm: Norm) -> f64 {
        match norm {
            Norm::L2 => self.radius_l2,
            Norm::L1 => self.radius_l1,
            Norm::LInf => self.radius_linf,
            Norm::Lp(_) => self.radius_l1,
        }
    }
}

fn build_node<const D: usize>(
    points: &[Point<D>],
    order: &mut [u32],
    start: usize,
    end: usize,
    leaf_size: usize,
    nodes: &mut Vec<Node<D>>,
) -> usize {
    let slice = &order[start..end];
    let member_points: Vec<&Point<D>> = slice.iter().map(|&i| &points[i as usize]).collect();
    // Pivot: centroid of the members.
    let mut acc = [0.0f64; D];
    for p in &member_points {
        for d in 0..D {
            acc[d] += p[d];
        }
    }
    let inv = 1.0 / member_points.len() as f64;
    for a in acc.iter_mut() {
        *a *= inv;
    }
    let center = Point::new(acc);
    let mut radius_l2: f64 = 0.0;
    let mut radius_l1: f64 = 0.0;
    let mut radius_linf: f64 = 0.0;
    for p in &member_points {
        radius_l2 = radius_l2.max(center.dist_l2(p));
        radius_l1 = radius_l1.max(center.dist_l1(p));
        radius_linf = radius_linf.max(center.dist_linf(p));
    }
    let me = nodes.len();
    nodes.push(Node {
        center,
        radius_l2,
        radius_l1,
        radius_linf,
        kind: NodeKind::Leaf {
            start: start as u32,
            end: end as u32,
        },
    });
    if end - start <= leaf_size || radius_l2 == 0.0 {
        return me;
    }
    // Farthest-pair seeds.
    let seed_a = *slice
        .iter()
        .max_by(|&&a, &&b| {
            center
                .dist_sq(&points[a as usize])
                .total_cmp(&center.dist_sq(&points[b as usize]))
        })
        .expect("non-empty");
    let pa = points[seed_a as usize];
    let seed_b = *slice
        .iter()
        .max_by(|&&a, &&b| {
            pa.dist_sq(&points[a as usize])
                .total_cmp(&pa.dist_sq(&points[b as usize]))
        })
        .expect("non-empty");
    let pb = points[seed_b as usize];
    // Partition by nearer seed (ties and the degenerate pa == pb case
    // fall back to a balanced median split on the longest axis).
    let mid = if pa == pb {
        (start + end) / 2
    } else {
        let slice_mut = &mut order[start..end];
        let mut lo = 0usize;
        let mut hi = slice_mut.len();
        // Hoare-style partition: nearer-to-pa to the front.
        while lo < hi {
            let p = &points[slice_mut[lo] as usize];
            if p.dist_sq(&pa) <= p.dist_sq(&pb) {
                lo += 1;
            } else {
                hi -= 1;
                slice_mut.swap(lo, hi);
            }
        }
        start + lo
    };
    // Guard against degenerate splits (all points on one side).
    let mid = if mid == start || mid == end {
        (start + end) / 2
    } else {
        mid
    };
    let left = build_node(points, order, start, mid, leaf_size, nodes);
    let right = build_node(points, order, mid, end, leaf_size, nodes);
    debug_assert_eq!(left, me + 1);
    nodes[me].kind = NodeKind::Internal {
        left: left as u32,
        right: right as u32,
    };
    me
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    type P2 = Point<2>;

    fn random_points(n: usize, seed: u64) -> Vec<P2> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
            .collect()
    }

    fn hits(t: &BallTree<2>, c: &P2, r: f64, norm: Norm) -> Vec<usize> {
        let mut v: Vec<usize> = t.within(c, r, norm).into_iter().map(|(i, _)| i).collect();
        v.sort_unstable();
        v
    }

    fn linear(points: &[P2], c: &P2, r: f64, norm: Norm) -> Vec<usize> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| norm.dist(c, p) <= r)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn empty_and_single() {
        let t = BallTree::<2>::build(&[]);
        assert!(t.is_empty());
        assert!(t.within(&Point::new([0.0, 0.0]), 5.0, Norm::L2).is_empty());
        let t = BallTree::build(&[Point::new([1.0, 1.0])]);
        assert_eq!(t.len(), 1);
        assert_eq!(hits(&t, &Point::new([1.0, 1.0]), 0.0, Norm::L2), vec![0]);
    }

    #[test]
    fn matches_linear_scan_all_norms() {
        let pts = random_points(300, 61);
        let t = BallTree::build(&pts);
        let mut rng = StdRng::seed_from_u64(62);
        for norm in [Norm::L1, Norm::L2, Norm::LInf, Norm::Lp(3.0)] {
            for _ in 0..30 {
                let c = Point::new([rng.gen_range(-1.0..5.0), rng.gen_range(-1.0..5.0)]);
                let r = rng.gen_range(0.0..3.0);
                assert_eq!(
                    hits(&t, &c, r, norm),
                    linear(&pts, &c, r, norm),
                    "norm {norm} c {c} r {r}"
                );
            }
        }
    }

    #[test]
    fn duplicate_points() {
        let pts = vec![Point::new([2.0, 2.0]); 50];
        let t = BallTree::build(&pts);
        assert_eq!(hits(&t, &Point::new([2.0, 2.0]), 0.0, Norm::L2).len(), 50);
        assert!(hits(&t, &Point::new([3.0, 2.0]), 0.5, Norm::L2).is_empty());
    }

    #[test]
    fn leaf_size_one() {
        let pts = random_points(64, 63);
        let t = BallTree::build_with_leaf_size(&pts, 1);
        let c = Point::new([2.0, 2.0]);
        assert_eq!(hits(&t, &c, 1.5, Norm::L2), linear(&pts, &c, 1.5, Norm::L2));
    }

    #[test]
    fn three_dimensional() {
        let mut rng = StdRng::seed_from_u64(64);
        let pts: Vec<Point<3>> = (0..200)
            .map(|_| {
                Point::new([
                    rng.gen_range(0.0..4.0),
                    rng.gen_range(0.0..4.0),
                    rng.gen_range(0.0..4.0),
                ])
            })
            .collect();
        let t = BallTree::build(&pts);
        for _ in 0..20 {
            let c = Point::new([
                rng.gen_range(0.0..4.0),
                rng.gen_range(0.0..4.0),
                rng.gen_range(0.0..4.0),
            ]);
            let r = rng.gen_range(0.1..2.0);
            let mut got: Vec<usize> = t
                .within(&c, r, Norm::L1)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            got.sort_unstable();
            let want: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| Norm::L1.dist(&c, p) <= r)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn agrees_with_kdtree() {
        let pts = random_points(150, 65);
        let ball = BallTree::build(&pts);
        let kd = crate::KdTree::build(&pts);
        let c = Point::new([1.5, 2.5]);
        for r in [0.3, 1.0, 2.5] {
            let mut a = hits(&ball, &c, r, Norm::L2);
            let mut b: Vec<usize> = kd
                .within(&c, r, Norm::L2)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "r = {r}");
        }
    }

    #[test]
    fn collinear_points() {
        let pts: Vec<P2> = (0..40).map(|i| Point::new([i as f64 * 0.1, 0.0])).collect();
        let t = BallTree::build(&pts);
        let c = Point::new([2.0, 0.0]);
        assert_eq!(
            hits(&t, &c, 0.55, Norm::L2),
            linear(&pts, &c, 0.55, Norm::L2)
        );
    }

    #[test]
    fn any_within_agrees_with_full_walk() {
        let pts = random_points(200, 51);
        let t = BallTree::build(&pts);
        let mut rng = StdRng::seed_from_u64(52);
        for norm in [Norm::L1, Norm::L2, Norm::LInf] {
            for _ in 0..30 {
                let c = Point::new([rng.gen_range(-1.0..5.0), rng.gen_range(-1.0..5.0)]);
                let r = rng.gen_range(0.0..2.0);
                let mut seen = 0usize;
                let any = t.any_within(&c, r, norm, |_, _| true);
                t.for_each_within(&c, r, norm, |_, _| seen += 1);
                assert_eq!(any, seen > 0, "norm {norm} r {r}");
            }
        }
    }

    #[test]
    fn any_within_short_circuits_after_first_accept() {
        let pts = random_points(300, 53);
        let t = BallTree::build(&pts);
        let c = Point::new([2.0, 2.0]);
        let mut calls = 0usize;
        assert!(t.any_within(&c, 3.0, Norm::L2, |_, _| {
            calls += 1;
            true
        }));
        assert_eq!(calls, 1, "predicate must stop the walk on first accept");
        let mut rejected = 0usize;
        assert!(!t.any_within(&c, 3.0, Norm::L2, |_, _| {
            rejected += 1;
            false
        }));
        assert_eq!(rejected, t.within(&c, 3.0, Norm::L2).len());
    }
}
