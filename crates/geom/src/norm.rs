//! The general p-norm family of the paper (§III-B).
//!
//! The interest distance between a broadcast content vector and a user's
//! interest vector is measured by a p-norm. The paper focuses on the
//! 1-norm (taxicab) and 2-norm (Euclidean); we additionally provide the
//! ∞-norm limit and arbitrary finite `p >= 1`, so the library covers the
//! paper's "general p-norm" formulation rather than only the two special
//! cases it evaluates.

use serde::{Deserialize, Serialize};

use crate::point::Point;
use crate::{GeomError, Result};

/// A p-norm used as the interest-distance measure.
///
/// ```
/// use mmph_geom::{Norm, Point};
///
/// let a = Point::new([0.0, 0.0]);
/// let b = Point::new([1.0, 1.0]);
/// assert_eq!(Norm::L1.dist(&a, &b), 2.0);
/// assert_eq!(Norm::LInf.dist(&a, &b), 1.0);
/// assert!(Norm::lp(0.5).is_err()); // not a norm
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Norm {
    /// 1-norm (taxicab / Manhattan): `||x||_1 = Σ |x_i|`.
    L1,
    /// 2-norm (Euclidean): `||x||_2 = sqrt(Σ x_i²)`.
    L2,
    /// ∞-norm (Chebyshev): `||x||_∞ = max |x_i|`. The `p → ∞` limit.
    LInf,
    /// General finite p-norm with `p >= 1`.
    Lp(f64),
}

impl Norm {
    /// Validated constructor for [`Norm::Lp`]; `p < 1` does not satisfy the
    /// triangle inequality and is rejected. `p = 1`, `p = 2` and
    /// `p = +inf` are canonicalized to the dedicated variants so that the
    /// fast paths are taken.
    pub fn lp(p: f64) -> Result<Self> {
        if p.is_nan() || p < 1.0 {
            return Err(GeomError::InvalidExponent(p));
        }
        if p == 1.0 {
            Ok(Norm::L1)
        } else if p == 2.0 {
            Ok(Norm::L2)
        } else if p.is_infinite() {
            Ok(Norm::LInf)
        } else {
            Ok(Norm::Lp(p))
        }
    }

    /// The exponent `p` of this norm (`f64::INFINITY` for [`Norm::LInf`]).
    pub fn exponent(&self) -> f64 {
        match self {
            Norm::L1 => 1.0,
            Norm::L2 => 2.0,
            Norm::LInf => f64::INFINITY,
            Norm::Lp(p) => *p,
        }
    }

    /// Distance between two points under this norm.
    #[inline]
    pub fn dist<const D: usize>(&self, a: &Point<D>, b: &Point<D>) -> f64 {
        match self {
            Norm::L1 => a.dist_l1(b),
            Norm::L2 => a.dist_l2(b),
            Norm::LInf => a.dist_linf(b),
            Norm::Lp(p) => {
                let mut acc = 0.0;
                for i in 0..D {
                    acc += (a[i] - b[i]).abs().powf(*p);
                }
                acc.powf(1.0 / *p)
            }
        }
    }

    /// Length of the vector `x` under this norm.
    #[inline]
    pub fn length<const D: usize>(&self, x: &Point<D>) -> f64 {
        self.dist(x, &Point::ORIGIN)
    }

    /// Returns `true` iff `a` and `b` are within distance `radius` of each
    /// other. For L2 this avoids the square root.
    #[inline]
    pub fn within<const D: usize>(&self, a: &Point<D>, b: &Point<D>, radius: f64) -> bool {
        match self {
            Norm::L2 => a.dist_sq(b) <= radius * radius,
            _ => self.dist(a, b) <= radius,
        }
    }

    /// Volume of the unit ball of this norm in `R^d` (Lebesgue measure).
    ///
    /// Used by workload generators to reason about expected coverage:
    /// a radius-`r` ball covers `vol(d) * r^d` of the space.
    ///
    /// * L1: `2^d / d!`
    /// * L2: `π^{d/2} / Γ(d/2 + 1)`
    /// * L∞: `2^d`
    /// * Lp: `(2 Γ(1/p + 1))^d / Γ(d/p + 1)` (Dirichlet's formula)
    pub fn unit_ball_volume(&self, d: usize) -> f64 {
        let df = d as f64;
        match self {
            Norm::L1 => 2f64.powi(d as i32) / factorial(d),
            Norm::L2 => std::f64::consts::PI.powf(df / 2.0) / gamma(df / 2.0 + 1.0),
            Norm::LInf => 2f64.powi(d as i32),
            Norm::Lp(p) => (2.0 * gamma(1.0 / p + 1.0)).powf(df) / gamma(df / p + 1.0),
        }
    }

    /// Human-readable short name ("L1", "L2", "Linf", "L2.5").
    pub fn name(&self) -> String {
        match self {
            Norm::L1 => "L1".to_owned(),
            Norm::L2 => "L2".to_owned(),
            Norm::LInf => "Linf".to_owned(),
            Norm::Lp(p) => format!("L{p}"),
        }
    }
}

impl Default for Norm {
    /// Euclidean distance, the paper's primary illustration (§V: "2-D and
    /// 2-norm").
    fn default() -> Self {
        Norm::L2
    }
}

impl std::fmt::Display for Norm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

fn factorial(n: usize) -> f64 {
    (1..=n).fold(1.0, |acc, i| acc * i as f64)
}

/// Lanczos approximation of the Gamma function, accurate to ~1e-13 for the
/// positive arguments we use (half-integers and small reals).
fn gamma(x: f64) -> f64 {
    // g = 7, n = 9 Lanczos coefficients.
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point2;

    fn p2(x: f64, y: f64) -> Point2 {
        Point::new([x, y])
    }

    #[test]
    fn lp_constructor_canonicalizes() {
        assert_eq!(Norm::lp(1.0).unwrap(), Norm::L1);
        assert_eq!(Norm::lp(2.0).unwrap(), Norm::L2);
        assert_eq!(Norm::lp(f64::INFINITY).unwrap(), Norm::LInf);
        assert_eq!(Norm::lp(3.0).unwrap(), Norm::Lp(3.0));
    }

    #[test]
    fn lp_constructor_rejects_invalid() {
        assert!(Norm::lp(0.5).is_err());
        assert!(Norm::lp(0.0).is_err());
        assert!(Norm::lp(-1.0).is_err());
        assert!(Norm::lp(f64::NAN).is_err());
    }

    #[test]
    fn distances_of_345_triangle() {
        let a = p2(0.0, 0.0);
        let b = p2(3.0, 4.0);
        assert_eq!(Norm::L2.dist(&a, &b), 5.0);
        assert_eq!(Norm::L1.dist(&a, &b), 7.0);
        assert_eq!(Norm::LInf.dist(&a, &b), 4.0);
    }

    #[test]
    fn lp_interpolates_between_l1_and_linf() {
        let a = p2(0.0, 0.0);
        let b = p2(1.0, 1.0);
        let d1 = Norm::L1.dist(&a, &b); // 2.0
        let d2 = Norm::L2.dist(&a, &b); // sqrt(2)
        let d15 = Norm::Lp(1.5).dist(&a, &b);
        let dinf = Norm::LInf.dist(&a, &b); // 1.0
        assert!(d1 > d15 && d15 > d2 && d2 > dinf);
    }

    #[test]
    fn lp_matches_l2_at_p2_numerically() {
        // Norm::Lp(2.0) shouldn't arise via the constructor, but if built
        // directly it must agree with the fast path.
        let a = p2(1.2, -0.7);
        let b = p2(-3.4, 2.5);
        let slow = Norm::Lp(2.0).dist(&a, &b);
        let fast = Norm::L2.dist(&a, &b);
        assert!((slow - fast).abs() < 1e-12);
    }

    #[test]
    fn within_agrees_with_dist() {
        let a = p2(0.0, 0.0);
        let b = p2(3.0, 4.0);
        for norm in [Norm::L1, Norm::L2, Norm::LInf, Norm::Lp(3.0)] {
            let d = norm.dist(&a, &b);
            assert!(norm.within(&a, &b, d + 1e-9));
            assert!(!norm.within(&a, &b, d - 1e-9));
        }
    }

    #[test]
    fn within_boundary_is_inclusive() {
        // ψ uses d <= r, so the boundary must count as covered.
        let a = p2(0.0, 0.0);
        let b = p2(1.0, 0.0);
        assert!(Norm::L2.within(&a, &b, 1.0));
        assert!(Norm::L1.within(&a, &b, 1.0));
    }

    #[test]
    fn unit_ball_volumes_in_2d() {
        // L1 diamond: 2. L2 disk: π. L∞ square: 4.
        assert!((Norm::L1.unit_ball_volume(2) - 2.0).abs() < 1e-10);
        assert!((Norm::L2.unit_ball_volume(2) - std::f64::consts::PI).abs() < 1e-10);
        assert!((Norm::LInf.unit_ball_volume(2) - 4.0).abs() < 1e-10);
    }

    #[test]
    fn unit_ball_volumes_in_3d() {
        // L1 octahedron: 8/6 = 4/3. L2 ball: 4π/3. L∞ cube: 8.
        assert!((Norm::L1.unit_ball_volume(3) - 4.0 / 3.0).abs() < 1e-10);
        assert!((Norm::L2.unit_ball_volume(3) - 4.0 * std::f64::consts::PI / 3.0).abs() < 1e-9);
        assert!((Norm::LInf.unit_ball_volume(3) - 8.0).abs() < 1e-10);
    }

    #[test]
    fn lp_volume_formula_consistent_with_special_cases() {
        for d in 1..=4 {
            let via_lp = Norm::Lp(1.0 + 1e-12).unit_ball_volume(d);
            let exact = Norm::L1.unit_ball_volume(d);
            assert!(
                (via_lp - exact).abs() / exact < 1e-6,
                "d={d}: {via_lp} vs {exact}"
            );
        }
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-12);
        assert!((gamma(5.0) - 24.0).abs() < 1e-9);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn names() {
        assert_eq!(Norm::L1.name(), "L1");
        assert_eq!(Norm::L2.to_string(), "L2");
        assert_eq!(Norm::LInf.name(), "Linf");
        assert_eq!(Norm::Lp(2.5).name(), "L2.5");
    }

    #[test]
    fn serde_roundtrip() {
        for norm in [Norm::L1, Norm::L2, Norm::LInf, Norm::Lp(3.5)] {
            let json = serde_json::to_string(&norm).unwrap();
            let back: Norm = serde_json::from_str(&json).unwrap();
            assert_eq!(norm, back);
        }
    }

    #[test]
    fn default_is_l2() {
        assert_eq!(Norm::default(), Norm::L2);
    }
}
