//! Fixed-dimension points in `R^D`.
//!
//! `Point<D>` wraps a `[f64; D]`, so a slice of points is a dense,
//! cache-friendly array — the hot loops of the solvers (distance scans over
//! all `n` points, every round, for every candidate) iterate over
//! contiguous memory with no indirection.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use crate::{GeomError, Result};

/// A point (or vector) in `R^D`.
///
/// ```
/// use mmph_geom::Point;
///
/// let a = Point::new([0.0, 0.0]);
/// let b = Point::new([3.0, 4.0]);
/// assert_eq!(a.dist_l2(&b), 5.0);
/// assert_eq!(a.dist_l1(&b), 7.0);
/// assert_eq!(a.midpoint(&b), Point::new([1.5, 2.0]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point<const D: usize>(pub [f64; D]);

/// A point in the plane, the paper's primary illustration space.
pub type Point2 = Point<2>;
/// A point in 3-space, used by the paper's Figs. 8–9.
pub type Point3 = Point<3>;

impl<const D: usize> Point<D> {
    /// The origin.
    pub const ORIGIN: Self = Point([0.0; D]);

    /// Creates a point from its coordinate array.
    #[inline]
    pub const fn new(coords: [f64; D]) -> Self {
        Point(coords)
    }

    /// Creates a point with every coordinate equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Point([v; D])
    }

    /// Creates a point from a slice, checking length and finiteness.
    pub fn try_from_slice(coords: &[f64]) -> Result<Self> {
        if coords.len() != D {
            return Err(GeomError::DimensionMismatch {
                expected: D,
                got: coords.len(),
            });
        }
        let mut arr = [0.0; D];
        for (i, &c) in coords.iter().enumerate() {
            if !c.is_finite() {
                return Err(GeomError::NonFinite { index: i, value: c });
            }
            arr[i] = c;
        }
        Ok(Point(arr))
    }

    /// The dimensionality `D`.
    #[inline]
    pub const fn dim(&self) -> usize {
        D
    }

    /// Coordinate array by value.
    #[inline]
    pub const fn coords(&self) -> [f64; D] {
        self.0
    }

    /// Coordinates as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// True if every coordinate is finite (no NaN / ±inf).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|c| c.is_finite())
    }

    /// Squared Euclidean distance to `other`. This is the innermost kernel
    /// of every solver; it is branch-free and auto-vectorizes for small `D`.
    #[inline]
    pub fn dist_sq(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = self.0[i] - other.0[i];
            acc += d * d;
        }
        acc
    }

    /// Euclidean (2-norm) distance to `other`.
    #[inline]
    pub fn dist_l2(&self, other: &Self) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Taxicab (1-norm) distance to `other`.
    #[inline]
    pub fn dist_l1(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            acc += (self.0[i] - other.0[i]).abs();
        }
        acc
    }

    /// Chebyshev (∞-norm) distance to `other`.
    #[inline]
    pub fn dist_linf(&self, other: &Self) -> f64 {
        let mut acc: f64 = 0.0;
        for i in 0..D {
            acc = acc.max((self.0[i] - other.0[i]).abs());
        }
        acc
    }

    /// Euclidean length of this vector.
    #[inline]
    pub fn length(&self) -> f64 {
        self.dist_sq(&Self::ORIGIN).sqrt()
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            acc += self.0[i] * other.0[i];
        }
        acc
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(&self, other: &Self, t: f64) -> Self {
        let mut out = [0.0; D];
        for i in 0..D {
            out[i] = self.0[i] + t * (other.0[i] - self.0[i]);
        }
        Point(out)
    }

    /// Midpoint of `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Self) -> Self {
        self.lerp(other, 0.5)
    }

    /// Arithmetic mean of a non-empty point set.
    pub fn centroid(points: &[Self]) -> Result<Self> {
        if points.is_empty() {
            return Err(GeomError::EmptyPointSet);
        }
        let mut acc = [0.0; D];
        for p in points {
            for i in 0..D {
                acc[i] += p.0[i];
            }
        }
        let inv = 1.0 / points.len() as f64;
        for c in acc.iter_mut() {
            *c *= inv;
        }
        Ok(Point(acc))
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min_components(&self, other: &Self) -> Self {
        let mut out = [0.0; D];
        for i in 0..D {
            out[i] = self.0[i].min(other.0[i]);
        }
        Point(out)
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max_components(&self, other: &Self) -> Self {
        let mut out = [0.0; D];
        for i in 0..D {
            out[i] = self.0[i].max(other.0[i]);
        }
        Point(out)
    }

    /// Maps each coordinate through `f`.
    #[inline]
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Self {
        let mut out = [0.0; D];
        for i in 0..D {
            out[i] = f(self.0[i]);
        }
        Point(out)
    }

    /// Approximate equality with absolute tolerance `eps` in every
    /// coordinate. Useful in tests and iterative refinement stop rules.
    #[inline]
    pub fn approx_eq(&self, other: &Self, eps: f64) -> bool {
        self.0
            .iter()
            .zip(other.0.iter())
            .all(|(a, b)| (a - b).abs() <= eps)
    }
}

impl Point2 {
    /// x coordinate.
    #[inline]
    pub const fn x(&self) -> f64 {
        self.0[0]
    }
    /// y coordinate.
    #[inline]
    pub const fn y(&self) -> f64 {
        self.0[1]
    }
    /// 2-D cross product (z component of the 3-D cross product of the
    /// vectors `self` and `other`). Positive iff `other` is counter-
    /// clockwise from `self`.
    #[inline]
    pub fn cross(&self, other: &Self) -> f64 {
        self.0[0] * other.0[1] - self.0[1] * other.0[0]
    }
    /// Rotates the point by 45° and scales by `1/sqrt(2)`, mapping the L1
    /// ball onto the L∞ ball: `(x, y) -> ((x+y)/2, (y-x)/2)` up to scale.
    /// See [`crate::l1ball`].
    #[inline]
    pub fn rotate_l1_to_linf(&self) -> Self {
        Point([self.0[0] + self.0[1], self.0[1] - self.0[0]])
    }
    /// Inverse of [`Self::rotate_l1_to_linf`].
    #[inline]
    pub fn rotate_linf_to_l1(&self) -> Self {
        Point([(self.0[0] - self.0[1]) * 0.5, (self.0[0] + self.0[1]) * 0.5])
    }
}

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Self::ORIGIN
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl<const D: usize> IndexMut<usize> for Point<D> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    #[inline]
    fn from(coords: [f64; D]) -> Self {
        Point(coords)
    }
}

impl<const D: usize> Add for Point<D> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        let mut out = self.0;
        for i in 0..D {
            out[i] += rhs.0[i];
        }
        Point(out)
    }
}

impl<const D: usize> AddAssign for Point<D> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        for i in 0..D {
            self.0[i] += rhs.0[i];
        }
    }
}

impl<const D: usize> Sub for Point<D> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let mut out = self.0;
        for i in 0..D {
            out[i] -= rhs.0[i];
        }
        Point(out)
    }
}

impl<const D: usize> SubAssign for Point<D> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        for i in 0..D {
            self.0[i] -= rhs.0[i];
        }
    }
}

impl<const D: usize> Mul<f64> for Point<D> {
    type Output = Self;
    #[inline]
    fn mul(self, s: f64) -> Self {
        self.map(|c| c * s)
    }
}

impl<const D: usize> Div<f64> for Point<D> {
    type Output = Self;
    #[inline]
    fn div(self, s: f64) -> Self {
        self.map(|c| c / s)
    }
}

impl<const D: usize> Neg for Point<D> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        self.map(|c| -c)
    }
}

impl<const D: usize> fmt::Display for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

// Manual serde impls: serialize as a plain coordinate sequence, and
// validate length + finiteness on deserialize (the derive for const
// generic arrays would accept NaN).
impl<const D: usize> serde::Serialize for Point<D> {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        use serde::ser::SerializeSeq;
        let mut seq = serializer.serialize_seq(Some(D))?;
        for c in &self.0 {
            seq.serialize_element(c)?;
        }
        seq.end()
    }
}

impl<'de, const D: usize> serde::Deserialize<'de> for Point<D> {
    fn deserialize<De: serde::Deserializer<'de>>(
        deserializer: De,
    ) -> std::result::Result<Self, De::Error> {
        let v = Vec::<f64>::deserialize(deserializer)?;
        Point::try_from_slice(&v).map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p2(x: f64, y: f64) -> Point2 {
        Point::new([x, y])
    }

    #[test]
    fn construction_and_accessors() {
        let p = p2(1.0, 2.0);
        assert_eq!(p.x(), 1.0);
        assert_eq!(p.y(), 2.0);
        assert_eq!(p.dim(), 2);
        assert_eq!(p.as_slice(), &[1.0, 2.0]);
        assert_eq!(p.coords(), [1.0, 2.0]);
    }

    #[test]
    fn try_from_slice_validates_length() {
        let err = Point::<2>::try_from_slice(&[1.0, 2.0, 3.0]).unwrap_err();
        assert_eq!(
            err,
            GeomError::DimensionMismatch {
                expected: 2,
                got: 3
            }
        );
    }

    #[test]
    fn try_from_slice_rejects_nan() {
        let err = Point::<2>::try_from_slice(&[1.0, f64::NAN]).unwrap_err();
        assert!(matches!(err, GeomError::NonFinite { index: 1, .. }));
    }

    #[test]
    fn try_from_slice_rejects_infinity() {
        let err = Point::<3>::try_from_slice(&[1.0, f64::INFINITY, 0.0]).unwrap_err();
        assert!(matches!(err, GeomError::NonFinite { index: 1, .. }));
    }

    #[test]
    fn distances_match_hand_computed_values() {
        let a = p2(0.0, 0.0);
        let b = p2(3.0, 4.0);
        assert_eq!(a.dist_l2(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!(a.dist_l1(&b), 7.0);
        assert_eq!(a.dist_linf(&b), 4.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = p2(-1.5, 2.0);
        let b = p2(4.0, -0.25);
        assert_eq!(a.dist_l2(&b), b.dist_l2(&a));
        assert_eq!(a.dist_l1(&b), b.dist_l1(&a));
        assert_eq!(a.dist_linf(&b), b.dist_linf(&a));
    }

    #[test]
    fn three_dimensional_distances() {
        let a = Point::new([1.0, 2.0, 3.0]);
        let b = Point::new([4.0, 6.0, 3.0]);
        assert_eq!(a.dist_l2(&b), 5.0);
        assert_eq!(a.dist_l1(&b), 7.0);
        assert_eq!(a.dist_linf(&b), 4.0);
    }

    #[test]
    fn arithmetic_operators() {
        let a = p2(1.0, 2.0);
        let b = p2(3.0, -1.0);
        assert_eq!(a + b, p2(4.0, 1.0));
        assert_eq!(a - b, p2(-2.0, 3.0));
        assert_eq!(a * 2.0, p2(2.0, 4.0));
        assert_eq!(a / 2.0, p2(0.5, 1.0));
        assert_eq!(-a, p2(-1.0, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, p2(4.0, 1.0));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn lerp_and_midpoint() {
        let a = p2(0.0, 0.0);
        let b = p2(2.0, 4.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.midpoint(&b), p2(1.0, 2.0));
    }

    #[test]
    fn centroid_of_square() {
        let pts = [p2(0.0, 0.0), p2(2.0, 0.0), p2(2.0, 2.0), p2(0.0, 2.0)];
        assert_eq!(Point::centroid(&pts).unwrap(), p2(1.0, 1.0));
    }

    #[test]
    fn centroid_of_empty_set_errors() {
        assert_eq!(
            Point::<2>::centroid(&[]).unwrap_err(),
            GeomError::EmptyPointSet
        );
    }

    #[test]
    fn dot_and_cross() {
        let a = p2(1.0, 0.0);
        let b = p2(0.0, 1.0);
        assert_eq!(a.dot(&b), 0.0);
        assert_eq!(a.cross(&b), 1.0);
        assert_eq!(b.cross(&a), -1.0);
    }

    #[test]
    fn l1_linf_rotation_roundtrip() {
        let p = p2(0.3, -1.7);
        let back = p.rotate_l1_to_linf().rotate_linf_to_l1();
        assert!(p.approx_eq(&back, 1e-12));
    }

    #[test]
    fn rotation_maps_l1_distance_to_linf_distance() {
        let a = p2(0.25, 1.5);
        let b = p2(-2.0, 0.5);
        let l1 = a.dist_l1(&b);
        let linf = a.rotate_l1_to_linf().dist_linf(&b.rotate_l1_to_linf());
        assert!((l1 - linf).abs() < 1e-12);
    }

    #[test]
    fn min_max_components() {
        let a = p2(1.0, 5.0);
        let b = p2(3.0, 2.0);
        assert_eq!(a.min_components(&b), p2(1.0, 2.0));
        assert_eq!(a.max_components(&b), p2(3.0, 5.0));
    }

    #[test]
    fn serde_roundtrip() {
        let p = Point::new([1.5, -2.25, 0.0]);
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(json, "[1.5,-2.25,0.0]");
        let back: Point<3> = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn serde_rejects_wrong_length() {
        let r: std::result::Result<Point<2>, _> = serde_json::from_str("[1.0,2.0,3.0]");
        assert!(r.is_err());
    }

    #[test]
    fn display_formats_coordinates() {
        assert_eq!(p2(1.0, -2.5).to_string(), "(1, -2.5)");
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = p2(1.0, 1.0);
        let b = p2(1.0 + 1e-10, 1.0 - 1e-10);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-11));
    }
}
