//! A kd-tree over `Point<D>` supporting within-radius queries under any
//! [`Norm`].
//!
//! The reward evaluators in `mmph-core` repeatedly ask "which points lie
//! within interest radius `r` of candidate center `c`?" — an `O(n)` scan
//! per candidate, `O(n²)` per greedy round. For the paper's instance
//! sizes (n ≤ 160) scans are fine, but the library targets much larger
//! deployments, so we provide a kd-tree index (and benchmark the
//! crossover in `ablation_spatial_index`).
//!
//! The tree is built once over an immutable point slice (median split by
//! the widest dimension) and stores indices into the original slice, so
//! query results can be joined back to weights/residuals without any
//! extra mapping.

use crate::aabb::Aabb;
use crate::norm::Norm;
use crate::point::Point;

/// Node of the kd-tree, stored in a flat arena.
#[derive(Debug, Clone)]
struct Node<const D: usize> {
    /// Bounding box of all points in this subtree.
    bbox: Aabb<D>,
    /// Payload: either a leaf range into `order`, or an internal split.
    kind: NodeKind,
}

#[derive(Debug, Clone)]
enum NodeKind {
    /// Leaf: `order[start..end]` are the member point indices.
    Leaf { start: u32, end: u32 },
    /// Internal: the left child is always the next arena slot; the right
    /// child comes after the entire left subtree, so it is stored.
    Internal { left: u32, right: u32 },
}

/// Immutable kd-tree over a point set.
///
/// ```
/// use mmph_geom::{KdTree, Norm, Point};
///
/// let pts = vec![
///     Point::new([0.0, 0.0]),
///     Point::new([1.0, 0.0]),
///     Point::new([3.0, 3.0]),
/// ];
/// let tree = KdTree::build(&pts);
/// let hits = tree.within(&Point::new([0.0, 0.0]), 1.5, Norm::L2);
/// assert_eq!(hits.len(), 2); // the origin and (1, 0)
/// ```
#[derive(Debug, Clone)]
pub struct KdTree<const D: usize> {
    nodes: Vec<Node<D>>,
    /// Permutation of `0..n`: leaf ranges index into this.
    order: Vec<u32>,
    points: Vec<Point<D>>,
    leaf_size: usize,
}

impl<const D: usize> KdTree<D> {
    /// Default number of points per leaf. Small enough that leaf scans
    /// stay cheap, large enough to amortize traversal overhead.
    pub const DEFAULT_LEAF_SIZE: usize = 16;

    /// Builds a kd-tree over `points` (copied into the tree).
    pub fn build(points: &[Point<D>]) -> Self {
        Self::build_with_leaf_size(points, Self::DEFAULT_LEAF_SIZE)
    }

    /// Builds with an explicit leaf size (must be >= 1).
    pub fn build_with_leaf_size(points: &[Point<D>], leaf_size: usize) -> Self {
        let leaf_size = leaf_size.max(1);
        let n = points.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::with_capacity(if n == 0 { 0 } else { 2 * n / leaf_size + 2 });
        if n > 0 {
            build_node(points, &mut order, 0, n, leaf_size, &mut nodes);
        }
        KdTree {
            nodes,
            order,
            points: points.to_vec(),
            leaf_size,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the tree contains no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The leaf size the tree was built with.
    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }

    /// The indexed points, in original order.
    pub fn points(&self) -> &[Point<D>] {
        &self.points
    }

    /// Calls `f(index, distance)` for every point within `radius` of
    /// `center` under `norm` (boundary inclusive, matching the reward
    /// function's `d <= r`).
    pub fn for_each_within(
        &self,
        center: &Point<D>,
        radius: f64,
        norm: Norm,
        mut f: impl FnMut(usize, f64),
    ) {
        if self.nodes.is_empty() || radius < 0.0 {
            return;
        }
        self.visit(0, center, radius, norm, &mut f);
    }

    /// Collects `(index, distance)` pairs within `radius` of `center`.
    pub fn within(&self, center: &Point<D>, radius: f64, norm: Norm) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        self.for_each_within(center, radius, norm, |i, d| out.push((i, d)));
        out
    }

    /// True as soon as any point within `radius` of `center` satisfies
    /// `pred` — the traversal short-circuits on the first hit, unlike
    /// [`Self::for_each_within`], which always walks the whole ball.
    pub fn any_within(
        &self,
        center: &Point<D>,
        radius: f64,
        norm: Norm,
        mut pred: impl FnMut(usize, f64) -> bool,
    ) -> bool {
        if self.nodes.is_empty() || radius < 0.0 {
            return false;
        }
        self.visit_any(0, center, radius, norm, &mut pred)
    }

    fn visit_any(
        &self,
        node: usize,
        center: &Point<D>,
        radius: f64,
        norm: Norm,
        pred: &mut impl FnMut(usize, f64) -> bool,
    ) -> bool {
        let n = &self.nodes[node];
        if n.bbox.dist_to(center, norm) > radius {
            return false;
        }
        match n.kind {
            NodeKind::Leaf { start, end } => {
                for &idx in &self.order[start as usize..end as usize] {
                    let p = &self.points[idx as usize];
                    let d = norm.dist(center, p);
                    if d <= radius && pred(idx as usize, d) {
                        return true;
                    }
                }
                false
            }
            NodeKind::Internal { left, right } => {
                self.visit_any(left as usize, center, radius, norm, pred)
                    || self.visit_any(right as usize, center, radius, norm, pred)
            }
        }
    }

    fn visit(
        &self,
        node: usize,
        center: &Point<D>,
        radius: f64,
        norm: Norm,
        f: &mut impl FnMut(usize, f64),
    ) {
        let n = &self.nodes[node];
        if n.bbox.dist_to(center, norm) > radius {
            return;
        }
        match n.kind {
            NodeKind::Leaf { start, end } => {
                for &idx in &self.order[start as usize..end as usize] {
                    let p = &self.points[idx as usize];
                    let d = norm.dist(center, p);
                    if d <= radius {
                        f(idx as usize, d);
                    }
                }
            }
            NodeKind::Internal { left, right } => {
                self.visit(left as usize, center, radius, norm, f);
                self.visit(right as usize, center, radius, norm, f);
            }
        }
    }
}

/// Recursively builds the subtree over `order[start..end]`; returns the
/// arena index of the created node.
fn build_node<const D: usize>(
    points: &[Point<D>],
    order: &mut [u32],
    start: usize,
    end: usize,
    leaf_size: usize,
    nodes: &mut Vec<Node<D>>,
) -> usize {
    let slice = &order[start..end];
    let mut bbox = Aabb::point(points[slice[0] as usize]);
    for &i in &slice[1..] {
        bbox.expand(&points[i as usize]);
    }
    let me = nodes.len();
    nodes.push(Node {
        bbox,
        kind: NodeKind::Leaf {
            start: start as u32,
            end: end as u32,
        },
    });
    if end - start <= leaf_size {
        return me;
    }
    // Split on the widest dimension at the median.
    let mut axis = 0;
    for d in 1..D {
        if bbox.extent(d) > bbox.extent(axis) {
            axis = d;
        }
    }
    if bbox.extent(axis) == 0.0 {
        // All points identical: keep as leaf to avoid infinite recursion.
        return me;
    }
    let mid = (start + end) / 2;
    order[start..end].select_nth_unstable_by(mid - start, |&a, &b| {
        points[a as usize][axis].total_cmp(&points[b as usize][axis])
    });
    let left = build_node(points, order, start, mid, leaf_size, nodes);
    let right = build_node(points, order, mid, end, leaf_size, nodes);
    debug_assert_eq!(left, me + 1);
    nodes[me].kind = NodeKind::Internal {
        left: left as u32,
        right: right as u32,
    };
    me
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    type P2 = Point<2>;

    fn random_points(n: usize, seed: u64) -> Vec<P2> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
            .collect()
    }

    fn linear_within(points: &[P2], c: &P2, r: f64, norm: Norm) -> Vec<(usize, f64)> {
        points
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                let d = norm.dist(c, p);
                (d <= r).then_some((i, d))
            })
            .collect()
    }

    fn sorted(mut v: Vec<(usize, f64)>) -> Vec<(usize, f64)> {
        v.sort_by_key(|&(i, _)| i);
        v
    }

    #[test]
    fn empty_tree() {
        let t = KdTree::<2>::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.within(&Point::new([0.0, 0.0]), 10.0, Norm::L2).is_empty());
    }

    #[test]
    fn single_point() {
        let t = KdTree::build(&[Point::new([1.0, 1.0])]);
        assert_eq!(t.len(), 1);
        let hits = t.within(&Point::new([0.0, 0.0]), 2.0, Norm::L2);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 0);
        assert!((hits[0].1 - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn matches_linear_scan_l2() {
        let pts = random_points(300, 5);
        let t = KdTree::build(&pts);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..50 {
            let c = Point::new([rng.gen_range(-1.0..5.0), rng.gen_range(-1.0..5.0)]);
            let r = rng.gen_range(0.0..3.0);
            assert_eq!(
                sorted(t.within(&c, r, Norm::L2)),
                sorted(linear_within(&pts, &c, r, Norm::L2))
            );
        }
    }

    #[test]
    fn matches_linear_scan_l1_and_linf() {
        let pts = random_points(200, 7);
        let t = KdTree::build(&pts);
        let mut rng = StdRng::seed_from_u64(8);
        for norm in [Norm::L1, Norm::LInf, Norm::Lp(3.0)] {
            for _ in 0..25 {
                let c = Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]);
                let r = rng.gen_range(0.1..2.0);
                assert_eq!(
                    sorted(t.within(&c, r, norm)),
                    sorted(linear_within(&pts, &c, r, norm)),
                    "norm {norm}"
                );
            }
        }
    }

    #[test]
    fn boundary_inclusive() {
        let pts = vec![Point::new([1.0, 0.0])];
        let t = KdTree::build(&pts);
        let hits = t.within(&Point::new([0.0, 0.0]), 1.0, Norm::L2);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn duplicate_points_all_reported() {
        let pts = vec![Point::new([1.0, 1.0]); 40];
        let t = KdTree::build(&pts);
        let hits = t.within(&Point::new([1.0, 1.0]), 0.0, Norm::L2);
        assert_eq!(hits.len(), 40);
    }

    #[test]
    fn zero_radius_exact_hit_only() {
        let pts = vec![Point::new([1.0, 1.0]), Point::new([1.0, 1.0 + 1e-9])];
        let t = KdTree::build(&pts);
        let hits = t.within(&Point::new([1.0, 1.0]), 0.0, Norm::L2);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn negative_radius_returns_nothing() {
        let pts = random_points(10, 1);
        let t = KdTree::build(&pts);
        assert!(t.within(&pts[0], -1.0, Norm::L2).is_empty());
    }

    #[test]
    fn leaf_size_one_still_correct() {
        let pts = random_points(64, 9);
        let t = KdTree::build_with_leaf_size(&pts, 1);
        let c = Point::new([2.0, 2.0]);
        assert_eq!(
            sorted(t.within(&c, 1.5, Norm::L2)),
            sorted(linear_within(&pts, &c, 1.5, Norm::L2))
        );
    }

    #[test]
    fn three_dimensional_queries() {
        let mut rng = StdRng::seed_from_u64(12);
        let pts: Vec<Point<3>> = (0..200)
            .map(|_| {
                Point::new([
                    rng.gen_range(0.0..4.0),
                    rng.gen_range(0.0..4.0),
                    rng.gen_range(0.0..4.0),
                ])
            })
            .collect();
        let t = KdTree::build(&pts);
        for _ in 0..20 {
            let c = Point::new([
                rng.gen_range(0.0..4.0),
                rng.gen_range(0.0..4.0),
                rng.gen_range(0.0..4.0),
            ]);
            let r = rng.gen_range(0.1..2.0);
            let tree_hits: Vec<usize> = {
                let mut v: Vec<usize> = t
                    .within(&c, r, Norm::L1)
                    .into_iter()
                    .map(|(i, _)| i)
                    .collect();
                v.sort_unstable();
                v
            };
            let lin_hits: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| Norm::L1.dist(&c, p) <= r)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(tree_hits, lin_hits);
        }
    }

    #[test]
    fn for_each_within_distances_are_correct() {
        let pts = random_points(100, 31);
        let t = KdTree::build(&pts);
        let c = Point::new([2.0, 2.0]);
        t.for_each_within(&c, 2.0, Norm::L2, |i, d| {
            assert!((d - c.dist_l2(&pts[i])).abs() < 1e-12);
            assert!(d <= 2.0);
        });
    }

    #[test]
    fn any_within_agrees_with_full_walk() {
        let pts = random_points(200, 41);
        let t = KdTree::build(&pts);
        let mut rng = StdRng::seed_from_u64(42);
        for norm in [Norm::L1, Norm::L2, Norm::LInf] {
            for _ in 0..30 {
                let c = Point::new([rng.gen_range(-1.0..5.0), rng.gen_range(-1.0..5.0)]);
                let r = rng.gen_range(0.0..2.0);
                let mut seen = 0usize;
                let any = t.any_within(&c, r, norm, |_, _| true);
                t.for_each_within(&c, r, norm, |_, _| seen += 1);
                assert_eq!(any, seen > 0, "norm {norm} r {r}");
            }
        }
    }

    #[test]
    fn any_within_short_circuits_after_first_accept() {
        let pts = random_points(300, 43);
        let t = KdTree::build(&pts);
        let c = Point::new([2.0, 2.0]);
        let mut calls = 0usize;
        let hit = t.any_within(&c, 3.0, Norm::L2, |_, _| {
            calls += 1;
            true
        });
        assert!(hit);
        assert_eq!(calls, 1, "predicate must stop the walk on first accept");
        // A rejecting predicate sees every point in the ball.
        let mut rejected = 0usize;
        assert!(!t.any_within(&c, 3.0, Norm::L2, |_, _| {
            rejected += 1;
            false
        }));
        assert_eq!(rejected, t.within(&c, 3.0, Norm::L2).len());
    }
}
