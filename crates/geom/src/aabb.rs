//! Axis-aligned bounding boxes and the per-dimension projection center.
//!
//! Algorithm 4's "new-center" under the 1-norm is described in the paper
//! (§V-B, Theorem 4 proof) as: *"Along each dimension, the boundary can be
//! determined through a projection on the dimension. The min and max
//! values are determined. The center position along this dimension is
//! (min + max)/2."* That is exactly the center of the axis-aligned
//! bounding box — the Chebyshev (L∞) minimax center. [`Aabb`] implements
//! it; [`crate::l1ball`] additionally provides a *true* L1 minimax center
//! for the ablation study.

use serde::{Deserialize, Serialize};

use crate::point::Point;
use crate::{GeomError, Result};

/// An axis-aligned box `[lo, hi]` in `R^D` (inclusive on both ends).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb<const D: usize> {
    /// Component-wise lower corner.
    pub lo: Point<D>,
    /// Component-wise upper corner.
    pub hi: Point<D>,
}

impl<const D: usize> Aabb<D> {
    /// Creates a box from two corners, swapping coordinates as needed so
    /// that `lo <= hi` holds component-wise.
    pub fn new(a: Point<D>, b: Point<D>) -> Self {
        Aabb {
            lo: a.min_components(&b),
            hi: a.max_components(&b),
        }
    }

    /// The degenerate box containing only `p`.
    pub fn point(p: Point<D>) -> Self {
        Aabb { lo: p, hi: p }
    }

    /// The cube `[lo, hi]^D`.
    pub fn cube(lo: f64, hi: f64) -> Self {
        Aabb::new(Point::splat(lo), Point::splat(hi))
    }

    /// Tight bounding box of a non-empty point set.
    pub fn from_points(points: &[Point<D>]) -> Result<Self> {
        let (first, rest) = points.split_first().ok_or(GeomError::EmptyPointSet)?;
        let mut b = Aabb::point(*first);
        for p in rest {
            b.expand(p);
        }
        Ok(b)
    }

    /// Grows the box to include `p`.
    #[inline]
    pub fn expand(&mut self, p: &Point<D>) {
        self.lo = self.lo.min_components(p);
        self.hi = self.hi.max_components(p);
    }

    /// The box center — per dimension `(min + max) / 2`. This is the
    /// paper's projection "new-center" and the exact minimax center under
    /// the L∞ norm.
    #[inline]
    pub fn center(&self) -> Point<D> {
        self.lo.midpoint(&self.hi)
    }

    /// Half of the largest side length: the L∞ minimax radius, i.e. the
    /// smallest `r` such that the L∞ ball of radius `r` at
    /// [`Self::center`] covers the box.
    pub fn linf_radius(&self) -> f64 {
        let mut r: f64 = 0.0;
        for i in 0..D {
            r = r.max((self.hi[i] - self.lo[i]) * 0.5);
        }
        r
    }

    /// Side length along dimension `i`.
    #[inline]
    pub fn extent(&self, i: usize) -> f64 {
        self.hi[i] - self.lo[i]
    }

    /// True iff `p` lies inside the box (boundary inclusive).
    #[inline]
    pub fn contains(&self, p: &Point<D>) -> bool {
        for i in 0..D {
            if p[i] < self.lo[i] || p[i] > self.hi[i] {
                return false;
            }
        }
        true
    }

    /// Volume (product of side lengths).
    pub fn volume(&self) -> f64 {
        (0..D).map(|i| self.extent(i)).product()
    }

    /// Squared Euclidean distance from `p` to the box (0 inside).
    #[inline]
    pub fn dist_sq_to(&self, p: &Point<D>) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = if p[i] < self.lo[i] {
                self.lo[i] - p[i]
            } else if p[i] > self.hi[i] {
                p[i] - self.hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// Minimum distance from `p` to the box under `norm` (0 inside).
    pub fn dist_to(&self, p: &Point<D>, norm: crate::Norm) -> f64 {
        let mut gap = [0.0; D];
        for i in 0..D {
            gap[i] = if p[i] < self.lo[i] {
                self.lo[i] - p[i]
            } else if p[i] > self.hi[i] {
                p[i] - self.hi[i]
            } else {
                0.0
            };
        }
        norm.length(&Point::new(gap))
    }

    /// Clamps `p` into the box component-wise.
    pub fn clamp(&self, p: &Point<D>) -> Point<D> {
        let mut out = [0.0; D];
        for i in 0..D {
            out[i] = p[i].clamp(self.lo[i], self.hi[i]);
        }
        Point::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Norm;

    type P = Point<2>;

    #[test]
    fn new_swaps_corners() {
        let b = Aabb::new(P::new([2.0, -1.0]), P::new([0.0, 3.0]));
        assert_eq!(b.lo, P::new([0.0, -1.0]));
        assert_eq!(b.hi, P::new([2.0, 3.0]));
    }

    #[test]
    fn from_points_is_tight() {
        let pts = [P::new([1.0, 1.0]), P::new([-2.0, 0.5]), P::new([0.0, 4.0])];
        let b = Aabb::from_points(&pts).unwrap();
        assert_eq!(b.lo, P::new([-2.0, 0.5]));
        assert_eq!(b.hi, P::new([1.0, 4.0]));
        for p in &pts {
            assert!(b.contains(p));
        }
    }

    #[test]
    fn from_points_empty_errors() {
        assert!(Aabb::<2>::from_points(&[]).is_err());
    }

    #[test]
    fn center_is_projection_center() {
        // The paper's §V-B projection procedure on {(0,0), (4,2)}:
        // per-dim (min+max)/2 = (2, 1).
        let b = Aabb::from_points(&[P::new([0.0, 0.0]), P::new([4.0, 2.0])]).unwrap();
        assert_eq!(b.center(), P::new([2.0, 1.0]));
    }

    #[test]
    fn linf_radius_covers_all_corners() {
        let b = Aabb::new(P::new([0.0, 0.0]), P::new([4.0, 2.0]));
        let c = b.center();
        let r = b.linf_radius();
        assert_eq!(r, 2.0);
        for corner in [
            P::new([0.0, 0.0]),
            P::new([4.0, 0.0]),
            P::new([0.0, 2.0]),
            P::new([4.0, 2.0]),
        ] {
            assert!(c.dist_linf(&corner) <= r + 1e-12);
        }
    }

    #[test]
    fn contains_boundary_inclusive() {
        let b = Aabb::cube(0.0, 1.0);
        assert!(b.contains(&P::new([0.0, 1.0])));
        assert!(b.contains(&P::new([0.5, 0.5])));
        assert!(!b.contains(&P::new([1.0 + 1e-12, 0.5])));
    }

    #[test]
    fn volume_and_extent() {
        let b = Aabb::new(P::new([0.0, 0.0]), P::new([4.0, 2.0]));
        assert_eq!(b.extent(0), 4.0);
        assert_eq!(b.extent(1), 2.0);
        assert_eq!(b.volume(), 8.0);
    }

    #[test]
    fn dist_sq_inside_is_zero() {
        let b = Aabb::cube(0.0, 4.0);
        assert_eq!(b.dist_sq_to(&P::new([2.0, 2.0])), 0.0);
    }

    #[test]
    fn dist_sq_outside_matches_nearest_point() {
        let b = Aabb::cube(0.0, 1.0);
        // (2, 2): nearest box point (1,1); distance sqrt(2).
        assert!((b.dist_sq_to(&P::new([2.0, 2.0])) - 2.0).abs() < 1e-12);
        // (−1, 0.5): nearest (0, 0.5); distance 1.
        assert!((b.dist_sq_to(&P::new([-1.0, 0.5])) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dist_to_under_l1() {
        let b = Aabb::cube(0.0, 1.0);
        assert!((b.dist_to(&P::new([2.0, 3.0]), Norm::L1) - 3.0).abs() < 1e-12);
        assert_eq!(b.dist_to(&P::new([0.5, 0.5]), Norm::L1), 0.0);
    }

    #[test]
    fn clamp_projects_into_box() {
        let b = Aabb::cube(0.0, 1.0);
        assert_eq!(b.clamp(&P::new([2.0, -1.0])), P::new([1.0, 0.0]));
        assert_eq!(b.clamp(&P::new([0.5, 0.25])), P::new([0.5, 0.25]));
    }

    #[test]
    fn expand_grows_box() {
        let mut b = Aabb::point(P::new([1.0, 1.0]));
        b.expand(&P::new([3.0, 0.0]));
        assert_eq!(b.lo, P::new([1.0, 0.0]));
        assert_eq!(b.hi, P::new([3.0, 1.0]));
    }

    #[test]
    fn cube_in_3d() {
        let b = Aabb::<3>::cube(0.0, 4.0);
        assert_eq!(b.volume(), 64.0);
        assert_eq!(b.center(), Point::new([2.0, 2.0, 2.0]));
    }
}
