//! 2-D convex hull (Andrew's monotone chain).
//!
//! Used by the figure renderer to draw cluster outlines and by tests as
//! an independent oracle: the smallest enclosing circle of a point set is
//! determined entirely by its hull, so `welzl(points) == welzl(hull)`.

use crate::point::Point2;

/// Convex hull of a 2-D point set, counter-clockwise, starting from the
/// lexicographically smallest point. Collinear points on hull edges are
/// discarded. Returns fewer than 3 points for degenerate inputs (empty,
/// single point, all collinear returns the two extremes).
///
/// ```
/// use mmph_geom::hull::convex_hull;
/// use mmph_geom::Point;
///
/// let square_plus_center = [
///     Point::new([0.0, 0.0]),
///     Point::new([1.0, 0.0]),
///     Point::new([1.0, 1.0]),
///     Point::new([0.0, 1.0]),
///     Point::new([0.5, 0.5]),
/// ];
/// assert_eq!(convex_hull(&square_plus_center).len(), 4);
/// ```
pub fn convex_hull(points: &[Point2]) -> Vec<Point2> {
    let mut pts: Vec<Point2> = points.to_vec();
    pts.sort_by(|a, b| a.x().total_cmp(&b.x()).then(a.y().total_cmp(&b.y())));
    pts.dedup_by(|a, b| a.approx_eq(b, 0.0));
    let n = pts.len();
    if n <= 2 {
        return pts;
    }
    let cross = |o: &Point2, a: &Point2, b: &Point2| (*a - *o).cross(&(*b - *o));
    let mut hull: Vec<Point2> = Vec::with_capacity(2 * n);
    // Lower hull.
    for p in &pts {
        while hull.len() >= 2 && cross(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(*p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && cross(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(*p);
    }
    hull.pop(); // last point equals the first
    hull
}

/// True iff `p` lies inside or on the boundary of the convex polygon
/// `hull` (counter-clockwise vertex order, as produced by
/// [`convex_hull`]).
pub fn hull_contains(hull: &[Point2], p: &Point2, eps: f64) -> bool {
    match hull.len() {
        0 => false,
        1 => hull[0].approx_eq(p, eps),
        2 => {
            // Segment containment.
            let ab = hull[1] - hull[0];
            let ap = *p - hull[0];
            let cross = ab.cross(&ap).abs();
            let dot = ab.dot(&ap);
            cross <= eps * ab.length().max(1.0) && dot >= -eps && dot <= ab.dot(&ab) + eps
        }
        _ => {
            for i in 0..hull.len() {
                let a = hull[i];
                let b = hull[(i + 1) % hull.len()];
                if (b - a).cross(&(*p - a)) < -eps {
                    return false;
                }
            }
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::welzl::min_enclosing_ball;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn p2(x: f64, y: f64) -> Point2 {
        Point::new([x, y])
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[p2(1.0, 1.0)]), vec![p2(1.0, 1.0)]);
        let two = convex_hull(&[p2(1.0, 1.0), p2(0.0, 0.0)]);
        assert_eq!(two, vec![p2(0.0, 0.0), p2(1.0, 1.0)]);
    }

    #[test]
    fn square_hull() {
        let pts = [
            p2(0.0, 0.0),
            p2(1.0, 0.0),
            p2(1.0, 1.0),
            p2(0.0, 1.0),
            p2(0.5, 0.5), // interior
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!(hull.contains(&p2(0.0, 0.0)));
        assert!(!hull.contains(&p2(0.5, 0.5)));
    }

    #[test]
    fn collinear_points_collapse_to_extremes() {
        let pts: Vec<Point2> = (0..5).map(|i| p2(i as f64, i as f64)).collect();
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 2);
        assert!(hull.contains(&p2(0.0, 0.0)));
        assert!(hull.contains(&p2(4.0, 4.0)));
    }

    #[test]
    fn duplicates_removed() {
        let pts = [p2(0.0, 0.0), p2(0.0, 0.0), p2(1.0, 0.0), p2(0.0, 1.0)];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 3);
    }

    #[test]
    fn hull_is_ccw() {
        let mut rng = StdRng::seed_from_u64(50);
        let pts: Vec<Point2> = (0..40)
            .map(|_| p2(rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)))
            .collect();
        let hull = convex_hull(&pts);
        assert!(hull.len() >= 3);
        // Shoelace area must be positive for CCW polygons.
        let mut area = 0.0;
        for i in 0..hull.len() {
            let a = hull[i];
            let b = hull[(i + 1) % hull.len()];
            area += a.cross(&b);
        }
        assert!(area > 0.0);
    }

    #[test]
    fn all_points_inside_hull() {
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..10 {
            let pts: Vec<Point2> = (0..30)
                .map(|_| p2(rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)))
                .collect();
            let hull = convex_hull(&pts);
            for p in &pts {
                assert!(hull_contains(&hull, p, 1e-9));
            }
            assert!(!hull_contains(&hull, &p2(10.0, 10.0), 1e-9));
        }
    }

    #[test]
    fn welzl_of_hull_equals_welzl_of_points() {
        let mut rng = StdRng::seed_from_u64(52);
        for _ in 0..10 {
            let pts: Vec<Point2> = (0..60)
                .map(|_| p2(rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)))
                .collect();
            let hull = convex_hull(&pts);
            let full = min_enclosing_ball(&pts);
            let hull_ball = min_enclosing_ball(&hull);
            assert!((full.radius - hull_ball.radius).abs() < 1e-8);
        }
    }

    #[test]
    fn segment_containment_in_degenerate_hull() {
        let hull = convex_hull(&[p2(0.0, 0.0), p2(2.0, 0.0)]);
        assert!(hull_contains(&hull, &p2(1.0, 0.0), 1e-9));
        assert!(!hull_contains(&hull, &p2(1.0, 0.5), 1e-9));
        assert!(!hull_contains(&hull, &p2(3.0, 0.0), 1e-9));
    }
}
