//! Smallest enclosing circle / ball (the paper's §II-C substrate).
//!
//! Algorithm 4 (complex local greedy) repeatedly grows a disk by adding
//! the heaviest remaining point and recomputing *"the smallest disk that
//! covers all points in D plus point j"* (§V-B, step 4). The paper cites
//! Welzl's randomized expected-`O(n)` algorithm; we implement it for any
//! constant dimension `D` (support sets of at most `D+1` points, solved
//! through a small Gram linear system), plus Ritter's 2-pass
//! approximation with iterative refinement as a fast approximate path.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::point::Point;

/// Tolerance used for "inside the ball" tests. Relative to the radius so
/// that instances at any scale behave identically.
const EPS: f64 = 1e-10;

/// A ball `{ x : ||x - center||_2 <= radius }`.
///
/// A radius of exactly `-1.0` denotes the empty ball (contains nothing);
/// it only arises internally for empty input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ball<const D: usize> {
    /// Center of the ball.
    pub center: Point<D>,
    /// Radius (`>= 0` for non-empty balls).
    pub radius: f64,
}

impl<const D: usize> Ball<D> {
    /// The empty ball.
    pub const EMPTY: Self = Ball {
        center: Point::ORIGIN,
        radius: -1.0,
    };

    /// A ball from center and radius.
    pub fn new(center: Point<D>, radius: f64) -> Self {
        Ball { center, radius }
    }

    /// True iff `p` is inside the ball, with a small relative tolerance.
    #[inline]
    pub fn contains(&self, p: &Point<D>) -> bool {
        if self.radius < 0.0 {
            return false;
        }
        let slack = self.radius * EPS + EPS;
        let r = self.radius + slack;
        self.center.dist_sq(p) <= r * r
    }

    /// True iff every point of `points` is inside the ball.
    pub fn contains_all(&self, points: &[Point<D>]) -> bool {
        points.iter().all(|p| self.contains(p))
    }
}

/// Exact smallest enclosing ball of `points` (deterministic: the internal
/// Welzl shuffle is seeded from the input length, so repeated calls with
/// the same input return the same ball).
///
/// Returns [`Ball::EMPTY`] for an empty input; a zero-radius ball for a
/// single point; handles duplicate and affinely dependent point sets.
///
/// ```
/// use mmph_geom::{min_enclosing_ball, Point};
///
/// let pts = [
///     Point::new([0.0, 0.0]),
///     Point::new([2.0, 0.0]),
///     Point::new([1.0, 0.5]),
/// ];
/// let ball = min_enclosing_ball(&pts);
/// assert!(ball.contains_all(&pts));
/// assert!((ball.radius - 1.0).abs() < 1e-9); // diameter ball of the pair
/// ```
pub fn min_enclosing_ball<const D: usize>(points: &[Point<D>]) -> Ball<D> {
    let mut rng = StdRng::seed_from_u64(0x5eed ^ points.len() as u64);
    min_enclosing_ball_with_rng(points, &mut rng)
}

/// Exact smallest enclosing ball with a caller-supplied RNG for the
/// Welzl shuffle (the result is the same ball regardless of the shuffle;
/// only the running time distribution depends on it).
pub fn min_enclosing_ball_with_rng<const D: usize>(
    points: &[Point<D>],
    rng: &mut impl Rng,
) -> Ball<D> {
    if points.is_empty() {
        return Ball::EMPTY;
    }
    let mut pts: Vec<Point<D>> = points.to_vec();
    pts.shuffle(rng);
    let mut boundary: Vec<Point<D>> = Vec::with_capacity(D + 1);
    welzl(&mut pts, points.len(), &mut boundary)
}

/// Recursive Welzl with move-to-front. `n` is the active prefix length of
/// `pts`; `boundary` is the set of points forced onto the ball surface.
fn welzl<const D: usize>(pts: &mut [Point<D>], n: usize, boundary: &mut Vec<Point<D>>) -> Ball<D> {
    if n == 0 || boundary.len() == D + 1 {
        return circumball(boundary);
    }
    let p = pts[n - 1];
    let ball = welzl(pts, n - 1, boundary);
    if ball.contains(&p) {
        return ball;
    }
    boundary.push(p);
    let ball = welzl(pts, n - 1, boundary);
    boundary.pop();
    // Move-to-front heuristic: points that ended up on the boundary are
    // likely to constrain future balls too, so test them early.
    pts[..n].rotate_right(1);
    ball
}

/// The unique smallest ball whose surface passes through every point of
/// `support` (at most `D + 1` points). The center is the solution of the
/// Gram linear system
/// `(p_i - p_0) . (c - p_0) = |p_i - p_0|^2 / 2` restricted to the affine
/// hull of the support set. Affinely dependent (including duplicate)
/// support points are projected out rather than causing a failure.
pub fn circumball<const D: usize>(support: &[Point<D>]) -> Ball<D> {
    match support.len() {
        0 => Ball::EMPTY,
        1 => Ball::new(support[0], 0.0),
        2 => {
            let c = support[0].midpoint(&support[1]);
            Ball::new(c, c.dist_l2(&support[0]))
        }
        m => {
            let p0 = support[0];
            let k = m - 1; // system size, k <= D
            let mut a = vec![[0.0f64; 8]; k]; // D+1 <= 8 covers D <= 7
            debug_assert!(k <= 8);
            let mut b = vec![0.0f64; k];
            let vs: Vec<Point<D>> = support[1..].iter().map(|p| *p - p0).collect();
            for i in 0..k {
                for j in 0..k {
                    a[i][j] = vs[i].dot(&vs[j]);
                }
                b[i] = vs[i].dot(&vs[i]) * 0.5;
            }
            let lambda = solve_spd_with_pivot_skip(&mut a, &mut b, k);
            let mut c = p0;
            for (i, v) in vs.iter().enumerate() {
                c += *v * lambda[i];
            }
            // Radius: max distance to support (robust against projected-out
            // dependent directions).
            let r = support.iter().map(|p| c.dist_l2(p)).fold(0.0f64, f64::max);
            Ball::new(c, r)
        }
    }
}

/// Gaussian elimination with partial pivoting over the `k x k` prefix of
/// `a`. Pivots below a small threshold (affinely dependent support
/// directions) are skipped and their variables fixed to 0, which projects
/// the solution into the span of the independent directions.
fn solve_spd_with_pivot_skip(a: &mut [[f64; 8]], b: &mut [f64], k: usize) -> Vec<f64> {
    const PIVOT_EPS: f64 = 1e-12;
    let mut skipped = vec![false; k];
    for col in 0..k {
        // Partial pivot within rows col..k.
        let mut piv = col;
        for row in col + 1..k {
            if a[row][col].abs() > a[piv][col].abs() {
                piv = row;
            }
        }
        if a[piv][col].abs() < PIVOT_EPS {
            skipped[col] = true;
            continue;
        }
        if piv != col {
            a.swap(piv, col);
            b.swap(piv, col);
        }
        let inv = 1.0 / a[col][col];
        for row in col + 1..k {
            let f = a[row][col] * inv;
            if f == 0.0 {
                continue;
            }
            for c in col..k {
                a[row][c] -= f * a[col][c];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; k];
    for col in (0..k).rev() {
        if skipped[col] || a[col][col].abs() < PIVOT_EPS {
            x[col] = 0.0;
            continue;
        }
        let mut s = b[col];
        for c in col + 1..k {
            s -= a[col][c] * x[c];
        }
        x[col] = s / a[col][col];
    }
    x
}

/// Ritter's two-pass approximate bounding ball, optionally tightened by
/// `refine_iters` rounds of shrink-toward-farthest refinement. Guarantees
/// containment of all points; the radius is within a few percent of
/// optimal in practice. Used as the fast path in ablation benches.
pub fn ritter_ball<const D: usize>(points: &[Point<D>], refine_iters: usize) -> Ball<D> {
    if points.is_empty() {
        return Ball::EMPTY;
    }
    // Pass 1: pick p, farthest q from p, farthest s from q; start with
    // the ball on segment qs.
    let p = points[0];
    let q = *points
        .iter()
        .max_by(|a, b| p.dist_sq(a).total_cmp(&p.dist_sq(b)))
        .expect("non-empty");
    let s = *points
        .iter()
        .max_by(|a, b| q.dist_sq(a).total_cmp(&q.dist_sq(b)))
        .expect("non-empty");
    let mut center = q.midpoint(&s);
    let mut radius = q.dist_l2(&s) * 0.5;
    // Pass 2: grow to include stragglers.
    for pt in points {
        let d = center.dist_l2(pt);
        if d > radius {
            let new_r = (radius + d) * 0.5;
            let t = (new_r - radius) / d; // move center toward pt
            center = center.lerp(pt, t);
            radius = new_r;
        }
    }
    // Refinement: shrink slightly and re-grow; keeps containment while
    // typically reducing the radius by 1-3%.
    for _ in 0..refine_iters {
        let mut r = radius * 0.95;
        let mut c = center;
        for pt in points {
            let d = c.dist_l2(pt);
            if d > r {
                let new_r = (r + d) * 0.5;
                let t = (new_r - r) / d;
                c = c.lerp(pt, t);
                r = new_r;
            }
        }
        if r < radius {
            radius = r;
            center = c;
        }
    }
    Ball::new(center, radius)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    type P2 = Point<2>;
    type P3 = Point<3>;

    fn p2(x: f64, y: f64) -> P2 {
        Point::new([x, y])
    }

    /// Brute-force smallest enclosing circle in 2-D: best over all balls
    /// defined by 1, 2, or 3 points. O(n^4) — tests only.
    fn brute_force_2d(points: &[P2]) -> Ball<2> {
        let n = points.len();
        let mut best = Ball::<2>::EMPTY;
        let mut consider = |b: Ball<2>| {
            if b.contains_all(points) && (best.radius < 0.0 || b.radius < best.radius) {
                best = b;
            }
        };
        for i in 0..n {
            consider(Ball::new(points[i], 0.0));
            for j in i + 1..n {
                consider(circumball(&[points[i], points[j]]));
                for k in j + 1..n {
                    consider(circumball(&[points[i], points[j], points[k]]));
                }
            }
        }
        best
    }

    #[test]
    fn empty_input_gives_empty_ball() {
        let b = min_enclosing_ball::<2>(&[]);
        assert_eq!(b, Ball::EMPTY);
        assert!(!b.contains(&p2(0.0, 0.0)));
    }

    #[test]
    fn single_point_zero_radius() {
        let b = min_enclosing_ball(&[p2(1.0, 2.0)]);
        assert_eq!(b.center, p2(1.0, 2.0));
        assert_eq!(b.radius, 0.0);
        assert!(b.contains(&p2(1.0, 2.0)));
    }

    #[test]
    fn two_points_diameter_ball() {
        let b = min_enclosing_ball(&[p2(0.0, 0.0), p2(2.0, 0.0)]);
        assert!(b.center.approx_eq(&p2(1.0, 0.0), 1e-9));
        assert!((b.radius - 1.0).abs() < 1e-9);
    }

    #[test]
    fn equilateral_triangle_circumcircle() {
        let h = 3f64.sqrt() / 2.0;
        let pts = [p2(0.0, 0.0), p2(1.0, 0.0), p2(0.5, h)];
        let b = min_enclosing_ball(&pts);
        // Circumradius of unit equilateral triangle = 1/sqrt(3).
        assert!((b.radius - 1.0 / 3f64.sqrt()).abs() < 1e-9);
        assert!(b.center.approx_eq(&p2(0.5, h / 3.0), 1e-9));
    }

    #[test]
    fn obtuse_triangle_uses_diameter_of_longest_side() {
        // For an obtuse triangle the smallest circle is on the longest side.
        let pts = [p2(0.0, 0.0), p2(4.0, 0.0), p2(2.0, 0.5)];
        let b = min_enclosing_ball(&pts);
        assert!((b.radius - 2.0).abs() < 1e-9);
        assert!(b.center.approx_eq(&p2(2.0, 0.0), 1e-9));
    }

    #[test]
    fn duplicate_points_handled() {
        let pts = [p2(1.0, 1.0); 5];
        let b = min_enclosing_ball(&pts);
        assert!(b.radius.abs() < 1e-9);
        assert!(b.center.approx_eq(&p2(1.0, 1.0), 1e-9));
    }

    #[test]
    fn collinear_points_handled() {
        let pts: Vec<P2> = (0..10).map(|i| p2(i as f64, 2.0 * i as f64)).collect();
        let b = min_enclosing_ball(&pts);
        assert!(b.contains_all(&pts));
        let expected_r = pts[0].dist_l2(&pts[9]) * 0.5;
        assert!((b.radius - expected_r).abs() < 1e-8);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..60 {
            let n = 3 + (trial % 12);
            let pts: Vec<P2> = (0..n)
                .map(|_| p2(rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)))
                .collect();
            let fast = min_enclosing_ball(&pts);
            let slow = brute_force_2d(&pts);
            assert!(fast.contains_all(&pts), "trial {trial}: not covering");
            assert!(
                (fast.radius - slow.radius).abs() < 1e-7,
                "trial {trial}: welzl r={} brute r={}",
                fast.radius,
                slow.radius
            );
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let mut rng = StdRng::seed_from_u64(7);
        let pts: Vec<P2> = (0..50)
            .map(|_| p2(rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)))
            .collect();
        let a = min_enclosing_ball(&pts);
        let b = min_enclosing_ball(&pts);
        assert_eq!(a, b);
    }

    #[test]
    fn three_dimensional_regular_tetrahedron() {
        // Regular tetrahedron on alternating cube corners; the
        // circumcenter is the origin and the circumradius is sqrt(3).
        let pts = [
            Point::new([1.0, 1.0, 1.0]),
            Point::new([1.0, -1.0, -1.0]),
            Point::new([-1.0, 1.0, -1.0]),
            Point::new([-1.0, -1.0, 1.0]),
        ];
        let b = min_enclosing_ball(&pts);
        assert!(b.center.approx_eq(&Point::new([0.0, 0.0, 0.0]), 1e-9));
        assert!((b.radius - 3f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn three_dimensional_random_containment_and_local_minimality() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let pts: Vec<P3> = (0..40)
                .map(|_| {
                    Point::new([
                        rng.gen_range(0.0..4.0),
                        rng.gen_range(0.0..4.0),
                        rng.gen_range(0.0..4.0),
                    ])
                })
                .collect();
            let b = min_enclosing_ball(&pts);
            assert!(b.contains_all(&pts));
            // Minimality sanity: centroid ball must not beat it.
            let c = Point::centroid(&pts).unwrap();
            let r_centroid = pts.iter().map(|p| c.dist_l2(p)).fold(0.0f64, f64::max);
            assert!(b.radius <= r_centroid + 1e-9);
        }
    }

    #[test]
    fn circumball_of_right_triangle() {
        // Right triangle: hypotenuse midpoint is the circumcenter.
        let b = circumball(&[p2(0.0, 0.0), p2(4.0, 0.0), p2(0.0, 3.0)]);
        assert!(b.center.approx_eq(&p2(2.0, 1.5), 1e-9));
        assert!((b.radius - 2.5).abs() < 1e-9);
    }

    #[test]
    fn circumball_degenerate_duplicate_support() {
        let b = circumball(&[p2(1.0, 1.0), p2(1.0, 1.0), p2(3.0, 1.0)]);
        assert!(b.contains(&p2(1.0, 1.0)));
        assert!(b.contains(&p2(3.0, 1.0)));
    }

    #[test]
    fn ritter_contains_all_and_close_to_optimal() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let pts: Vec<P2> = (0..100)
                .map(|_| p2(rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)))
                .collect();
            let approx = ritter_ball(&pts, 8);
            let exact = min_enclosing_ball(&pts);
            assert!(approx.contains_all(&pts));
            assert!(approx.radius >= exact.radius - 1e-9);
            assert!(
                approx.radius <= exact.radius * 1.10,
                "ritter {} vs exact {}",
                approx.radius,
                exact.radius
            );
        }
    }

    #[test]
    fn ritter_empty_and_single() {
        assert_eq!(ritter_ball::<2>(&[], 3), Ball::EMPTY);
        let b = ritter_ball(&[p2(1.0, 1.0)], 3);
        assert!(b.radius.abs() < 1e-12);
    }

    #[test]
    fn ball_serde_roundtrip() {
        let b = Ball::new(p2(1.0, 2.0), 3.5);
        let json = serde_json::to_string(&b).unwrap();
        let back: Ball<2> = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }
}
