//! Minimax centers under the 1-norm.
//!
//! The paper's complex local greedy computes its "new-center" under the
//! 1-norm by projecting onto each dimension and taking `(min + max)/2`
//! (§V-B) — which is actually the **L∞** (Chebyshev) minimax center, not
//! the L1 one. This module provides:
//!
//! * [`projection_center`] — the paper's procedure, verbatim (delegates to
//!   [`crate::Aabb`]); used by the faithful Algorithm 4 implementation.
//! * [`l1_minimax_center_2d`] — the *exact* smallest enclosing L1 ball in
//!   2-D via the 45° rotation duality (`L1` in the plane is an `L∞` norm
//!   in rotated coordinates); used by the `ablation_l1_center` bench to
//!   quantify how much the paper's approximation costs.
//! * [`l1_minimax_center_approx`] — an iterative minimizer of
//!   `max_i ||c − p_i||_1` for arbitrary dimension.

use crate::aabb::Aabb;
use crate::point::{Point, Point2};
use crate::{GeomError, Result};

/// The paper's §V-B projection "new-center": per dimension
/// `(min + max) / 2` over the point set. This is the exact minimax center
/// under the **L∞** norm, and an approximation under L1.
pub fn projection_center<const D: usize>(points: &[Point<D>]) -> Result<Point<D>> {
    Ok(Aabb::from_points(points)?.center())
}

/// L1 radius of the smallest L1 ball centered at `c` covering `points`
/// (i.e. the farthest L1 distance from `c`).
pub fn l1_radius_at<const D: usize>(c: &Point<D>, points: &[Point<D>]) -> f64 {
    points.iter().map(|p| c.dist_l1(p)).fold(0.0f64, f64::max)
}

/// Exact smallest enclosing L1 ball (diamond) in the plane.
///
/// Uses the linear isometry `(x, y) ↦ (x + y, y − x)` which maps L1
/// distances to L∞ distances; the L∞ minimax center in rotated space is
/// the bounding-box center, which we map back. Returns `(center, radius)`
/// with `radius` measured in the original L1 norm.
pub fn l1_minimax_center_2d(points: &[Point2]) -> Result<(Point2, f64)> {
    if points.is_empty() {
        return Err(GeomError::EmptyPointSet);
    }
    let rotated: Vec<Point2> = points.iter().map(|p| p.rotate_l1_to_linf()).collect();
    let bbox = Aabb::from_points(&rotated)?;
    let center = bbox.center().rotate_linf_to_l1();
    let radius = bbox.linf_radius();
    Ok((center, radius))
}

/// Approximate minimax L1 center in any dimension: subgradient descent on
/// `g(c) = max_i ||c − p_i||_1`, stepping toward the farthest point along
/// the sign vector with a geometrically decaying step. Initialized at the
/// projection center (already optimal when the farthest-point geometry is
/// axis-aligned). Returns `(center, radius)`.
pub fn l1_minimax_center_approx<const D: usize>(
    points: &[Point<D>],
    iters: usize,
) -> Result<(Point<D>, f64)> {
    if points.is_empty() {
        return Err(GeomError::EmptyPointSet);
    }
    let mut c = projection_center(points)?;
    let mut r = l1_radius_at(&c, points);
    // Step starts at the radius scale and halves whenever no descent
    // direction at the current scale improves the objective.
    let mut step = r * 0.5;
    for _ in 0..iters {
        if step < 1e-12 || r < 1e-15 {
            break;
        }
        // Active set: points whose distance is within `tol` of the max.
        // Averaging their subgradients avoids ping-ponging between two
        // opposite farthest points.
        let tol = step * 0.5;
        let mut dir = [0.0f64; D];
        let mut active = 0usize;
        for p in points {
            if c.dist_l1(p) >= r - tol {
                active += 1;
                for i in 0..D {
                    dir[i] += (p[i] - c[i]).signum();
                }
            }
        }
        let dir = Point::new(dir) * (1.0 / active.max(1) as f64);
        let cand = c + dir * step;
        let cand_r = l1_radius_at(&cand, points);
        if cand_r < r - 1e-15 {
            c = cand;
            r = cand_r;
        } else {
            step *= 0.5;
        }
    }
    Ok((c, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn p2(x: f64, y: f64) -> Point2 {
        Point::new([x, y])
    }

    #[test]
    fn projection_center_matches_paper_example() {
        let pts = [p2(0.0, 0.0), p2(4.0, 2.0), p2(1.0, 1.0)];
        assert_eq!(projection_center(&pts).unwrap(), p2(2.0, 1.0));
    }

    #[test]
    fn projection_center_empty_errors() {
        assert!(projection_center::<2>(&[]).is_err());
    }

    #[test]
    fn exact_2d_on_axis_pair() {
        // Two points on the x-axis: L1 center anywhere on the "taxicab
        // bisector"; the rotation method gives a center with radius = half
        // the L1 distance.
        let pts = [p2(0.0, 0.0), p2(2.0, 0.0)];
        let (c, r) = l1_minimax_center_2d(&pts).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
        assert!(l1_radius_at(&c, &pts) <= r + 1e-12);
    }

    #[test]
    fn exact_2d_radius_lower_bounds_any_center() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let pts: Vec<Point2> = (0..12)
                .map(|_| p2(rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)))
                .collect();
            let (c, r) = l1_minimax_center_2d(&pts).unwrap();
            assert!((l1_radius_at(&c, &pts) - r).abs() < 1e-9);
            // No random center may beat the claimed optimum.
            for _ in 0..50 {
                let cand = p2(rng.gen_range(-1.0..5.0), rng.gen_range(-1.0..5.0));
                assert!(l1_radius_at(&cand, &pts) >= r - 1e-9);
            }
        }
    }

    #[test]
    fn exact_beats_or_ties_projection_center() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..50 {
            let pts: Vec<Point2> = (0..10)
                .map(|_| p2(rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)))
                .collect();
            let (_, r_exact) = l1_minimax_center_2d(&pts).unwrap();
            let r_proj = l1_radius_at(&projection_center(&pts).unwrap(), &pts);
            assert!(r_exact <= r_proj + 1e-9);
        }
    }

    #[test]
    fn projection_center_can_be_strictly_worse_under_l1() {
        // Diamond-unfriendly configuration: projection (bbox) center
        // (1, 0.5) has L1 radius 1.5, while the true L1 center (1, 0)
        // achieves radius 1.
        let pts = [p2(0.0, 0.0), p2(1.0, 1.0), p2(2.0, 0.0)];
        let (_, r_exact) = l1_minimax_center_2d(&pts).unwrap();
        let r_proj = l1_radius_at(&projection_center(&pts).unwrap(), &pts);
        assert!(r_exact < r_proj - 1e-9, "exact {r_exact} proj {r_proj}");
    }

    #[test]
    fn approx_close_to_exact_in_2d() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..30 {
            let pts: Vec<Point2> = (0..15)
                .map(|_| p2(rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)))
                .collect();
            let (_, r_exact) = l1_minimax_center_2d(&pts).unwrap();
            let (_, r_approx) = l1_minimax_center_approx(&pts, 500).unwrap();
            assert!(r_approx >= r_exact - 1e-9);
            assert!(
                r_approx <= r_exact * 1.10 + 1e-9,
                "approx {r_approx} vs exact {r_exact}"
            );
        }
    }

    #[test]
    fn approx_3d_improves_on_or_ties_projection() {
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..20 {
            let pts: Vec<Point<3>> = (0..12)
                .map(|_| {
                    Point::new([
                        rng.gen_range(0.0..4.0),
                        rng.gen_range(0.0..4.0),
                        rng.gen_range(0.0..4.0),
                    ])
                })
                .collect();
            let r_proj = l1_radius_at(&projection_center(&pts).unwrap(), &pts);
            let (_, r_approx) = l1_minimax_center_approx(&pts, 300).unwrap();
            assert!(r_approx <= r_proj + 1e-9);
        }
    }

    #[test]
    fn single_point_radius_zero() {
        let (c, r) = l1_minimax_center_2d(&[p2(1.0, -2.0)]).unwrap();
        assert!(c.approx_eq(&p2(1.0, -2.0), 1e-12));
        assert_eq!(r, 0.0);
        let (c3, r3) = l1_minimax_center_approx(&[Point::new([1.0, 2.0, 3.0])], 10).unwrap();
        assert!(c3.approx_eq(&Point::new([1.0, 2.0, 3.0]), 1e-12));
        assert_eq!(r3, 0.0);
    }

    #[test]
    fn approx_empty_errors() {
        assert!(l1_minimax_center_approx::<2>(&[], 10).is_err());
        assert!(l1_minimax_center_2d(&[]).is_err());
    }
}
