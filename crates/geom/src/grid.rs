//! Uniform bucket-grid spatial index.
//!
//! Alternative to [`crate::KdTree`] for within-radius queries when points
//! are roughly uniformly distributed in a known bounding box — exactly
//! the paper's workloads (uniform placement in `[0,4]^m`). Cells are
//! cubes of side `cell`; a radius query scans the `O((r/cell + 2)^D)`
//! cells overlapping the query ball. Benchmarked against the kd-tree in
//! `ablation_spatial_index`.

use crate::aabb::Aabb;
use crate::norm::Norm;
use crate::point::Point;
use crate::{GeomError, Result};

/// Uniform grid over a bounding box, bucketing point indices.
#[derive(Debug, Clone)]
pub struct GridIndex<const D: usize> {
    bbox: Aabb<D>,
    cell: f64,
    /// Number of cells along each dimension.
    dims: [usize; D],
    /// CSR-style storage: `cells[c]..cells[c+1]` indexes into `entries`.
    cell_starts: Vec<u32>,
    entries: Vec<u32>,
    points: Vec<Point<D>>,
}

impl<const D: usize> GridIndex<D> {
    /// Builds a grid over `points` with the given cell side length.
    /// The bounding box is computed from the points themselves.
    pub fn build(points: &[Point<D>], cell: f64) -> Result<Self> {
        if points.is_empty() {
            return Err(GeomError::EmptyPointSet);
        }
        if !cell.is_finite() || cell <= 0.0 {
            return Err(GeomError::NonFinite {
                index: 0,
                value: cell,
            });
        }
        let bbox = Aabb::from_points(points)?;
        let mut dims = [1usize; D];
        let mut total = 1usize;
        for d in 0..D {
            dims[d] = ((bbox.extent(d) / cell).floor() as usize + 1).max(1);
            total = total.saturating_mul(dims[d]);
        }
        // Counting sort of points into cells.
        let mut counts = vec![0u32; total + 1];
        let cell_of = |p: &Point<D>| -> usize {
            let mut idx = 0usize;
            for d in 0..D {
                let c = (((p[d] - bbox.lo[d]) / cell).floor() as usize).min(dims[d] - 1);
                idx = idx * dims[d] + c;
            }
            idx
        };
        for p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let mut entries = vec![0u32; points.len()];
        let mut cursor = counts.clone();
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(p);
            entries[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        Ok(GridIndex {
            bbox,
            cell,
            dims,
            cell_starts: counts,
            entries,
            points: points.to_vec(),
        })
    }

    /// Builds with a cell size heuristically matched to the query radius
    /// (cells of side `radius` keep the scanned neighborhood at 3^D cells).
    pub fn build_for_radius(points: &[Point<D>], radius: f64) -> Result<Self> {
        Self::build(points, radius.max(1e-9))
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no points are indexed (unreachable via `build`, which
    /// rejects empty inputs, but part of the container contract).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Grid cell side length.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Calls `f(index, distance)` for every point within `radius` of
    /// `center` under `norm` (boundary inclusive).
    pub fn for_each_within(
        &self,
        center: &Point<D>,
        radius: f64,
        norm: Norm,
        mut f: impl FnMut(usize, f64),
    ) {
        if radius < 0.0 {
            return;
        }
        // Cell ranges overlapped by the enclosing axis box of the ball.
        // Every norm ball of radius r is inside the L∞ box of radius r.
        let mut lo = [0usize; D];
        let mut hi = [0usize; D];
        for d in 0..D {
            let a = ((center[d] - radius - self.bbox.lo[d]) / self.cell).floor();
            let b = ((center[d] + radius - self.bbox.lo[d]) / self.cell).floor();
            lo[d] = (a.max(0.0)) as usize;
            hi[d] = (b.max(0.0) as usize).min(self.dims[d] - 1);
            if lo[d] > hi[d] {
                return; // query box entirely outside the grid
            }
        }
        // Iterate the cell hyper-rectangle with an odometer.
        let mut cur = lo;
        loop {
            let mut idx = 0usize;
            for d in 0..D {
                idx = idx * self.dims[d] + cur[d];
            }
            let (s, e) = (
                self.cell_starts[idx] as usize,
                self.cell_starts[idx + 1] as usize,
            );
            for &pi in &self.entries[s..e] {
                let p = &self.points[pi as usize];
                let dist = norm.dist(center, p);
                if dist <= radius {
                    f(pi as usize, dist);
                }
            }
            // Odometer increment.
            let mut d = D;
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                if cur[d] < hi[d] {
                    cur[d] += 1;
                    cur[(d + 1)..D].copy_from_slice(&lo[(d + 1)..D]);
                    break;
                }
            }
        }
    }

    /// Collects `(index, distance)` pairs within `radius` of `center`.
    pub fn within(&self, center: &Point<D>, radius: f64, norm: Norm) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        self.for_each_within(center, radius, norm, |i, d| out.push((i, d)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    type P2 = Point<2>;

    fn random_points(n: usize, seed: u64) -> Vec<P2> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
            .collect()
    }

    fn linear_within(points: &[P2], c: &P2, r: f64, norm: Norm) -> Vec<usize> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| norm.dist(c, p) <= r)
            .map(|(i, _)| i)
            .collect()
    }

    fn hits(g: &GridIndex<2>, c: &P2, r: f64, norm: Norm) -> Vec<usize> {
        let mut v: Vec<usize> = g.within(c, r, norm).into_iter().map(|(i, _)| i).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn build_rejects_empty_and_bad_cell() {
        assert!(GridIndex::<2>::build(&[], 1.0).is_err());
        let pts = random_points(4, 0);
        assert!(GridIndex::build(&pts, 0.0).is_err());
        assert!(GridIndex::build(&pts, -1.0).is_err());
        assert!(GridIndex::build(&pts, f64::NAN).is_err());
    }

    #[test]
    fn matches_linear_scan_all_norms() {
        let pts = random_points(250, 21);
        let g = GridIndex::build(&pts, 0.7).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        for norm in [Norm::L1, Norm::L2, Norm::LInf] {
            for _ in 0..30 {
                let c = Point::new([rng.gen_range(-1.0..5.0), rng.gen_range(-1.0..5.0)]);
                let r = rng.gen_range(0.0..2.5);
                assert_eq!(
                    hits(&g, &c, r, norm),
                    linear_within(&pts, &c, r, norm),
                    "norm {norm}"
                );
            }
        }
    }

    #[test]
    fn query_far_outside_grid_is_empty() {
        let pts = random_points(50, 2);
        let g = GridIndex::build(&pts, 1.0).unwrap();
        assert!(hits(&g, &Point::new([100.0, 100.0]), 1.0, Norm::L2).is_empty());
        assert!(hits(&g, &Point::new([-100.0, -100.0]), 1.0, Norm::L2).is_empty());
    }

    #[test]
    fn radius_covering_everything_returns_all() {
        let pts = random_points(80, 3);
        let g = GridIndex::build(&pts, 0.5).unwrap();
        let all = hits(&g, &Point::new([2.0, 2.0]), 100.0, Norm::L2);
        assert_eq!(all, (0..80).collect::<Vec<_>>());
    }

    #[test]
    fn single_point_grid() {
        let g = GridIndex::build(&[Point::new([1.0, 1.0])], 1.0).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(hits(&g, &Point::new([1.0, 1.0]), 0.0, Norm::L2), vec![0]);
    }

    #[test]
    fn identical_points_bucket_together() {
        let pts = vec![Point::new([2.0, 2.0]); 17];
        let g = GridIndex::build(&pts, 1.0).unwrap();
        assert_eq!(hits(&g, &Point::new([2.0, 2.0]), 0.1, Norm::L2).len(), 17);
    }

    #[test]
    fn three_dimensional_grid_matches_scan() {
        let mut rng = StdRng::seed_from_u64(33);
        let pts: Vec<Point<3>> = (0..150)
            .map(|_| {
                Point::new([
                    rng.gen_range(0.0..4.0),
                    rng.gen_range(0.0..4.0),
                    rng.gen_range(0.0..4.0),
                ])
            })
            .collect();
        let g = GridIndex::build(&pts, 1.0).unwrap();
        for _ in 0..20 {
            let c = Point::new([
                rng.gen_range(0.0..4.0),
                rng.gen_range(0.0..4.0),
                rng.gen_range(0.0..4.0),
            ]);
            let r = rng.gen_range(0.1..2.0);
            let mut got: Vec<usize> = g
                .within(&c, r, Norm::L1)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            got.sort_unstable();
            let want: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| Norm::L1.dist(&c, p) <= r)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn build_for_radius_produces_working_index() {
        let pts = random_points(100, 44);
        let g = GridIndex::build_for_radius(&pts, 1.5).unwrap();
        assert_eq!(g.cell_size(), 1.5);
        let c = Point::new([2.0, 2.0]);
        assert_eq!(
            hits(&g, &c, 1.5, Norm::L2),
            linear_within(&pts, &c, 1.5, Norm::L2)
        );
    }
}
