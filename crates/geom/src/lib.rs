//! # mmph-geom — geometry substrate for the `mmph` workspace
//!
//! Computational-geometry building blocks needed by the content-distribution
//! solvers of Wang, Guo & Wu, *"Making Many People Happy: Greedy Solutions
//! for Content Distribution"* (ICPP 2011):
//!
//! * [`Point`] — fixed-dimension points in `R^D` (`D` is a const generic, so
//!   2-D, 3-D and general m-D instances share one well-optimized code path).
//! * [`Norm`] — the general p-norm family of the paper (§III-B): `L1`
//!   (taxicab), `L2` (Euclidean), `LInf` (Chebyshev) and arbitrary `Lp(p)`.
//! * [`welzl`] — exact smallest enclosing circle / ball (Welzl's randomized
//!   expected-linear algorithm), the "smallest circle problem" the paper's
//!   complex local greedy relies on (§II-C, §V-B).
//! * [`l1ball`] — minimax centers under the 1-norm: the paper's
//!   per-dimension projection center (§V-B) and an exact 2-D L1 center via
//!   rotation duality.
//! * [`kdtree`] / [`grid`] / [`balltree`] — spatial indexes for
//!   within-radius queries used by the incremental reward evaluators.
//! * [`aabb`] — axis-aligned bounding boxes and Chebyshev centers.
//! * [`hull`] — 2-D convex hulls (plot overlays, pre-filtering).
//!
//! All floating point here is plain `f64`; inputs containing NaN are
//! rejected at construction time by the higher-level crates, and the
//! algorithms in this crate document their behaviour for degenerate inputs
//! (duplicate points, collinear points, zero radius).

// Numeric kernels in this crate iterate several fixed-size arrays by a
// shared index; iterator-zip rewrites obscure them without changing
// codegen.
#![allow(clippy::needless_range_loop)]

pub mod aabb;
pub mod balltree;
pub mod grid;
pub mod hull;
pub mod kdtree;
pub mod l1ball;
pub mod norm;
pub mod point;
pub mod welzl;

pub use aabb::Aabb;
pub use balltree::BallTree;
pub use grid::GridIndex;
pub use kdtree::KdTree;
pub use norm::Norm;
pub use point::{Point, Point2, Point3};
pub use welzl::{min_enclosing_ball, Ball};

/// Error type for geometry construction and queries.
#[derive(Debug, Clone, PartialEq, thiserror::Error)]
pub enum GeomError {
    /// A coordinate was NaN or infinite where a finite value is required.
    #[error("non-finite coordinate at index {index}: {value}")]
    NonFinite {
        /// Flat index of the offending coordinate.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A dimension mismatch between a runtime-sized input and `D`.
    #[error("expected {expected} coordinates, got {got}")]
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Provided dimensionality.
        got: usize,
    },
    /// An empty point set was supplied to an operation that requires at
    /// least one point.
    #[error("operation requires a non-empty point set")]
    EmptyPointSet,
    /// An invalid p-norm exponent (`p < 1` does not define a norm).
    #[error("invalid p-norm exponent {0}; p must be >= 1")]
    InvalidExponent(f64),
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, GeomError>;
