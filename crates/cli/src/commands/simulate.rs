//! `mmph simulate` — the time-slotted broadcast simulation.

use std::io::Write;

use mmph_core::solvers::{LocalGreedy, SimpleGreedy};
use mmph_sim::broadcast::{simulate, BroadcastConfig, Population};
use mmph_sim::gen::{PointDistribution, SpaceSpec};
use mmph_sim::rng::SeedSeq;

use crate::args::{install_thread_pool, parse, parse_norm, parse_oracle, parse_weights};
use crate::{CliError, Result};

const HELP: &str = "\
mmph simulate — time-slotted broadcast simulation (2-D)

OPTIONS:
  --n N          number of users (default 80)
  --k K          broadcasts per period (default 4)
  --r R          interest radius (default 1.0)
  --norm NORM    l1 | l2 | linf | <p> (default l2)
  --weights W    same | diff | zipf (default diff)
  --horizon H    total broadcast slots (default 48)
  --churn C      per-period churn probability (default 0)
  --drift S      per-period drift sigma, fraction of space (default 0)
  --clusters M   Gaussian interest clusters; 0 = uniform (default 0)
  --solver NAME  greedy2 | greedy3 (default greedy3)
  --oracle S     seq | par | lazy candidate scoring for greedy2 (default seq)
  --threads N    rayon worker threads for --oracle par
  --seed S       RNG seed (default 0)";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<()> {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let flags = parse(
        argv,
        &[
            "n", "k", "r", "norm", "weights", "horizon", "churn", "drift", "clusters", "solver",
            "seed", "oracle", "threads",
        ],
        &[],
    )?;
    let strategy = parse_oracle(flags.get("oracle").unwrap_or("seq"))?;
    install_thread_pool(&flags)?;
    let n: usize = flags.get_or("n", 80)?;
    let k: usize = flags.get_or("k", 4)?;
    let r: f64 = flags.get_or("r", 1.0)?;
    let norm = parse_norm(flags.get("norm").unwrap_or("l2"))?;
    let weights = parse_weights(flags.get("weights").unwrap_or("diff"))?;
    let clusters: usize = flags.get_or("clusters", 0)?;
    let seed: u64 = flags.get_or("seed", 0)?;
    let config = BroadcastConfig {
        horizon_slots: flags.get_or("horizon", 48)?,
        churn_rate: flags.get_or("churn", 0.0)?,
        drift_rel_sigma: flags.get_or("drift", 0.0)?,
        threshold: 0.5,
        seed,
    };
    let distribution = if clusters == 0 {
        PointDistribution::Uniform
    } else {
        PointDistribution::GaussianClusters {
            clusters,
            rel_sigma: 0.08,
        }
    };
    let mut population = Population::<2>::generate(
        n,
        SpaceSpec::PAPER,
        distribution,
        weights,
        SeedSeq::new(seed),
    )?;
    let solver_name = flags.get("solver").unwrap_or("greedy3");
    let run = match solver_name {
        // greedy3's argmax over residual mass is not a candidate scan, so
        // only greedy2 routes through the strategy.
        "greedy2" => simulate(
            &LocalGreedy::new().with_oracle(strategy),
            &mut population,
            r,
            k,
            norm,
            &config,
        )?,
        "greedy3" => simulate(&SimpleGreedy::new(), &mut population, r, k, norm, &config)?,
        other => {
            return Err(CliError::Usage(format!(
                "simulate supports greedy2 or greedy3, got `{other}`"
            )))
        }
    };
    writeln!(
        out,
        "{} periods of k = {} broadcasts over {} slots ({} used)",
        run.periods, run.k, config.horizon_slots, run.slots_used
    )?;
    writeln!(
        out,
        "{:>7} {:>12} {:>12} {:>8} {:>8}",
        "period", "reward", "mean sat.", "happy", "churned"
    )?;
    for p in &run.per_period {
        writeln!(
            out,
            "{:>7} {:>12.3} {:>11.1}% {:>8} {:>8}",
            p.period,
            p.reward,
            100.0 * p.mean_fraction,
            p.satisfied_users,
            p.churned
        )?;
    }
    writeln!(
        out,
        "total reward {:.3}, reward/slot {:.3}, mean satisfaction {:.1}%",
        run.total_reward,
        run.reward_per_slot(),
        100.0 * run.mean_satisfaction()
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(args: &[&str]) -> (Result<()>, String) {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let r = run(&argv, &mut buf);
        (r, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn default_simulation_runs() {
        let (r, out) = run_capture(&["--n", "20", "--horizon", "8", "--k", "2"]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("4 periods"));
        assert!(out.contains("reward/slot"));
    }

    #[test]
    fn with_dynamics_and_clusters() {
        let (r, out) = run_capture(&[
            "--n",
            "30",
            "--horizon",
            "12",
            "--k",
            "3",
            "--churn",
            "0.1",
            "--drift",
            "0.02",
            "--clusters",
            "2",
            "--solver",
            "greedy2",
        ]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("total reward"));
    }

    #[test]
    fn rejects_unknown_solver() {
        let (r, _) = run_capture(&["--solver", "greedy9"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn rejects_bad_churn() {
        let (r, _) = run_capture(&["--churn", "1.5"]);
        assert!(r.is_err());
    }

    #[test]
    fn help_flag() {
        let (r, out) = run_capture(&["--help"]);
        assert!(r.is_ok());
        assert!(out.contains("OPTIONS"));
    }

    #[test]
    fn oracle_strategies_match_in_simulation() {
        let base = [
            "--n",
            "25",
            "--horizon",
            "8",
            "--k",
            "2",
            "--solver",
            "greedy2",
        ];
        let (r, seq) = run_capture(&[&base[..], &["--oracle", "seq"]].concat());
        assert!(r.is_ok(), "{r:?}");
        let (r, lazy) = run_capture(&[&base[..], &["--oracle", "lazy"]].concat());
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(seq, lazy);
    }

    #[test]
    fn deterministic_per_seed() {
        let (_, a) = run_capture(&["--n", "15", "--horizon", "8", "--seed", "3"]);
        let (_, b) = run_capture(&["--n", "15", "--horizon", "8", "--seed", "3"]);
        assert_eq!(a, b);
    }
}
