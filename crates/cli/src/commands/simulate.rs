//! `mmph simulate` — the time-slotted broadcast simulation.

use std::io::Write;
use std::path::Path;

use mmph_core::solvers::{AdaptiveSolver, LocalGreedy, SimpleGreedy};
use mmph_core::{SolveBudget, Solver};
use mmph_sim::broadcast::{
    run_to_completion, BroadcastConfig, BroadcastRun, Checkpoint, FaultPlan, OutageWindow,
    Population,
};
use mmph_sim::gen::{PointDistribution, SpaceSpec};
use mmph_sim::rng::SeedSeq;

use crate::args::{
    install_thread_pool, parse, parse_budget, parse_engine, parse_norm, parse_oracle, parse_weights,
};
use crate::{CliError, Result};

const HELP: &str = "\
mmph simulate — time-slotted broadcast simulation (2-D)

OPTIONS:
  --n N          number of users (default 80)
  --k K          broadcasts per period (default 4)
  --r R          interest radius (default 1.0)
  --norm NORM    l1 | l2 | linf | <p> (default l2)
  --weights W    same | diff | zipf (default diff)
  --horizon H    total broadcast slots (default 48)
  --churn C      per-period churn probability (default 0)
  --drift S      per-period drift sigma, fraction of space (default 0)
  --clusters M   Gaussian interest clusters; 0 = uniform (default 0)
  --solver NAME  greedy2 | greedy3 | adaptive (default greedy3)
  --oracle S     seq | par | lazy candidate scoring for greedy2 (default seq)
  --engine E     auto | scan | kd | ball | sparse reward engine for greedy2
                 (default auto); all engines are bit-identical
  --threads N    rayon worker threads for --oracle par
  --seed S       RNG seed (default 0)

FAULT INJECTION:
  --loss P       per-slot broadcast loss probability in [0, 1] (default 0)
  --outage SPEC  base-station outage windows `start:len[,start:len...]`
  --retries N    retransmission attempts per lost broadcast (default 2)
  --backoff N    slots to back off after a loss (default 1)

SOLVE BUDGET:
  --deadline-ms MS  per-period wall-clock solve budget
  --max-evals N     per-period objective-evaluation budget

CHECKPOINTING:
  --checkpoint FILE   write a resumable JSON checkpoint during the run
  --checkpoint-every N  periods between checkpoint writes (default 1)
  --resume            continue from the checkpoint file instead of a
                      fresh population (generation flags are ignored;
                      the checkpoint carries the full state)";

fn parse_outages(raw: &str) -> Result<Vec<OutageWindow>> {
    raw.split(',')
        .map(|item| {
            let bad = || {
                CliError::Usage(format!(
                    "invalid outage window `{item}`; expected `start:len` (slots)"
                ))
            };
            let (start, len) = item.split_once(':').ok_or_else(bad)?;
            Ok(OutageWindow {
                start: start.trim().parse().map_err(|_| bad())?,
                len: len.trim().parse().map_err(|_| bad())?,
            })
        })
        .collect()
}

fn drive<S: Solver<2>>(
    ck: &mut Checkpoint<2>,
    solver: &S,
    budget: &SolveBudget,
    checkpoint_path: Option<&str>,
    checkpoint_every: usize,
) -> Result<BroadcastRun> {
    let every = if checkpoint_path.is_some() {
        checkpoint_every
    } else {
        0
    };
    let run = run_to_completion(ck, solver, budget, every, |snapshot| {
        // `every > 0` only when a path is present.
        snapshot.save(Path::new(checkpoint_path.expect("checkpoint path")))
    })?;
    if let Some(path) = checkpoint_path {
        ck.save(Path::new(path))?;
    }
    Ok(run)
}

fn print_run(
    out: &mut dyn Write,
    run: &BroadcastRun,
    horizon_slots: usize,
    active: bool,
) -> Result<()> {
    writeln!(
        out,
        "{} periods of k = {} broadcasts over {} slots ({} used)",
        run.periods, run.k, horizon_slots, run.slots_used
    )?;
    if active {
        writeln!(
            out,
            "{:>7} {:>12} {:>12} {:>8} {:>8} {:>6} {:>5} {:>6} {:>5}",
            "period", "reward", "mean sat.", "happy", "churned", "deliv", "lost", "retry", "degr"
        )?;
    } else {
        writeln!(
            out,
            "{:>7} {:>12} {:>12} {:>8} {:>8}",
            "period", "reward", "mean sat.", "happy", "churned"
        )?;
    }
    for p in &run.per_period {
        if active {
            writeln!(
                out,
                "{:>7} {:>12.3} {:>11.1}% {:>8} {:>8} {:>6} {:>5} {:>6} {:>5}",
                p.period,
                p.reward,
                100.0 * p.mean_fraction,
                p.satisfied_users,
                p.churned,
                p.delivered,
                p.lost_broadcasts,
                p.retries,
                if p.degraded { "yes" } else { "no" }
            )?;
        } else {
            writeln!(
                out,
                "{:>7} {:>12.3} {:>11.1}% {:>8} {:>8}",
                p.period,
                p.reward,
                100.0 * p.mean_fraction,
                p.satisfied_users,
                p.churned
            )?;
        }
    }
    writeln!(
        out,
        "total reward {:.3}, reward/slot {:.3}, mean satisfaction {:.1}%",
        run.total_reward,
        run.reward_per_slot(),
        100.0 * run.mean_satisfaction()
    )?;
    if active {
        writeln!(
            out,
            "degraded periods {}, lost broadcasts {}, retries {}",
            run.degraded_periods, run.lost_broadcasts, run.retries
        )?;
    }
    Ok(())
}

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<()> {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let flags = parse(
        argv,
        &[
            "n",
            "k",
            "r",
            "norm",
            "weights",
            "horizon",
            "churn",
            "drift",
            "clusters",
            "solver",
            "seed",
            "oracle",
            "engine",
            "threads",
            "loss",
            "outage",
            "retries",
            "backoff",
            "deadline-ms",
            "max-evals",
            "checkpoint",
            "checkpoint-every",
        ],
        &["resume"],
    )?;
    let solver_name = flags.get("solver").unwrap_or("greedy3");
    // greedy3's argmax over residual mass is not a candidate scan and the
    // adaptive ladder picks its own oracles, so only greedy2 routes
    // through --oracle / --engine / --threads; passing them elsewhere is
    // an error rather than a silent no-op.
    if solver_name != "greedy2"
        && (flags.get("oracle").is_some()
            || flags.get("engine").is_some()
            || flags.get("threads").is_some())
    {
        return Err(CliError::Usage(format!(
            "--oracle/--engine/--threads only apply to --solver greedy2; `{solver_name}` ignores them"
        )));
    }
    let strategy = parse_oracle(flags.get("oracle").unwrap_or("seq"))?;
    let engine = parse_engine(flags.get("engine").unwrap_or("auto"))?;
    install_thread_pool(&flags)?;
    let budget = parse_budget(&flags)?;
    let faults = FaultPlan {
        loss: flags.get_or("loss", 0.0)?,
        outages: match flags.get("outage") {
            Some(raw) => parse_outages(raw)?,
            None => Vec::new(),
        },
        max_retries: flags.get_or("retries", FaultPlan::default().max_retries)?,
        backoff_slots: flags.get_or("backoff", FaultPlan::default().backoff_slots)?,
    };
    faults
        .validate()
        .map_err(|e| CliError::Usage(e.to_string()))?;
    let checkpoint_path = flags.get("checkpoint");
    let checkpoint_every: usize = flags.get_or("checkpoint-every", 1)?;
    if checkpoint_every == 0 {
        return Err(CliError::Usage("--checkpoint-every must be >= 1".into()));
    }
    let mut ck: Checkpoint<2> = if flags.has("resume") {
        let path = checkpoint_path.ok_or_else(|| {
            CliError::Usage("--resume requires --checkpoint FILE to load from".into())
        })?;
        Checkpoint::load(Path::new(path))?
    } else {
        let n: usize = flags.get_or("n", 80)?;
        let k: usize = flags.get_or("k", 4)?;
        let r: f64 = flags.get_or("r", 1.0)?;
        let norm = parse_norm(flags.get("norm").unwrap_or("l2"))?;
        let weights = parse_weights(flags.get("weights").unwrap_or("diff"))?;
        let clusters: usize = flags.get_or("clusters", 0)?;
        let seed: u64 = flags.get_or("seed", 0)?;
        let config = BroadcastConfig {
            horizon_slots: flags.get_or("horizon", 48)?,
            churn_rate: flags.get_or("churn", 0.0)?,
            drift_rel_sigma: flags.get_or("drift", 0.0)?,
            threshold: 0.5,
            seed,
        };
        let distribution = if clusters == 0 {
            PointDistribution::Uniform
        } else {
            PointDistribution::GaussianClusters {
                clusters,
                rel_sigma: 0.08,
            }
        };
        let population = Population::<2>::generate(
            n,
            SpaceSpec::PAPER,
            distribution,
            weights,
            SeedSeq::new(seed),
        )?;
        Checkpoint::new(&config, &faults, population, r, k, norm)?
    };
    let run = match solver_name {
        "greedy2" => drive(
            &mut ck,
            &LocalGreedy::new().with_oracle(strategy).with_engine(engine),
            &budget,
            checkpoint_path,
            checkpoint_every,
        )?,
        "greedy3" => drive(
            &mut ck,
            &SimpleGreedy::new(),
            &budget,
            checkpoint_path,
            checkpoint_every,
        )?,
        "adaptive" => drive(
            &mut ck,
            &AdaptiveSolver::new(),
            &budget,
            checkpoint_path,
            checkpoint_every,
        )?,
        other => {
            return Err(CliError::Usage(format!(
                "simulate supports greedy2, greedy3 or adaptive, got `{other}`"
            )))
        }
    };
    // The fault/degradation columns only appear when something can
    // actually lose a broadcast or trip a budget, so default output is
    // byte-identical to the fault-free simulator.
    let active = ck.faults.is_active() || !budget.is_unlimited();
    print_run(out, &run, ck.config.horizon_slots, active)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(args: &[&str]) -> (Result<()>, String) {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let r = run(&argv, &mut buf);
        (r, String::from_utf8(buf).unwrap())
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mmph-cli-sim-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn default_simulation_runs() {
        let (r, out) = run_capture(&["--n", "20", "--horizon", "8", "--k", "2"]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("4 periods"));
        assert!(out.contains("reward/slot"));
    }

    #[test]
    fn with_dynamics_and_clusters() {
        let (r, out) = run_capture(&[
            "--n",
            "30",
            "--horizon",
            "12",
            "--k",
            "3",
            "--churn",
            "0.1",
            "--drift",
            "0.02",
            "--clusters",
            "2",
            "--solver",
            "greedy2",
        ]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("total reward"));
    }

    #[test]
    fn rejects_unknown_solver() {
        let (r, _) = run_capture(&["--solver", "greedy9"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn rejects_bad_churn() {
        let (r, _) = run_capture(&["--churn", "1.5"]);
        assert!(r.is_err());
    }

    #[test]
    fn help_flag() {
        let (r, out) = run_capture(&["--help"]);
        assert!(r.is_ok());
        assert!(out.contains("OPTIONS"));
        assert!(out.contains("FAULT INJECTION"));
    }

    #[test]
    fn oracle_strategies_match_in_simulation() {
        let base = [
            "--n",
            "25",
            "--horizon",
            "8",
            "--k",
            "2",
            "--solver",
            "greedy2",
        ];
        let (r, seq) = run_capture(&[&base[..], &["--oracle", "seq"]].concat());
        assert!(r.is_ok(), "{r:?}");
        let (r, lazy) = run_capture(&[&base[..], &["--oracle", "lazy"]].concat());
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(seq, lazy);
    }

    #[test]
    fn deterministic_per_seed() {
        let (_, a) = run_capture(&["--n", "15", "--horizon", "8", "--seed", "3"]);
        let (_, b) = run_capture(&["--n", "15", "--horizon", "8", "--seed", "3"]);
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_oracle_for_solvers_that_ignore_it() {
        let (r, _) = run_capture(&["--solver", "greedy3", "--oracle", "par"]);
        assert!(matches!(r, Err(CliError::Usage(_))), "{r:?}");
        let (r, _) = run_capture(&["--solver", "adaptive", "--threads", "2"]);
        assert!(matches!(r, Err(CliError::Usage(_))), "{r:?}");
        // greedy3 without the inapplicable flags still works.
        let (r, _) = run_capture(&["--n", "10", "--horizon", "4", "--k", "2"]);
        assert!(r.is_ok(), "{r:?}");
    }

    #[test]
    fn fault_flags_add_columns_and_counters() {
        let (r, out) = run_capture(&[
            "--n",
            "20",
            "--horizon",
            "12",
            "--k",
            "2",
            "--loss",
            "0.4",
            "--seed",
            "7",
        ]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("deliv"));
        assert!(out.contains("degraded periods"));
    }

    #[test]
    fn loss_free_output_has_no_fault_columns() {
        let (_, out) = run_capture(&["--n", "15", "--horizon", "8", "--loss", "0"]);
        assert!(!out.contains("deliv"));
        assert!(!out.contains("degraded periods"));
    }

    #[test]
    fn outage_flag_parses_and_runs() {
        let (r, out) = run_capture(&[
            "--n",
            "15",
            "--horizon",
            "16",
            "--k",
            "2",
            "--outage",
            "0:3,8:2",
        ]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("degraded periods"));
        let (r, _) = run_capture(&["--outage", "3"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
        let (r, _) = run_capture(&["--outage", "3:0"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn rejects_bad_loss() {
        let (r, _) = run_capture(&["--loss", "1.5"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn adaptive_solver_with_budget_runs() {
        let (r, out) = run_capture(&[
            "--n",
            "20",
            "--horizon",
            "8",
            "--k",
            "2",
            "--solver",
            "adaptive",
            "--max-evals",
            "0",
        ]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("degr"));
        assert!(out.contains("yes"));
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted() {
        let path = tmp("resume.json");
        let base = [
            "--n",
            "20",
            "--horizon",
            "24",
            "--k",
            "2",
            "--churn",
            "0.1",
            "--drift",
            "0.02",
            "--loss",
            "0.2",
            "--seed",
            "9",
        ];
        let (r, reference) = run_capture(&base);
        assert!(r.is_ok(), "{r:?}");
        // Same run, writing checkpoints every period.
        let (r, checkpointed) =
            run_capture(&[&base[..], &["--checkpoint", path.to_str().unwrap()]].concat());
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(reference, checkpointed);
        // Resuming the finished checkpoint re-reports the same totals
        // without running any further periods.
        let (r, resumed) = run_capture(&[
            "--checkpoint",
            path.to_str().unwrap(),
            "--resume",
            "--loss",
            "0.2",
        ]);
        assert!(r.is_ok(), "{r:?}");
        assert!(resumed.contains("total reward"));
    }

    #[test]
    fn resume_requires_checkpoint_path() {
        let (r, _) = run_capture(&["--resume"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }
}
