//! `mmph serve` — run the solver as a long-lived NDJSON daemon.
//!
//! Same dispatch path as `mmph batch` ([`mmph_serve::Service`]), behind
//! a transport: newline-delimited JSON requests on stdin with responses
//! on stdout (the default), or the same protocol over TCP with
//! `--tcp ADDR`. SIGINT, stdin EOF, and the `shutdown` op all drain
//! in-flight requests before exiting 0.

use std::io::{Read, Write};
use std::net::TcpListener;

use mmph_serve::{install_sigint_flag, serve_stdio, serve_tcp, Service, ServiceStats};

use crate::args;
use crate::commands::batch::service_config_from_flags;
use crate::Result;

const HELP: &str = "\
mmph serve — request/response solve daemon (NDJSON protocol)

USAGE:
  mmph serve [OPTIONS]                 stdin/stdout transport
  mmph serve --tcp 127.0.0.1:7311      TCP transport

REQUESTS (one JSON object per line):
  {\"id\":1,\"op\":\"solve\",\"spec\":\"n=500,k=8,seed=3\",\"deadline_ms\":50}
  {\"id\":2,\"op\":\"solve\",\"scenario\":{...full scenario document...}}
  {\"id\":3,\"op\":\"ping\"} | {\"id\":4,\"op\":\"stats\"} | {\"id\":5,\"op\":\"shutdown\"}

Every response echoes the request id as `in_reply_to`; solve responses
carry status (completed|degraded), selection, reward, evals, and
latency_us. Budget expiry degrades a request (prefix selection), it
never hangs the daemon.

OPTIONS:
  --tcp ADDR       listen on ADDR instead of stdin/stdout
  --solver NAME    default solver for requests without one [lazy]
  --oracle NAME    seq|par|lazy — overrides the solver's strategy
  --engine NAME    default engine: auto|scan|kd|ball|sparse|sparse-f32 [sparse]
  --threads N      worker threads (default: all cores)
  --par-csr        build CSR adjacency with the parallel path
  --cold           disable scratch/engine reuse across requests
  --max-batch N    max requests folded into one dispatch round [64]
  --deadline-ms N  default per-request wall-clock budget
  --max-evals N    default per-request evaluation budget
  --queue-cap N    dispatch backlog bound; excess is shed with an
                   `overloaded` response carrying retry_after_ms [1024]
  --max-inflight N per-connection in-flight request cap (TCP) [64]
  --retry-after-ms N   backoff hint attached to shed responses [25]
  --write-timeout-ms N per-connection socket write timeout; a stalled
                       client is disconnected and its work cancelled [2000]
  --chunk-selection N  stream selections longer than N back as multiple
                       chunked frames (0 disables chunking) [4096]
  --help           show this message

Solve requests may carry `coreset_cells` or `shards` to route through
the large-n pipelines; an `auto`-engine request whose CSR estimate
busts the sparse cap escalates to the coreset pipeline on its own.";

fn summarize(stats: &ServiceStats) -> String {
    format!(
        "serve: {} received, {} responded ({} solved, {} degraded, {} errors), {} engine reuses",
        stats.received,
        stats.responded,
        stats.solved,
        stats.degraded,
        stats.errors,
        stats.engines_reused
    )
}

/// Entry point for `mmph serve`: stdio transport reads the real stdin.
/// On the stdio transport stdout carries protocol lines only, so the
/// exit summary goes to stderr.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<()> {
    run_with_reader(argv, std::io::stdin(), out)
}

/// Testable entry point with an injectable request reader (ignored by
/// the TCP transport).
pub fn run_with_reader<R>(argv: &[String], reader: R, out: &mut dyn Write) -> Result<()>
where
    R: Read + Send + 'static,
{
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let flags = args::parse(
        argv,
        &[
            "tcp",
            "solver",
            "oracle",
            "engine",
            "threads",
            "max-batch",
            "deadline-ms",
            "max-evals",
            "queue-cap",
            "max-inflight",
            "retry-after-ms",
            "write-timeout-ms",
            "chunk-selection",
        ],
        &["par-csr", "cold"],
    )?;
    args::install_thread_pool(&flags)?;
    let mut config = service_config_from_flags(&flags)?;
    config.max_batch = flags.get_or("max-batch", config.max_batch)?;
    config.queue_cap = flags.get_or("queue-cap", config.queue_cap)?;
    config.per_conn_inflight = flags.get_or("max-inflight", config.per_conn_inflight)?;
    config.retry_after_ms = flags.get_or("retry-after-ms", config.retry_after_ms)?;
    config.write_timeout_ms = flags.get_or("write-timeout-ms", config.write_timeout_ms)?;
    config.chunk_selection = flags.get_or("chunk-selection", config.chunk_selection)?;
    let mut service = Service::new(config);
    let shutdown = install_sigint_flag();

    let stats = match flags.get("tcp") {
        Some(addr) => {
            let listener = TcpListener::bind(addr)?;
            writeln!(out, "serve: listening on {}", listener.local_addr()?)?;
            out.flush()?;
            serve_tcp(&mut service, listener, &shutdown)?
        }
        None => serve_stdio(&mut service, reader, out, &shutdown)?,
    };
    // stdout is the protocol channel on the stdio transport; the
    // summary goes to stderr so clients never see a non-JSON line.
    eprintln!("{}", summarize(&stats));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CliError;
    use mmph_serve::{Request, Response};
    use std::io::Cursor;

    fn run_script(args: &[&str], script: &str) -> (Result<()>, String) {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let r = run_with_reader(&argv, Cursor::new(script.as_bytes().to_vec()), &mut buf);
        (r, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn help_prints() {
        let (r, out) = run_script(&["--help"], "");
        assert!(r.is_ok());
        assert!(out.contains("mmph serve"));
        assert!(out.contains("in_reply_to"));
    }

    #[test]
    fn unknown_flag_rejected() {
        let (r, _) = run_script(&["--udp", "x"], "");
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn stdio_session_solves_and_exits_on_eof() {
        let script = concat!(
            r#"{"id":1,"op":"ping"}"#,
            "\n",
            r#"{"id":2,"op":"solve","spec":"n=30,k=3,seed=4"}"#,
            "\n",
        );
        let (r, out) = run_script(&[], script);
        assert!(r.is_ok(), "{r:?}");
        let responses: Vec<Response> = out.lines().map(|l| Response::parse(l).unwrap()).collect();
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].op, "pong");
        assert!(
            responses[1].is_completed_solve(),
            "{:?}",
            responses[1].error
        );
        assert_eq!(responses[1].in_reply_to, Some(2));
    }

    #[test]
    fn stdio_session_honors_shutdown_op() {
        let script = format!("{}\n", Request::control(9, "shutdown").to_line());
        let (r, out) = run_script(&[], &script);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.lines().any(|l| l.contains("\"bye\"")), "{out}");
    }

    #[test]
    fn admission_flags_parse_and_serve_normally() {
        let script = concat!(r#"{"id":7,"op":"solve","spec":"n=30,k=3,seed=4"}"#, "\n");
        let (r, out) = run_script(
            &[
                "--queue-cap",
                "8",
                "--max-inflight",
                "2",
                "--retry-after-ms",
                "5",
                "--write-timeout-ms",
                "500",
            ],
            script,
        );
        assert!(r.is_ok(), "{r:?}");
        let resp = Response::parse(out.lines().next().unwrap()).unwrap();
        assert!(resp.is_completed_solve(), "{:?}", resp.error);
        assert!(resp.queue_ms.is_some(), "responses report queueing delay");
    }

    #[test]
    fn chunk_selection_flag_splits_big_selections() {
        let script = concat!(r#"{"id":5,"op":"solve","spec":"n=40,k=4,seed=2"}"#, "\n");
        let (r, out) = run_script(&["--chunk-selection", "3"], script);
        assert!(r.is_ok(), "{r:?}");
        let frames: Vec<Response> = out.lines().map(|l| Response::parse(l).unwrap()).collect();
        assert_eq!(frames.len(), 2, "k=4 over a 3-entry cap: two frames");
        assert_eq!(frames[0].chunk, Some(0));
        assert_eq!(frames[1].chunk, Some(1));
        let merged = mmph_serve::merge_chunks(frames).unwrap();
        assert!(merged.is_completed_solve(), "{:?}", merged.error);
        assert_eq!(merged.selection.as_ref().unwrap().len(), 4);
    }

    #[test]
    fn pipeline_request_fields_answer_with_pipeline_metadata() {
        let script = concat!(
            r#"{"id":6,"op":"solve","spec":"n=60,k=3,seed=5","coreset_cells":6.0}"#,
            "\n",
        );
        let (r, out) = run_script(&[], script);
        assert!(r.is_ok(), "{r:?}");
        let resp = Response::parse(out.lines().next().unwrap()).unwrap();
        assert!(resp.is_completed_solve(), "{:?}", resp.error);
        assert_eq!(resp.pipeline.as_deref(), Some("coreset"));
        assert!(resp.gap.is_some());
    }

    #[test]
    fn default_budget_flag_applies_to_requests() {
        let script = concat!(r#"{"id":3,"op":"solve","spec":"n=80,k=6,seed=1"}"#, "\n");
        let (r, out) = run_script(&["--max-evals", "20"], script);
        assert!(r.is_ok(), "{r:?}");
        let resp = Response::parse(out.lines().next().unwrap()).unwrap();
        assert_eq!(resp.status.as_deref(), Some("degraded"), "{resp:?}");
    }
}
