//! `mmph generate` — create an instance trace JSON.

use std::io::Write;
use std::path::PathBuf;

use mmph_sim::scenario::Scenario;
use mmph_sim::trace::{save_traces, InstanceTrace};

use crate::args::{parse, parse_norm, parse_weights};
use crate::{CliError, Result};

const HELP: &str = "\
mmph generate — generate a problem instance and write it as JSON

OPTIONS:
  --n N          number of users (default 40)
  --k K          number of broadcasts (default 4)
  --r R          interest radius (default 1.0)
  --dim D        2 or 3 (default 2)
  --norm NORM    l1 | l2 | linf | <p> (default l2)
  --weights W    same | diff | zipf (default diff)
  --seed S       RNG seed (default 0)
  --out FILE     output path (required)";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<()> {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let flags = parse(
        argv,
        &["n", "k", "r", "dim", "norm", "weights", "seed", "out"],
        &[],
    )?;
    let n: usize = flags.get_or("n", 40)?;
    let k: usize = flags.get_or("k", 4)?;
    let r: f64 = flags.get_or("r", 1.0)?;
    let dim: usize = flags.get_or("dim", 2)?;
    let norm = parse_norm(flags.get("norm").unwrap_or("l2"))?;
    let weights = parse_weights(flags.get("weights").unwrap_or("diff"))?;
    let seed: u64 = flags.get_or("seed", 0)?;
    let path: PathBuf = flags.require("out")?;

    match dim {
        2 => {
            let scenario = Scenario::paper_2d(n, k, r, norm, weights, seed);
            let trace = InstanceTrace::<2>::record(scenario)?;
            save_traces(&path, std::slice::from_ref(&trace))?;
        }
        3 => {
            let scenario = Scenario::paper_3d(n, k, r, norm, weights, seed);
            let trace = InstanceTrace::<3>::record(scenario)?;
            save_traces(&path, std::slice::from_ref(&trace))?;
        }
        other => {
            return Err(CliError::Usage(format!(
                "--dim must be 2 or 3, got {other}"
            )))
        }
    }
    writeln!(
        out,
        "wrote {dim}-D instance (n = {n}, k = {k}, r = {r}, norm = {norm}) to {}",
        path.display()
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(args: &[&str]) -> (Result<()>, String) {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let r = run(&argv, &mut buf);
        (r, String::from_utf8(buf).unwrap())
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mmph-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn generates_2d_instance_file() {
        let path = tmp("gen2d.json");
        let (r, out) = run_capture(&["--n", "10", "--k", "2", "--out", path.to_str().unwrap()]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("wrote 2-D instance"));
        let traces: Vec<InstanceTrace<2>> = mmph_sim::trace::load_traces(&path).unwrap();
        assert_eq!(traces[0].instance.n(), 10);
        assert!(traces[0].verify());
    }

    #[test]
    fn generates_3d_instance_file() {
        let path = tmp("gen3d.json");
        let (r, _) = run_capture(&[
            "--n",
            "8",
            "--dim",
            "3",
            "--norm",
            "l1",
            "--weights",
            "same",
            "--out",
            path.to_str().unwrap(),
        ]);
        assert!(r.is_ok(), "{r:?}");
        let traces: Vec<InstanceTrace<3>> = mmph_sim::trace::load_traces(&path).unwrap();
        assert_eq!(traces[0].instance.norm(), mmph_geom::Norm::L1);
    }

    #[test]
    fn requires_out() {
        let (r, _) = run_capture(&["--n", "5"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn rejects_bad_dim() {
        let path = tmp("gen4d.json");
        let (r, _) = run_capture(&["--dim", "4", "--out", path.to_str().unwrap()]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn help_flag() {
        let (r, out) = run_capture(&["--help"]);
        assert!(r.is_ok());
        assert!(out.contains("OPTIONS"));
    }
}
