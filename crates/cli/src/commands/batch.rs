//! `mmph batch` — solve a stream of instances through the batched
//! pipeline ([`BatchRunner`]): one scratch arena per worker,
//! engine reuse across adjacent identical requests, and aggregate
//! throughput reporting.

use std::io::Write;

use mmph_core::{verify_reports, BatchReport, BatchRunner, OracleStrategy};
use serde::Serialize;

use crate::args::{self, Flags};
use crate::{CliError, Result};

const HELP: &str = "\
mmph batch — batched solving over a stream of instances

USAGE:
  mmph batch --scenarios <DIR|FILE|SPEC> [OPTIONS]

OPTIONS:
  --scenarios X    request stream: a directory of scenario *.json files,
                   one such file, or an inline spec like
                   n=10000,k=16,count=4,repeat=8,seed=0,norm=l2,weights=diff
  --solver NAME    greedy2 (sequential argmax) or lazy (CELF) [lazy]
  --oracle NAME    seq|par|lazy — overrides the solver's strategy
  --engine NAME    auto|scan|kd|ball|sparse [sparse]
  --threads N      worker threads (default: all cores)
  --par-csr        build CSR adjacency with the parallel path
  --cold           disable scratch/engine reuse (per-request baseline)
  --verify         also run the opposite mode and require bit-identical
                   selections and rewards
  --json FILE      write the full report as JSON
  --quiet          suppress per-request lines
  --help           show this message";

/// Report envelope written by `--json`. Owned fields: the vendored
/// serde derive does not handle lifetime parameters.
#[derive(Serialize)]
struct JsonReport {
    command: String,
    scenarios: String,
    solver: String,
    engine: String,
    parallel_csr: bool,
    report: BatchReport,
    throughput_per_sec: f64,
    engines_reused: usize,
    verified: Option<bool>,
}

fn strategy_from_flags(flags: &Flags) -> Result<OracleStrategy> {
    if let Some(raw) = flags.get("oracle") {
        return args::parse_oracle(raw);
    }
    match flags.get("solver").unwrap_or("lazy") {
        "greedy2" => Ok(OracleStrategy::Seq),
        "lazy" => Ok(OracleStrategy::Lazy),
        other => Err(CliError::Usage(format!(
            "--solver must be greedy2 or lazy (got `{other}`); use --oracle to force a strategy"
        ))),
    }
}

/// Entry point for `mmph batch`.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<()> {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let flags = args::parse(
        argv,
        &["scenarios", "solver", "oracle", "engine", "threads", "json"],
        &["par-csr", "cold", "verify", "quiet"],
    )?;
    args::install_thread_pool(&flags)?;
    let scenarios_arg: String = flags.require("scenarios")?;
    let strategy = strategy_from_flags(&flags)?;
    let engine = args::parse_engine(flags.get("engine").unwrap_or("sparse"))?;
    let warm = !flags.has("cold");

    let instances = mmph_sim::instances_from_arg(&scenarios_arg)?;
    let runner = BatchRunner::new()
        .with_strategy(strategy)
        .with_engine(engine)
        .with_parallel_csr(flags.has("par-csr"))
        .with_warm(warm);
    let report = runner.run(&instances);

    let verified = if flags.has("verify") {
        let reference = runner.clone().with_warm(!warm).run(&instances);
        verify_reports(&report, &reference).map_err(CliError::Usage)?;
        Some(true)
    } else {
        None
    };

    if !flags.has("quiet") {
        for r in &report.results {
            writeln!(
                out,
                "req {:>4}  n={:<7} k={:<3} reward={:<12.4} evals={:<9} {:>9.3} ms{}",
                r.index,
                r.n,
                r.k,
                r.reward,
                r.evals,
                r.solve_nanos as f64 / 1e6,
                if r.engine_reused {
                    "  (engine reused)"
                } else {
                    ""
                }
            )?;
        }
    }
    writeln!(
        out,
        "batch: {} requests on {} worker(s) [{} | {} | {} csr] in {:.3} s = {:.1} req/s; engines reused {}/{}",
        report.results.len(),
        report.workers,
        if warm { "warm" } else { "cold" },
        strategy,
        if flags.has("par-csr") { "parallel" } else { "serial" },
        report.wall_nanos as f64 / 1e9,
        report.throughput(),
        report.engines_reused(),
        report.results.len(),
    )?;
    if verified == Some(true) {
        writeln!(
            out,
            "verify: selections and rewards bit-identical to the {} reference",
            if warm { "cold" } else { "warm" }
        )?;
    }

    if let Some(path) = flags.get("json") {
        let envelope = JsonReport {
            command: "batch".to_owned(),
            scenarios: scenarios_arg.clone(),
            solver: strategy.to_string(),
            engine: engine.name().to_owned(),
            parallel_csr: flags.has("par-csr"),
            throughput_per_sec: report.throughput(),
            engines_reused: report.engines_reused(),
            verified,
            report,
        };
        std::fs::write(path, serde_json::to_string_pretty(&envelope)? + "\n")?;
        writeln!(out, "batch: wrote {path}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(args: &[&str]) -> (Result<()>, String) {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let r = run(&argv, &mut buf);
        (r, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn help_prints() {
        let (r, out) = run_capture(&["--help"]);
        assert!(r.is_ok());
        assert!(out.contains("mmph batch"));
    }

    #[test]
    fn requires_scenarios() {
        let (r, _) = run_capture(&[]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn inline_spec_runs_and_verifies() {
        let (r, out) = run_capture(&[
            "--scenarios",
            "n=30,k=3,count=2,repeat=2,seed=3",
            "--verify",
        ]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("4 requests"));
        assert!(out.contains("engines reused 2/4"), "{out}");
        assert!(out.contains("bit-identical"));
    }

    #[test]
    fn cold_mode_reuses_nothing() {
        let (r, out) = run_capture(&["--scenarios", "n=20,repeat=3", "--cold", "--quiet"]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("engines reused 0/3"), "{out}");
        assert!(out.contains("cold"));
    }

    #[test]
    fn solver_and_oracle_flags() {
        for extra in [
            ["--solver", "greedy2"],
            ["--oracle", "par"],
            ["--engine", "kd"],
        ] {
            let mut argv = vec!["--scenarios", "n=15,repeat=2", "--quiet", "--verify"];
            argv.extend(extra);
            let (r, _) = run_capture(&argv);
            assert!(r.is_ok(), "{extra:?}: {r:?}");
        }
        let (r, _) = run_capture(&["--scenarios", "n=15", "--solver", "greedy9"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn par_csr_flag_verifies_against_serial_cold() {
        let (r, out) = run_capture(&[
            "--scenarios",
            "n=40,count=2,repeat=2",
            "--par-csr",
            "--verify",
            "--quiet",
        ]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("parallel csr"), "{out}");
    }

    #[test]
    fn json_report_is_written() {
        let path = std::env::temp_dir().join(format!("mmph-batch-{}.json", std::process::id()));
        // --threads 1 keeps both repeats on one worker regardless of
        // what other tests set the global pool to.
        let (r, _) = run_capture(&[
            "--scenarios",
            "n=12,repeat=2",
            "--threads",
            "1",
            "--quiet",
            "--json",
            path.to_str().unwrap(),
        ]);
        assert!(r.is_ok(), "{r:?}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"command\": \"batch\""), "{text}");
        assert!(text.contains("\"throughput_per_sec\""));
        assert!(text.contains("\"engine_reused\": true"), "repeat reused");
        std::fs::remove_file(&path).unwrap();
    }
}
