//! `mmph batch` — solve a stream of instances through the service
//! layer's dispatch path: the scenario stream becomes one round of
//! solve requests handled by [`mmph_serve::Service`], which multiplexes
//! them onto the batched pipeline (one scratch arena per worker,
//! engine reuse across adjacent identical requests). `mmph serve` runs
//! the very same path behind a transport, so batch output doubles as
//! the daemon's reference behavior — `--verify` pins the two modes
//! bit-identically.

use std::io::Write;
use std::time::Instant;

use mmph_core::{verify_reports, BatchReport, OracleStrategy};
use mmph_serve::{report_from_responses, Request, Service, ServiceConfig};
use serde::Serialize;

use crate::args::{self, Flags};
use crate::{CliError, Result};

const HELP: &str = "\
mmph batch — batched solving over a stream of instances

USAGE:
  mmph batch --scenarios <DIR|FILE|SPEC> [OPTIONS]

OPTIONS:
  --scenarios X     request stream: a directory of scenario *.json files,
                    one such file, or an inline spec like
                    n=10000,k=16,count=4,repeat=8,seed=0,norm=l2,weights=diff
  --solver NAME     greedy2 (sequential argmax) or lazy (CELF) [lazy]
  --oracle NAME     seq|par|lazy — overrides the solver's strategy
  --engine NAME     auto|scan|kd|ball|sparse|sparse-f32 [sparse]
  --threads N       worker threads (default: all cores)
  --par-csr         build CSR adjacency with the parallel path
  --cold            disable scratch/engine reuse (per-request baseline)
  --deadline-ms N   per-request wall-clock budget (degrades, never hangs)
  --max-evals N     per-request objective-evaluation budget
  --coreset-cells C solve every request through the coreset pipeline
                    (grid cells per radius; see `mmph solve`)
  --shards S        solve every request through the shard-then-merge
                    pipeline with S spatial shards
  --verify          also run the opposite mode and require bit-identical
                    selections and rewards (rejected with --deadline-ms:
                    wall-clock budgets are nondeterministic)
  --json FILE       write the full report as JSON
  --quiet           suppress per-request lines
  --help            show this message";

/// Report envelope written by `--json`. Owned fields: the vendored
/// serde derive does not handle lifetime parameters.
#[derive(Serialize)]
struct JsonReport {
    command: String,
    scenarios: String,
    solver: String,
    engine: String,
    parallel_csr: bool,
    report: BatchReport,
    throughput_per_sec: f64,
    engines_reused: usize,
    verified: Option<bool>,
}

fn strategy_from_flags(flags: &Flags) -> Result<OracleStrategy> {
    if let Some(raw) = flags.get("oracle") {
        return args::parse_oracle(raw);
    }
    match flags.get("solver").unwrap_or("lazy") {
        "greedy2" => Ok(OracleStrategy::Seq),
        "lazy" => Ok(OracleStrategy::Lazy),
        other => Err(CliError::Usage(format!(
            "--solver must be greedy2 or lazy (got `{other}`); use --oracle to force a strategy"
        ))),
    }
}

/// Builds the service configuration `mmph batch` and `mmph serve`
/// share from the common flag set.
pub fn service_config_from_flags(flags: &Flags) -> Result<ServiceConfig> {
    Ok(ServiceConfig {
        strategy: strategy_from_flags(flags)?,
        engine: args::parse_engine(flags.get("engine").unwrap_or("sparse"))?,
        parallel_csr: flags.has("par-csr"),
        warm: !flags.has("cold"),
        default_budget: args::parse_budget(flags)?,
        ..ServiceConfig::default()
    })
}

/// Per-request large-n pipeline selection shared by every request in
/// the stream: `--coreset-cells` or `--shards`.
#[derive(Clone, Copy, Default)]
struct PipelineFlags {
    coreset_cells: Option<f64>,
    shards: Option<usize>,
}

impl PipelineFlags {
    fn from_flags(flags: &Flags) -> Result<Self> {
        let coreset_cells = flags
            .get("coreset-cells")
            .map(|raw| {
                raw.parse::<f64>()
                    .ok()
                    .filter(|c| *c > 0.0 && c.is_finite())
                    .ok_or_else(|| CliError::Usage(format!("invalid --coreset-cells: {raw}")))
            })
            .transpose()?;
        let shards = flags
            .get("shards")
            .map(|raw| {
                raw.parse::<usize>()
                    .ok()
                    .filter(|s| *s >= 1)
                    .ok_or_else(|| CliError::Usage(format!("invalid --shards: {raw}")))
            })
            .transpose()?;
        if coreset_cells.is_some() && shards.is_some() {
            return Err(CliError::Usage(
                "--coreset-cells and --shards are mutually exclusive; pick one pipeline".into(),
            ));
        }
        Ok(PipelineFlags {
            coreset_cells,
            shards,
        })
    }
}

/// Runs one scenario stream through a fresh [`Service`] and folds the
/// responses back into a [`BatchReport`].
fn run_stream(
    config: ServiceConfig,
    scenarios: &[mmph_sim::Scenario],
    pipeline: PipelineFlags,
) -> Result<BatchReport> {
    let warm = config.warm;
    let mut service = Service::new(config);
    let requests: Vec<Request> = scenarios
        .iter()
        .enumerate()
        .map(|(i, sc)| {
            let mut req = Request::solve(i as u64, sc.clone());
            req.coreset_cells = pipeline.coreset_cells;
            req.shards = pipeline.shards;
            req
        })
        .collect();
    let start = Instant::now();
    let responses = service.handle_requests(requests, start);
    let wall_nanos = start.elapsed().as_nanos() as u64;
    Ok(report_from_responses(
        &responses,
        wall_nanos,
        rayon::current_num_threads(),
        warm,
    )?)
}

/// Entry point for `mmph batch`.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<()> {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let flags = args::parse(
        argv,
        &[
            "scenarios",
            "solver",
            "oracle",
            "engine",
            "threads",
            "json",
            "deadline-ms",
            "max-evals",
            "coreset-cells",
            "shards",
        ],
        &["par-csr", "cold", "verify", "quiet"],
    )?;
    args::install_thread_pool(&flags)?;
    let scenarios_arg: String = flags.require("scenarios")?;
    if flags.has("verify") && flags.get("deadline-ms").is_some() {
        return Err(CliError::Usage(
            "--verify cannot be combined with --deadline-ms: wall-clock budgets trip \
             nondeterministically, so the two runs may legitimately differ (eval budgets \
             via --max-evals are deterministic and verify fine)"
                .into(),
        ));
    }
    let config = service_config_from_flags(&flags)?;
    let warm = config.warm;
    let pipeline = PipelineFlags::from_flags(&flags)?;

    let scenarios = mmph_sim::scenarios_from_arg(&scenarios_arg)?;
    let report = run_stream(config.clone(), &scenarios, pipeline)?;

    let verified = if flags.has("verify") {
        let reference = run_stream(
            ServiceConfig {
                warm: !warm,
                ..config.clone()
            },
            &scenarios,
            pipeline,
        )?;
        verify_reports(&report, &reference).map_err(CliError::Usage)?;
        Some(true)
    } else {
        None
    };

    if !flags.has("quiet") {
        for r in &report.results {
            writeln!(
                out,
                "req {:>4}  n={:<7} k={:<3} reward={:<12.4} evals={:<9} {:>9.3} ms{}",
                r.index,
                r.n,
                r.k,
                r.reward,
                r.evals,
                r.solve_nanos as f64 / 1e6,
                if r.engine_reused {
                    "  (engine reused)"
                } else {
                    ""
                }
            )?;
        }
    }
    writeln!(
        out,
        "batch: {} requests on {} worker(s) [{} | {} | {} csr] in {:.3} s = {:.1} req/s; engines reused {}/{}",
        report.results.len(),
        report.workers,
        if warm { "warm" } else { "cold" },
        config.strategy,
        if config.parallel_csr { "parallel" } else { "serial" },
        report.wall_nanos as f64 / 1e9,
        report.throughput(),
        report.engines_reused(),
        report.results.len(),
    )?;
    if report.degraded() > 0 || report.errors() > 0 {
        writeln!(
            out,
            "batch: {} degraded by budget, {} errored",
            report.degraded(),
            report.errors()
        )?;
    }
    if verified == Some(true) {
        writeln!(
            out,
            "verify: selections and rewards bit-identical to the {} reference",
            if warm { "cold" } else { "warm" }
        )?;
    }

    if let Some(path) = flags.get("json") {
        let envelope = JsonReport {
            command: "batch".to_owned(),
            scenarios: scenarios_arg.clone(),
            solver: config.strategy.to_string(),
            engine: config.engine.name().to_owned(),
            parallel_csr: config.parallel_csr,
            throughput_per_sec: report.throughput(),
            engines_reused: report.engines_reused(),
            verified,
            report,
        };
        std::fs::write(path, serde_json::to_string_pretty(&envelope)? + "\n")?;
        writeln!(out, "batch: wrote {path}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(args: &[&str]) -> (Result<()>, String) {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let r = run(&argv, &mut buf);
        (r, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn help_prints() {
        let (r, out) = run_capture(&["--help"]);
        assert!(r.is_ok());
        assert!(out.contains("mmph batch"));
    }

    #[test]
    fn requires_scenarios() {
        let (r, _) = run_capture(&[]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn inline_spec_runs_and_verifies() {
        let (r, out) = run_capture(&[
            "--scenarios",
            "n=30,k=3,count=2,repeat=2,seed=3",
            "--verify",
        ]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("4 requests"));
        assert!(out.contains("engines reused 2/4"), "{out}");
        assert!(out.contains("bit-identical"));
    }

    #[test]
    fn cold_mode_reuses_nothing() {
        let (r, out) = run_capture(&["--scenarios", "n=20,repeat=3", "--cold", "--quiet"]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("engines reused 0/3"), "{out}");
        assert!(out.contains("cold"));
    }

    #[test]
    fn solver_and_oracle_flags() {
        for extra in [
            ["--solver", "greedy2"],
            ["--oracle", "par"],
            ["--engine", "kd"],
        ] {
            let mut argv = vec!["--scenarios", "n=15,repeat=2", "--quiet", "--verify"];
            argv.extend(extra);
            let (r, _) = run_capture(&argv);
            assert!(r.is_ok(), "{extra:?}: {r:?}");
        }
        let (r, _) = run_capture(&["--scenarios", "n=15", "--solver", "greedy9"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn par_csr_flag_verifies_against_serial_cold() {
        let (r, out) = run_capture(&[
            "--scenarios",
            "n=40,count=2,repeat=2",
            "--par-csr",
            "--verify",
            "--quiet",
        ]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("parallel csr"), "{out}");
    }

    #[test]
    fn json_report_is_written() {
        let path = std::env::temp_dir().join(format!("mmph-batch-{}.json", std::process::id()));
        // --threads 1 keeps both repeats on one worker regardless of
        // what other tests set the global pool to.
        let (r, _) = run_capture(&[
            "--scenarios",
            "n=12,repeat=2",
            "--threads",
            "1",
            "--quiet",
            "--json",
            path.to_str().unwrap(),
        ]);
        assert!(r.is_ok(), "{r:?}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"command\": \"batch\""), "{text}");
        assert!(text.contains("\"throughput_per_sec\""));
        assert!(text.contains("\"engine_reused\": true"), "repeat reused");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pipeline_flags_route_through_the_service() {
        let (r, out) = run_capture(&[
            "--scenarios",
            "n=40,k=3,repeat=2",
            "--coreset-cells",
            "6",
            "--quiet",
        ]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("2 requests"), "{out}");

        let (r, out) = run_capture(&["--scenarios", "n=40,k=3", "--shards", "2", "--quiet"]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("1 requests"), "{out}");

        let (r, _) = run_capture(&[
            "--scenarios",
            "n=20",
            "--coreset-cells",
            "4",
            "--shards",
            "2",
        ]);
        let Err(CliError::Usage(msg)) = r else {
            panic!("both pipelines must be rejected: {r:?}");
        };
        assert!(msg.contains("mutually exclusive"), "{msg}");
    }

    #[test]
    fn eval_budget_degrades_and_reports() {
        let (r, out) = run_capture(&[
            "--scenarios",
            "n=60,k=5,repeat=2",
            "--max-evals",
            "30",
            "--quiet",
        ]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("degraded by budget"), "{out}");
    }

    #[test]
    fn eval_budget_verifies_but_deadline_does_not() {
        let (r, out) = run_capture(&[
            "--scenarios",
            "n=30,repeat=2",
            "--max-evals",
            "25",
            "--verify",
            "--quiet",
        ]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("bit-identical"), "{out}");

        let (r, _) = run_capture(&["--scenarios", "n=30", "--deadline-ms", "1000", "--verify"]);
        let Err(CliError::Usage(msg)) = r else {
            panic!("deadline + verify must be rejected: {r:?}");
        };
        assert!(msg.contains("nondeterministically"), "{msg}");
    }
}
