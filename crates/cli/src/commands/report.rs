//! `mmph report` — solve an instance and explain the broadcast plan.

use std::io::Write;

use mmph_core::analysis::analyze;
use mmph_core::Solution;

use crate::args::{install_thread_pool, parse, parse_engine, parse_oracle};
use crate::commands::solve::{load_or_generate_2d, solve_by_name};
use crate::Result;

const HELP: &str = "\
mmph report — solve and explain a broadcast plan (2-D)

INPUT (one of):
  --input FILE   instance trace JSON written by `mmph generate`
  --n/--k/--r/--norm/--weights/--seed   generate inline

OPTIONS:
  --solver NAME  one of the names from `mmph solvers` (default greedy2)
  --oracle S     candidate-scoring strategy: seq | par | lazy (default seq)
  --engine E     reward-evaluation engine: auto | scan | kd | ball | sparse
                 (default auto); all engines are bit-identical
  --threads N    rayon worker threads for --oracle par";

/// Renders a 10-bin satisfaction histogram as ASCII bars.
fn histogram_lines(hist: &[usize; 10]) -> Vec<String> {
    let max = hist.iter().copied().max().unwrap_or(0).max(1);
    (0..10)
        .map(|b| {
            let bar = "#".repeat(hist[b] * 40 / max);
            let hi = if b == 9 {
                "1.0]".to_owned()
            } else {
                format!("{:.1})", (b + 1) as f64 / 10.0)
            };
            format!("  [{:.1}, {hi:<5} {:>4}  {bar}", b as f64 / 10.0, hist[b])
        })
        .collect()
}

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<()> {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let flags = parse(
        argv,
        &[
            "input", "solver", "n", "k", "r", "norm", "weights", "seed", "oracle", "engine",
            "threads",
        ],
        &[],
    )?;
    let strategy = parse_oracle(flags.get("oracle").unwrap_or("seq"))?;
    let engine = parse_engine(flags.get("engine").unwrap_or("auto"))?;
    install_thread_pool(&flags)?;
    let inst = load_or_generate_2d(&flags)?;
    let solver = flags.get("solver").unwrap_or("greedy2");
    let sol: Solution<2> = solve_by_name(solver, &inst, strategy, engine)?;
    let report = analyze(&inst, &sol.centers);

    writeln!(
        out,
        "plan: {} on n = {}, k = {}, r = {}, norm = {} — total reward {:.4} of {:.1} possible",
        sol.solver,
        inst.n(),
        inst.k(),
        inst.radius(),
        inst.norm(),
        sol.total_reward,
        inst.total_weight()
    )?;
    writeln!(
        out,
        "\n{:>3} {:>22} {:>9} {:>9} {:>10} {:>11} {:>6}",
        "#", "center", "in range", "primary", "claimed", "standalone", "eff."
    )?;
    for (c, center) in report.centers.iter().zip(&sol.centers) {
        writeln!(
            out,
            "{:>3} {:>22} {:>9} {:>9} {:>10.4} {:>11.4} {:>5.0}%",
            c.index,
            format!("({:.2}, {:.2})", center[0], center[1]),
            c.points_in_range,
            c.primary_points,
            c.claimed_reward,
            c.standalone_reward,
            100.0 * c.efficiency(),
        )?;
    }
    writeln!(
        out,
        "\ncoverage: {} uncovered, {} multiply covered, mean multiplicity {:.2}",
        report.uncovered_points, report.multiply_covered_points, report.mean_coverage_multiplicity
    )?;
    writeln!(out, "\nsatisfaction histogram:")?;
    for line in histogram_lines(&report.satisfaction_histogram) {
        writeln!(out, "{line}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(args: &[&str]) -> (Result<()>, String) {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let r = run(&argv, &mut buf);
        (r, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn default_report_runs() {
        let (r, out) = run_capture(&["--n", "20", "--k", "3"]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("plan: greedy2"));
        assert!(out.contains("satisfaction histogram"));
        assert!(out.contains("eff."));
    }

    #[test]
    fn named_solver_report() {
        let (r, out) = run_capture(&["--n", "15", "--k", "2", "--solver", "greedy4"]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("plan: greedy4"));
    }

    #[test]
    fn histogram_lines_count() {
        let lines = histogram_lines(&[1, 0, 0, 0, 0, 0, 0, 0, 0, 5]);
        assert_eq!(lines.len(), 10);
        assert!(lines[9].contains("####"));
    }

    #[test]
    fn unknown_solver_errors() {
        let (r, _) = run_capture(&["--solver", "bogus"]);
        assert!(r.is_err());
    }

    #[test]
    fn help_flag() {
        let (r, out) = run_capture(&["--help"]);
        assert!(r.is_ok());
        assert!(out.contains("explain"));
    }
}
