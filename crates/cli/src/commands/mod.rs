//! Subcommand implementations.

pub mod batch;
pub mod bounds;
pub mod generate;
pub mod report;
pub mod serve;
pub mod simulate;
pub mod solve;
