//! `mmph bounds` — print the paper's approximation bounds (Fig. 2).

use std::io::Write;

use mmph_core::bounds::{approx_local, approx_round_based, ONE_MINUS_INV_E};

use crate::args::parse;
use crate::Result;

const HELP: &str = "\
mmph bounds — the paper's approximation-ratio bounds (Fig. 2 data)

OPTIONS:
  --n N        environment size for approx. 2 (default 40)
  --k-max K    largest k to print (default n)";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<()> {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let flags = parse(argv, &["n", "k-max"], &[])?;
    let n: usize = flags.get_or("n", 40)?;
    let k_max: usize = flags.get_or("k-max", n)?;
    writeln!(
        out,
        "approx. 1 = 1-(1-1/k)^k (Theorem 1, round-based)  — limit 1-1/e = {ONE_MINUS_INV_E:.4}"
    )?;
    writeln!(
        out,
        "approx. 2 = 1-(1-1/n)^k (Theorem 2, local greedy), n = {n}"
    )?;
    writeln!(out, "{:>4} {:>10} {:>10}", "k", "approx1", "approx2")?;
    for k in 1..=k_max.max(1) {
        writeln!(
            out,
            "{:>4} {:>10.4} {:>10.4}",
            k,
            approx_round_based(k),
            approx_local(n, k)
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(args: &[&str]) -> (Result<()>, String) {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let r = run(&argv, &mut buf);
        (r, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn prints_table() {
        let (r, out) = run_capture(&["--n", "10", "--k-max", "4"]);
        assert!(r.is_ok());
        assert!(out.contains("0.7500")); // approx1 at k = 2
        assert!(out.contains("0.1900")); // approx2 at n = 10, k = 2
        assert_eq!(out.lines().count(), 3 + 4);
    }

    #[test]
    fn defaults_to_n_rows() {
        let (r, out) = run_capture(&["--n", "5"]);
        assert!(r.is_ok());
        assert_eq!(out.lines().count(), 3 + 5);
    }

    #[test]
    fn help_flag() {
        let (r, out) = run_capture(&["-h"]);
        assert!(r.is_ok());
        assert!(out.contains("Fig. 2"));
    }
}
