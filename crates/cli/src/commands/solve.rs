//! `mmph solve` — run one or all solvers on an instance.

use std::io::Write;
use std::path::PathBuf;

use mmph_core::budget::{SolveBudget, SolveOutcome, SolveStatus};
use mmph_core::solvers::{
    AdaptiveSolver, BeamSearch, ComplexGreedy, Exhaustive, KCenter, KMeans, LazyGreedy,
    LocalGreedy, LocalSearch, RoundBased, SeededGreedy, SimpleGreedy, StochasticGreedy,
};
use mmph_core::{
    plan_scale, solve_coreset, solve_sharded, CoresetConfig, EngineKind, IncrementalInstance,
    Instance, OracleStrategy, ResolveConfig, ScalePlan, ShardConfig, Solution, SolveScratch,
    Solver, DEFAULT_SPARSE_CAP_BYTES,
};
use mmph_sim::churn::ChurnPlan;
use mmph_sim::scenario::Scenario;
use mmph_sim::trace::{load_traces, InstanceTrace};

use crate::args::{
    install_thread_pool, parse, parse_budget, parse_engine, parse_norm, parse_oracle,
    parse_weights, Flags,
};
use crate::{CliError, Result};

const HELP: &str = "\
mmph solve — solve an instance

INPUT (one of):
  --input FILE   instance trace JSON written by `mmph generate`
  --n/--k/--r/--norm/--weights/--seed   generate inline (2-D)

OPTIONS:
  --solver NAME  one of the names from `mmph solvers` (default greedy3)
  --all          run every solver and print a comparison table
  --oracle S     candidate-scoring strategy: seq | par | lazy (default seq);
                 all three produce identical solutions
  --engine E     reward-evaluation engine: auto | scan | kd | ball | sparse
                 | sparse-f32 (default auto = sparse with a memory-cap
                 fallback to kd); all engines except the opt-in
                 mixed-precision sparse-f32 produce bit-identical solutions
  --threads N    rayon worker threads for --oracle par (default: all cores)
  --svg FILE     write a coverage map of the (first) solution
  --dim D        2 or 3 when using --input (default 2)
  --deadline-ms MS  wall-clock budget per solve; past it the solver
                 returns its best-so-far centers marked `degraded`
  --max-evals N  objective-evaluation budget per solve (same semantics)
  --churn SxF    after the initial solve, run S churn steps each mutating
                 a fraction F of the points (e.g. 20x0.01), re-solving
                 incrementally and printing warm-vs-cold timings;
                 requires a sparse engine (auto/sparse/sparse-f32)
  --churn-seed N seed for the churn plan (default: --seed)
  --coreset-cells C  solve through the weighted coreset path: aggregate
                 points on a grid of C cells per radius, solve the
                 reduction, report the realized full-resolution gap.
                 With --engine auto, instances whose CSR would bust the
                 512 MiB cap escalate to this path automatically
  --shards S     solve through the shard-then-merge path: S spatial
                 shards solved independently (in parallel under rayon),
                 then a final greedy over the union of shard candidates";

/// The solver registry: names accepted by `--solver`.
pub const SOLVER_NAMES: [&str; 14] = [
    "greedy1",
    "greedy1-sa",
    "greedy2",
    "greedy3",
    "greedy4",
    "lazy",
    "stochastic",
    "seeded",
    "beam",
    "local-search",
    "kcenter",
    "kmeans",
    "exhaustive",
    "adaptive",
];

pub(crate) fn solve_outcome_by_name<const D: usize>(
    name: &str,
    inst: &Instance<D>,
    strategy: OracleStrategy,
    engine: EngineKind,
    budget: &SolveBudget,
) -> Result<SolveOutcome<D>> {
    // Solvers with a candidate-scan hot path accept the strategy and
    // the engine; `lazy` is the CELF wrapper itself and greedy3/
    // greedy4/seeded/kcenter/kmeans/exhaustive have no eager scan to
    // switch (their evaluations, if any, score arbitrary points the
    // sparse engine cannot precompute).
    let mut out = match name {
        "greedy1" => RoundBased::grid()
            .with_oracle_strategy(strategy)
            .solve_within(inst, budget)?,
        "greedy1-sa" => RoundBased::annealing()
            .with_oracle_strategy(strategy)
            .solve_within(inst, budget)?,
        "greedy2" => LocalGreedy::new()
            .with_oracle(strategy)
            .with_engine(engine)
            .solve_within(inst, budget)?,
        "greedy3" => SimpleGreedy::new().solve_within(inst, budget)?,
        "greedy4" => ComplexGreedy::new().solve_within(inst, budget)?,
        "lazy" => LazyGreedy::new()
            .with_engine(engine)
            .solve_within(inst, budget)?,
        "stochastic" => StochasticGreedy::new()
            .with_oracle(strategy)
            .with_engine(engine)
            .solve_within(inst, budget)?,
        "seeded" => SeededGreedy::new().solve_within(inst, budget)?,
        "beam" => BeamSearch::new()
            .with_oracle(strategy)
            .with_engine(engine)
            .solve_within(inst, budget)?,
        "local-search" => LocalSearch::new()
            .with_oracle(strategy)
            .solve_within(inst, budget)?,
        "kcenter" => KCenter::new().solve_within(inst, budget)?,
        "kmeans" => KMeans::new().solve_within(inst, budget)?,
        "exhaustive" => Exhaustive::new().solve_within(inst, budget)?,
        "adaptive" => AdaptiveSolver::new().solve_within(inst, budget)?,
        other => {
            return Err(CliError::Usage(format!(
                "unknown solver `{other}`; run `mmph solvers`"
            )))
        }
    };
    // Present the registry name so `--all` tables are unambiguous even
    // when two registry entries share an underlying solver type. The
    // adaptive ladder keeps its rung-qualified name (`adaptive:greedy4`).
    if name != "adaptive" {
        out.solution.solver = name.to_owned();
    }
    Ok(out)
}

pub(crate) fn solve_by_name<const D: usize>(
    name: &str,
    inst: &Instance<D>,
    strategy: OracleStrategy,
    engine: EngineKind,
) -> Result<Solution<D>> {
    Ok(
        solve_outcome_by_name(name, inst, strategy, engine, &SolveBudget::unlimited())?
            .into_solution(),
    )
}

/// `mmph solvers` — prints the registry.
pub fn list_solvers(out: &mut dyn Write) -> Result<()> {
    writeln!(out, "available solvers:")?;
    let blurb = |n: &str| match n {
        "greedy1" => "Algorithm 1, round-based heuristic (grid round oracle)",
        "greedy1-sa" => "Algorithm 1 with the simulated-annealing round oracle",
        "greedy2" => "Algorithm 2, local greedy over point candidates — O(kn^2)",
        "greedy3" => "Algorithm 3, simple local greedy — O(kn)",
        "greedy4" => "Algorithm 4, complex local greedy (smallest enclosing balls)",
        "lazy" => "CELF-accelerated greedy2 (identical output)",
        "stochastic" => "subsampled-candidate greedy (1 - 1/e - eps expected)",
        "seeded" => "prefix-enumerated greedy2",
        "beam" => "width-16 beam search over point candidates",
        "local-search" => "greedy2 + best-improvement swap polish",
        "kcenter" => "Gonzalez farthest-point k-center baseline",
        "kmeans" => "weighted Lloyd k-means baseline (L2 only)",
        "exhaustive" => "exact over point-located center multisets",
        "adaptive" => "budget-aware ladder: greedy4 -> lazy -> greedy3",
        _ => "",
    };
    for name in SOLVER_NAMES {
        writeln!(out, "  {name:<13} {}", blurb(name))?;
    }
    Ok(())
}

pub(crate) fn load_or_generate_2d(flags: &Flags) -> Result<Instance<2>> {
    if let Some(path) = flags.get("input") {
        let traces: Vec<InstanceTrace<2>> = load_traces(&PathBuf::from(path))?;
        let first = traces
            .into_iter()
            .next()
            .ok_or_else(|| CliError::Usage("trace file contains no instances".into()))?;
        Ok(first.instance)
    } else {
        let n: usize = flags.get_or("n", 40)?;
        let k: usize = flags.get_or("k", 4)?;
        let r: f64 = flags.get_or("r", 1.0)?;
        let norm = parse_norm(flags.get("norm").unwrap_or("l2"))?;
        let weights = parse_weights(flags.get("weights").unwrap_or("diff"))?;
        let seed: u64 = flags.get_or("seed", 0)?;
        Ok(Scenario::paper_2d(n, k, r, norm, weights, seed).generate_2d()?)
    }
}

fn print_outcomes(
    out: &mut dyn Write,
    inst: &Instance<2>,
    outcomes: &[SolveOutcome<2>],
) -> Result<()> {
    writeln!(
        out,
        "instance: n = {}, k = {}, r = {}, norm = {}, total weight = {}",
        inst.n(),
        inst.k(),
        inst.radius(),
        inst.norm(),
        inst.total_weight()
    )?;
    writeln!(
        out,
        "{:<18} {:>12} {:>10} {:>10}",
        "solver", "reward", "% of Σw", "evals"
    )?;
    for outcome in outcomes {
        let sol = &outcome.solution;
        writeln!(
            out,
            "{:<18} {:>12.4} {:>9.2}% {:>10}",
            sol.solver,
            sol.total_reward,
            100.0 * sol.total_reward / inst.total_weight(),
            sol.evals
        )?;
        if let SolveStatus::Degraded { reason } = &outcome.status {
            writeln!(out, "  ^ degraded: {reason}")?;
        }
    }
    Ok(())
}

fn write_svg(path: &str, inst: &Instance<2>, sol: &Solution<2>) -> Result<()> {
    use mmph_plot::chart::{CircleOverlay, ScatterPoint};
    use mmph_plot::svg::Marker;
    let bbox = inst.bounding_box();
    let lo = bbox.lo[0].min(bbox.lo[1]).min(0.0);
    let hi = bbox.hi[0].max(bbox.hi[1]);
    let mut plot = mmph_plot::ScatterPlot::new(
        format!("{} — reward {:.2}", sol.solver, sol.total_reward),
        lo,
        hi,
    );
    for (p, &w) in inst.points().iter().zip(inst.weights()) {
        plot.points.push(ScatterPoint {
            x: p[0],
            y: p[1],
            marker: Marker::for_weight(w.min(5.0) as u32),
            color_index: 7,
        });
    }
    for (i, c) in sol.centers.iter().enumerate() {
        plot.points.push(ScatterPoint {
            x: c[0],
            y: c[1],
            marker: Marker::Star,
            color_index: i,
        });
        plot.circles.push(CircleOverlay {
            cx: c[0],
            cy: c[1],
            r: inst.radius(),
            color_index: i,
        });
    }
    std::fs::write(path, plot.render()?)?;
    Ok(())
}

/// Parses a `--churn STEPSxFRAC` spec, e.g. `20x0.01`.
fn parse_churn_spec(spec: &str) -> Result<(usize, f64)> {
    let usage = || {
        CliError::Usage(format!(
            "--churn expects STEPSxFRAC (e.g. 20x0.01), got `{spec}`"
        ))
    };
    let (s, f) = spec.split_once('x').ok_or_else(usage)?;
    let steps: usize = s.parse().map_err(|_| usage())?;
    let fraction: f64 = f.parse().map_err(|_| usage())?;
    if steps == 0 || !fraction.is_finite() || fraction <= 0.0 {
        return Err(usage());
    }
    Ok((steps, fraction))
}

/// The `--churn` loop: incremental warm re-solves against a cold
/// from-scratch reference each step.
fn run_churn(
    out: &mut dyn Write,
    inst: Instance<2>,
    engine: EngineKind,
    spec: &str,
    churn_seed: u64,
) -> Result<()> {
    let (steps, fraction) = parse_churn_spec(spec)?;
    let kind = match engine {
        EngineKind::Auto | EngineKind::Sparse => EngineKind::Sparse,
        EngineKind::SparseF32 => EngineKind::SparseF32,
        other => {
            return Err(CliError::Usage(format!(
                "--churn needs a sparse engine (auto, sparse or sparse-f32), got {other:?}"
            )))
        }
    };
    let plan = ChurnPlan::new(churn_seed, steps, fraction);
    writeln!(
        out,
        "instance: n = {}, k = {}, r = {}; churn: {} steps x {:.4} of n, seed {}",
        inst.n(),
        inst.k(),
        inst.radius(),
        steps,
        fraction,
        churn_seed
    )?;
    let mut inc = IncrementalInstance::new(inst, kind)?;
    let mut scratch = SolveScratch::new();
    let t0 = std::time::Instant::now();
    let initial = inc.resolve(&mut scratch, &ResolveConfig::default());
    writeln!(
        out,
        "initial cold solve: reward {:.4} in {:.1} ms",
        initial.reward,
        t0.elapsed().as_secs_f64() * 1e3
    )?;
    writeln!(
        out,
        "{:>4} {:>7} {:>10} {:>10} {:>8} {:>12} {:>12} {:<6}",
        "step", "deltas", "warm ms", "cold ms", "speedup", "warm reward", "cold reward", "mode"
    )?;
    for step in 0..steps as u64 {
        let deltas = plan.deltas(step, inc.instance())?;
        let t = std::time::Instant::now();
        inc.apply_churn(&deltas)?;
        let warm = inc.resolve(&mut scratch, &ResolveConfig::default());
        let warm_ms = t.elapsed().as_secs_f64() * 1e3;
        // Cold reference: CELF from scratch, CSR rebuild included —
        // exactly what a non-incremental caller would pay per step.
        let t = std::time::Instant::now();
        let cold = LazyGreedy::new().with_engine(kind).solve(inc.instance())?;
        let cold_ms = t.elapsed().as_secs_f64() * 1e3;
        writeln!(
            out,
            "{:>4} {:>7} {:>10.2} {:>10.2} {:>7.1}x {:>12.4} {:>12.4} {:<6}",
            step,
            deltas.len(),
            warm_ms,
            cold_ms,
            cold_ms / warm_ms.max(1e-9),
            warm.reward,
            cold.total_reward,
            if warm.warm {
                "warm"
            } else {
                warm.cold_reason.unwrap_or("cold")
            }
        )?;
    }
    Ok(())
}

/// `--coreset-cells` (or auto-escalation): reduce, solve, report gap.
fn run_coreset(
    out: &mut dyn Write,
    inst: &Instance<2>,
    cells: f64,
    engine: EngineKind,
    strategy: OracleStrategy,
    budget: SolveBudget,
) -> Result<()> {
    let report = solve_coreset(
        inst,
        &CoresetConfig {
            cells_per_radius: cells,
            engine,
            strategy,
            budget,
            ..CoresetConfig::default()
        },
    )?;
    writeln!(
        out,
        "coreset solve: n {} -> {} representatives (cell {:.4}, {} cells/r)",
        report.full_n, report.coreset_n, report.cell, report.cells_per_radius
    )?;
    writeln!(
        out,
        "  engine {} | build {:.1} ms | solve {:.1} ms | full-res pass {:.1} ms | evals {}",
        report.engine, report.build_ms, report.solve_ms, report.eval_ms, report.evals
    )?;
    writeln!(
        out,
        "  coreset objective {:.6} | full-resolution objective {:.6} | realized gap {:.3}%",
        report.coreset_objective,
        report.full_objective,
        report.gap * 100.0
    )?;
    if let Some(reason) = &report.degraded {
        writeln!(out, "  DEGRADED: {reason}")?;
    }
    for (i, c) in report.centers.iter().enumerate() {
        writeln!(out, "  center {i}: {c}")?;
    }
    Ok(())
}

/// `--shards`: spatial partition, per-shard greedy, merge greedy.
fn run_sharded(
    out: &mut dyn Write,
    inst: &Instance<2>,
    shards: usize,
    engine: EngineKind,
    strategy: OracleStrategy,
    budget: SolveBudget,
) -> Result<()> {
    let report = solve_sharded(
        inst,
        &ShardConfig {
            shards,
            engine,
            strategy,
            budget,
            ..ShardConfig::default()
        },
    )?;
    writeln!(
        out,
        "sharded solve: n {} over {} shards (sizes {:?}), {} merge candidates",
        inst.n(),
        report.shards,
        report.shard_sizes,
        report.candidates
    )?;
    writeln!(
        out,
        "  shard sweep {:.1} ms | merge {:.1} ms | objective {:.6}",
        report.shard_ms, report.merge_ms, report.objective
    )?;
    if let Some(reason) = &report.degraded {
        writeln!(out, "  DEGRADED: {reason}")?;
    }
    for (i, (&idx, c)) in report.selection.iter().zip(&report.centers).enumerate() {
        writeln!(out, "  center {i}: point {idx} at {c}")?;
    }
    Ok(())
}

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<()> {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let flags = parse(
        argv,
        &[
            "input",
            "solver",
            "svg",
            "n",
            "k",
            "r",
            "norm",
            "weights",
            "seed",
            "dim",
            "oracle",
            "engine",
            "threads",
            "deadline-ms",
            "max-evals",
            "churn",
            "churn-seed",
            "coreset-cells",
            "shards",
        ],
        &["all"],
    )?;
    let dim: usize = flags.get_or("dim", 2)?;
    if dim != 2 {
        return Err(CliError::Usage(
            "solve currently supports --dim 2 (use the library API for 3-D)".into(),
        ));
    }
    let strategy = parse_oracle(flags.get("oracle").unwrap_or("seq"))?;
    let engine = parse_engine(flags.get("engine").unwrap_or("auto"))?;
    let budget = parse_budget(&flags)?;
    install_thread_pool(&flags)?;
    let inst = load_or_generate_2d(&flags)?;
    if let Some(spec) = flags.get("churn") {
        let churn_seed: u64 = flags.get_or("churn-seed", flags.get_or("seed", 0u64)?)?;
        let spec = spec.to_owned();
        return run_churn(out, inst, engine, &spec, churn_seed);
    }
    if let Some(shards) = flags.get("shards") {
        let shards: usize = shards
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid --shards: {shards}")))?;
        return run_sharded(out, &inst, shards, engine, strategy, budget);
    }
    if let Some(cells) = flags.get("coreset-cells") {
        let cells: f64 = cells
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid --coreset-cells: {cells}")))?;
        return run_coreset(out, &inst, cells, engine, strategy, budget);
    }
    if plan_scale(&inst, engine, DEFAULT_SPARSE_CAP_BYTES) == ScalePlan::Coreset {
        writeln!(
            out,
            "n = {} busts the {} MiB sparse cap: escalating to the coreset path \
             (pass --engine kd to force a direct solve, or --coreset-cells to tune)",
            inst.n(),
            DEFAULT_SPARSE_CAP_BYTES >> 20,
        )?;
        return run_coreset(
            out,
            &inst,
            mmph_core::DEFAULT_CORESET_CELLS,
            engine,
            strategy,
            budget,
        );
    }
    let outcomes: Vec<SolveOutcome<2>> = if flags.has("all") {
        SOLVER_NAMES
            .iter()
            .map(|name| solve_outcome_by_name(name, &inst, strategy, engine, &budget))
            .collect::<Result<_>>()?
    } else {
        vec![solve_outcome_by_name(
            flags.get("solver").unwrap_or("greedy3"),
            &inst,
            strategy,
            engine,
            &budget,
        )?]
    };
    print_outcomes(out, &inst, &outcomes)?;
    if let Some(svg_path) = flags.get("svg") {
        write_svg(svg_path, &inst, &outcomes[0].solution)?;
        writeln!(out, "coverage map written to {svg_path}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(args: &[&str]) -> (Result<()>, String) {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let r = run(&argv, &mut buf);
        (r, String::from_utf8(buf).unwrap())
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mmph-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn coreset_flag_reports_gap() {
        let (r, out) = run_capture(&["--n", "200", "--k", "3", "--coreset-cells", "8"]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("coreset solve"), "{out}");
        assert!(out.contains("realized gap"), "{out}");
    }

    #[test]
    fn shards_flag_reports_merge() {
        let (r, out) = run_capture(&["--n", "200", "--k", "3", "--shards", "4"]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("sharded solve"), "{out}");
        assert!(out.contains("merge"), "{out}");
    }

    #[test]
    fn bad_pipeline_flags_rejected() {
        let (r, _) = run_capture(&["--n", "50", "--k", "2", "--coreset-cells", "x"]);
        assert!(r.is_err());
        let (r, _) = run_capture(&["--n", "50", "--k", "2", "--shards", "0"]);
        assert!(r.is_err());
    }

    #[test]
    fn inline_solve_default_solver() {
        let (r, out) = run_capture(&["--n", "15", "--k", "2"]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("greedy3"));
        assert!(out.contains("instance: n = 15"));
    }

    #[test]
    fn named_solver() {
        let (r, out) = run_capture(&["--n", "12", "--k", "2", "--solver", "greedy4"]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("greedy4"));
    }

    #[test]
    fn all_solvers_table() {
        let (r, out) = run_capture(&["--n", "10", "--k", "2", "--all"]);
        assert!(r.is_ok(), "{r:?}");
        for name in SOLVER_NAMES {
            // Solution names differ slightly from registry names for the
            // extension solvers; check the obvious subset.
            if name.starts_with("greedy") || name == "exhaustive" {
                assert!(out.contains(name), "{name} missing:\n{out}");
            }
        }
    }

    #[test]
    fn unknown_solver_errors() {
        let (r, _) = run_capture(&["--n", "10", "--solver", "magic"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn solve_from_generated_file() {
        let path = tmp("roundtrip.json");
        let gen_argv: Vec<String> = ["--n", "9", "--k", "2", "--out", path.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut sink = Vec::new();
        crate::commands::generate::run(&gen_argv, &mut sink).unwrap();
        let (r, out) = run_capture(&["--input", path.to_str().unwrap(), "--solver", "greedy2"]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("n = 9"));
    }

    #[test]
    fn svg_output_written() {
        let path = tmp("solve.svg");
        let (r, out) = run_capture(&["--n", "10", "--k", "2", "--svg", path.to_str().unwrap()]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("coverage map"));
        let svg = std::fs::read_to_string(&path).unwrap();
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn oracle_strategies_agree_on_output() {
        let base = ["--n", "18", "--k", "3", "--solver", "greedy2"];
        let (r, seq) = run_capture(&[&base[..], &["--oracle", "seq"]].concat());
        assert!(r.is_ok(), "{r:?}");
        let (r, par) = run_capture(&[&base[..], &["--oracle", "par", "--threads", "2"]].concat());
        assert!(r.is_ok(), "{r:?}");
        let (r, lazy) = run_capture(&[&base[..], &["--oracle", "lazy"]].concat());
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(seq, par);
        // The lazy oracle reports fewer evals, so compare the reward line
        // only up to the evals column.
        let reward = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("greedy2"))
                .unwrap()
                .split_whitespace()
                .nth(1)
                .unwrap()
                .to_owned()
        };
        assert_eq!(reward(&seq), reward(&lazy));
    }

    #[test]
    fn oracle_flag_applies_to_all_table() {
        let (r, seq) = run_capture(&["--n", "10", "--k", "2", "--all"]);
        assert!(r.is_ok(), "{r:?}");
        let (r, par) = run_capture(&["--n", "10", "--k", "2", "--all", "--oracle", "par"]);
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(seq, par);
    }

    #[test]
    fn bad_oracle_rejected() {
        let (r, _) = run_capture(&["--n", "10", "--oracle", "eager"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn bad_threads_rejected() {
        let (r, _) = run_capture(&["--n", "10", "--threads", "0"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn adaptive_solver_reports_winning_rung() {
        let (r, out) = run_capture(&["--n", "12", "--k", "2", "--solver", "adaptive"]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("adaptive:greedy4"), "{out}");
        assert!(!out.contains("degraded"));
    }

    #[test]
    fn exhausted_eval_budget_marks_degraded() {
        let (r, out) = run_capture(&[
            "--n",
            "12",
            "--k",
            "2",
            "--solver",
            "greedy2",
            "--max-evals",
            "0",
        ]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("degraded"), "{out}");
    }

    #[test]
    fn generous_budget_output_matches_unbudgeted() {
        let base = ["--n", "14", "--k", "2", "--solver", "greedy4"];
        let (r, plain) = run_capture(&base);
        assert!(r.is_ok(), "{r:?}");
        let (r, budgeted) = run_capture(&[&base[..], &["--max-evals", "1000000"]].concat());
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(plain, budgeted);
    }

    #[test]
    fn bad_budget_flags_rejected() {
        let (r, _) = run_capture(&["--n", "10", "--max-evals", "lots"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
        let (r, _) = run_capture(&["--n", "10", "--deadline-ms", "-3"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn dim3_rejected_for_now() {
        let (r, _) = run_capture(&["--dim", "3"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn missing_input_file_errors() {
        let (r, _) = run_capture(&["--input", "/nonexistent/foo.json"]);
        assert!(r.is_err());
    }

    /// Everything except wall-clock columns: step, deltas, rewards, mode.
    fn churn_facts(out: &str) -> Vec<Vec<String>> {
        out.lines()
            .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
            .map(|l| {
                let f: Vec<String> = l.split_whitespace().map(str::to_owned).collect();
                // drop warm ms / cold ms / speedup (fields 2..5)
                [&f[..2], &f[5..]].concat()
            })
            .collect()
    }

    #[test]
    fn churn_loop_prints_warm_and_cold_columns() {
        let (r, out) = run_capture(&["--n", "60", "--k", "3", "--churn", "4x0.02"]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("initial cold solve"), "{out}");
        assert!(out.contains("warm ms"), "{out}");
        let rows = churn_facts(&out);
        assert_eq!(rows.len(), 4, "{out}");
        // 2% churn is under the 5% threshold: the warm path engages.
        assert!(rows.iter().any(|r| r.last().unwrap() == "warm"), "{out}");
        // The loop is seeded: same invocation replays the same facts.
        let (_, again) = run_capture(&["--n", "60", "--k", "3", "--churn", "4x0.02"]);
        assert_eq!(rows, churn_facts(&again));
    }

    #[test]
    fn heavy_churn_reports_cold_fallback() {
        let (r, out) = run_capture(&["--n", "60", "--k", "3", "--churn", "2x0.5"]);
        assert!(r.is_ok(), "{r:?}");
        assert!(out.contains("threshold"), "{out}");
    }

    #[test]
    fn churn_seed_changes_the_workload() {
        let base = ["--n", "50", "--k", "3", "--churn", "3x0.2"];
        let (_, a) = run_capture(&base);
        let (r, b) = run_capture(&[&base[..], &["--churn-seed", "9"]].concat());
        assert!(r.is_ok(), "{r:?}");
        assert_ne!(churn_facts(&a), churn_facts(&b));
    }

    #[test]
    fn bad_churn_specs_rejected() {
        for spec in ["x", "4x", "x0.1", "0x0.1", "4x0", "4xNaN", "fourxten"] {
            let (r, _) = run_capture(&["--n", "20", "--churn", spec]);
            assert!(matches!(r, Err(CliError::Usage(_))), "spec {spec} passed");
        }
        // Non-sparse engines cannot patch in place.
        let (r, _) = run_capture(&["--n", "20", "--churn", "2x0.1", "--engine", "kd"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }
}
