//! # mmph-cli — command-line interface
//!
//! ```text
//! mmph generate --n 40 --k 4 --r 1.0 --out instance.json
//! mmph solve --input instance.json --solver greedy3
//! mmph batch --scenarios n=10000,k=16,count=4,repeat=8 --verify
//! mmph serve --tcp 127.0.0.1:7311 --engine sparse
//! mmph solve --n 40 --k 4 --r 1 --all --svg coverage.svg
//! mmph report --n 80 --k 4 --solver greedy2
//! mmph simulate --n 80 --k 4 --horizon 48 --drift 0.02
//! mmph bounds --n 40 --k-max 10
//! mmph solvers
//! ```
//!
//! The binary is a thin wrapper over [`run`]; everything is exercised
//! directly by unit tests (argument parsing and command execution are
//! ordinary functions).

pub mod args;
pub mod commands;

use std::io::Write;

/// CLI error type.
#[derive(Debug, thiserror::Error)]
pub enum CliError {
    /// Bad command-line usage (message is user-facing).
    #[error("{0}")]
    Usage(String),
    /// Propagated core error.
    #[error(transparent)]
    Core(#[from] mmph_core::CoreError),
    /// Propagated simulation error.
    #[error(transparent)]
    Sim(#[from] mmph_sim::SimError),
    /// Propagated service-layer error.
    #[error(transparent)]
    Serve(#[from] mmph_serve::ServeError),
    /// Propagated plot error.
    #[error(transparent)]
    Plot(#[from] mmph_plot::PlotError),
    /// I/O failure.
    #[error("io: {0}")]
    Io(#[from] std::io::Error),
    /// JSON (de)serialization failure.
    #[error("json: {0}")]
    Json(#[from] serde_json::Error),
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CliError>;

/// Top-level usage text.
pub const USAGE: &str = "\
mmph — Making Many People Happy: greedy content distribution

USAGE:
  mmph <COMMAND> [OPTIONS]

COMMANDS:
  generate   generate a problem instance and write it as JSON
  solve      solve an instance with one solver (or --all)
  batch      solve a stream of instances with scratch/engine reuse
  serve      run the solver as an NDJSON request/response daemon
  report     solve and explain the plan (per-center stats, histogram)
  simulate   run the time-slotted broadcast simulation
  bounds     print the paper's approximation bounds (Fig. 2 data)
  solvers    list available solvers
  help       show this message

Run `mmph <COMMAND> --help` for per-command options.";

/// Dispatches a full argument vector (excluding `argv[0]`). Output goes
/// to `out` so tests can capture it.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<()> {
    let Some((cmd, rest)) = argv.split_first() else {
        writeln!(out, "{USAGE}")?;
        return Ok(());
    };
    match cmd.as_str() {
        "generate" => commands::generate::run(rest, out),
        "solve" => commands::solve::run(rest, out),
        "batch" => commands::batch::run(rest, out),
        "serve" => commands::serve::run(rest, out),
        "report" => commands::report::run(rest, out),
        "simulate" => commands::simulate::run(rest, out),
        "bounds" => commands::bounds::run(rest, out),
        "solvers" => commands::solve::list_solvers(out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`; run `mmph help`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(args: &[&str]) -> (Result<()>, String) {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let r = run(&argv, &mut buf);
        (r, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn no_args_prints_usage() {
        let (r, out) = run_capture(&[]);
        assert!(r.is_ok());
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn help_prints_usage() {
        for flag in ["help", "--help", "-h"] {
            let (r, out) = run_capture(&[flag]);
            assert!(r.is_ok());
            assert!(out.contains("COMMANDS"));
        }
    }

    #[test]
    fn unknown_command_errors() {
        let (r, _) = run_capture(&["frobnicate"]);
        assert!(matches!(r, Err(CliError::Usage(_))));
    }

    #[test]
    fn solvers_lists_all() {
        let (r, out) = run_capture(&["solvers"]);
        assert!(r.is_ok());
        for name in [
            "greedy1",
            "greedy2",
            "greedy3",
            "greedy4",
            "lazy",
            "stochastic",
            "seeded",
            "local-search",
            "kcenter",
            "kmeans",
            "exhaustive",
        ] {
            assert!(out.contains(name), "missing {name} in\n{out}");
        }
    }
}
