//! Tiny flag parser shared by all subcommands.
//!
//! Supports `--flag value` and boolean `--flag` forms, collects
//! unknown-flag errors with the offending name, and type-checks values
//! on extraction. No positional arguments are used by this CLI.

use std::collections::BTreeMap;

use crate::{CliError, Result};

/// Parsed `--key [value]` pairs.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
    bools: Vec<String>,
}

/// Parses `argv` given the sets of value-taking and boolean flag names
/// (without the `--` prefix).
pub fn parse(argv: &[String], value_flags: &[&str], bool_flags: &[&str]) -> Result<Flags> {
    let mut flags = Flags::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(CliError::Usage(format!(
                "unexpected positional argument `{arg}`"
            )));
        };
        if bool_flags.contains(&name) {
            flags.bools.push(name.to_owned());
        } else if value_flags.contains(&name) {
            let value = it
                .next()
                .ok_or_else(|| CliError::Usage(format!("flag --{name} requires a value")))?;
            flags.values.insert(name.to_owned(), value.clone());
        } else {
            return Err(CliError::Usage(format!("unknown flag --{name}")));
        }
    }
    Ok(flags)
}

impl Flags {
    /// True iff the boolean flag was passed.
    pub fn has(&self, name: &str) -> bool {
        self.bools.iter().any(|b| b == name)
    }

    /// Raw string value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Typed value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::Usage(format!("invalid value `{raw}` for --{name}"))),
        }
    }

    /// Required typed value.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T> {
        let raw = self
            .get(name)
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{name}")))?;
        raw.parse()
            .map_err(|_| CliError::Usage(format!("invalid value `{raw}` for --{name}")))
    }
}

/// Parses a norm name ("l1", "l2", "linf", or a number like "3").
pub fn parse_norm(raw: &str) -> Result<mmph_geom::Norm> {
    match raw.to_ascii_lowercase().as_str() {
        "l1" | "1" => Ok(mmph_geom::Norm::L1),
        "l2" | "2" => Ok(mmph_geom::Norm::L2),
        "linf" | "inf" => Ok(mmph_geom::Norm::LInf),
        other => other
            .parse::<f64>()
            .ok()
            .and_then(|p| mmph_geom::Norm::lp(p).ok())
            .ok_or_else(|| CliError::Usage(format!("unknown norm `{raw}`"))),
    }
}

/// Parses an oracle strategy name ("seq", "par", "lazy").
pub fn parse_oracle(raw: &str) -> Result<mmph_core::OracleStrategy> {
    raw.parse().map_err(CliError::Usage)
}

/// Parses a reward-engine name ("auto", "scan", "kd", "ball", "sparse",
/// "sparse-f32").
pub fn parse_engine(raw: &str) -> Result<mmph_core::EngineKind> {
    raw.parse().map_err(CliError::Usage)
}

/// Builds a [`SolveBudget`](mmph_core::SolveBudget) from the optional
/// `--deadline-ms` and `--max-evals` flags. Absent flags leave the
/// budget unlimited.
pub fn parse_budget(flags: &Flags) -> Result<mmph_core::SolveBudget> {
    let mut budget = mmph_core::SolveBudget::unlimited();
    if let Some(raw) = flags.get("deadline-ms") {
        let ms: u64 = raw
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid value `{raw}` for --deadline-ms")))?;
        budget = budget.with_deadline_ms(ms);
    }
    if let Some(raw) = flags.get("max-evals") {
        let evals: u64 = raw
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid value `{raw}` for --max-evals")))?;
        budget = budget.with_max_evals(evals);
    }
    Ok(budget)
}

/// Installs the global rayon pool when `--threads N` was passed.
///
/// Idempotent by construction of the vendored pool (re-initialisation
/// overwrites the worker count), so subcommands can call this freely.
pub fn install_thread_pool(flags: &Flags) -> Result<()> {
    if let Some(raw) = flags.get("threads") {
        let threads: usize = raw
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid value `{raw}` for --threads")))?;
        if threads == 0 {
            return Err(CliError::Usage("--threads must be >= 1".into()));
        }
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .map_err(|e| CliError::Usage(format!("failed to set --threads: {e}")))?;
    }
    Ok(())
}

/// Parses a weight-scheme name ("same", "diff", "zipf").
pub fn parse_weights(raw: &str) -> Result<mmph_sim::gen::WeightScheme> {
    use mmph_sim::gen::WeightScheme;
    match raw.to_ascii_lowercase().as_str() {
        "same" => Ok(WeightScheme::Same),
        "diff" | "different" => Ok(WeightScheme::PAPER_WEIGHTED),
        "zipf" => Ok(WeightScheme::Zipf { n_ranks: 8, s: 1.1 }),
        other => Err(CliError::Usage(format!("unknown weight scheme `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_and_bools() {
        let f = parse(
            &argv(&["--n", "40", "--all", "--r", "1.5"]),
            &["n", "r"],
            &["all"],
        )
        .unwrap();
        assert_eq!(f.get_or("n", 0usize).unwrap(), 40);
        assert_eq!(f.get_or("r", 0.0f64).unwrap(), 1.5);
        assert!(f.has("all"));
        assert!(!f.has("quiet"));
    }

    #[test]
    fn defaults_apply() {
        let f = parse(&argv(&[]), &["n"], &[]).unwrap();
        assert_eq!(f.get_or("n", 7usize).unwrap(), 7);
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&argv(&["--bogus", "1"]), &["n"], &[]).is_err());
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse(&argv(&["--n"]), &["n"], &[]).is_err());
    }

    #[test]
    fn positional_rejected() {
        assert!(parse(&argv(&["oops"]), &[], &[]).is_err());
    }

    #[test]
    fn bad_typed_value_rejected() {
        let f = parse(&argv(&["--n", "forty"]), &["n"], &[]).unwrap();
        assert!(f.get_or("n", 0usize).is_err());
        assert!(f.require::<usize>("n").is_err());
    }

    #[test]
    fn require_missing_flag() {
        let f = parse(&argv(&[]), &["n"], &[]).unwrap();
        assert!(f.require::<usize>("n").is_err());
    }

    #[test]
    fn norm_parsing() {
        assert_eq!(parse_norm("l1").unwrap(), mmph_geom::Norm::L1);
        assert_eq!(parse_norm("L2").unwrap(), mmph_geom::Norm::L2);
        assert_eq!(parse_norm("inf").unwrap(), mmph_geom::Norm::LInf);
        assert_eq!(parse_norm("3").unwrap(), mmph_geom::Norm::Lp(3.0));
        assert!(parse_norm("manhattan-ish").is_err());
        assert!(parse_norm("0.5").is_err());
    }

    #[test]
    fn oracle_parsing() {
        use mmph_core::OracleStrategy;
        assert_eq!(parse_oracle("seq").unwrap(), OracleStrategy::Seq);
        assert_eq!(parse_oracle("par").unwrap(), OracleStrategy::Par);
        assert_eq!(parse_oracle("lazy").unwrap(), OracleStrategy::Lazy);
        assert!(parse_oracle("eager").is_err());
    }

    #[test]
    fn engine_parsing() {
        use mmph_core::EngineKind;
        assert_eq!(parse_engine("auto").unwrap(), EngineKind::Auto);
        assert_eq!(parse_engine("scan").unwrap(), EngineKind::Scan);
        assert_eq!(parse_engine("kd").unwrap(), EngineKind::Kd);
        assert_eq!(parse_engine("ball").unwrap(), EngineKind::Ball);
        assert_eq!(parse_engine("sparse").unwrap(), EngineKind::Sparse);
        assert_eq!(parse_engine("sparse-f32").unwrap(), EngineKind::SparseF32);
        assert!(parse_engine("dense").is_err());
        assert!(parse_engine("f32").is_err());
    }

    #[test]
    fn thread_pool_flag_validation() {
        let ok = parse(&argv(&["--threads", "2"]), &["threads"], &[]).unwrap();
        assert!(install_thread_pool(&ok).is_ok());
        let zero = parse(&argv(&["--threads", "0"]), &["threads"], &[]).unwrap();
        assert!(install_thread_pool(&zero).is_err());
        let junk = parse(&argv(&["--threads", "many"]), &["threads"], &[]).unwrap();
        assert!(install_thread_pool(&junk).is_err());
        let absent = parse(&argv(&[]), &["threads"], &[]).unwrap();
        assert!(install_thread_pool(&absent).is_ok());
    }

    #[test]
    fn budget_parsing() {
        let absent = parse(&argv(&[]), &["deadline-ms", "max-evals"], &[]).unwrap();
        assert!(parse_budget(&absent).unwrap().is_unlimited());
        let both = parse(
            &argv(&["--deadline-ms", "250", "--max-evals", "1000"]),
            &["deadline-ms", "max-evals"],
            &[],
        )
        .unwrap();
        assert!(!parse_budget(&both).unwrap().is_unlimited());
        let junk = parse(&argv(&["--max-evals", "lots"]), &["max-evals"], &[]).unwrap();
        assert!(matches!(parse_budget(&junk), Err(CliError::Usage(_))));
        let junk = parse(&argv(&["--deadline-ms", "-4"]), &["deadline-ms"], &[]).unwrap();
        assert!(matches!(parse_budget(&junk), Err(CliError::Usage(_))));
    }

    #[test]
    fn weights_parsing() {
        use mmph_sim::gen::WeightScheme;
        assert_eq!(parse_weights("same").unwrap(), WeightScheme::Same);
        assert_eq!(parse_weights("diff").unwrap(), WeightScheme::PAPER_WEIGHTED);
        assert!(matches!(
            parse_weights("zipf").unwrap(),
            WeightScheme::Zipf { .. }
        ));
        assert!(parse_weights("heavy").is_err());
    }
}
