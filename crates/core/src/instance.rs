//! Problem instances: the tuple `(points, weights, r, k, norm)`.
//!
//! An [`Instance`] is validated at construction: all coordinates finite,
//! all weights strictly positive and finite, `r > 0`, `k >= 1`, and
//! `weights.len() == points.len()`. Solvers can therefore assume a
//! well-formed problem and stay branch-free in their hot loops.

use mmph_geom::{Aabb, Norm, Point};
use serde::{Deserialize, Serialize};

use crate::kernel::Kernel;
use crate::{CoreError, Result};

/// A content-distribution problem instance in `R^D`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "RawInstance<D>", into = "RawInstance<D>")]
pub struct Instance<const D: usize> {
    points: Vec<Point<D>>,
    weights: Vec<f64>,
    radius: f64,
    k: usize,
    norm: Norm,
    kernel: Kernel,
}

/// Unvalidated mirror of [`Instance`] used for serde round-trips.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RawInstance<const D: usize> {
    points: Vec<Point<D>>,
    weights: Vec<f64>,
    radius: f64,
    k: usize,
    norm: Norm,
    #[serde(default)]
    kernel: Kernel,
}

impl<const D: usize> TryFrom<RawInstance<D>> for Instance<D> {
    type Error = CoreError;
    fn try_from(raw: RawInstance<D>) -> Result<Self> {
        let inst = Instance::new(raw.points, raw.weights, raw.radius, raw.k, raw.norm)?;
        inst.with_kernel(raw.kernel)
    }
}

impl<const D: usize> From<Instance<D>> for RawInstance<D> {
    fn from(inst: Instance<D>) -> Self {
        RawInstance {
            points: inst.points,
            weights: inst.weights,
            radius: inst.radius,
            k: inst.k,
            norm: inst.norm,
            kernel: inst.kernel,
        }
    }
}

impl<const D: usize> Instance<D> {
    /// Creates a validated instance.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidInstance`] when: `points` is empty, lengths
    /// differ, any coordinate is non-finite, any weight is non-positive
    /// or non-finite, `r` is non-positive or non-finite, or `k == 0`.
    pub fn new(
        points: Vec<Point<D>>,
        weights: Vec<f64>,
        radius: f64,
        k: usize,
        norm: Norm,
    ) -> Result<Self> {
        if points.is_empty() {
            return Err(CoreError::InvalidInstance("no points".into()));
        }
        if weights.len() != points.len() {
            return Err(CoreError::InvalidInstance(format!(
                "{} points but {} weights",
                points.len(),
                weights.len()
            )));
        }
        for (i, p) in points.iter().enumerate() {
            if !p.is_finite() {
                return Err(CoreError::InvalidInstance(format!(
                    "point {i} has a non-finite coordinate: {p}"
                )));
            }
        }
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w <= 0.0 {
                return Err(CoreError::InvalidInstance(format!(
                    "weight {i} must be finite and positive, got {w}"
                )));
            }
        }
        if !radius.is_finite() || radius <= 0.0 {
            return Err(CoreError::InvalidInstance(format!(
                "radius must be finite and positive, got {radius}"
            )));
        }
        if k == 0 {
            return Err(CoreError::InvalidInstance(
                "k (number of broadcasts) must be >= 1".into(),
            ));
        }
        Ok(Instance {
            points,
            weights,
            radius,
            k,
            norm,
            kernel: Kernel::default(),
        })
    }

    /// Instance with every weight equal to 1 (the paper's "same weight"
    /// scheme).
    pub fn unweighted(points: Vec<Point<D>>, radius: f64, k: usize, norm: Norm) -> Result<Self> {
        let n = points.len();
        Self::new(points, vec![1.0; n], radius, k, norm)
    }

    /// Number of points `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.points.len()
    }

    /// Number of centers to select, `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Interest radius `r`.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The interest-distance norm.
    #[inline]
    pub fn norm(&self) -> Norm {
        self.norm
    }

    /// The reward decay kernel (the paper's linear Eq. (1) by default).
    #[inline]
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The user interest points.
    #[inline]
    pub fn points(&self) -> &[Point<D>] {
        &self.points
    }

    /// The maximum rewards `w_i`.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> &Point<D> {
        &self.points[i]
    }

    /// Weight `w_i`.
    #[inline]
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Sum of all weights — a trivial upper bound on `f(C)` (paper:
    /// `f_opt <= Σ w_i`, used in the proof of Theorem 2).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Tight bounding box of the instance's points.
    pub fn bounding_box(&self) -> Aabb<D> {
        Aabb::from_points(&self.points).expect("instance is non-empty")
    }

    /// Returns a copy of this instance with a different `k`.
    pub fn with_k(&self, k: usize) -> Result<Self> {
        Self::new(
            self.points.clone(),
            self.weights.clone(),
            self.radius,
            k,
            self.norm,
        )
    }

    /// Returns a copy of this instance with a different radius.
    pub fn with_radius(&self, radius: f64) -> Result<Self> {
        Self::new(
            self.points.clone(),
            self.weights.clone(),
            radius,
            self.k,
            self.norm,
        )
    }

    /// Returns a copy of this instance with a different norm.
    pub fn with_norm(&self, norm: Norm) -> Result<Self> {
        let mut inst = Self::new(
            self.points.clone(),
            self.weights.clone(),
            self.radius,
            self.k,
            norm,
        )?;
        inst.kernel = self.kernel;
        Ok(inst)
    }

    /// Returns a copy of this instance with a different reward kernel.
    pub fn with_kernel(&self, kernel: Kernel) -> Result<Self> {
        kernel.validate().map_err(CoreError::InvalidInstance)?;
        let mut inst = self.clone();
        inst.kernel = kernel;
        Ok(inst)
    }

    /// Appends a new point with weight `w` and returns its index (`n`
    /// before the call). Validates like [`Self::new`]: finite
    /// coordinates, finite positive weight.
    pub fn insert_point(&mut self, p: Point<D>, w: f64) -> Result<usize> {
        if !p.is_finite() {
            return Err(CoreError::InvalidInstance(format!(
                "inserted point has a non-finite coordinate: {p}"
            )));
        }
        if !w.is_finite() || w <= 0.0 {
            return Err(CoreError::InvalidInstance(format!(
                "inserted weight must be finite and positive, got {w}"
            )));
        }
        self.points.push(p);
        self.weights.push(w);
        Ok(self.points.len() - 1)
    }

    /// Removes point `i` by **swap-remove**: the last point (index
    /// `n-1`) takes index `i`, so all other indices stay stable and the
    /// removal is O(1). Callers holding selections must renumber
    /// `n-1 → i` themselves (the incremental layer does this for you).
    /// Errors when `i` is out of range or when it would empty the
    /// instance — an [`Instance`] is never empty.
    pub fn remove_point(&mut self, i: usize) -> Result<()> {
        if i >= self.points.len() {
            return Err(CoreError::InvalidInstance(format!(
                "remove_point index {i} out of range (n = {})",
                self.points.len()
            )));
        }
        if self.points.len() == 1 {
            return Err(CoreError::InvalidInstance(
                "cannot remove the last remaining point".into(),
            ));
        }
        self.points.swap_remove(i);
        self.weights.swap_remove(i);
        Ok(())
    }

    /// Moves point `i` to new coordinates `to` (weight unchanged).
    pub fn move_point(&mut self, i: usize, to: Point<D>) -> Result<()> {
        if i >= self.points.len() {
            return Err(CoreError::InvalidInstance(format!(
                "move_point index {i} out of range (n = {})",
                self.points.len()
            )));
        }
        if !to.is_finite() {
            return Err(CoreError::InvalidInstance(format!(
                "moved point has a non-finite coordinate: {to}"
            )));
        }
        self.points[i] = to;
        Ok(())
    }

    /// Applies a batch of churn deltas **sequentially** (each delta sees
    /// the point set left by the previous one, including swap-remove
    /// renumbering). On error the instance is left with the prefix of
    /// deltas that validated applied. Returns the number applied.
    pub fn apply_churn(&mut self, deltas: &[Delta<D>]) -> Result<usize> {
        for (applied, delta) in deltas.iter().enumerate() {
            let r = match delta {
                Delta::Insert { point, weight } => self.insert_point(*point, *weight).map(|_| ()),
                Delta::Remove { index } => self.remove_point(*index),
                Delta::Move { index, to } => self.move_point(*index, *to),
            };
            if let Err(e) = r {
                return Err(CoreError::InvalidInstance(format!(
                    "churn delta {applied}: {e}"
                )));
            }
        }
        Ok(deltas.len())
    }
}

/// One point-churn mutation, the unit of [`Instance::apply_churn`] and
/// of the incremental CSR patching layer
/// ([`crate::incremental::IncrementalInstance`]). Deltas in a batch are
/// applied sequentially; `Remove` uses swap-remove semantics (the last
/// point is renumbered to the removed index).
///
/// On the wire (the serve `mutate` op) a delta is externally tagged by
/// its variant name: `{"Move":{"index":7,"to":[1.5,0.25]}}`,
/// `{"Insert":{"point":[2.0,2.0],"weight":3.0}}`,
/// `{"Remove":{"index":0}}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Delta<const D: usize> {
    /// Append a new point (its index becomes the current `n`).
    Insert {
        /// Coordinates of the new point.
        point: Point<D>,
        /// Its weight (finite, positive).
        weight: f64,
    },
    /// Swap-remove the point at `index`.
    Remove {
        /// Index to remove; the last point takes this index.
        index: usize,
    },
    /// Move the point at `index` to new coordinates.
    Move {
        /// Index to move.
        index: usize,
        /// New coordinates.
        to: Point<D>,
    },
}

/// Fluent builder for [`Instance`].
///
/// ```
/// use mmph_core::InstanceBuilder;
/// use mmph_geom::{Norm, Point};
///
/// let inst = InstanceBuilder::new()
///     .point([0.0, 0.0], 1.0)
///     .point([1.0, 0.0], 2.0)
///     .point([0.0, 1.0], 3.0)
///     .radius(1.5)
///     .k(2)
///     .norm(Norm::L2)
///     .build()
///     .unwrap();
/// assert_eq!(inst.n(), 3);
/// assert_eq!(inst.point(1), &Point::new([1.0, 0.0]));
/// ```
#[derive(Debug, Clone, Default)]
pub struct InstanceBuilder<const D: usize> {
    points: Vec<Point<D>>,
    weights: Vec<f64>,
    radius: Option<f64>,
    k: Option<usize>,
    norm: Norm,
    kernel: Kernel,
}

impl<const D: usize> InstanceBuilder<D> {
    /// Creates an empty builder (norm defaults to L2).
    pub fn new() -> Self {
        InstanceBuilder {
            points: Vec::new(),
            weights: Vec::new(),
            radius: None,
            k: None,
            norm: Norm::default(),
            kernel: Kernel::default(),
        }
    }

    /// Adds a point with its maximum reward.
    pub fn point(mut self, coords: [f64; D], weight: f64) -> Self {
        self.points.push(Point::new(coords));
        self.weights.push(weight);
        self
    }

    /// Adds many points with a shared weight.
    pub fn points(mut self, coords: impl IntoIterator<Item = [f64; D]>, weight: f64) -> Self {
        for c in coords {
            self.points.push(Point::new(c));
            self.weights.push(weight);
        }
        self
    }

    /// Sets the interest radius `r`.
    pub fn radius(mut self, r: f64) -> Self {
        self.radius = Some(r);
        self
    }

    /// Sets the number of broadcasts `k`.
    pub fn k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Sets the interest-distance norm.
    pub fn norm(mut self, norm: Norm) -> Self {
        self.norm = norm;
        self
    }

    /// Sets the reward decay kernel.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Validates and builds the instance.
    pub fn build(self) -> Result<Instance<D>> {
        let radius = self
            .radius
            .ok_or_else(|| CoreError::InvalidInstance("radius not set".into()))?;
        let k = self
            .k
            .ok_or_else(|| CoreError::InvalidInstance("k not set".into()))?;
        Instance::new(self.points, self.weights, radius, k, self.norm)?.with_kernel(self.kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> Instance<2> {
        InstanceBuilder::new()
            .point([0.0, 0.0], 1.0)
            .point([1.0, 1.0], 2.0)
            .radius(1.0)
            .k(1)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_valid_instance() {
        let inst = valid();
        assert_eq!(inst.n(), 2);
        assert_eq!(inst.k(), 1);
        assert_eq!(inst.radius(), 1.0);
        assert_eq!(inst.norm(), Norm::L2);
        assert_eq!(inst.total_weight(), 3.0);
        assert_eq!(inst.weight(1), 2.0);
    }

    #[test]
    fn rejects_empty_points() {
        let e = Instance::<2>::new(vec![], vec![], 1.0, 1, Norm::L2).unwrap_err();
        assert!(matches!(e, CoreError::InvalidInstance(_)));
    }

    #[test]
    fn rejects_length_mismatch() {
        let e = Instance::new(
            vec![Point::new([0.0, 0.0])],
            vec![1.0, 2.0],
            1.0,
            1,
            Norm::L2,
        )
        .unwrap_err();
        assert!(e.to_string().contains("1 points but 2 weights"));
    }

    #[test]
    fn rejects_nan_coordinates() {
        let e = Instance::new(
            vec![Point::new([f64::NAN, 0.0])],
            vec![1.0],
            1.0,
            1,
            Norm::L2,
        )
        .unwrap_err();
        assert!(e.to_string().contains("non-finite"));
    }

    #[test]
    fn rejects_bad_weights() {
        for w in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let e =
                Instance::new(vec![Point::new([0.0, 0.0])], vec![w], 1.0, 1, Norm::L2).unwrap_err();
            assert!(matches!(e, CoreError::InvalidInstance(_)), "w={w}");
        }
    }

    #[test]
    fn rejects_bad_radius() {
        for r in [0.0, -2.0, f64::NAN, f64::INFINITY] {
            let e =
                Instance::new(vec![Point::new([0.0, 0.0])], vec![1.0], r, 1, Norm::L2).unwrap_err();
            assert!(matches!(e, CoreError::InvalidInstance(_)), "r={r}");
        }
    }

    #[test]
    fn rejects_zero_k() {
        let e =
            Instance::new(vec![Point::new([0.0, 0.0])], vec![1.0], 1.0, 0, Norm::L2).unwrap_err();
        assert!(e.to_string().contains("k"));
    }

    #[test]
    fn builder_requires_radius_and_k() {
        assert!(InstanceBuilder::<2>::new()
            .point([0.0, 0.0], 1.0)
            .k(1)
            .build()
            .is_err());
        assert!(InstanceBuilder::<2>::new()
            .point([0.0, 0.0], 1.0)
            .radius(1.0)
            .build()
            .is_err());
    }

    #[test]
    fn unweighted_sets_all_weights_to_one() {
        let inst = Instance::unweighted(
            vec![Point::new([0.0, 0.0]), Point::new([1.0, 0.0])],
            1.0,
            1,
            Norm::L1,
        )
        .unwrap();
        assert_eq!(inst.weights(), &[1.0, 1.0]);
    }

    #[test]
    fn with_k_radius_norm() {
        let inst = valid();
        assert_eq!(inst.with_k(5).unwrap().k(), 5);
        assert_eq!(inst.with_radius(2.5).unwrap().radius(), 2.5);
        assert_eq!(inst.with_norm(Norm::L1).unwrap().norm(), Norm::L1);
        assert!(inst.with_k(0).is_err());
        assert!(inst.with_radius(-1.0).is_err());
    }

    #[test]
    fn bounding_box_is_tight() {
        let inst = valid();
        let b = inst.bounding_box();
        assert_eq!(b.lo, Point::new([0.0, 0.0]));
        assert_eq!(b.hi, Point::new([1.0, 1.0]));
    }

    #[test]
    fn serde_roundtrip_preserves_instance() {
        let inst = valid();
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance<2> = serde_json::from_str(&json).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn serde_rejects_invalid_payload() {
        // k = 0 must fail validation on deserialize.
        let json = r#"{"points":[[0.0,0.0]],"weights":[1.0],"radius":1.0,"k":0,"norm":"L2"}"#;
        let r: std::result::Result<Instance<2>, _> = serde_json::from_str(json);
        assert!(r.is_err());
    }

    #[test]
    fn points_bulk_builder() {
        let inst = InstanceBuilder::new()
            .points([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]], 2.0)
            .radius(1.0)
            .k(2)
            .build()
            .unwrap();
        assert_eq!(inst.n(), 3);
        assert_eq!(inst.weights(), &[2.0, 2.0, 2.0]);
    }
}
