//! The paper's approximation-ratio bounds (Theorems 1 and 2, Fig. 2).

/// `1 − 1/e ≈ 0.632`, the limit of [`approx_round_based`] as `k → ∞`
/// and the classic submodular-maximization bound (Eq. 20).
pub const ONE_MINUS_INV_E: f64 = 1.0 - std::f64::consts::E.recip();

/// Theorem 1: the round-based heuristic (Algorithm 1, with optimal round
/// subproblems) achieves at least `1 − (1 − 1/k)^k` of the optimum.
/// Decreasing in `k`, bounded below by `1 − 1/e`. The paper's "approx. 1".
///
/// ```
/// use mmph_core::bounds::{approx_round_based, ONE_MINUS_INV_E};
/// assert_eq!(approx_round_based(2), 0.75);
/// assert!(approx_round_based(1_000) > ONE_MINUS_INV_E);
/// ```
pub fn approx_round_based(k: usize) -> f64 {
    assert!(k >= 1, "k must be >= 1");
    1.0 - (1.0 - 1.0 / k as f64).powi(k as i32)
}

/// Theorem 2: the local greedy (Algorithm 2) achieves at least
/// `1 − (1 − 1/n)^k` of the optimum, where `n` is the number of points.
/// The paper's "approx. 2"; it also bounds Algorithm 3.
///
/// ```
/// use mmph_core::bounds::approx_local;
/// assert!((approx_local(10, 2) - 0.19).abs() < 1e-12);
/// ```
pub fn approx_local(n: usize, k: usize) -> f64 {
    assert!(n >= 1, "n must be >= 1");
    assert!(k >= 1, "k must be >= 1");
    1.0 - (1.0 - 1.0 / n as f64).powi(k as i32)
}

/// One (k, bound₁, bound₂) row of Fig. 2's comparison for a fixed `n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundsRow {
    /// Number of centers.
    pub k: usize,
    /// Theorem 1's bound, `1 − (1 − 1/k)^k` ("approx. 1").
    pub approx1: f64,
    /// Theorem 2's bound, `1 − (1 − 1/n)^k` ("approx. 2").
    pub approx2: f64,
}

/// The data of one Fig. 2 panel: both bounds for `k = 1..=k_max` at a
/// fixed environment size `n` (the paper plots n = 10 and n = 40).
pub fn fig2_series(n: usize, k_max: usize) -> Vec<BoundsRow> {
    (1..=k_max)
        .map(|k| BoundsRow {
            k,
            approx1: approx_round_based(k),
            approx2: approx_local(n, k),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx1_known_values() {
        assert_eq!(approx_round_based(1), 1.0);
        assert!((approx_round_based(2) - 0.75).abs() < 1e-12);
        // k = 4: 1 - (3/4)^4 = 1 - 81/256
        assert!((approx_round_based(4) - (1.0 - 81.0 / 256.0)).abs() < 1e-12);
    }

    #[test]
    fn approx1_decreases_to_one_minus_inv_e() {
        let mut prev = approx_round_based(1);
        for k in 2..200 {
            let cur = approx_round_based(k);
            assert!(cur < prev, "k = {k}");
            assert!(cur > ONE_MINUS_INV_E);
            prev = cur;
        }
        assert!((approx_round_based(100_000) - ONE_MINUS_INV_E).abs() < 1e-4);
    }

    #[test]
    fn approx2_known_values() {
        // n = 10, k = 2: 1 - 0.9^2 = 0.19
        assert!((approx_local(10, 2) - 0.19).abs() < 1e-12);
        // n = n, k = n behaves like approx1 at k = n
        assert!((approx_local(5, 5) - approx_round_based(5)).abs() < 1e-12);
        assert_eq!(approx_local(1, 1), 1.0);
    }

    #[test]
    fn approx2_increases_in_k_and_decreases_in_n() {
        assert!(approx_local(10, 3) > approx_local(10, 2));
        assert!(approx_local(40, 2) < approx_local(10, 2));
    }

    #[test]
    fn approx1_dominates_approx2_for_k_less_than_n() {
        // The paper's Fig. 2 observation: approx. 1 is much larger.
        for n in [10usize, 40] {
            for k in 1..n {
                assert!(
                    approx_round_based(k) >= approx_local(n, k) - 1e-12,
                    "n = {n}, k = {k}"
                );
            }
        }
    }

    #[test]
    fn fig2_series_shape() {
        let rows = fig2_series(10, 10);
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].k, 1);
        assert_eq!(rows[9].k, 10);
        assert!((rows[1].approx1 - 0.75).abs() < 1e-12);
        assert!((rows[1].approx2 - 0.19).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "k must be >= 1")]
    fn approx1_rejects_zero_k() {
        approx_round_based(0);
    }

    #[test]
    #[should_panic(expected = "n must be >= 1")]
    fn approx2_rejects_zero_n() {
        approx_local(0, 1);
    }

    #[test]
    fn one_minus_inv_e_value() {
        assert!((ONE_MINUS_INV_E - 0.6321205588285577).abs() < 1e-15);
    }
}
