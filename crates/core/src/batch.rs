//! Batched solving: a worker pool driving [`solve_rounds`] over a
//! stream of instances with one [`SolveScratch`] per worker.
//!
//! The serving regime this targets (ROADMAP north star; cf. the
//! distributed-caching framing of Avrachenkov et al.) is *many solves
//! per second over many instances*, where per-solve setup — CSR
//! construction, heap and residual allocation — dominates a cold
//! solve. The batch path amortizes both:
//!
//! - **Scratch reuse**: every buffer a solve touches lives in the
//!   worker's [`SolveScratch`], so steady-state solves allocate
//!   nothing (asserted by the `zero_alloc` integration test).
//! - **Engine reuse**: consecutive requests for the *same* instance
//!   (adjacent in the stream, as produced by
//!   `mmph_sim`'s `repeat` spec) share one built [`RewardEngine`];
//!   only the first request in a run pays the CSR build.
//!
//! Both reuses are bit-transparent: a warm batched solve returns the
//! same selection and reward bits as a cold unbatched solve
//! ([`verify_reports`] checks this in-binary; `proptest_scratch`
//! fuzzes it).

use std::time::Instant;

use rayon::prelude::*;
use serde::Serialize;

use crate::instance::Instance;
use crate::oracle::{GainOracle, OracleStrategy};
use crate::reward::{EngineKind, RewardEngine};
use crate::scratch::SolveScratch;

/// One greedy solve through a prepared oracle, using only the buffers
/// in `scratch`. After a warmup solve of the same shape this performs
/// zero heap allocations for the [`OracleStrategy::Seq`] and
/// [`OracleStrategy::Lazy`] strategies ([`OracleStrategy::Par`]
/// allocates inside the thread-pool shim).
///
/// The selection is left in `scratch.picks()` / `scratch.round_gains()`
/// and the total reward is returned. Results are bit-identical to a
/// fresh-allocation solve regardless of what the scratch last held.
pub fn solve_rounds<const D: usize>(oracle: &GainOracle<'_, D>, scratch: &mut SolveScratch) -> f64 {
    let inst = oracle.instance();
    let (n, k) = (inst.n(), inst.k());
    scratch.residuals.reset(n);
    scratch.picks.clear();
    scratch.picks.reserve(k);
    scratch.round_gains.clear();
    scratch.round_gains.reserve(k);
    // A reused oracle still holds the previous solve's CELF heap;
    // those cached gains/versions are meaningless against reset
    // residuals, so force a re-prime (which reuses the heap storage).
    oracle.reset_lazy();
    let mut total = 0.0;
    for _ in 0..k {
        let best = oracle.best_candidate(&scratch.residuals);
        let gain = scratch.residuals.apply(inst, inst.point(best.index));
        scratch.picks.push(best.index);
        scratch.round_gains.push(gain);
        total += gain;
    }
    total
}

/// Returns the buffers an oracle borrowed from `scratch` (CELF heap
/// storage and, for sparse engines, the CSR arrays) so the next solve
/// can reuse their capacity. Call when retiring an oracle built by
/// [`BatchRunner::build_oracle`].
pub fn recycle<const D: usize>(oracle: GainOracle<'_, D>, scratch: &mut SolveScratch) {
    scratch.put_lazy(oracle.take_lazy_scratch());
    oracle.into_engine().reclaim(&mut scratch.csr);
}

/// Per-request outcome of a batch run.
#[derive(Debug, Clone, Serialize)]
pub struct BatchResult {
    /// Position of the request in the input stream.
    pub index: usize,
    /// Instance size.
    pub n: usize,
    /// Number of centers selected.
    pub k: usize,
    /// Total coverage reward of the selection.
    pub reward: f64,
    /// Candidate evaluations charged to this request.
    pub evals: u64,
    /// Wall time of the solve (excludes engine build when the engine
    /// was reused; includes it on the first request of a run).
    pub solve_nanos: u64,
    /// Whether this request reused the previous request's engine.
    pub engine_reused: bool,
    /// Selected candidate indices, in pick order.
    pub selection: Vec<usize>,
}

/// Aggregate outcome of [`BatchRunner::run`].
#[derive(Debug, Clone, Serialize)]
pub struct BatchReport {
    /// Per-request results, in input order.
    pub results: Vec<BatchResult>,
    /// End-to-end wall time of the batch, including worker spawn.
    pub wall_nanos: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Whether scratch/engine reuse was enabled.
    pub warm: bool,
}

impl BatchReport {
    /// Requests completed per second of batch wall time.
    pub fn throughput(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.results.len() as f64 / (self.wall_nanos as f64 / 1e9)
    }

    /// Number of requests that reused a previously built engine.
    pub fn engines_reused(&self) -> usize {
        self.results.iter().filter(|r| r.engine_reused).count()
    }

    /// Sum of per-request solve times (excludes batch overhead).
    pub fn total_solve_nanos(&self) -> u64 {
        self.results.iter().map(|r| r.solve_nanos).sum()
    }

    /// Sum of per-request rewards.
    pub fn total_reward(&self) -> f64 {
        self.results.iter().map(|r| r.reward).sum()
    }
}

/// Checks that two reports over the same request stream picked
/// bit-identical selections and rewards. Used to verify warm (reused
/// scratch/engine) runs against cold reference runs in-binary.
pub fn verify_reports(a: &BatchReport, b: &BatchReport) -> Result<(), String> {
    if a.results.len() != b.results.len() {
        return Err(format!(
            "request count mismatch: {} vs {}",
            a.results.len(),
            b.results.len()
        ));
    }
    for (x, y) in a.results.iter().zip(&b.results) {
        if x.selection != y.selection {
            return Err(format!(
                "selection mismatch at request {}: {:?} vs {:?}",
                x.index, x.selection, y.selection
            ));
        }
        if x.reward.to_bits() != y.reward.to_bits() {
            return Err(format!(
                "reward bits mismatch at request {}: {} vs {}",
                x.index, x.reward, y.reward
            ));
        }
    }
    Ok(())
}

/// Drives a worker pool over a stream of instances. Configure with the
/// builder methods, then call [`Self::run`].
///
/// ```
/// use mmph_core::{BatchRunner, InstanceBuilder};
///
/// let inst = InstanceBuilder::new()
///     .point([0.0, 0.0], 1.0)
///     .point([3.0, 0.0], 2.0)
///     .radius(1.0)
///     .k(1)
///     .build()
///     .unwrap();
/// let stream = vec![inst.clone(), inst];
/// let report = BatchRunner::new().run(&stream);
/// assert_eq!(report.results.len(), 2);
/// assert_eq!(report.results[0].selection, vec![1]);
/// assert_eq!(report.engines_reused(), 1); // identical adjacent requests
/// ```
#[derive(Debug, Clone)]
pub struct BatchRunner {
    strategy: OracleStrategy,
    engine: EngineKind,
    parallel_csr: bool,
    warm: bool,
    dirty_region: bool,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner {
            strategy: OracleStrategy::Lazy,
            engine: EngineKind::Sparse,
            parallel_csr: false,
            warm: true,
            dirty_region: false,
        }
    }
}

impl BatchRunner {
    /// Defaults: lazy (CELF) oracle on the sparse engine, serial CSR
    /// build, warm scratch/engine reuse on.
    pub fn new() -> Self {
        Self::default()
    }

    /// Candidate-argmax strategy (identical selections under all).
    pub fn with_strategy(mut self, strategy: OracleStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Reward-evaluation engine. [`EngineKind::Auto`] is treated as
    /// [`EngineKind::Sparse`] here: batch serving is exactly the
    /// workload the CSR engine exists for, and only the sparse engine
    /// participates in CSR-scratch reuse.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Build the CSR adjacency with the rayon-parallel path
    /// (byte-identical output to the serial build).
    pub fn with_parallel_csr(mut self, yes: bool) -> Self {
        self.parallel_csr = yes;
        self
    }

    /// `false` disables all reuse: every request allocates fresh state
    /// and builds its own engine — the cold per-instance baseline the
    /// `throughput` bench compares against.
    pub fn with_warm(mut self, yes: bool) -> Self {
        self.warm = yes;
        self
    }

    /// Enables the dirty-region CELF upgrade on sparse engines.
    pub fn with_dirty_region(mut self, yes: bool) -> Self {
        self.dirty_region = yes;
        self
    }

    /// Builds an oracle whose engine and CELF heap borrow their
    /// storage from `scratch`. Retire it with [`recycle`] to return
    /// the storage.
    pub fn build_oracle<'a, const D: usize>(
        &self,
        inst: &'a Instance<D>,
        scratch: &mut SolveScratch,
    ) -> GainOracle<'a, D> {
        let engine = match self.engine {
            EngineKind::Sparse | EngineKind::Auto => {
                RewardEngine::sparse_with_scratch(inst, &mut scratch.csr, self.parallel_csr)
            }
            kind => RewardEngine::with_kind(inst, kind),
        };
        GainOracle::from_engine(engine, self.strategy)
            .with_dirty_region(self.dirty_region)
            .with_lazy_scratch(scratch.take_lazy())
    }

    /// Cold reference solve: fresh allocations, serial CSR build, no
    /// reuse of any kind — the unbatched per-request baseline.
    fn solve_cold<const D: usize>(&self, index: usize, inst: &Instance<D>) -> BatchResult {
        let kind = match self.engine {
            EngineKind::Auto => EngineKind::Sparse,
            kind => kind,
        };
        let t0 = Instant::now();
        let oracle =
            GainOracle::with_engine(inst, kind, self.strategy).with_dirty_region(self.dirty_region);
        let mut residuals = crate::reward::Residuals::new(inst.n());
        let mut picks = Vec::with_capacity(inst.k());
        let mut reward = 0.0;
        for _ in 0..inst.k() {
            let best = oracle.best_candidate(&residuals);
            reward += residuals.apply(inst, inst.point(best.index));
            picks.push(best.index);
        }
        BatchResult {
            index,
            n: inst.n(),
            k: inst.k(),
            reward,
            evals: oracle.evals(),
            solve_nanos: t0.elapsed().as_nanos() as u64,
            engine_reused: false,
            selection: picks,
        }
    }

    /// Serves one worker's contiguous slice of the stream.
    fn run_chunk<const D: usize>(&self, start: usize, chunk: &[Instance<D>]) -> Vec<BatchResult> {
        let mut out = Vec::with_capacity(chunk.len());
        if !self.warm {
            for (off, inst) in chunk.iter().enumerate() {
                out.push(self.solve_cold(start + off, inst));
            }
            return out;
        }
        let mut scratch = SolveScratch::new();
        let mut i = 0;
        while i < chunk.len() {
            let inst = &chunk[i];
            // Extend the run over adjacent identical requests so they
            // share one engine build.
            let mut j = i + 1;
            while j < chunk.len() && chunk[j] == *inst {
                j += 1;
            }
            let build0 = Instant::now();
            let oracle = self.build_oracle(inst, &mut scratch);
            let build_nanos = build0.elapsed().as_nanos() as u64;
            let mut evals_before = 0u64;
            for r in i..j {
                let t0 = Instant::now();
                let reward = solve_rounds(&oracle, &mut scratch);
                let mut solve_nanos = t0.elapsed().as_nanos() as u64;
                if r == i {
                    // The run's first request pays for the build.
                    solve_nanos += build_nanos;
                }
                let evals = oracle.evals();
                out.push(BatchResult {
                    index: start + r,
                    n: inst.n(),
                    k: inst.k(),
                    reward,
                    evals: evals - evals_before,
                    solve_nanos,
                    engine_reused: r > i,
                    selection: scratch.picks().to_vec(),
                });
                evals_before = evals;
            }
            recycle(oracle, &mut scratch);
            i = j;
        }
        out
    }

    /// Solves every instance in `instances`, in order, across
    /// `rayon::current_num_threads()` workers (each with its own
    /// scratch). Results come back in input order.
    pub fn run<const D: usize>(&self, instances: &[Instance<D>]) -> BatchReport {
        let t0 = Instant::now();
        let workers = rayon::current_num_threads()
            .max(1)
            .min(instances.len().max(1));
        let results = if workers <= 1 {
            self.run_chunk(0, instances)
        } else {
            let per = instances.len().div_ceil(workers);
            let chunks: Vec<(usize, &[Instance<D>])> = instances
                .chunks(per)
                .enumerate()
                .map(|(c, slice)| (c * per, slice))
                .collect();
            chunks
                .into_par_iter()
                .map(|(start, slice)| self.run_chunk(start, slice))
                .collect::<Vec<_>>()
                .into_iter()
                .flatten()
                .collect()
        };
        BatchReport {
            results,
            wall_nanos: t0.elapsed().as_nanos() as u64,
            workers,
            warm: self.warm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmph_geom::{Norm, Point};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(seed: u64, n: usize, k: usize, norm: Norm) -> Instance<2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Point<2>> = (0..n)
            .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
            .collect();
        let ws: Vec<f64> = (0..n).map(|_| rng.gen_range(1..=5) as f64).collect();
        Instance::new(pts, ws, 1.0, k, norm).unwrap()
    }

    fn stream(seed: u64, distinct: usize, repeat: usize, norm: Norm) -> Vec<Instance<2>> {
        let mut out = Vec::new();
        for d in 0..distinct {
            let inst = random_instance(seed + d as u64, 40 + 7 * d, 3, norm);
            for _ in 0..repeat {
                out.push(inst.clone());
            }
        }
        out
    }

    #[test]
    fn warm_matches_cold_across_strategies_and_norms() {
        for norm in [Norm::L1, Norm::L2] {
            for strategy in [
                OracleStrategy::Seq,
                OracleStrategy::Par,
                OracleStrategy::Lazy,
            ] {
                let insts = stream(11, 3, 3, norm);
                let runner = BatchRunner::new().with_strategy(strategy);
                let warm = runner.run(&insts);
                let cold = runner.clone().with_warm(false).run(&insts);
                verify_reports(&warm, &cold).unwrap_or_else(|e| panic!("{norm:?} {strategy}: {e}"));
                assert!(warm.engines_reused() > 0, "adjacent repeats should reuse");
                assert_eq!(cold.engines_reused(), 0);
            }
        }
    }

    #[test]
    fn parallel_csr_batch_matches_serial_batch() {
        let insts = stream(23, 2, 2, Norm::L2);
        let serial = BatchRunner::new().run(&insts);
        let parallel = BatchRunner::new().with_parallel_csr(true).run(&insts);
        verify_reports(&serial, &parallel).unwrap();
    }

    #[test]
    fn dirty_region_batch_matches_plain() {
        let insts = stream(29, 2, 2, Norm::L2);
        let plain = BatchRunner::new().run(&insts);
        let dirty = BatchRunner::new().with_dirty_region(true).run(&insts);
        verify_reports(&plain, &dirty).unwrap();
    }

    #[test]
    fn results_are_in_input_order_with_correct_indices() {
        let insts = stream(37, 4, 2, Norm::L2);
        let report = BatchRunner::new().run(&insts);
        assert_eq!(report.results.len(), insts.len());
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.n, insts[i].n());
            assert_eq!(r.k, insts[i].k());
        }
        assert!(report.throughput() > 0.0);
        assert!(report.total_reward() > 0.0);
    }

    #[test]
    fn verify_reports_catches_mismatch() {
        let insts = stream(41, 1, 2, Norm::L2);
        let a = BatchRunner::new().run(&insts);
        let mut b = a.clone();
        b.results[1].selection[0] += 1;
        assert!(verify_reports(&a, &b).is_err());
    }

    #[test]
    fn scratch_survives_mixed_instance_sizes() {
        // A worker serving big-then-small-then-big instances must not
        // leak state across sizes.
        let a = random_instance(51, 90, 4, Norm::L2);
        let b = random_instance(52, 12, 2, Norm::L2);
        let insts = vec![a.clone(), b.clone(), a.clone()];
        let warm = BatchRunner::new().run(&insts);
        let cold = BatchRunner::new().with_warm(false).run(&insts);
        verify_reports(&warm, &cold).unwrap();
        // a's two appearances are separated by b: no reuse possible.
        assert_eq!(warm.engines_reused(), 0);
    }
}
