//! Batched solving: a worker pool driving [`solve_rounds`] over a
//! stream of instances with one [`SolveScratch`] per worker.
//!
//! The serving regime this targets (ROADMAP north star; cf. the
//! distributed-caching framing of Avrachenkov et al.) is *many solves
//! per second over many instances*, where per-solve setup — CSR
//! construction, heap and residual allocation — dominates a cold
//! solve. The batch path amortizes both:
//!
//! - **Scratch reuse**: every buffer a solve touches lives in the
//!   worker's [`SolveScratch`], so steady-state solves allocate
//!   nothing (asserted by the `zero_alloc` integration test).
//! - **Engine reuse**: consecutive requests for the *same* instance
//!   (adjacent in the stream, as produced by
//!   `mmph_sim`'s `repeat` spec) share one built [`RewardEngine`];
//!   only the first request in a run pays the CSR build.
//!
//! Both reuses are bit-transparent: a warm batched solve returns the
//! same selection and reward bits as a cold unbatched solve
//! ([`verify_reports`] checks this in-binary; `proptest_scratch`
//! fuzzes it).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use rayon::prelude::*;
use serde::Serialize;

use crate::budget::{BudgetClock, DegradeReason, SolveBudget, SolveStatus};
use crate::instance::Instance;
use crate::oracle::{GainOracle, OracleStrategy};
use crate::reward::{EngineKind, RewardEngine};
use crate::scratch::SolveScratch;

/// One greedy solve through a prepared oracle, using only the buffers
/// in `scratch`. After a warmup solve of the same shape this performs
/// zero heap allocations for the [`OracleStrategy::Seq`] and
/// [`OracleStrategy::Lazy`] strategies ([`OracleStrategy::Par`]
/// allocates inside the thread-pool shim).
///
/// The selection is left in `scratch.picks()` / `scratch.round_gains()`
/// and the total reward is returned. Results are bit-identical to a
/// fresh-allocation solve regardless of what the scratch last held.
pub fn solve_rounds<const D: usize>(oracle: &GainOracle<'_, D>, scratch: &mut SolveScratch) -> f64 {
    solve_rounds_within(oracle, scratch, &BudgetClock::unlimited()).0
}

/// [`solve_rounds`] under a started [`SolveBudget`]: the budget is
/// checked once per round against this solve's own evaluation count,
/// so overshoot is bounded by one round of work. On a trip the
/// selection committed so far stays in `scratch.picks()` — a prefix of
/// the unbudgeted selection — and the trip reason is returned. An
/// already-exhausted budget yields an empty selection, never a panic.
///
/// Like [`solve_rounds`], the unbudgeted path stays allocation-free
/// after warmup: an unlimited clock never constructs a reason.
pub fn solve_rounds_within<const D: usize>(
    oracle: &GainOracle<'_, D>,
    scratch: &mut SolveScratch,
    clock: &BudgetClock,
) -> (f64, Option<DegradeReason>) {
    let inst = oracle.instance();
    let (n, k) = (inst.n(), inst.k());
    // The oracle's eval counter is cumulative across engine reuses;
    // the budget governs this request only.
    let evals0 = oracle.evals();
    scratch.residuals.reset(n);
    scratch.picks.clear();
    scratch.picks.reserve(k);
    scratch.round_gains.clear();
    scratch.round_gains.reserve(k);
    // A reused oracle still holds the previous solve's CELF heap;
    // those cached gains/versions are meaningless against reset
    // residuals, so force a re-prime (which reuses the heap storage).
    oracle.reset_lazy();
    let mut total = 0.0;
    for _ in 0..k {
        if let Some(reason) = clock.check(oracle.evals() - evals0) {
            return (total, Some(reason));
        }
        let best = oracle.best_candidate(&scratch.residuals);
        // A cancel trip mid-argmax poisons `best` (post-trip scores are
        // substituted with 0.0): discard the round and return the
        // committed prefix instead of committing a junk pick.
        if clock.cancelled() {
            return (total, Some(DegradeReason::Cancelled));
        }
        let gain = scratch.residuals.apply(inst, inst.point(best.index));
        scratch.picks.push(best.index);
        scratch.round_gains.push(gain);
        total += gain;
    }
    (total, None)
}

/// Returns the buffers an oracle borrowed from `scratch` (CELF heap
/// storage and, for sparse engines, the CSR arrays) so the next solve
/// can reuse their capacity. Call when retiring an oracle built by
/// [`BatchRunner::build_oracle`].
pub fn recycle<const D: usize>(oracle: GainOracle<'_, D>, scratch: &mut SolveScratch) {
    scratch.put_lazy(oracle.take_lazy_scratch());
    oracle.into_engine().reclaim(&mut scratch.csr);
}

/// Per-request outcome of a batch run.
#[derive(Debug, Clone, Serialize)]
pub struct BatchResult {
    /// Position of the request in the input stream.
    pub index: usize,
    /// Instance size.
    pub n: usize,
    /// Number of centers selected.
    pub k: usize,
    /// Total coverage reward of the selection.
    pub reward: f64,
    /// Candidate evaluations charged to this request.
    pub evals: u64,
    /// Wall time of the solve (excludes engine build when the engine
    /// was reused; includes it on the first request of a run).
    pub solve_nanos: u64,
    /// Whether this request reused the previous request's engine.
    pub engine_reused: bool,
    /// Completion status: `Completed`, or `Degraded` when the
    /// request's budget tripped (prefix selection) or its solve
    /// panicked (empty selection, `error` set).
    pub status: SolveStatus,
    /// Panic message when the solve was isolated by `catch_unwind`;
    /// `None` for clean (completed or budget-degraded) solves.
    pub error: Option<String>,
    /// Selected candidate indices, in pick order.
    pub selection: Vec<usize>,
}

impl BatchResult {
    /// True when the request ran to completion without budget trips
    /// or panics.
    pub fn is_complete(&self) -> bool {
        self.status.is_complete() && self.error.is_none()
    }
}

/// Aggregate outcome of [`BatchRunner::run`].
#[derive(Debug, Clone, Serialize)]
pub struct BatchReport {
    /// Per-request results, in input order.
    pub results: Vec<BatchResult>,
    /// End-to-end wall time of the batch, including worker spawn.
    pub wall_nanos: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Whether scratch/engine reuse was enabled.
    pub warm: bool,
}

impl BatchReport {
    /// Requests completed per second of batch wall time.
    pub fn throughput(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.results.len() as f64 / (self.wall_nanos as f64 / 1e9)
    }

    /// Number of requests that reused a previously built engine.
    pub fn engines_reused(&self) -> usize {
        self.results.iter().filter(|r| r.engine_reused).count()
    }

    /// Sum of per-request solve times (excludes batch overhead).
    pub fn total_solve_nanos(&self) -> u64 {
        self.results.iter().map(|r| r.solve_nanos).sum()
    }

    /// Sum of per-request rewards.
    pub fn total_reward(&self) -> f64 {
        self.results.iter().map(|r| r.reward).sum()
    }

    /// Number of requests whose budget tripped or whose solve panicked.
    pub fn degraded(&self) -> usize {
        self.results
            .iter()
            .filter(|r| !r.status.is_complete())
            .count()
    }

    /// Number of requests isolated by `catch_unwind`.
    pub fn errors(&self) -> usize {
        self.results.iter().filter(|r| r.error.is_some()).count()
    }
}

/// Checks that two reports over the same request stream picked
/// bit-identical selections and rewards. Used to verify warm (reused
/// scratch/engine) runs against cold reference runs in-binary.
pub fn verify_reports(a: &BatchReport, b: &BatchReport) -> Result<(), String> {
    if a.results.len() != b.results.len() {
        return Err(format!(
            "request count mismatch: {} vs {}",
            a.results.len(),
            b.results.len()
        ));
    }
    for (x, y) in a.results.iter().zip(&b.results) {
        if x.selection != y.selection {
            return Err(format!(
                "selection mismatch at request {}: {:?} vs {:?}",
                x.index, x.selection, y.selection
            ));
        }
        if x.reward.to_bits() != y.reward.to_bits() {
            return Err(format!(
                "reward bits mismatch at request {}: {} vs {}",
                x.index, x.reward, y.reward
            ));
        }
        if x.error.is_some() != y.error.is_some() {
            return Err(format!(
                "error mismatch at request {}: {:?} vs {:?}",
                x.index, x.error, y.error
            ));
        }
    }
    Ok(())
}

/// Drives a worker pool over a stream of instances. Configure with the
/// builder methods, then call [`Self::run`].
///
/// ```
/// use mmph_core::{BatchRunner, InstanceBuilder};
///
/// let inst = InstanceBuilder::new()
///     .point([0.0, 0.0], 1.0)
///     .point([3.0, 0.0], 2.0)
///     .radius(1.0)
///     .k(1)
///     .build()
///     .unwrap();
/// let stream = vec![inst.clone(), inst];
/// let report = BatchRunner::new().run(&stream);
/// assert_eq!(report.results.len(), 2);
/// assert_eq!(report.results[0].selection, vec![1]);
/// assert_eq!(report.engines_reused(), 1); // identical adjacent requests
/// ```
#[derive(Debug, Clone)]
pub struct BatchRunner {
    strategy: OracleStrategy,
    engine: EngineKind,
    parallel_csr: bool,
    warm: bool,
    dirty_region: bool,
    panic_at: Option<usize>,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner {
            strategy: OracleStrategy::Lazy,
            engine: EngineKind::Sparse,
            parallel_csr: false,
            warm: true,
            dirty_region: false,
            panic_at: None,
        }
    }
}

impl BatchRunner {
    /// Defaults: lazy (CELF) oracle on the sparse engine, serial CSR
    /// build, warm scratch/engine reuse on.
    pub fn new() -> Self {
        Self::default()
    }

    /// Candidate-argmax strategy (identical selections under all).
    pub fn with_strategy(mut self, strategy: OracleStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Reward-evaluation engine. [`EngineKind::Auto`] is treated as
    /// [`EngineKind::Sparse`] here: batch serving is exactly the
    /// workload the CSR engine exists for, and only the sparse engines
    /// (`sparse`, and the opt-in mixed-precision `sparse-f32`)
    /// participate in CSR-scratch reuse.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Build the CSR adjacency with the rayon-parallel path
    /// (byte-identical output to the serial build).
    pub fn with_parallel_csr(mut self, yes: bool) -> Self {
        self.parallel_csr = yes;
        self
    }

    /// `false` disables all reuse: every request allocates fresh state
    /// and builds its own engine — the cold per-instance baseline the
    /// `throughput` bench compares against.
    pub fn with_warm(mut self, yes: bool) -> Self {
        self.warm = yes;
        self
    }

    /// Enables the dirty-region CELF upgrade on sparse engines.
    pub fn with_dirty_region(mut self, yes: bool) -> Self {
        self.dirty_region = yes;
        self
    }

    /// Fault injection: the request at stream position `index` panics
    /// inside its worker. Used by the panic-isolation regression tests
    /// and the serve smoke checks; the report must still deliver an
    /// ordered entry for every request.
    pub fn with_injected_panic(mut self, index: usize) -> Self {
        self.panic_at = Some(index);
        self
    }

    fn maybe_inject_panic(&self, index: usize) {
        if self.panic_at == Some(index) {
            panic!("injected panic at request {index}");
        }
    }

    /// Builds an oracle whose engine and CELF heap borrow their
    /// storage from `scratch`. Retire it with [`recycle`] to return
    /// the storage.
    pub fn build_oracle<'a, const D: usize>(
        &self,
        inst: &'a Instance<D>,
        scratch: &mut SolveScratch,
    ) -> GainOracle<'a, D> {
        let engine = match self.engine {
            EngineKind::Sparse | EngineKind::Auto => {
                RewardEngine::sparse_with_scratch(inst, &mut scratch.csr, self.parallel_csr)
            }
            EngineKind::SparseF32 => {
                RewardEngine::sparse_f32_with_scratch(inst, &mut scratch.csr, self.parallel_csr)
            }
            kind => RewardEngine::with_kind(inst, kind),
        };
        GainOracle::from_engine(engine, self.strategy)
            .with_dirty_region(self.dirty_region)
            .with_lazy_scratch(scratch.take_lazy())
    }

    /// An ordered error entry for a request whose solve panicked. The
    /// selection is empty and the status is `Degraded`, so downstream
    /// consumers (the serve layer, the report printer) can surface the
    /// failure without losing report ordering.
    fn panic_result<const D: usize>(
        index: usize,
        inst: &Instance<D>,
        payload: Box<dyn std::any::Any + Send>,
    ) -> BatchResult {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "worker panicked".to_string());
        BatchResult {
            index,
            n: inst.n(),
            k: inst.k(),
            reward: 0.0,
            evals: 0,
            solve_nanos: 0,
            engine_reused: false,
            status: SolveStatus::Degraded {
                reason: DegradeReason::RungPanicked {
                    rung: "batch-worker".into(),
                },
            },
            error: Some(msg),
            selection: Vec::new(),
        }
    }

    fn status_from(reason: Option<DegradeReason>) -> SolveStatus {
        match reason {
            None => SolveStatus::Completed,
            Some(reason) => SolveStatus::Degraded { reason },
        }
    }

    /// Cold reference solve: fresh allocations, serial CSR build, no
    /// reuse of any kind — the unbatched per-request baseline.
    fn solve_cold<const D: usize>(
        &self,
        index: usize,
        inst: &Instance<D>,
        budget: SolveBudget,
    ) -> BatchResult {
        let kind = match self.engine {
            EngineKind::Auto => EngineKind::Sparse,
            kind => kind,
        };
        let t0 = Instant::now();
        let clock = budget.start();
        let solved = catch_unwind(AssertUnwindSafe(|| {
            self.maybe_inject_panic(index);
            let oracle = GainOracle::with_engine(inst, kind, self.strategy)
                .with_dirty_region(self.dirty_region)
                .with_cancel(budget.cancel_token().cloned());
            let mut residuals = crate::reward::Residuals::new(inst.n());
            let mut picks = Vec::with_capacity(inst.k());
            let mut reward = 0.0;
            let mut tripped = None;
            for _ in 0..inst.k() {
                if let Some(reason) = clock.check(oracle.evals()) {
                    tripped = Some(reason);
                    break;
                }
                let best = oracle.best_candidate(&residuals);
                if clock.cancelled() {
                    tripped = Some(DegradeReason::Cancelled);
                    break;
                }
                reward += residuals.apply(inst, inst.point(best.index));
                picks.push(best.index);
            }
            (reward, picks, oracle.evals(), tripped)
        }));
        match solved {
            Ok((reward, picks, evals, tripped)) => BatchResult {
                index,
                n: inst.n(),
                k: inst.k(),
                reward,
                evals,
                solve_nanos: t0.elapsed().as_nanos() as u64,
                engine_reused: false,
                status: Self::status_from(tripped),
                error: None,
                selection: picks,
            },
            Err(payload) => Self::panic_result(index, inst, payload),
        }
    }

    /// Serves one worker's contiguous slice of the stream.
    /// `budgets[r]` (when present) bounds `chunk[r]`; a missing entry
    /// means unlimited. A panicking request yields an ordered error
    /// entry and a fresh scratch — the remaining requests of its run
    /// rebuild the engine and proceed.
    fn run_chunk<const D: usize>(
        &self,
        start: usize,
        chunk: &[Instance<D>],
        budgets: &[SolveBudget],
    ) -> Vec<BatchResult> {
        let budget_for = |off: usize| budgets.get(off).cloned().unwrap_or_default();
        let mut out = Vec::with_capacity(chunk.len());
        if !self.warm {
            for (off, inst) in chunk.iter().enumerate() {
                out.push(self.solve_cold(start + off, inst, budget_for(off)));
            }
            return out;
        }
        let mut scratch = SolveScratch::new();
        let mut i = 0;
        while i < chunk.len() {
            let inst = &chunk[i];
            // Extend the run over adjacent identical requests so they
            // share one engine build.
            let mut j = i + 1;
            while j < chunk.len() && chunk[j] == *inst {
                j += 1;
            }
            let build0 = Instant::now();
            let mut oracle = self.build_oracle(inst, &mut scratch);
            let build_nanos = build0.elapsed().as_nanos() as u64;
            let mut evals_before = 0u64;
            let mut panicked = false;
            let run_start = i;
            for r in run_start..j {
                let index = start + r;
                let budget = budget_for(r);
                // Requests in one reuse run can come from different
                // connections, each with its own token.
                oracle.set_cancel(budget.cancel_token().cloned());
                let t0 = Instant::now();
                let clock = budget.start();
                let solved = catch_unwind(AssertUnwindSafe(|| {
                    self.maybe_inject_panic(index);
                    solve_rounds_within(&oracle, &mut scratch, &clock)
                }));
                match solved {
                    Ok((reward, tripped)) => {
                        let mut solve_nanos = t0.elapsed().as_nanos() as u64;
                        if r == run_start {
                            // The run's first request pays for the build.
                            solve_nanos += build_nanos;
                        }
                        let evals = oracle.evals();
                        out.push(BatchResult {
                            index,
                            n: inst.n(),
                            k: inst.k(),
                            reward,
                            evals: evals - evals_before,
                            solve_nanos,
                            engine_reused: r > run_start,
                            status: Self::status_from(tripped),
                            error: None,
                            selection: scratch.picks().to_vec(),
                        });
                        evals_before = evals;
                    }
                    Err(payload) => {
                        out.push(Self::panic_result(index, inst, payload));
                        i = r + 1;
                        panicked = true;
                        break;
                    }
                }
            }
            if panicked {
                // The oracle (and the buffers it took from the
                // scratch) may be mid-update; drop both and let the
                // rest of the stream rebuild from a clean arena.
                drop(oracle);
                scratch = SolveScratch::new();
            } else {
                recycle(oracle, &mut scratch);
                i = j;
            }
        }
        out
    }

    /// Solves every instance in `instances`, in order, across
    /// `rayon::current_num_threads()` workers (each with its own
    /// scratch). Results come back in input order.
    pub fn run<const D: usize>(&self, instances: &[Instance<D>]) -> BatchReport {
        self.run_budgeted(instances, &[])
    }

    /// [`Self::run`] with per-request budgets: `budgets[i]` bounds
    /// `instances[i]`; when `budgets` is shorter than the stream the
    /// tail is unlimited. A tripped budget degrades that request to
    /// its committed prefix (status [`SolveStatus::Degraded`]); it
    /// never hangs the report.
    pub fn run_budgeted<const D: usize>(
        &self,
        instances: &[Instance<D>],
        budgets: &[SolveBudget],
    ) -> BatchReport {
        let t0 = Instant::now();
        let workers = rayon::current_num_threads()
            .max(1)
            .min(instances.len().max(1));
        let results = if workers <= 1 {
            self.run_chunk(0, instances, budgets)
        } else {
            let per = instances.len().div_ceil(workers);
            let chunks: Vec<(usize, &[Instance<D>], &[SolveBudget])> = instances
                .chunks(per)
                .enumerate()
                .map(|(c, slice)| {
                    let start = c * per;
                    let bslice = budgets
                        .get(start..)
                        .map_or(&budgets[0..0], |rest| &rest[..rest.len().min(slice.len())]);
                    (start, slice, bslice)
                })
                .collect();
            chunks
                .into_par_iter()
                .map(|(start, slice, bslice)| self.run_chunk(start, slice, bslice))
                .collect::<Vec<_>>()
                .into_iter()
                .flatten()
                .collect()
        };
        BatchReport {
            results,
            wall_nanos: t0.elapsed().as_nanos() as u64,
            workers,
            warm: self.warm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmph_geom::{Norm, Point};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(seed: u64, n: usize, k: usize, norm: Norm) -> Instance<2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Point<2>> = (0..n)
            .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
            .collect();
        let ws: Vec<f64> = (0..n).map(|_| rng.gen_range(1..=5) as f64).collect();
        Instance::new(pts, ws, 1.0, k, norm).unwrap()
    }

    fn stream(seed: u64, distinct: usize, repeat: usize, norm: Norm) -> Vec<Instance<2>> {
        let mut out = Vec::new();
        for d in 0..distinct {
            let inst = random_instance(seed + d as u64, 40 + 7 * d, 3, norm);
            for _ in 0..repeat {
                out.push(inst.clone());
            }
        }
        out
    }

    #[test]
    fn warm_matches_cold_across_strategies_and_norms() {
        for norm in [Norm::L1, Norm::L2] {
            for strategy in [
                OracleStrategy::Seq,
                OracleStrategy::Par,
                OracleStrategy::Lazy,
            ] {
                let insts = stream(11, 3, 3, norm);
                let runner = BatchRunner::new().with_strategy(strategy);
                let warm = runner.run(&insts);
                let cold = runner.clone().with_warm(false).run(&insts);
                verify_reports(&warm, &cold).unwrap_or_else(|e| panic!("{norm:?} {strategy}: {e}"));
                assert!(warm.engines_reused() > 0, "adjacent repeats should reuse");
                assert_eq!(cold.engines_reused(), 0);
            }
        }
    }

    #[test]
    fn parallel_csr_batch_matches_serial_batch() {
        let insts = stream(23, 2, 2, Norm::L2);
        let serial = BatchRunner::new().run(&insts);
        let parallel = BatchRunner::new().with_parallel_csr(true).run(&insts);
        verify_reports(&serial, &parallel).unwrap();
    }

    #[test]
    fn dirty_region_batch_matches_plain() {
        let insts = stream(29, 2, 2, Norm::L2);
        let plain = BatchRunner::new().run(&insts);
        let dirty = BatchRunner::new().with_dirty_region(true).run(&insts);
        verify_reports(&plain, &dirty).unwrap();
    }

    #[test]
    fn results_are_in_input_order_with_correct_indices() {
        let insts = stream(37, 4, 2, Norm::L2);
        let report = BatchRunner::new().run(&insts);
        assert_eq!(report.results.len(), insts.len());
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.n, insts[i].n());
            assert_eq!(r.k, insts[i].k());
        }
        assert!(report.throughput() > 0.0);
        assert!(report.total_reward() > 0.0);
    }

    #[test]
    fn verify_reports_catches_mismatch() {
        let insts = stream(41, 1, 2, Norm::L2);
        let a = BatchRunner::new().run(&insts);
        let mut b = a.clone();
        b.results[1].selection[0] += 1;
        assert!(verify_reports(&a, &b).is_err());
    }

    #[test]
    fn zero_budget_degrades_instead_of_hanging() {
        let insts = stream(61, 1, 3, Norm::L2);
        let budgets = vec![
            SolveBudget::unlimited(),
            SolveBudget::unlimited().with_max_evals(0),
            SolveBudget::unlimited(),
        ];
        for warm in [true, false] {
            let report = BatchRunner::new()
                .with_warm(warm)
                .run_budgeted(&insts, &budgets);
            assert_eq!(report.results.len(), 3);
            assert!(report.results[0].is_complete());
            assert!(!report.results[1].status.is_complete());
            assert!(report.results[1].selection.is_empty());
            assert!(
                report.results[1].error.is_none(),
                "budget trip is not an error"
            );
            assert!(report.results[2].is_complete());
            assert_eq!(report.degraded(), 1);
            assert_eq!(report.errors(), 0);
            // The budget never changes what an unconstrained request picks.
            assert_eq!(report.results[0].selection, report.results[2].selection);
        }
    }

    #[test]
    fn eval_budget_yields_prefix_of_unbudgeted_selection() {
        let inst = random_instance(67, 60, 4, Norm::L2);
        let full = BatchRunner::new().run(std::slice::from_ref(&inst));
        let full_sel = &full.results[0].selection;
        assert_eq!(full_sel.len(), 4);
        // A cap below the full solve's eval count trips mid-selection.
        let capped = SolveBudget::unlimited().with_max_evals(full.results[0].evals / 2);
        let report = BatchRunner::new().run_budgeted(std::slice::from_ref(&inst), &[capped]);
        let r = &report.results[0];
        assert!(!r.status.is_complete());
        assert!(r.selection.len() < full_sel.len());
        assert_eq!(r.selection[..], full_sel[..r.selection.len()], "prefix");
    }

    #[test]
    fn injected_panic_surfaces_ordered_error_entry() {
        // 2 distinct scenarios × 3 repeats; panic mid-run of the first
        // so the rest of the run must rebuild the engine.
        let insts = stream(71, 2, 3, Norm::L2);
        for warm in [true, false] {
            let clean = BatchRunner::new().with_warm(warm).run(&insts);
            let faulty = BatchRunner::new()
                .with_warm(warm)
                .with_injected_panic(1)
                .run(&insts);
            assert_eq!(faulty.results.len(), insts.len(), "no stalled entries");
            for (i, r) in faulty.results.iter().enumerate() {
                assert_eq!(r.index, i, "report stays ordered");
            }
            let bad = &faulty.results[1];
            assert!(bad.error.as_deref().unwrap().contains("injected panic"));
            assert!(bad.selection.is_empty());
            assert!(!bad.status.is_complete());
            assert_eq!(faulty.errors(), 1);
            // Every other request is untouched by the fault.
            for (c, f) in clean.results.iter().zip(&faulty.results) {
                if f.index == 1 {
                    continue;
                }
                assert_eq!(c.selection, f.selection, "request {}", f.index);
                assert_eq!(c.reward.to_bits(), f.reward.to_bits());
                assert!(f.error.is_none());
            }
        }
    }

    #[test]
    fn verify_reports_catches_error_mismatch() {
        let insts = stream(73, 1, 2, Norm::L2);
        let clean = BatchRunner::new().run(&insts);
        let faulty = BatchRunner::new().with_injected_panic(0).run(&insts);
        assert!(verify_reports(&clean, &faulty).is_err());
    }

    #[test]
    fn scratch_survives_mixed_instance_sizes() {
        // A worker serving big-then-small-then-big instances must not
        // leak state across sizes.
        let a = random_instance(51, 90, 4, Norm::L2);
        let b = random_instance(52, 12, 2, Norm::L2);
        let insts = vec![a.clone(), b.clone(), a.clone()];
        let warm = BatchRunner::new().run(&insts);
        let cold = BatchRunner::new().with_warm(false).run(&insts);
        verify_reports(&warm, &cold).unwrap();
        // a's two appearances are separated by b: no reuse possible.
        assert_eq!(warm.engines_reused(), 0);
    }
}
