//! Weighted coreset reduction for very large instances.
//!
//! The sparse engine tops out where one blocked CSR fits the auto-cap
//! (roughly n = 10⁶ at paper densities). Past that point the coverage
//! objective still has tiny *weighted coresets* (Backurs & Har-Peled,
//! "Submodular Clustering in Low Dimensions"): snap every point to a
//! grid of cell side `r / c`, keep one representative per occupied
//! cell — the weighted centroid, carrying the cell's summed weight —
//! and solve on the representatives. Weights are first-class in
//! [`Instance`], so the blocked kernel, oracle, and every solver are
//! reused unchanged on the reduced instance.
//!
//! Why this is sound: moving a point by `disp ≤ cell·√D/2` changes its
//! kernel fraction against any center by at most `disp / r`, so for a
//! `k`-center selection the objective moves by at most
//! `Σᵢ wᵢ · min(1, k·dispᵢ/r)` — an additive bound that shrinks
//! linearly in the cell size. The weighted centroid does better than
//! the bound suggests: the kernel is linear in distance, so the
//! first-order displacement error *cancels within each cell* and only
//! the second-order spread survives. [`solve_coreset`] does not stop at
//! the a-priori bound: it re-scores the returned centers against the
//! full-resolution point set in a streaming pass and reports the
//! realized gap.

use std::collections::HashMap;
use std::time::Instant;

use mmph_geom::Point;
use rayon::prelude::*;

use crate::batch::{recycle, solve_rounds_within};
use crate::budget::{DegradeReason, SolveBudget};
use crate::instance::Instance;
use crate::oracle::{GainOracle, OracleStrategy};
use crate::reward::{EngineKind, RewardEngine, DEFAULT_SPARSE_CAP_BYTES};
use crate::scratch::SolveScratch;
use crate::{CoreError, Result};

/// Default grid resolution: cells per interest radius. Cell side
/// `r / 4` keeps the worst-case per-point displacement under
/// `r·√2/8 ≈ 0.18 r` in 2-D while shrinking paper-density instances
/// by the ratio of point spacing to `r / 4`.
pub const DEFAULT_CORESET_CELLS: f64 = 4.0;

/// Chunk width of the streaming full-resolution objective pass. The
/// pass reduces per-chunk partial sums in chunk order, so the result
/// is bit-identical for any thread count.
const OBJECTIVE_CHUNK: usize = 1 << 16;

/// Configuration for [`solve_coreset`].
#[derive(Debug, Clone)]
pub struct CoresetConfig {
    /// Grid resolution: number of cells per interest radius (cell side
    /// = `r / cells_per_radius`). Finer grids mean larger coresets and
    /// smaller gaps.
    pub cells_per_radius: f64,
    /// Engine kind for the coreset solve. `Auto` (default) picks the
    /// capped sparse engine.
    pub engine: EngineKind,
    /// Oracle strategy for the coreset solve.
    pub strategy: OracleStrategy,
    /// Budget for the coreset solve (deadline / evals / cancellation).
    pub budget: SolveBudget,
    /// Sparse-CSR byte cap for the coreset engine's auto selection.
    pub cap_bytes: usize,
}

impl Default for CoresetConfig {
    fn default() -> Self {
        CoresetConfig {
            cells_per_radius: DEFAULT_CORESET_CELLS,
            engine: EngineKind::Auto,
            strategy: OracleStrategy::Lazy,
            budget: SolveBudget::unlimited(),
            cap_bytes: DEFAULT_SPARSE_CAP_BYTES,
        }
    }
}

/// A grid-cell coreset: the reduced instance plus its error accounting.
#[derive(Debug, Clone)]
pub struct Coreset<const D: usize> {
    /// The reduced instance: one weighted-centroid representative per
    /// occupied cell, weight = the cell's summed weight, same
    /// `r`/`k`/norm/kernel as the source.
    pub instance: Instance<D>,
    /// Grid cell side (`r / cells_per_radius`).
    pub cell: f64,
    /// `Σᵢ wᵢ · dist(xᵢ, rep(cell(xᵢ)))` — total weighted displacement.
    pub weighted_displacement: f64,
    /// A-priori additive error bound for any `k`-center selection:
    /// `Σᵢ wᵢ · min(1, k·dispᵢ/r)`.
    pub error_bound: f64,
}

/// Builds the grid-cell coreset of `inst` with cell side
/// `r / cells_per_radius`. Representatives are emitted in sorted cell
/// order, so the construction is deterministic.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] when `cells_per_radius` is not finite
/// and positive.
pub fn build_coreset<const D: usize>(
    inst: &Instance<D>,
    cells_per_radius: f64,
) -> Result<Coreset<D>> {
    if !cells_per_radius.is_finite() || cells_per_radius <= 0.0 {
        return Err(CoreError::InvalidConfig(format!(
            "coreset cells per radius must be finite and positive, got {cells_per_radius}"
        )));
    }
    let cell = inst.radius() / cells_per_radius;
    let points = inst.points();
    let weights = inst.weights();

    struct CellAgg<const D: usize> {
        weight: f64,
        sum: [f64; D],
        rep: u32,
    }
    let mut cells: HashMap<[i64; D], CellAgg<D>> = HashMap::new();
    for (p, &w) in points.iter().zip(weights) {
        let key: [i64; D] = std::array::from_fn(|d| (p[d] / cell).floor() as i64);
        let agg = cells.entry(key).or_insert(CellAgg {
            weight: 0.0,
            sum: [0.0; D],
            rep: 0,
        });
        agg.weight += w;
        for d in 0..D {
            agg.sum[d] += w * p[d];
        }
    }

    let mut keys: Vec<[i64; D]> = cells.keys().copied().collect();
    keys.sort_unstable();
    let mut reps = Vec::with_capacity(keys.len());
    let mut rep_weights = Vec::with_capacity(keys.len());
    for (slot, key) in keys.iter().enumerate() {
        let agg = cells.get_mut(key).expect("key collected from map");
        agg.rep = slot as u32;
        reps.push(Point(std::array::from_fn(|d| agg.sum[d] / agg.weight)));
        rep_weights.push(agg.weight);
    }

    // Second pass: realized displacement of every point to its cell's
    // representative, which the a-priori gap bound is built from.
    let norm = inst.norm();
    let r = inst.radius();
    let kf = inst.k() as f64;
    let mut weighted_displacement = 0.0;
    let mut error_bound = 0.0;
    for (p, &w) in points.iter().zip(weights) {
        let key: [i64; D] = std::array::from_fn(|d| (p[d] / cell).floor() as i64);
        let rep = &reps[cells[&key].rep as usize];
        let disp = norm.dist(p, rep);
        weighted_displacement += w * disp;
        error_bound += w * (kf * disp / r).min(1.0);
    }

    let instance =
        Instance::new(reps, rep_weights, r, inst.k(), norm)?.with_kernel(inst.kernel())?;
    Ok(Coreset {
        instance,
        cell,
        weighted_displacement,
        error_bound,
    })
}

/// Report of one coreset-path solve: the reduced problem's size, the
/// selection, both objectives, and the realized gap.
#[derive(Debug, Clone)]
pub struct CoresetReport<const D: usize> {
    /// `n` of the source instance.
    pub full_n: usize,
    /// Number of coreset representatives actually solved on.
    pub coreset_n: usize,
    /// Grid cell side used.
    pub cell: f64,
    /// Grid resolution (cells per radius) used.
    pub cells_per_radius: f64,
    /// Selected representative indices (into the coreset instance).
    pub selection: Vec<usize>,
    /// Selected centers (representative coordinates).
    pub centers: Vec<Point<D>>,
    /// Objective of the selection on the coreset (`f_cs(C)`).
    pub coreset_objective: f64,
    /// Objective of the same centers on the full point set (`f(C)`),
    /// from the streaming full-resolution pass.
    pub full_objective: f64,
    /// Realized relative gap `|f_cs(C) − f(C)| / f_cs(C)`.
    pub gap: f64,
    /// A-priori additive error bound from the coreset construction.
    pub error_bound: f64,
    /// `Some` when the budget tripped mid-solve; the selection is the
    /// committed prefix.
    pub degraded: Option<DegradeReason>,
    /// Engine backend the coreset solve actually used.
    pub engine: EngineKind,
    /// Oracle evaluations spent by the coreset solve.
    pub evals: u64,
    /// Coreset construction time.
    pub build_ms: f64,
    /// Greedy solve time on the coreset.
    pub solve_ms: f64,
    /// Streaming full-resolution objective time.
    pub eval_ms: f64,
}

/// Solves `inst` through the coreset path: reduce, greedy-solve the
/// reduction with the existing sparse engine, then re-score the chosen
/// centers against the full point set and report the realized gap.
pub fn solve_coreset<const D: usize>(
    inst: &Instance<D>,
    cfg: &CoresetConfig,
) -> Result<CoresetReport<D>> {
    let t0 = Instant::now();
    let coreset = build_coreset(inst, cfg.cells_per_radius)?;
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let engine = match cfg.engine {
        EngineKind::Auto => {
            RewardEngine::auto_with_cap_kind(&coreset.instance, cfg.cap_bytes, EngineKind::Sparse)
        }
        kind => RewardEngine::with_kind(&coreset.instance, kind),
    };
    let kind = engine.kind();
    let mut oracle = GainOracle::from_engine(engine, cfg.strategy);
    if let Some(token) = cfg.budget.cancel_token() {
        oracle.set_cancel(Some(token.clone()));
    }
    let mut scratch = SolveScratch::with_capacity(coreset.instance.n(), coreset.instance.k());
    let clock = cfg.budget.start();
    let (coreset_objective, degraded) = solve_rounds_within(&oracle, &mut scratch, &clock);
    let selection = scratch.picks().to_vec();
    let centers: Vec<Point<D>> = selection
        .iter()
        .map(|&i| *coreset.instance.point(i))
        .collect();
    let evals = oracle.evals();
    recycle(oracle, &mut scratch);
    let solve_ms = t1.elapsed().as_secs_f64() * 1e3;

    let t2 = Instant::now();
    let full_objective = streaming_objective(inst, &centers);
    let eval_ms = t2.elapsed().as_secs_f64() * 1e3;
    let gap = (coreset_objective - full_objective).abs() / coreset_objective.max(1e-12);

    Ok(CoresetReport {
        full_n: inst.n(),
        coreset_n: coreset.instance.n(),
        cell: coreset.cell,
        cells_per_radius: cfg.cells_per_radius,
        selection,
        centers,
        coreset_objective,
        full_objective,
        gap,
        error_bound: coreset.error_bound,
        degraded,
        engine: kind,
        evals,
        build_ms,
        solve_ms,
        eval_ms,
    })
}

/// Full-resolution objective `f(C) = Σᵢ wᵢ·min(1, Σ_c frac(d(c, xᵢ)))`
/// of an arbitrary center set, evaluated in a streaming pass over the
/// point set without building any index. Work is split into fixed
/// chunks scored in parallel; the partial sums are reduced in chunk
/// order, so the result is deterministic for any thread count.
pub fn streaming_objective<const D: usize>(inst: &Instance<D>, centers: &[Point<D>]) -> f64 {
    if centers.is_empty() {
        return 0.0;
    }
    let n = inst.n();
    let points = inst.points();
    let weights = inst.weights();
    let norm = inst.norm();
    let r = inst.radius();
    let kernel = inst.kernel().prepared();
    let chunks = n.div_ceil(OBJECTIVE_CHUNK);
    let partials: Vec<f64> = (0..chunks)
        .into_par_iter()
        .map(|ci| {
            let lo = ci * OBJECTIVE_CHUNK;
            let hi = (lo + OBJECTIVE_CHUNK).min(n);
            let mut acc = 0.0;
            for i in lo..hi {
                let p = &points[i];
                let mut covered = 0.0;
                for c in centers {
                    covered += kernel.frac(norm.dist(p, c), r);
                    if covered >= 1.0 {
                        break;
                    }
                }
                acc += weights[i] * covered.min(1.0);
            }
            acc
        })
        .collect();
    partials.iter().sum()
}

/// How the pipeline should run a solve of this instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalePlan {
    /// The instance fits the engine cap: solve directly.
    Direct,
    /// The estimated CSR footprint busts the cap (or the `u32` entry
    /// budget): escalate to the coreset path instead of silently
    /// falling back to the kd-tree.
    Coreset,
}

/// Decides whether an `Auto`-engine solve should escalate to the
/// coreset path. Mirrors [`RewardEngine::auto_with_cap_kind`]'s
/// fallback condition exactly: `Direct` means auto selection will use
/// the in-cap sparse engine, `Coreset` means it would have fallen back
/// to the kd-tree. Explicit engine kinds never escalate — the caller
/// asked for that backend by name.
pub fn plan_scale<const D: usize>(
    inst: &Instance<D>,
    kind: EngineKind,
    cap_bytes: usize,
) -> ScalePlan {
    if !matches!(kind, EngineKind::Auto) {
        return ScalePlan::Direct;
    }
    match RewardEngine::estimated_sparse_bytes(inst, EngineKind::Sparse) {
        Some(est) => {
            // 20 bytes per f64 CSR entry: u32 neighbor + f64 frac + f64 weight.
            const PER_ENTRY: usize = 4 + 2 * 8;
            if est > cap_bytes || est / PER_ENTRY >= u32::MAX as usize {
                ScalePlan::Coreset
            } else {
                ScalePlan::Direct
            }
        }
        None => ScalePlan::Direct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmph_geom::Norm;

    fn grid_instance(side: usize, r: f64, k: usize) -> Instance<2> {
        let mut points = Vec::new();
        let mut weights = Vec::new();
        for i in 0..side {
            for j in 0..side {
                points.push(Point([i as f64, j as f64]));
                weights.push(1.0 + ((i * side + j) % 5) as f64);
            }
        }
        Instance::new(points, weights, r, k, Norm::L2).unwrap()
    }

    #[test]
    fn fine_cells_keep_every_point() {
        let inst = grid_instance(6, 1.5, 3);
        // Cell side r/8 < 1 (the point spacing): every point is its own cell.
        let cs = build_coreset(&inst, 8.0).unwrap();
        assert_eq!(cs.instance.n(), inst.n());
        assert_eq!(cs.weighted_displacement, 0.0);
        assert_eq!(cs.error_bound, 0.0);
        assert_eq!(cs.instance.total_weight(), inst.total_weight());
    }

    #[test]
    fn coarse_cells_reduce_and_conserve_mass() {
        let inst = grid_instance(8, 4.0, 2);
        // Cell side r/2 = 2: 2x2 blocks of points collapse.
        let cs = build_coreset(&inst, 2.0).unwrap();
        assert!(cs.instance.n() < inst.n());
        assert!((cs.instance.total_weight() - inst.total_weight()).abs() < 1e-9);
        assert!(cs.weighted_displacement > 0.0);
        assert!(cs.error_bound > 0.0);
        assert!(cs.error_bound <= inst.total_weight());
    }

    #[test]
    fn fine_coreset_solve_matches_direct() {
        let inst = grid_instance(6, 1.5, 3);
        let report = solve_coreset(
            &inst,
            &CoresetConfig {
                cells_per_radius: 8.0,
                ..CoresetConfig::default()
            },
        )
        .unwrap();
        // One point per cell: the coreset IS the instance, up to
        // representative ordering, so the objectives agree exactly.
        assert_eq!(report.coreset_n, inst.n());
        assert!(report.gap < 1e-12, "gap {} too large", report.gap);
        let oracle = GainOracle::with_engine(&inst, EngineKind::Sparse, OracleStrategy::Lazy);
        let mut scratch = SolveScratch::with_capacity(inst.n(), inst.k());
        let direct = crate::batch::solve_rounds(&oracle, &mut scratch);
        assert!(
            (report.full_objective - direct).abs() < 1e-9,
            "coreset {} vs direct {}",
            report.full_objective,
            direct
        );
    }

    #[test]
    fn streaming_objective_matches_residual_apply() {
        let inst = grid_instance(7, 2.0, 3);
        let centers = vec![*inst.point(3), *inst.point(17), *inst.point(40)];
        let mut residuals = crate::reward::Residuals::new(inst.n());
        let mut total = 0.0;
        for c in &centers {
            total += residuals.apply(&inst, c);
        }
        let streamed = streaming_objective(&inst, &centers);
        assert!(
            (total - streamed).abs() < 1e-9,
            "apply {total} vs streamed {streamed}"
        );
    }

    #[test]
    fn budget_trip_degrades_with_prefix() {
        let inst = grid_instance(8, 2.0, 4);
        let report = solve_coreset(
            &inst,
            &CoresetConfig {
                budget: SolveBudget::unlimited().with_max_evals(1),
                ..CoresetConfig::default()
            },
        )
        .unwrap();
        assert!(report.degraded.is_some());
        assert!(report.selection.len() < inst.k());
    }

    #[test]
    fn plan_scale_escalates_past_cap() {
        let inst = grid_instance(10, 3.0, 2);
        assert_eq!(
            plan_scale(&inst, EngineKind::Auto, usize::MAX),
            ScalePlan::Direct
        );
        assert_eq!(plan_scale(&inst, EngineKind::Auto, 16), ScalePlan::Coreset);
        // Explicit kinds never escalate.
        assert_eq!(plan_scale(&inst, EngineKind::Kd, 16), ScalePlan::Direct);
        assert_eq!(plan_scale(&inst, EngineKind::Sparse, 16), ScalePlan::Direct);
    }

    #[test]
    fn invalid_cells_rejected() {
        let inst = grid_instance(4, 1.0, 1);
        assert!(build_coreset(&inst, 0.0).is_err());
        assert!(build_coreset(&inst, f64::NAN).is_err());
    }
}
