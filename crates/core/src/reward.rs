//! The reward function and the residual-satisfaction state machine.
//!
//! Paper §IV-A, Equations (1)–(7):
//!
//! * `psi(c, x_i) = w_i (1 − d(c, x_i)/r)` when `d ≤ r`, else 0 — the
//!   partial reward a single broadcast gives user `i` (Eq. 1).
//! * `f(C) = Σ_i w_i min(Σ_j [1 − d(c_j, x_i)/r]_+, 1)` — the capped
//!   total (Eq. 7), computed by [`objective`].
//! * The round framework (Algorithms 1–4) maintains residuals
//!   `y_i^j ∈ [0, 1]`, selects a center maximizing the *coverage reward*
//!   `Σ_i w_i min([1 − d/r]_+, y_i)` and subtracts the assigned
//!   fractions. [`Residuals`] implements this state machine; because the
//!   per-point coverage fractions are non-negative, the per-round gains
//!   telescope exactly to `f(C)` (tested below), so every solver's
//!   reported total equals the closed-form objective.

use mmph_geom::{BallTree, GridIndex, KdTree, Norm, Point};

use crate::instance::Instance;
use crate::kernel::PreparedKernel;

/// Coverage fraction `[1 − d(c, x)/r]_+` of a point at distance `d`
/// (Eq. 1 without the weight).
#[inline]
pub fn coverage_frac(d: f64, r: f64) -> f64 {
    let v = 1.0 - d / r;
    if v > 0.0 {
        v
    } else {
        0.0
    }
}

/// The single-broadcast reward `psi(c, x)` of Eq. (1): weight times
/// coverage fraction.
///
/// ```
/// use mmph_core::psi;
/// use mmph_geom::{Norm, Point};
///
/// let center = Point::new([0.0, 0.0]);
/// let user = Point::new([0.5, 0.0]);
/// // w (1 - d/r) = 2 * (1 - 0.5) = 1.0
/// assert_eq!(psi(2.0, &center, &user, 1.0, Norm::L2), 1.0);
/// ```
#[inline]
pub fn psi<const D: usize>(w: f64, c: &Point<D>, x: &Point<D>, r: f64, norm: Norm) -> f64 {
    w * coverage_frac(norm.dist(c, x), r)
}

/// The exact objective `f(C)` of Eq. (7) for an arbitrary center set.
///
/// ```
/// use mmph_core::{objective, InstanceBuilder};
/// use mmph_geom::Point;
///
/// let inst = InstanceBuilder::new()
///     .point([0.0, 0.0], 1.0)
///     .point([1.0, 0.0], 2.0)
///     .radius(1.0)
///     .k(1)
///     .build()
///     .unwrap();
/// // A center on the second point earns its full weight; the first
/// // point sits exactly on the rim (fraction 0).
/// assert_eq!(objective(&inst, &[Point::new([1.0, 0.0])]), 2.0);
/// ```
pub fn objective<const D: usize>(inst: &Instance<D>, centers: &[Point<D>]) -> f64 {
    let r = inst.radius();
    let norm = inst.norm();
    let kernel = inst.kernel().prepared();
    let mut total = 0.0;
    for (x, &w) in inst.points().iter().zip(inst.weights()) {
        let mut cov = 0.0;
        for c in centers {
            cov += kernel.frac(norm.dist(c, x), r);
            if cov >= 1.0 {
                cov = 1.0;
                break; // saturated; further centers cannot add reward
            }
        }
        total += w * cov;
    }
    total
}

/// Coverage reward of a candidate center against the current residuals:
/// `Σ_i w_i min([1 − d(c, x_i)/r]_+, y_i)` — the objective of the round
/// subproblems, Eqs. (10), (13), (14), (15).
pub fn coverage_reward<const D: usize>(
    inst: &Instance<D>,
    c: &Point<D>,
    residuals: &Residuals,
) -> f64 {
    coverage_reward_with(inst, c, residuals, &inst.kernel().prepared())
}

/// [`coverage_reward`] with a caller-cached [`PreparedKernel`] — the
/// engines prepare once per solve instead of once per evaluation.
fn coverage_reward_with<const D: usize>(
    inst: &Instance<D>,
    c: &Point<D>,
    residuals: &Residuals,
    kernel: &PreparedKernel,
) -> f64 {
    debug_assert_eq!(residuals.len(), inst.n());
    let r = inst.radius();
    let norm = inst.norm();
    let mut total = 0.0;
    for i in 0..inst.n() {
        let y = residuals.y(i);
        if y <= 0.0 {
            continue;
        }
        let frac = kernel.frac(norm.dist(c, inst.point(i)), r);
        if frac > 0.0 {
            total += inst.weight(i) * frac.min(y);
        }
    }
    total
}

/// Residual satisfactions `y_i` (paper's `y_i^j`), the shared state of
/// all round-based algorithms. `y_i` starts at 1 and decreases by the
/// assigned fraction `z_i^j = min([1 − d/r]_+, y_i^j)` each round.
///
/// ```
/// use mmph_core::{InstanceBuilder, Residuals};
/// use mmph_geom::Point;
///
/// let inst = InstanceBuilder::new()
///     .point([0.0, 0.0], 1.0)
///     .radius(2.0)
///     .k(2)
///     .build()
///     .unwrap();
/// let mut res = Residuals::new(inst.n());
/// let c = Point::new([1.0, 0.0]); // coverage fraction 0.5
/// assert_eq!(res.apply(&inst, &c), 0.5);
/// assert_eq!(res.y(0), 0.5);
/// assert_eq!(res.apply(&inst, &c), 0.5); // second pass claims the rest
/// assert!(res.all_satisfied(1e-12));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Residuals {
    y: Vec<f64>,
    version: u64,
    /// `touched[i]` is the version at which `y_i` last shrank (0 = never).
    /// Lets the sparse engine's dirty-region test decide whether a gain
    /// computed at an older version can still be exact.
    touched: Vec<u64>,
}

impl PartialEq for Residuals {
    fn eq(&self, other: &Self) -> bool {
        // The version is bookkeeping for lazy oracles, not state.
        self.y == other.y
    }
}

impl Residuals {
    /// Fresh residuals: `y_i = 1` for all `i` (line 1 of every
    /// algorithm in the paper).
    pub fn new(n: usize) -> Self {
        Residuals {
            y: vec![1.0; n],
            version: 0,
            touched: vec![0; n],
        }
    }

    /// Restores the fresh-solve state (`y_i = 1`, version 0) for an
    /// instance of `n` points, reusing the existing buffers. Allocates
    /// only when `n` exceeds the retained capacity, so a warm
    /// [`crate::scratch::SolveScratch`] resets for free.
    pub fn reset(&mut self, n: usize) {
        self.y.clear();
        self.y.resize(n, 1.0);
        self.touched.clear();
        self.touched.resize(n, 0);
        self.version = 0;
    }

    /// Monotone commit counter: incremented by every [`Self::apply`].
    /// Residuals only ever shrink, so a gain computed at version `v` is
    /// an upper bound on the gain at any later version — the invariant
    /// behind the CELF lazy oracle's staleness test.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the instance has no points (never via solvers; part of
    /// the container contract).
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Residual satisfaction of point `i`.
    #[inline]
    pub fn y(&self, i: usize) -> f64 {
        self.y[i]
    }

    /// The version at which `y_i` last changed (0 if never touched).
    /// Monotone per point; a gain over a neighbor set whose every member
    /// satisfies `touched(j) <= v` is unchanged since version `v`.
    #[inline]
    pub fn touched(&self, i: usize) -> u64 {
        self.touched[i]
    }

    /// All residuals.
    pub fn as_slice(&self) -> &[f64] {
        &self.y
    }

    /// True when every point is (numerically) fully satisfied, at which
    /// point no further broadcast can add reward.
    pub fn all_satisfied(&self, eps: f64) -> bool {
        self.y.iter().all(|&y| y <= eps)
    }

    /// The assignment vector `z_i = min([1 − d/r]_+, y_i)` a center
    /// would claim, without mutating the residuals.
    pub fn assignments<const D: usize>(&self, inst: &Instance<D>, c: &Point<D>) -> Vec<f64> {
        let mut out = Vec::new();
        self.assignments_into(inst, c, &mut out);
        out
    }

    /// [`Self::assignments`] written into a caller-provided buffer: the
    /// buffer is cleared and refilled, so repeated calls through a warm
    /// scratch arena never allocate once the capacity has grown to `n`.
    pub fn assignments_into<const D: usize>(
        &self,
        inst: &Instance<D>,
        c: &Point<D>,
        out: &mut Vec<f64>,
    ) {
        let r = inst.radius();
        let norm = inst.norm();
        let kernel = inst.kernel().prepared();
        out.clear();
        out.extend(
            (0..inst.n()).map(|i| kernel.frac(norm.dist(c, inst.point(i)), r).min(self.y[i])),
        );
    }

    /// Commits a selected center: subtracts its assignments from the
    /// residuals and returns the round gain `Σ w_i z_i` (line 4 of
    /// Algorithms 1–4).
    pub fn apply<const D: usize>(&mut self, inst: &Instance<D>, c: &Point<D>) -> f64 {
        debug_assert_eq!(self.len(), inst.n());
        self.version += 1;
        let r = inst.radius();
        let norm = inst.norm();
        let kernel = inst.kernel().prepared();
        let mut gain = 0.0;
        for i in 0..inst.n() {
            let y = self.y[i];
            if y <= 0.0 {
                continue;
            }
            let z = kernel.frac(norm.dist(c, inst.point(i)), r).min(y);
            if z > 0.0 {
                gain += inst.weight(i) * z;
                self.y[i] = y - z;
                self.touched[i] = self.version;
            }
        }
        gain
    }
}

/// Which evaluation backend a [`RewardEngine`] should use. Parsed from
/// the CLI's `--engine` flag and threaded through the solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Pick automatically: the sparse CSR engine when its estimated
    /// footprint fits [`DEFAULT_SPARSE_CAP_BYTES`], else the kd-tree.
    #[default]
    Auto,
    /// Dense linear scan over all points (the reference semantics).
    Scan,
    /// Kd-tree radius queries.
    Kd,
    /// Ball-tree radius queries.
    Ball,
    /// Precomputed CSR neighbor lists (forced, ignoring the memory cap).
    Sparse,
}

impl EngineKind {
    /// All parseable names, for CLI help strings.
    pub const NAMES: &'static [&'static str] = &["auto", "scan", "kd", "ball", "sparse"];

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(EngineKind::Auto),
            "scan" => Ok(EngineKind::Scan),
            "kd" => Ok(EngineKind::Kd),
            "ball" => Ok(EngineKind::Ball),
            "sparse" => Ok(EngineKind::Sparse),
            other => Err(format!(
                "unknown engine '{other}' (expected {})",
                Self::NAMES.join("|")
            )),
        }
    }

    /// CLI/report name.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Auto => "auto",
            EngineKind::Scan => "scan",
            EngineKind::Kd => "kd",
            EngineKind::Ball => "ball",
            EngineKind::Sparse => "sparse",
        }
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        Self::parse(s)
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Default memory cap for the [`EngineKind::Auto`] sparse estimate:
/// beyond this the CSR build is skipped in favor of the kd-tree.
pub const DEFAULT_SPARSE_CAP_BYTES: usize = 512 << 20;

/// Build/footprint statistics of a sparse CSR adjacency, surfaced by
/// `perfsuite` and the reports.
#[derive(Debug, Clone, Copy)]
pub struct SparseStats {
    /// Wall time of the CSR build (including the enumeration index).
    pub build_nanos: u64,
    /// Bytes held by the CSR buffers.
    pub bytes: usize,
    /// Total neighbor entries (sum of row degrees).
    pub entries: usize,
    /// Mean row degree.
    pub avg_degree: f64,
    /// Largest row degree.
    pub max_degree: usize,
    /// True when the uniform grid enumerated the pairs; false when the
    /// high-spread fallback used the kd-tree instead.
    pub used_grid: bool,
}

/// Precomputed fixed-radius adjacency in CSR form: row `i` holds the
/// ascending-index neighbors `j` with `d(x_i, x_j) ≤ r`, alongside the
/// kernel fraction `frac(d_ij, r)` and the weight `w_j`, in flat
/// structure-of-arrays buffers. `frac` and `weight` are kept separate
/// (not premultiplied) because a gain term is `w_j · min(frac, y_j)` —
/// the min must see the raw fraction for bit-identical scan semantics.
///
/// The candidate set and the target set are the same points and the
/// relation `d ≤ r` is symmetric, so this structure is simultaneously
/// the forward adjacency (row `i` = what candidate `i` covers) and the
/// reverse index (row `i` = which candidates cover point `i`) the
/// dirty-region test needs.
#[derive(Debug)]
struct SparseCsr {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    frac: Vec<f64>,
    weight: Vec<f64>,
    stats: SparseStats,
}

/// Radius enumerator behind the CSR build: the uniform grid for the
/// common dense-bbox case, the kd-tree when the points are spread so
/// wide that grid cells would outnumber points.
enum Enumerator<const D: usize> {
    Grid(GridIndex<D>),
    Kd(KdTree<D>),
}

impl<const D: usize> Enumerator<D> {
    /// Grid unless the cell count at cell side `r` would exceed
    /// ~4n (high-spread input), in which case the kd-tree enumerates.
    fn build(points: &[Point<D>], radius: f64) -> Self {
        let mut cells = 1usize;
        for d in 0..D {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for p in points {
                lo = lo.min(p[d]);
                hi = hi.max(p[d]);
            }
            let side = ((hi - lo) / radius.max(1e-9)).floor() as usize + 1;
            cells = cells.saturating_mul(side.max(1));
        }
        if cells > 4 * points.len() + 1024 {
            return Enumerator::Kd(KdTree::build(points));
        }
        match GridIndex::build_for_radius(points, radius) {
            Ok(g) => Enumerator::Grid(g),
            Err(_) => Enumerator::Kd(KdTree::build(points)),
        }
    }

    fn for_each_within(
        &self,
        center: &Point<D>,
        radius: f64,
        norm: Norm,
        f: impl FnMut(usize, f64),
    ) {
        match self {
            Enumerator::Grid(g) => g.for_each_within(center, radius, norm, f),
            Enumerator::Kd(t) => t.for_each_within(center, radius, norm, f),
        }
    }

    fn used_grid(&self) -> bool {
        matches!(self, Enumerator::Grid(_))
    }

    /// Recovers the kd-tree when the memory-cap fallback can reuse it.
    fn into_kdtree(self, points: &[Point<D>]) -> KdTree<D> {
        match self {
            Enumerator::Kd(t) => t,
            Enumerator::Grid(_) => KdTree::build(points),
        }
    }
}

/// Reusable buffers for the sparse CSR adjacency: the four flat CSR
/// arrays plus the per-row sort buffer the serial build uses. A
/// [`RewardEngine::sparse_with_scratch`] build *takes* these vectors
/// (an O(1) move), refills them in place, and
/// [`RewardEngine::reclaim`] puts them back after the solve — so a
/// warm batch pipeline rebuilds the CSR for each new instance without
/// fresh heap allocations once capacities have grown to the workload's
/// steady state.
#[derive(Debug, Default)]
pub struct CsrScratch {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    frac: Vec<f64>,
    weight: Vec<f64>,
    row: Vec<(u32, f64)>,
}

impl CsrScratch {
    /// Empty scratch; buffers grow on first use and are retained after.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes currently retained across all buffers (diagnostics).
    pub fn retained_bytes(&self) -> usize {
        self.offsets.capacity() * 4
            + self.neighbors.capacity() * 4
            + (self.frac.capacity() + self.weight.capacity()) * 8
            + self.row.capacity() * 16
    }
}

impl SparseCsr {
    const BYTES_PER_ENTRY: usize = 4 + 8 + 8; // neighbor + frac + weight

    /// Builds the CSR over `inst`'s points via `enumerator`, with fresh
    /// buffers and the serial fill path.
    fn build<const D: usize>(inst: &Instance<D>, enumerator: &Enumerator<D>) -> Self {
        Self::build_with(inst, enumerator, &mut CsrScratch::default(), false)
    }

    /// Builds the CSR into the buffers taken from `scratch` (leaving it
    /// empty; see [`RewardEngine::reclaim`]). When `parallel` is set the
    /// rows are enumerated by contiguous chunks across the rayon pool
    /// and stitched together with a prefix-sum pass; each row's content
    /// (enumeration, sort, kernel math) is untouched, so the resulting
    /// arrays are byte-identical to the serial build.
    fn build_with<const D: usize>(
        inst: &Instance<D>,
        enumerator: &Enumerator<D>,
        scratch: &mut CsrScratch,
        parallel: bool,
    ) -> Self {
        let started = std::time::Instant::now();
        let n = inst.n();
        let mut offsets = std::mem::take(&mut scratch.offsets);
        let mut neighbors = std::mem::take(&mut scratch.neighbors);
        let mut frac = std::mem::take(&mut scratch.frac);
        let mut weight = std::mem::take(&mut scratch.weight);
        offsets.clear();
        neighbors.clear();
        frac.clear();
        weight.clear();
        offsets.reserve(n + 1);
        offsets.push(0u32);
        let max_degree = if parallel && rayon::current_num_threads() > 1 && n > 1 {
            Self::fill_parallel(
                inst,
                enumerator,
                &mut offsets,
                &mut neighbors,
                &mut frac,
                &mut weight,
            )
        } else {
            let mut row = std::mem::take(&mut scratch.row);
            let max = Self::fill_serial(
                inst,
                enumerator,
                &mut offsets,
                &mut neighbors,
                &mut frac,
                &mut weight,
                &mut row,
            );
            scratch.row = row;
            max
        };
        let entries = neighbors.len();
        let bytes = offsets.len() * 4 + entries * Self::BYTES_PER_ENTRY;
        let stats = SparseStats {
            build_nanos: started.elapsed().as_nanos() as u64,
            bytes,
            entries,
            avg_degree: entries as f64 / n as f64,
            max_degree,
            used_grid: enumerator.used_grid(),
        };
        SparseCsr {
            offsets,
            neighbors,
            frac,
            weight,
            stats,
        }
    }

    /// The reference row fill: enumerate, sort ascending, append.
    #[allow(clippy::too_many_arguments)]
    fn fill_serial<const D: usize>(
        inst: &Instance<D>,
        enumerator: &Enumerator<D>,
        offsets: &mut Vec<u32>,
        neighbors: &mut Vec<u32>,
        frac: &mut Vec<f64>,
        weight: &mut Vec<f64>,
        row: &mut Vec<(u32, f64)>,
    ) -> usize {
        let n = inst.n();
        let r = inst.radius();
        let norm = inst.norm();
        let kernel = inst.kernel().prepared();
        let mut max_degree = 0usize;
        for i in 0..n {
            row.clear();
            enumerator.for_each_within(inst.point(i), r, norm, |j, d| {
                row.push((j as u32, d));
            });
            // Enumerators emit in index-unrelated order (cell or leaf
            // order); ascending neighbor index is what makes the sparse
            // accumulation bit-identical to the dense scan.
            row.sort_unstable_by_key(|&(j, _)| j);
            max_degree = max_degree.max(row.len());
            for &(j, d) in row.iter() {
                neighbors.push(j);
                frac.push(kernel.frac(d, r));
                weight.push(inst.weight(j as usize));
            }
            assert!(
                neighbors.len() <= u32::MAX as usize,
                "sparse engine: neighbor entries overflow u32 offsets"
            );
            offsets.push(neighbors.len() as u32);
        }
        max_degree
    }

    /// Parallel row fill: each worker enumerates a contiguous chunk of
    /// rows into local buffers (same per-row enumeration, sort and
    /// kernel math as [`Self::fill_serial`]), then a serial prefix-sum
    /// pass concatenates the chunks in row order — the flat arrays come
    /// out byte-identical to the serial build.
    fn fill_parallel<const D: usize>(
        inst: &Instance<D>,
        enumerator: &Enumerator<D>,
        offsets: &mut Vec<u32>,
        neighbors: &mut Vec<u32>,
        frac: &mut Vec<f64>,
        weight: &mut Vec<f64>,
    ) -> usize {
        use rayon::prelude::*;
        let n = inst.n();
        let r = inst.radius();
        let norm = inst.norm();
        let kernel = inst.kernel().prepared();
        let threads = rayon::current_num_threads().max(1);
        let chunk = n.div_ceil(threads);
        let ranges: Vec<std::ops::Range<usize>> = (0..threads)
            .map(|t| (t * chunk).min(n)..((t + 1) * chunk).min(n))
            .filter(|rg| !rg.is_empty())
            .collect();
        struct ChunkOut {
            degrees: Vec<u32>,
            neighbors: Vec<u32>,
            frac: Vec<f64>,
            weight: Vec<f64>,
            max_degree: usize,
        }
        let parts: Vec<ChunkOut> = ranges
            .into_par_iter()
            .map(|rg| {
                let mut out = ChunkOut {
                    degrees: Vec::with_capacity(rg.len()),
                    neighbors: Vec::new(),
                    frac: Vec::new(),
                    weight: Vec::new(),
                    max_degree: 0,
                };
                let mut row: Vec<(u32, f64)> = Vec::new();
                for i in rg {
                    row.clear();
                    enumerator.for_each_within(inst.point(i), r, norm, |j, d| {
                        row.push((j as u32, d));
                    });
                    row.sort_unstable_by_key(|&(j, _)| j);
                    out.max_degree = out.max_degree.max(row.len());
                    out.degrees.push(row.len() as u32);
                    for &(j, d) in row.iter() {
                        out.neighbors.push(j);
                        out.frac.push(kernel.frac(d, r));
                        out.weight.push(inst.weight(j as usize));
                    }
                }
                out
            })
            .collect();
        let total: usize = parts.iter().map(|p| p.neighbors.len()).sum();
        assert!(
            total <= u32::MAX as usize,
            "sparse engine: neighbor entries overflow u32 offsets"
        );
        neighbors.reserve(total);
        frac.reserve(total);
        weight.reserve(total);
        let mut max_degree = 0usize;
        let mut running = 0u32;
        for part in parts {
            for deg in part.degrees {
                running += deg;
                offsets.push(running);
            }
            neighbors.extend_from_slice(&part.neighbors);
            frac.extend_from_slice(&part.frac);
            weight.extend_from_slice(&part.weight);
            max_degree = max_degree.max(part.max_degree);
        }
        max_degree
    }

    /// Moves the flat buffers back into `scratch` for the next build.
    fn recycle(self, scratch: &mut CsrScratch) {
        scratch.offsets = self.offsets;
        scratch.neighbors = self.neighbors;
        scratch.frac = self.frac;
        scratch.weight = self.weight;
    }

    /// The half-open entry range of row `i`.
    #[inline]
    fn row(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i] as usize..self.offsets[i + 1] as usize
    }

    /// Estimates the full CSR footprint by probing every `stride`-th
    /// row's degree — cheap relative to the build, accurate on the
    /// near-uniform inputs the grid targets.
    fn estimate_bytes<const D: usize>(inst: &Instance<D>, enumerator: &Enumerator<D>) -> usize {
        let n = inst.n();
        let stride = (n / 256).max(1);
        let mut sampled = 0usize;
        let mut entries = 0usize;
        let mut i = 0;
        while i < n {
            enumerator.for_each_within(inst.point(i), inst.radius(), inst.norm(), |_, _| {
                entries += 1;
            });
            sampled += 1;
            i += stride;
        }
        let est_entries = entries as f64 / sampled as f64 * n as f64;
        (n + 1) * 4 + (est_entries * Self::BYTES_PER_ENTRY as f64) as usize
    }
}

/// Reward evaluation engine: computes coverage rewards by dense linear
/// scan, tree radius query, or precomputed sparse CSR adjacency, and
/// counts evaluations (used by the CELF ablation to demonstrate the
/// saved work).
#[derive(Debug)]
pub struct RewardEngine<'a, const D: usize> {
    inst: &'a Instance<D>,
    backend: Backend<D>,
    /// Kernel with per-solve constants hoisted ([`Kernel::prepared`]).
    kernel: PreparedKernel,
    // Atomic (not Cell) so the engine is Sync and the parallel oracle can
    // share it across worker threads; ordering is Relaxed because the
    // counter is a pure statistic, never used for synchronization.
    evals: std::sync::atomic::AtomicU64,
}

/// The evaluation backend of a [`RewardEngine`].
#[derive(Debug)]
enum Backend<const D: usize> {
    Scan,
    Kd(KdTree<D>),
    Ball(BallTree<D>),
    Sparse(SparseCsr),
}

impl<'a, const D: usize> RewardEngine<'a, D> {
    fn with_backend(inst: &'a Instance<D>, backend: Backend<D>) -> Self {
        RewardEngine {
            inst,
            backend,
            kernel: inst.kernel().prepared(),
            evals: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Engine that evaluates by linear scan over all points.
    pub fn scan(inst: &'a Instance<D>) -> Self {
        Self::with_backend(inst, Backend::Scan)
    }

    /// Engine backed by a kd-tree radius query. Worth it when the
    /// interest radius covers a small fraction of the instance (see the
    /// `ablation_spatial_index` bench for the crossover).
    pub fn indexed(inst: &'a Instance<D>) -> Self {
        Self::with_backend(inst, Backend::Kd(KdTree::build(inst.points())))
    }

    /// Engine backed by a ball-tree radius query — same results as
    /// [`Self::indexed`], typically better pruning as `D` grows.
    pub fn ball_indexed(inst: &'a Instance<D>) -> Self {
        Self::with_backend(inst, Backend::Ball(BallTree::build(inst.points())))
    }

    /// Engine backed by a precomputed CSR neighbor adjacency: candidate
    /// gains become O(degree) sparse dot products, bit-identical to the
    /// dense scan. Forces the build regardless of footprint; use
    /// [`Self::auto`] for the memory-capped variant.
    pub fn sparse(inst: &'a Instance<D>) -> Self {
        let enumerator = Enumerator::build(inst.points(), inst.radius());
        Self::with_backend(inst, Backend::Sparse(SparseCsr::build(inst, &enumerator)))
    }

    /// Sparse engine whose CSR buffers are taken from (and on
    /// [`Self::reclaim`] returned to) a [`CsrScratch`] arena, with an
    /// optional rayon-parallel row fill. The produced adjacency is
    /// byte-identical to [`Self::sparse`] in either mode; only the
    /// allocation behaviour (and, with `parallel`, the build
    /// parallelism) differs.
    pub fn sparse_with_scratch(
        inst: &'a Instance<D>,
        scratch: &mut CsrScratch,
        parallel: bool,
    ) -> Self {
        let enumerator = Enumerator::build(inst.points(), inst.radius());
        Self::with_backend(
            inst,
            Backend::Sparse(SparseCsr::build_with(inst, &enumerator, scratch, parallel)),
        )
    }

    /// Returns the CSR buffers of a sparse engine to `scratch` so the
    /// next [`Self::sparse_with_scratch`] build reuses their capacity.
    /// A no-op for the other backends.
    pub fn reclaim(self, scratch: &mut CsrScratch) {
        if let Backend::Sparse(csr) = self.backend {
            csr.recycle(scratch);
        }
    }

    /// Raw CSR arrays `(offsets, neighbors, frac, weight)` of the
    /// sparse backend — exposed so tests and benches can assert the
    /// parallel build is byte-identical to the serial one.
    #[doc(hidden)]
    #[allow(clippy::type_complexity)]
    pub fn csr_parts(&self) -> Option<(&[u32], &[u32], &[f64], &[f64])> {
        match &self.backend {
            Backend::Sparse(csr) => Some((&csr.offsets, &csr.neighbors, &csr.frac, &csr.weight)),
            _ => None,
        }
    }

    /// Sparse when the estimated CSR footprint fits under
    /// [`DEFAULT_SPARSE_CAP_BYTES`], else kd-tree.
    pub fn auto(inst: &'a Instance<D>) -> Self {
        Self::auto_with_cap(inst, DEFAULT_SPARSE_CAP_BYTES)
    }

    /// [`Self::auto`] with an explicit cap in bytes.
    pub fn auto_with_cap(inst: &'a Instance<D>, cap_bytes: usize) -> Self {
        let enumerator = Enumerator::build(inst.points(), inst.radius());
        let est = SparseCsr::estimate_bytes(inst, &enumerator);
        if est > cap_bytes || est / SparseCsr::BYTES_PER_ENTRY >= u32::MAX as usize {
            let tree = enumerator.into_kdtree(inst.points());
            return Self::with_backend(inst, Backend::Kd(tree));
        }
        Self::with_backend(inst, Backend::Sparse(SparseCsr::build(inst, &enumerator)))
    }

    /// Engine for an [`EngineKind`] selection.
    pub fn with_kind(inst: &'a Instance<D>, kind: EngineKind) -> Self {
        match kind {
            EngineKind::Auto => Self::auto(inst),
            EngineKind::Scan => Self::scan(inst),
            EngineKind::Kd => Self::indexed(inst),
            EngineKind::Ball => Self::ball_indexed(inst),
            EngineKind::Sparse => Self::sparse(inst),
        }
    }

    /// The backend actually in use (never [`EngineKind::Auto`]).
    pub fn kind(&self) -> EngineKind {
        match self.backend {
            Backend::Scan => EngineKind::Scan,
            Backend::Kd(_) => EngineKind::Kd,
            Backend::Ball(_) => EngineKind::Ball,
            Backend::Sparse(_) => EngineKind::Sparse,
        }
    }

    /// CSR build statistics when the sparse backend is active.
    pub fn sparse_stats(&self) -> Option<SparseStats> {
        match &self.backend {
            Backend::Sparse(csr) => Some(csr.stats),
            _ => None,
        }
    }

    /// The instance this engine evaluates against.
    pub fn instance(&self) -> &Instance<D> {
        self.inst
    }

    /// Number of coverage-reward evaluations performed so far.
    pub fn evals(&self) -> u64 {
        self.evals.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Records one reward evaluation without computing anything — used
    /// by the oracle layer to charge whole-objective evaluations (swap
    /// moves, beam rescoring) to the same counter as candidate gains.
    pub(crate) fn note_eval(&self) {
        self.evals
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Coverage reward of `c` against `residuals` (Eq. 13's inner
    /// objective), via the configured evaluation strategy. Arbitrary
    /// points have no CSR row, so the sparse backend answers these with
    /// the dense reference scan; index candidates should go through
    /// [`Self::candidate_gain`].
    pub fn gain(&self, c: &Point<D>, residuals: &Residuals) -> f64 {
        self.note_eval();
        let r = self.inst.radius();
        let kernel = &self.kernel;
        let mut total = 0.0;
        let mut add = |i: usize, d: f64| {
            let y = residuals.y(i);
            if y > 0.0 {
                total += self.inst.weight(i) * kernel.frac(d, r).min(y);
            }
        };
        match &self.backend {
            Backend::Scan | Backend::Sparse(_) => {
                return coverage_reward_with(self.inst, c, residuals, kernel);
            }
            Backend::Kd(tree) => tree.for_each_within(c, r, self.inst.norm(), &mut add),
            Backend::Ball(tree) => tree.for_each_within(c, r, self.inst.norm(), &mut add),
        }
        total
    }

    /// Coverage reward of candidate point `i` — the hot path of every
    /// point-candidate greedy. On the sparse backend this is an
    /// O(degree) walk of the precomputed row with the same guard and
    /// accumulation order as the dense scan (hence bit-identical); other
    /// backends delegate to [`Self::gain`]. Charges one evaluation.
    pub fn candidate_gain(&self, i: usize, residuals: &Residuals) -> f64 {
        let Backend::Sparse(csr) = &self.backend else {
            return self.gain(self.inst.point(i), residuals);
        };
        self.note_eval();
        let mut total = 0.0;
        for idx in csr.row(i) {
            let y = residuals.y(csr.neighbors[idx] as usize);
            if y <= 0.0 {
                continue;
            }
            let frac = csr.frac[idx];
            if frac > 0.0 {
                total += csr.weight[idx] * frac.min(y);
            }
        }
        total
    }

    /// Dirty-region test for the CELF lazy oracle: has candidate `i`'s
    /// gain provably not changed since residual version `version`? Only
    /// the sparse backend can answer (`None` otherwise). `Some(true)`
    /// means every point the candidate can touch last shrank at or
    /// before `version`, so a gain computed then is still exact — the
    /// oracle may reuse it without charging an evaluation. Free: an
    /// O(degree) integer compare against the CSR row, no kernel math.
    pub fn unchanged_since(&self, i: usize, residuals: &Residuals, version: u64) -> Option<bool> {
        let Backend::Sparse(csr) = &self.backend else {
            return None;
        };
        Some(
            csr.row(i)
                .all(|idx| residuals.touched(csr.neighbors[idx] as usize) <= version),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use mmph_geom::Point;

    fn line_instance(k: usize, r: f64) -> Instance<2> {
        InstanceBuilder::new()
            .point([0.0, 0.0], 1.0)
            .point([1.0, 0.0], 2.0)
            .point([2.0, 0.0], 3.0)
            .radius(r)
            .k(k)
            .build()
            .unwrap()
    }

    #[test]
    fn coverage_frac_cases() {
        assert_eq!(coverage_frac(0.0, 1.0), 1.0); // at the center
        assert_eq!(coverage_frac(1.0, 1.0), 0.0); // on the boundary
        assert_eq!(coverage_frac(0.5, 1.0), 0.5);
        assert_eq!(coverage_frac(2.0, 1.0), 0.0); // outside
        assert_eq!(coverage_frac(3.0, 2.0), 0.0);
    }

    #[test]
    fn psi_matches_equation_1() {
        let c = Point::new([0.0, 0.0]);
        let x = Point::new([0.6, 0.0]);
        // w (1 - d/r) = 2 * (1 - 0.6/1.0) = 0.8
        assert!((psi(2.0, &c, &x, 1.0, Norm::L2) - 0.8).abs() < 1e-12);
        // outside the radius: zero
        assert_eq!(psi(2.0, &c, &Point::new([1.5, 0.0]), 1.0, Norm::L2), 0.0);
    }

    #[test]
    fn objective_single_center() {
        let inst = line_instance(1, 1.0);
        // Center at point 1 (1,0): covers p0 at d=1 (frac 0), p1 at d=0
        // (frac 1), p2 at d=1 (frac 0). f = 2.
        let f = objective(&inst, &[Point::new([1.0, 0.0])]);
        assert!((f - 2.0).abs() < 1e-12);
    }

    #[test]
    fn objective_caps_overlapping_centers() {
        let inst = line_instance(2, 2.0);
        // Two identical centers at p1: each gives p1 frac 1; cap keeps
        // p1's contribution at w=2. p0/p2 at d=1, frac 0.5 each from both
        // centers -> cov = 1.0 (capped exactly), contributing w each.
        let c = Point::new([1.0, 0.0]);
        let f = objective(&inst, &[c, c]);
        assert!((f - (1.0 + 2.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn objective_empty_center_set_is_zero() {
        let inst = line_instance(1, 1.0);
        assert_eq!(objective(&inst, &[]), 0.0);
    }

    #[test]
    fn residuals_start_at_one_and_deplete() {
        let inst = line_instance(2, 2.0);
        let mut res = Residuals::new(inst.n());
        assert_eq!(res.as_slice(), &[1.0, 1.0, 1.0]);
        let c = Point::new([1.0, 0.0]);
        let g1 = res.apply(&inst, &c);
        // z = (0.5, 1.0, 0.5); gain = 1*0.5 + 2*1 + 3*0.5 = 4.0
        assert!((g1 - 4.0).abs() < 1e-12);
        assert!((res.y(0) - 0.5).abs() < 1e-12);
        assert_eq!(res.y(1), 0.0);
        assert!((res.y(2) - 0.5).abs() < 1e-12);
        // Re-applying the same center claims only the residual halves.
        let g2 = res.apply(&inst, &c);
        assert!((g2 - (1.0 * 0.5 + 3.0 * 0.5)).abs() < 1e-12);
        assert!(res.all_satisfied(1e-12));
    }

    #[test]
    fn round_gains_telescope_to_objective() {
        // The invariant that justifies Solution::total_reward.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..30 {
            let n = rng.gen_range(2..20);
            let pts: Vec<Point<2>> = (0..n)
                .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
                .collect();
            let ws: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..5.0)).collect();
            let inst = Instance::new(pts.clone(), ws, 1.5, 3, Norm::L2).unwrap();
            let centers: Vec<Point<2>> = (0..3)
                .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
                .collect();
            let mut res = Residuals::new(n);
            let total: f64 = centers.iter().map(|c| res.apply(&inst, c)).sum();
            let f = objective(&inst, &centers);
            assert!(
                (total - f).abs() < 1e-9,
                "telescoped {total} vs objective {f}"
            );
        }
    }

    #[test]
    fn coverage_reward_respects_residuals() {
        let inst = line_instance(1, 2.0);
        let mut res = Residuals::new(inst.n());
        let c = Point::new([1.0, 0.0]);
        let before = coverage_reward(&inst, &c, &res);
        assert!((before - 4.0).abs() < 1e-12);
        res.apply(&inst, &c);
        let after = coverage_reward(&inst, &c, &res);
        assert!((after - 2.0).abs() < 1e-12); // only the residual halves
    }

    #[test]
    fn assignments_do_not_mutate() {
        let inst = line_instance(1, 2.0);
        let res = Residuals::new(inst.n());
        let c = Point::new([1.0, 0.0]);
        let z = res.assignments(&inst, &c);
        assert_eq!(z.len(), 3);
        assert!((z[0] - 0.5).abs() < 1e-12);
        assert!((z[1] - 1.0).abs() < 1e-12);
        assert_eq!(res.as_slice(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn engine_scan_and_indexed_agree() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(88);
        let pts: Vec<Point<2>> = (0..100)
            .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
            .collect();
        let ws: Vec<f64> = (0..100).map(|_| rng.gen_range(1.0..5.0)).collect();
        for norm in [Norm::L1, Norm::L2] {
            let inst = Instance::new(pts.clone(), ws.clone(), 1.0, 2, norm).unwrap();
            let scan = RewardEngine::scan(&inst);
            let indexed = RewardEngine::indexed(&inst);
            let mut res = Residuals::new(inst.n());
            for trial in 0..20 {
                let c = Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]);
                let a = scan.gain(&c, &res);
                let b = indexed.gain(&c, &res);
                assert!(
                    (a - b).abs() < 1e-9,
                    "trial {trial} norm {norm}: {a} vs {b}"
                );
                if trial == 9 {
                    res.apply(&inst, &c); // change residual state mid-way
                }
            }
            assert_eq!(scan.evals(), 20);
            assert_eq!(indexed.evals(), 20);
        }
    }

    #[test]
    fn ball_engine_agrees_with_scan() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(123);
        let pts: Vec<Point<2>> = (0..80)
            .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
            .collect();
        let inst = Instance::new(pts, vec![1.0; 80], 1.2, 2, Norm::L2).unwrap();
        let scan = RewardEngine::scan(&inst);
        let ball = RewardEngine::ball_indexed(&inst);
        let res = Residuals::new(inst.n());
        for _ in 0..25 {
            let c = Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]);
            assert!((scan.gain(&c, &res) - ball.gain(&c, &res)).abs() < 1e-9);
        }
    }

    #[test]
    fn engine_counts_evaluations() {
        let inst = line_instance(1, 1.0);
        let engine = RewardEngine::scan(&inst);
        let res = Residuals::new(inst.n());
        assert_eq!(engine.evals(), 0);
        engine.gain(&Point::new([0.0, 0.0]), &res);
        engine.gain(&Point::new([1.0, 0.0]), &res);
        assert_eq!(engine.evals(), 2);
    }

    #[test]
    fn reset_matches_fresh_residuals() {
        let inst = line_instance(2, 2.0);
        let mut res = Residuals::new(inst.n());
        res.apply(&inst, &Point::new([1.0, 0.0]));
        assert!(res.version() > 0);
        res.reset(inst.n());
        let fresh = Residuals::new(inst.n());
        assert_eq!(res, fresh);
        assert_eq!(res.version(), 0);
        assert_eq!(res.touched(0), 0);
        // Shrinking reset (smaller n) must also match a fresh build.
        res.reset(2);
        assert_eq!(res.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn assignments_into_matches_allocating_form() {
        let inst = line_instance(1, 2.0);
        let mut res = Residuals::new(inst.n());
        res.apply(&inst, &Point::new([0.0, 0.0]));
        let c = Point::new([1.0, 0.0]);
        let alloc = res.assignments(&inst, &c);
        let mut buf = vec![99.0; 7]; // dirty, over-sized buffer
        res.assignments_into(&inst, &c, &mut buf);
        assert_eq!(alloc, buf);
    }

    fn random_instance_for_csr(seed: u64, n: usize) -> Instance<2> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Point<2>> = (0..n)
            .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
            .collect();
        let ws: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..5.0)).collect();
        Instance::new(pts, ws, 0.7, 4, Norm::L2).unwrap()
    }

    #[test]
    fn parallel_csr_is_byte_identical_to_serial() {
        // Force a multi-threaded pool so the parallel path actually
        // chunks (safe for concurrently-running tests: every parallel
        // consumer in this workspace is order-preserving).
        rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build_global()
            .unwrap();
        for seed in [1u64, 2, 3] {
            let inst = random_instance_for_csr(seed, 257); // not a multiple of 4
            let serial = RewardEngine::sparse(&inst);
            let mut scratch = CsrScratch::new();
            let parallel = RewardEngine::sparse_with_scratch(&inst, &mut scratch, true);
            let (so, sn, sf, sw) = serial.csr_parts().unwrap();
            let (po, pn, pf, pw) = parallel.csr_parts().unwrap();
            assert_eq!(so, po, "seed {seed}: offsets diverged");
            assert_eq!(sn, pn, "seed {seed}: neighbor indices diverged");
            let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(sf), bits(pf), "seed {seed}: frac bits diverged");
            assert_eq!(bits(sw), bits(pw), "seed {seed}: weight bits diverged");
            let (a, b) = (
                serial.sparse_stats().unwrap(),
                parallel.sparse_stats().unwrap(),
            );
            assert_eq!(a.entries, b.entries);
            assert_eq!(a.max_degree, b.max_degree);
        }
    }

    #[test]
    fn scratch_build_reuses_buffers_and_reclaims() {
        let inst = random_instance_for_csr(9, 120);
        let mut scratch = CsrScratch::new();
        let engine = RewardEngine::sparse_with_scratch(&inst, &mut scratch, false);
        let entries = engine.sparse_stats().unwrap().entries;
        // The four CSR vectors were moved into the engine; only the
        // per-row sort buffer stays behind.
        assert!(scratch.retained_bytes() <= scratch.row.capacity() * 16);
        engine.reclaim(&mut scratch);
        assert!(scratch.retained_bytes() >= entries * SparseCsr::BYTES_PER_ENTRY);
        // A rebuild through the warm scratch matches a fresh build.
        let warm = RewardEngine::sparse_with_scratch(&inst, &mut scratch, false);
        let cold = RewardEngine::sparse(&inst);
        assert_eq!(warm.csr_parts().unwrap().0, cold.csr_parts().unwrap().0);
        assert_eq!(warm.csr_parts().unwrap().1, cold.csr_parts().unwrap().1);
        warm.reclaim(&mut scratch);
    }

    #[test]
    fn l1_norm_reward() {
        let inst = InstanceBuilder::new()
            .point([0.0, 0.0], 1.0)
            .point([0.5, 0.5], 1.0)
            .radius(1.0)
            .k(1)
            .norm(Norm::L1)
            .build()
            .unwrap();
        // L1 distance from origin to (0.5, 0.5) is 1.0: boundary, frac 0.
        let f = objective(&inst, &[Point::new([0.0, 0.0])]);
        assert!((f - 1.0).abs() < 1e-12);
    }
}
