//! The reward function and the residual-satisfaction state machine.
//!
//! Paper §IV-A, Equations (1)–(7):
//!
//! * `psi(c, x_i) = w_i (1 − d(c, x_i)/r)` when `d ≤ r`, else 0 — the
//!   partial reward a single broadcast gives user `i` (Eq. 1).
//! * `f(C) = Σ_i w_i min(Σ_j [1 − d(c_j, x_i)/r]_+, 1)` — the capped
//!   total (Eq. 7), computed by [`objective`].
//! * The round framework (Algorithms 1–4) maintains residuals
//!   `y_i^j ∈ [0, 1]`, selects a center maximizing the *coverage reward*
//!   `Σ_i w_i min([1 − d/r]_+, y_i)` and subtracts the assigned
//!   fractions. [`Residuals`] implements this state machine; because the
//!   per-point coverage fractions are non-negative, the per-round gains
//!   telescope exactly to `f(C)` (tested below), so every solver's
//!   reported total equals the closed-form objective.

use mmph_geom::{BallTree, KdTree, Norm, Point};

use crate::instance::Instance;

/// Coverage fraction `[1 − d(c, x)/r]_+` of a point at distance `d`
/// (Eq. 1 without the weight).
#[inline]
pub fn coverage_frac(d: f64, r: f64) -> f64 {
    let v = 1.0 - d / r;
    if v > 0.0 {
        v
    } else {
        0.0
    }
}

/// The single-broadcast reward `psi(c, x)` of Eq. (1): weight times
/// coverage fraction.
///
/// ```
/// use mmph_core::psi;
/// use mmph_geom::{Norm, Point};
///
/// let center = Point::new([0.0, 0.0]);
/// let user = Point::new([0.5, 0.0]);
/// // w (1 - d/r) = 2 * (1 - 0.5) = 1.0
/// assert_eq!(psi(2.0, &center, &user, 1.0, Norm::L2), 1.0);
/// ```
#[inline]
pub fn psi<const D: usize>(w: f64, c: &Point<D>, x: &Point<D>, r: f64, norm: Norm) -> f64 {
    w * coverage_frac(norm.dist(c, x), r)
}

/// The exact objective `f(C)` of Eq. (7) for an arbitrary center set.
///
/// ```
/// use mmph_core::{objective, InstanceBuilder};
/// use mmph_geom::Point;
///
/// let inst = InstanceBuilder::new()
///     .point([0.0, 0.0], 1.0)
///     .point([1.0, 0.0], 2.0)
///     .radius(1.0)
///     .k(1)
///     .build()
///     .unwrap();
/// // A center on the second point earns its full weight; the first
/// // point sits exactly on the rim (fraction 0).
/// assert_eq!(objective(&inst, &[Point::new([1.0, 0.0])]), 2.0);
/// ```
pub fn objective<const D: usize>(inst: &Instance<D>, centers: &[Point<D>]) -> f64 {
    let r = inst.radius();
    let norm = inst.norm();
    let kernel = inst.kernel();
    let mut total = 0.0;
    for (x, &w) in inst.points().iter().zip(inst.weights()) {
        let mut cov = 0.0;
        for c in centers {
            cov += kernel.frac(norm.dist(c, x), r);
            if cov >= 1.0 {
                cov = 1.0;
                break; // saturated; further centers cannot add reward
            }
        }
        total += w * cov;
    }
    total
}

/// Coverage reward of a candidate center against the current residuals:
/// `Σ_i w_i min([1 − d(c, x_i)/r]_+, y_i)` — the objective of the round
/// subproblems, Eqs. (10), (13), (14), (15).
pub fn coverage_reward<const D: usize>(
    inst: &Instance<D>,
    c: &Point<D>,
    residuals: &Residuals,
) -> f64 {
    debug_assert_eq!(residuals.len(), inst.n());
    let r = inst.radius();
    let norm = inst.norm();
    let kernel = inst.kernel();
    let mut total = 0.0;
    for i in 0..inst.n() {
        let y = residuals.y(i);
        if y <= 0.0 {
            continue;
        }
        let frac = kernel.frac(norm.dist(c, inst.point(i)), r);
        if frac > 0.0 {
            total += inst.weight(i) * frac.min(y);
        }
    }
    total
}

/// Residual satisfactions `y_i` (paper's `y_i^j`), the shared state of
/// all round-based algorithms. `y_i` starts at 1 and decreases by the
/// assigned fraction `z_i^j = min([1 − d/r]_+, y_i^j)` each round.
///
/// ```
/// use mmph_core::{InstanceBuilder, Residuals};
/// use mmph_geom::Point;
///
/// let inst = InstanceBuilder::new()
///     .point([0.0, 0.0], 1.0)
///     .radius(2.0)
///     .k(2)
///     .build()
///     .unwrap();
/// let mut res = Residuals::new(inst.n());
/// let c = Point::new([1.0, 0.0]); // coverage fraction 0.5
/// assert_eq!(res.apply(&inst, &c), 0.5);
/// assert_eq!(res.y(0), 0.5);
/// assert_eq!(res.apply(&inst, &c), 0.5); // second pass claims the rest
/// assert!(res.all_satisfied(1e-12));
/// ```
#[derive(Debug, Clone)]
pub struct Residuals {
    y: Vec<f64>,
    version: u64,
}

impl PartialEq for Residuals {
    fn eq(&self, other: &Self) -> bool {
        // The version is bookkeeping for lazy oracles, not state.
        self.y == other.y
    }
}

impl Residuals {
    /// Fresh residuals: `y_i = 1` for all `i` (line 1 of every
    /// algorithm in the paper).
    pub fn new(n: usize) -> Self {
        Residuals {
            y: vec![1.0; n],
            version: 0,
        }
    }

    /// Monotone commit counter: incremented by every [`Self::apply`].
    /// Residuals only ever shrink, so a gain computed at version `v` is
    /// an upper bound on the gain at any later version — the invariant
    /// behind the CELF lazy oracle's staleness test.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the instance has no points (never via solvers; part of
    /// the container contract).
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Residual satisfaction of point `i`.
    #[inline]
    pub fn y(&self, i: usize) -> f64 {
        self.y[i]
    }

    /// All residuals.
    pub fn as_slice(&self) -> &[f64] {
        &self.y
    }

    /// True when every point is (numerically) fully satisfied, at which
    /// point no further broadcast can add reward.
    pub fn all_satisfied(&self, eps: f64) -> bool {
        self.y.iter().all(|&y| y <= eps)
    }

    /// The assignment vector `z_i = min([1 − d/r]_+, y_i)` a center
    /// would claim, without mutating the residuals.
    pub fn assignments<const D: usize>(&self, inst: &Instance<D>, c: &Point<D>) -> Vec<f64> {
        let r = inst.radius();
        let norm = inst.norm();
        let kernel = inst.kernel();
        (0..inst.n())
            .map(|i| kernel.frac(norm.dist(c, inst.point(i)), r).min(self.y[i]))
            .collect()
    }

    /// Commits a selected center: subtracts its assignments from the
    /// residuals and returns the round gain `Σ w_i z_i` (line 4 of
    /// Algorithms 1–4).
    pub fn apply<const D: usize>(&mut self, inst: &Instance<D>, c: &Point<D>) -> f64 {
        debug_assert_eq!(self.len(), inst.n());
        self.version += 1;
        let r = inst.radius();
        let norm = inst.norm();
        let kernel = inst.kernel();
        let mut gain = 0.0;
        for i in 0..inst.n() {
            let y = self.y[i];
            if y <= 0.0 {
                continue;
            }
            let z = kernel.frac(norm.dist(c, inst.point(i)), r).min(y);
            if z > 0.0 {
                gain += inst.weight(i) * z;
                self.y[i] = y - z;
            }
        }
        gain
    }
}

/// Reward evaluation engine: computes coverage rewards either by linear
/// scan or through a kd-tree radius query, and counts evaluations (used
/// by the CELF ablation to demonstrate the saved work).
#[derive(Debug)]
pub struct RewardEngine<'a, const D: usize> {
    inst: &'a Instance<D>,
    index: Option<Index<D>>,
    // Atomic (not Cell) so the engine is Sync and the parallel oracle can
    // share it across worker threads; ordering is Relaxed because the
    // counter is a pure statistic, never used for synchronization.
    evals: std::sync::atomic::AtomicU64,
}

/// The spatial index backing an indexed [`RewardEngine`].
#[derive(Debug)]
enum Index<const D: usize> {
    Kd(KdTree<D>),
    Ball(BallTree<D>),
}

impl<'a, const D: usize> RewardEngine<'a, D> {
    /// Engine that evaluates by linear scan over all points.
    pub fn scan(inst: &'a Instance<D>) -> Self {
        RewardEngine {
            inst,
            index: None,
            evals: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Engine backed by a kd-tree radius query. Worth it when the
    /// interest radius covers a small fraction of the instance (see the
    /// `ablation_spatial_index` bench for the crossover).
    pub fn indexed(inst: &'a Instance<D>) -> Self {
        RewardEngine {
            inst,
            index: Some(Index::Kd(KdTree::build(inst.points()))),
            evals: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Engine backed by a ball-tree radius query — same results as
    /// [`Self::indexed`], typically better pruning as `D` grows.
    pub fn ball_indexed(inst: &'a Instance<D>) -> Self {
        RewardEngine {
            inst,
            index: Some(Index::Ball(BallTree::build(inst.points()))),
            evals: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The instance this engine evaluates against.
    pub fn instance(&self) -> &Instance<D> {
        self.inst
    }

    /// Number of coverage-reward evaluations performed so far.
    pub fn evals(&self) -> u64 {
        self.evals.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Records one reward evaluation without computing anything — used
    /// by the oracle layer to charge whole-objective evaluations (swap
    /// moves, beam rescoring) to the same counter as candidate gains.
    pub(crate) fn note_eval(&self) {
        self.evals
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Coverage reward of `c` against `residuals` (Eq. 13's inner
    /// objective), via the configured evaluation strategy.
    pub fn gain(&self, c: &Point<D>, residuals: &Residuals) -> f64 {
        self.note_eval();
        let Some(index) = &self.index else {
            return coverage_reward(self.inst, c, residuals);
        };
        let r = self.inst.radius();
        let kernel = self.inst.kernel();
        let mut total = 0.0;
        let mut add = |i: usize, d: f64| {
            let y = residuals.y(i);
            if y > 0.0 {
                total += self.inst.weight(i) * kernel.frac(d, r).min(y);
            }
        };
        match index {
            Index::Kd(tree) => tree.for_each_within(c, r, self.inst.norm(), &mut add),
            Index::Ball(tree) => tree.for_each_within(c, r, self.inst.norm(), &mut add),
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use mmph_geom::Point;

    fn line_instance(k: usize, r: f64) -> Instance<2> {
        InstanceBuilder::new()
            .point([0.0, 0.0], 1.0)
            .point([1.0, 0.0], 2.0)
            .point([2.0, 0.0], 3.0)
            .radius(r)
            .k(k)
            .build()
            .unwrap()
    }

    #[test]
    fn coverage_frac_cases() {
        assert_eq!(coverage_frac(0.0, 1.0), 1.0); // at the center
        assert_eq!(coverage_frac(1.0, 1.0), 0.0); // on the boundary
        assert_eq!(coverage_frac(0.5, 1.0), 0.5);
        assert_eq!(coverage_frac(2.0, 1.0), 0.0); // outside
        assert_eq!(coverage_frac(3.0, 2.0), 0.0);
    }

    #[test]
    fn psi_matches_equation_1() {
        let c = Point::new([0.0, 0.0]);
        let x = Point::new([0.6, 0.0]);
        // w (1 - d/r) = 2 * (1 - 0.6/1.0) = 0.8
        assert!((psi(2.0, &c, &x, 1.0, Norm::L2) - 0.8).abs() < 1e-12);
        // outside the radius: zero
        assert_eq!(psi(2.0, &c, &Point::new([1.5, 0.0]), 1.0, Norm::L2), 0.0);
    }

    #[test]
    fn objective_single_center() {
        let inst = line_instance(1, 1.0);
        // Center at point 1 (1,0): covers p0 at d=1 (frac 0), p1 at d=0
        // (frac 1), p2 at d=1 (frac 0). f = 2.
        let f = objective(&inst, &[Point::new([1.0, 0.0])]);
        assert!((f - 2.0).abs() < 1e-12);
    }

    #[test]
    fn objective_caps_overlapping_centers() {
        let inst = line_instance(2, 2.0);
        // Two identical centers at p1: each gives p1 frac 1; cap keeps
        // p1's contribution at w=2. p0/p2 at d=1, frac 0.5 each from both
        // centers -> cov = 1.0 (capped exactly), contributing w each.
        let c = Point::new([1.0, 0.0]);
        let f = objective(&inst, &[c, c]);
        assert!((f - (1.0 + 2.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn objective_empty_center_set_is_zero() {
        let inst = line_instance(1, 1.0);
        assert_eq!(objective(&inst, &[]), 0.0);
    }

    #[test]
    fn residuals_start_at_one_and_deplete() {
        let inst = line_instance(2, 2.0);
        let mut res = Residuals::new(inst.n());
        assert_eq!(res.as_slice(), &[1.0, 1.0, 1.0]);
        let c = Point::new([1.0, 0.0]);
        let g1 = res.apply(&inst, &c);
        // z = (0.5, 1.0, 0.5); gain = 1*0.5 + 2*1 + 3*0.5 = 4.0
        assert!((g1 - 4.0).abs() < 1e-12);
        assert!((res.y(0) - 0.5).abs() < 1e-12);
        assert_eq!(res.y(1), 0.0);
        assert!((res.y(2) - 0.5).abs() < 1e-12);
        // Re-applying the same center claims only the residual halves.
        let g2 = res.apply(&inst, &c);
        assert!((g2 - (1.0 * 0.5 + 3.0 * 0.5)).abs() < 1e-12);
        assert!(res.all_satisfied(1e-12));
    }

    #[test]
    fn round_gains_telescope_to_objective() {
        // The invariant that justifies Solution::total_reward.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..30 {
            let n = rng.gen_range(2..20);
            let pts: Vec<Point<2>> = (0..n)
                .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
                .collect();
            let ws: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..5.0)).collect();
            let inst = Instance::new(pts.clone(), ws, 1.5, 3, Norm::L2).unwrap();
            let centers: Vec<Point<2>> = (0..3)
                .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
                .collect();
            let mut res = Residuals::new(n);
            let total: f64 = centers.iter().map(|c| res.apply(&inst, c)).sum();
            let f = objective(&inst, &centers);
            assert!(
                (total - f).abs() < 1e-9,
                "telescoped {total} vs objective {f}"
            );
        }
    }

    #[test]
    fn coverage_reward_respects_residuals() {
        let inst = line_instance(1, 2.0);
        let mut res = Residuals::new(inst.n());
        let c = Point::new([1.0, 0.0]);
        let before = coverage_reward(&inst, &c, &res);
        assert!((before - 4.0).abs() < 1e-12);
        res.apply(&inst, &c);
        let after = coverage_reward(&inst, &c, &res);
        assert!((after - 2.0).abs() < 1e-12); // only the residual halves
    }

    #[test]
    fn assignments_do_not_mutate() {
        let inst = line_instance(1, 2.0);
        let res = Residuals::new(inst.n());
        let c = Point::new([1.0, 0.0]);
        let z = res.assignments(&inst, &c);
        assert_eq!(z.len(), 3);
        assert!((z[0] - 0.5).abs() < 1e-12);
        assert!((z[1] - 1.0).abs() < 1e-12);
        assert_eq!(res.as_slice(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn engine_scan_and_indexed_agree() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(88);
        let pts: Vec<Point<2>> = (0..100)
            .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
            .collect();
        let ws: Vec<f64> = (0..100).map(|_| rng.gen_range(1.0..5.0)).collect();
        for norm in [Norm::L1, Norm::L2] {
            let inst = Instance::new(pts.clone(), ws.clone(), 1.0, 2, norm).unwrap();
            let scan = RewardEngine::scan(&inst);
            let indexed = RewardEngine::indexed(&inst);
            let mut res = Residuals::new(inst.n());
            for trial in 0..20 {
                let c = Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]);
                let a = scan.gain(&c, &res);
                let b = indexed.gain(&c, &res);
                assert!(
                    (a - b).abs() < 1e-9,
                    "trial {trial} norm {norm}: {a} vs {b}"
                );
                if trial == 9 {
                    res.apply(&inst, &c); // change residual state mid-way
                }
            }
            assert_eq!(scan.evals(), 20);
            assert_eq!(indexed.evals(), 20);
        }
    }

    #[test]
    fn ball_engine_agrees_with_scan() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(123);
        let pts: Vec<Point<2>> = (0..80)
            .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
            .collect();
        let inst = Instance::new(pts, vec![1.0; 80], 1.2, 2, Norm::L2).unwrap();
        let scan = RewardEngine::scan(&inst);
        let ball = RewardEngine::ball_indexed(&inst);
        let res = Residuals::new(inst.n());
        for _ in 0..25 {
            let c = Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]);
            assert!((scan.gain(&c, &res) - ball.gain(&c, &res)).abs() < 1e-9);
        }
    }

    #[test]
    fn engine_counts_evaluations() {
        let inst = line_instance(1, 1.0);
        let engine = RewardEngine::scan(&inst);
        let res = Residuals::new(inst.n());
        assert_eq!(engine.evals(), 0);
        engine.gain(&Point::new([0.0, 0.0]), &res);
        engine.gain(&Point::new([1.0, 0.0]), &res);
        assert_eq!(engine.evals(), 2);
    }

    #[test]
    fn l1_norm_reward() {
        let inst = InstanceBuilder::new()
            .point([0.0, 0.0], 1.0)
            .point([0.5, 0.5], 1.0)
            .radius(1.0)
            .k(1)
            .norm(Norm::L1)
            .build()
            .unwrap();
        // L1 distance from origin to (0.5, 0.5) is 1.0: boundary, frac 0.
        let f = objective(&inst, &[Point::new([0.0, 0.0])]);
        assert!((f - 1.0).abs() < 1e-12);
    }
}
