//! The reward function and the residual-satisfaction state machine.
//!
//! Paper §IV-A, Equations (1)–(7):
//!
//! * `psi(c, x_i) = w_i (1 − d(c, x_i)/r)` when `d ≤ r`, else 0 — the
//!   partial reward a single broadcast gives user `i` (Eq. 1).
//! * `f(C) = Σ_i w_i min(Σ_j [1 − d(c_j, x_i)/r]_+, 1)` — the capped
//!   total (Eq. 7), computed by [`objective`].
//! * The round framework (Algorithms 1–4) maintains residuals
//!   `y_i^j ∈ [0, 1]`, selects a center maximizing the *coverage reward*
//!   `Σ_i w_i min([1 − d/r]_+, y_i)` and subtracts the assigned
//!   fractions. [`Residuals`] implements this state machine; because the
//!   per-point coverage fractions are non-negative, the per-round gains
//!   telescope exactly to `f(C)` (tested below), so every solver's
//!   reported total equals the closed-form objective.

use mmph_geom::{BallTree, GridIndex, KdTree, Norm, Point};

use crate::instance::Instance;
use crate::kernel::PreparedKernel;

/// Coverage fraction `[1 − d(c, x)/r]_+` of a point at distance `d`
/// (Eq. 1 without the weight).
#[inline]
pub fn coverage_frac(d: f64, r: f64) -> f64 {
    let v = 1.0 - d / r;
    if v > 0.0 {
        v
    } else {
        0.0
    }
}

/// The single-broadcast reward `psi(c, x)` of Eq. (1): weight times
/// coverage fraction.
///
/// ```
/// use mmph_core::psi;
/// use mmph_geom::{Norm, Point};
///
/// let center = Point::new([0.0, 0.0]);
/// let user = Point::new([0.5, 0.0]);
/// // w (1 - d/r) = 2 * (1 - 0.5) = 1.0
/// assert_eq!(psi(2.0, &center, &user, 1.0, Norm::L2), 1.0);
/// ```
#[inline]
pub fn psi<const D: usize>(w: f64, c: &Point<D>, x: &Point<D>, r: f64, norm: Norm) -> f64 {
    w * coverage_frac(norm.dist(c, x), r)
}

/// The exact objective `f(C)` of Eq. (7) for an arbitrary center set.
///
/// ```
/// use mmph_core::{objective, InstanceBuilder};
/// use mmph_geom::Point;
///
/// let inst = InstanceBuilder::new()
///     .point([0.0, 0.0], 1.0)
///     .point([1.0, 0.0], 2.0)
///     .radius(1.0)
///     .k(1)
///     .build()
///     .unwrap();
/// // A center on the second point earns its full weight; the first
/// // point sits exactly on the rim (fraction 0).
/// assert_eq!(objective(&inst, &[Point::new([1.0, 0.0])]), 2.0);
/// ```
pub fn objective<const D: usize>(inst: &Instance<D>, centers: &[Point<D>]) -> f64 {
    let r = inst.radius();
    let norm = inst.norm();
    let kernel = inst.kernel().prepared();
    let mut total = 0.0;
    for (x, &w) in inst.points().iter().zip(inst.weights()) {
        let mut cov = 0.0;
        for c in centers {
            cov += kernel.frac(norm.dist(c, x), r);
            if cov >= 1.0 {
                cov = 1.0;
                break; // saturated; further centers cannot add reward
            }
        }
        total += w * cov;
    }
    total
}

/// Coverage reward of a candidate center against the current residuals:
/// `Σ_i w_i min([1 − d(c, x_i)/r]_+, y_i)` — the objective of the round
/// subproblems, Eqs. (10), (13), (14), (15).
pub fn coverage_reward<const D: usize>(
    inst: &Instance<D>,
    c: &Point<D>,
    residuals: &Residuals,
) -> f64 {
    coverage_reward_with(inst, c, residuals, &inst.kernel().prepared())
}

/// [`coverage_reward`] with a caller-cached [`PreparedKernel`] — the
/// engines prepare once per solve instead of once per evaluation.
fn coverage_reward_with<const D: usize>(
    inst: &Instance<D>,
    c: &Point<D>,
    residuals: &Residuals,
    kernel: &PreparedKernel,
) -> f64 {
    debug_assert_eq!(residuals.len(), inst.n());
    let r = inst.radius();
    let norm = inst.norm();
    let mut total = 0.0;
    for i in 0..inst.n() {
        let y = residuals.y(i);
        if y <= 0.0 {
            continue;
        }
        let frac = kernel.frac(norm.dist(c, inst.point(i)), r);
        if frac > 0.0 {
            total += inst.weight(i) * frac.min(y);
        }
    }
    total
}

/// Residual satisfactions `y_i` (paper's `y_i^j`), the shared state of
/// all round-based algorithms. `y_i` starts at 1 and decreases by the
/// assigned fraction `z_i^j = min([1 − d/r]_+, y_i^j)` each round.
///
/// ```
/// use mmph_core::{InstanceBuilder, Residuals};
/// use mmph_geom::Point;
///
/// let inst = InstanceBuilder::new()
///     .point([0.0, 0.0], 1.0)
///     .radius(2.0)
///     .k(2)
///     .build()
///     .unwrap();
/// let mut res = Residuals::new(inst.n());
/// let c = Point::new([1.0, 0.0]); // coverage fraction 0.5
/// assert_eq!(res.apply(&inst, &c), 0.5);
/// assert_eq!(res.y(0), 0.5);
/// assert_eq!(res.apply(&inst, &c), 0.5); // second pass claims the rest
/// assert!(res.all_satisfied(1e-12));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Residuals {
    y: Vec<f64>,
    version: u64,
    /// `touched[i]` is the version at which `y_i` last shrank (0 = never).
    /// Lets the sparse engine's dirty-region test decide whether a gain
    /// computed at an older version can still be exact.
    touched: Vec<u64>,
}

impl PartialEq for Residuals {
    fn eq(&self, other: &Self) -> bool {
        // The version is bookkeeping for lazy oracles, not state.
        self.y == other.y
    }
}

impl Residuals {
    /// Fresh residuals: `y_i = 1` for all `i` (line 1 of every
    /// algorithm in the paper).
    pub fn new(n: usize) -> Self {
        Residuals {
            y: vec![1.0; n],
            version: 0,
            touched: vec![0; n],
        }
    }

    /// Restores the fresh-solve state (`y_i = 1`, version 0) for an
    /// instance of `n` points, reusing the existing buffers. Allocates
    /// only when `n` exceeds the retained capacity, so a warm
    /// [`crate::scratch::SolveScratch`] resets for free.
    pub fn reset(&mut self, n: usize) {
        self.y.clear();
        self.y.resize(n, 1.0);
        self.touched.clear();
        self.touched.resize(n, 0);
        self.version = 0;
    }

    /// Monotone commit counter: incremented by every [`Self::apply`].
    /// Residuals only ever shrink, so a gain computed at version `v` is
    /// an upper bound on the gain at any later version — the invariant
    /// behind the CELF lazy oracle's staleness test.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the instance has no points (never via solvers; part of
    /// the container contract).
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Residual satisfaction of point `i`.
    #[inline]
    pub fn y(&self, i: usize) -> f64 {
        self.y[i]
    }

    /// The version at which `y_i` last changed (0 if never touched).
    /// Monotone per point; a gain over a neighbor set whose every member
    /// satisfies `touched(j) <= v` is unchanged since version `v`.
    #[inline]
    pub fn touched(&self, i: usize) -> u64 {
        self.touched[i]
    }

    /// All residuals.
    pub fn as_slice(&self) -> &[f64] {
        &self.y
    }

    /// True when every point is (numerically) fully satisfied, at which
    /// point no further broadcast can add reward.
    pub fn all_satisfied(&self, eps: f64) -> bool {
        self.y.iter().all(|&y| y <= eps)
    }

    /// The assignment vector `z_i = min([1 − d/r]_+, y_i)` a center
    /// would claim, without mutating the residuals.
    pub fn assignments<const D: usize>(&self, inst: &Instance<D>, c: &Point<D>) -> Vec<f64> {
        let mut out = Vec::new();
        self.assignments_into(inst, c, &mut out);
        out
    }

    /// [`Self::assignments`] written into a caller-provided buffer: the
    /// buffer is cleared and refilled, so repeated calls through a warm
    /// scratch arena never allocate once the capacity has grown to `n`.
    pub fn assignments_into<const D: usize>(
        &self,
        inst: &Instance<D>,
        c: &Point<D>,
        out: &mut Vec<f64>,
    ) {
        let r = inst.radius();
        let norm = inst.norm();
        let kernel = inst.kernel().prepared();
        out.clear();
        out.extend(
            (0..inst.n()).map(|i| kernel.frac(norm.dist(c, inst.point(i)), r).min(self.y[i])),
        );
    }

    /// Commits a selected center: subtracts its assignments from the
    /// residuals and returns the round gain `Σ w_i z_i` (line 4 of
    /// Algorithms 1–4).
    pub fn apply<const D: usize>(&mut self, inst: &Instance<D>, c: &Point<D>) -> f64 {
        debug_assert_eq!(self.len(), inst.n());
        self.version += 1;
        let r = inst.radius();
        let norm = inst.norm();
        let kernel = inst.kernel().prepared();
        let mut gain = 0.0;
        for i in 0..inst.n() {
            let y = self.y[i];
            if y <= 0.0 {
                continue;
            }
            let z = kernel.frac(norm.dist(c, inst.point(i)), r).min(y);
            if z > 0.0 {
                gain += inst.weight(i) * z;
                self.y[i] = y - z;
                self.touched[i] = self.version;
            }
        }
        gain
    }
}

/// Which evaluation backend a [`RewardEngine`] should use. Parsed from
/// the CLI's `--engine` flag and threaded through the solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Pick automatically: the sparse CSR engine when its estimated
    /// footprint fits [`DEFAULT_SPARSE_CAP_BYTES`], else the kd-tree.
    #[default]
    Auto,
    /// Dense linear scan over all points (the reference semantics).
    Scan,
    /// Kd-tree radius queries.
    Kd,
    /// Ball-tree radius queries.
    Ball,
    /// Precomputed CSR neighbor lists (forced, ignoring the memory cap).
    Sparse,
    /// The sparse CSR engine with `frac`/`weight` stored as `f32`
    /// (accumulation stays `f64`). Roughly halves the CSR footprint and
    /// doubles kernel memory bandwidth at the cost of the bit-identical
    /// guarantee: gains carry a documented relative error bound (see
    /// DESIGN.md "Kernel layout & precision"). Opt-in only — never
    /// selected by [`EngineKind::Auto`].
    SparseF32,
}

impl EngineKind {
    /// All parseable names, for CLI help strings.
    pub const NAMES: &'static [&'static str] =
        &["auto", "scan", "kd", "ball", "sparse", "sparse-f32"];

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(EngineKind::Auto),
            "scan" => Ok(EngineKind::Scan),
            "kd" => Ok(EngineKind::Kd),
            "ball" => Ok(EngineKind::Ball),
            "sparse" => Ok(EngineKind::Sparse),
            "sparse-f32" => Ok(EngineKind::SparseF32),
            other => Err(format!(
                "unknown engine '{other}' (expected {})",
                Self::NAMES.join("|")
            )),
        }
    }

    /// CLI/report name.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Auto => "auto",
            EngineKind::Scan => "scan",
            EngineKind::Kd => "kd",
            EngineKind::Ball => "ball",
            EngineKind::Sparse => "sparse",
            EngineKind::SparseF32 => "sparse-f32",
        }
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        Self::parse(s)
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Default memory cap for the [`EngineKind::Auto`] sparse estimate:
/// beyond this the CSR build is skipped in favor of the kd-tree.
pub const DEFAULT_SPARSE_CAP_BYTES: usize = 512 << 20;

/// Build/footprint statistics of a sparse CSR adjacency, surfaced by
/// `perfsuite` and the reports.
#[derive(Debug, Clone, Copy)]
pub struct SparseStats {
    /// Wall time of the CSR build (including the enumeration index).
    pub build_nanos: u64,
    /// Bytes held by the CSR buffers.
    pub bytes: usize,
    /// Total neighbor entries (sum of row degrees, after dropping
    /// zero-`frac` entries; excludes lane padding).
    pub entries: usize,
    /// Stored entries including the per-row padding up to the lane
    /// width [`SPARSE_LANES`].
    pub padded_entries: usize,
    /// Mean row degree.
    pub avg_degree: f64,
    /// Largest row degree.
    pub max_degree: usize,
    /// True when the uniform grid enumerated the pairs; false when the
    /// high-spread fallback used the kd-tree instead.
    pub used_grid: bool,
}

/// Lane width of the blocked sparse kernel: every CSR row is padded to
/// a multiple of this many entries so the gain loop runs in branchless
/// fixed-width chunks the compiler can vectorize.
pub const SPARSE_LANES: usize = 8;

/// Storage scalar of the sparse CSR `frac`/`weight` streams: `f64` for
/// the bit-identical reference engine, `f32` for the mixed-precision
/// variant. Accumulation is always `f64` — a lane term widens its
/// operands exactly before the multiply, so the only rounding the `f32`
/// engine introduces is the one narrowing at build time.
pub(crate) trait LaneScalar: Copy + std::fmt::Debug + Send + Sync + 'static {
    /// Bytes per stored value.
    const BYTES: usize;
    /// Build-time narrowing from the exact `f64` kernel math.
    fn narrow(x: f64) -> Self;
    /// Exact widening back to `f64` (lossless for both scalars).
    fn widen(self) -> f64;
    /// Takes this scalar's `(frac, weight)` buffers from the scratch.
    fn take_bufs(scratch: &mut CsrScratch) -> (Vec<Self>, Vec<Self>);
    /// Returns buffers taken with [`Self::take_bufs`].
    fn put_bufs(scratch: &mut CsrScratch, frac: Vec<Self>, weight: Vec<Self>);
}

impl LaneScalar for f64 {
    const BYTES: usize = 8;
    #[inline(always)]
    fn narrow(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn widen(self) -> f64 {
        self
    }
    fn take_bufs(scratch: &mut CsrScratch) -> (Vec<Self>, Vec<Self>) {
        (
            std::mem::take(&mut scratch.frac),
            std::mem::take(&mut scratch.weight),
        )
    }
    fn put_bufs(scratch: &mut CsrScratch, frac: Vec<Self>, weight: Vec<Self>) {
        scratch.frac = frac;
        scratch.weight = weight;
    }
}

impl LaneScalar for f32 {
    const BYTES: usize = 4;
    #[inline(always)]
    fn narrow(x: f64) -> Self {
        x as f32
    }
    #[inline(always)]
    fn widen(self) -> f64 {
        f64::from(self)
    }
    fn take_bufs(scratch: &mut CsrScratch) -> (Vec<Self>, Vec<Self>) {
        (
            std::mem::take(&mut scratch.frac32),
            std::mem::take(&mut scratch.weight32),
        )
    }
    fn put_bufs(scratch: &mut CsrScratch, frac: Vec<Self>, weight: Vec<Self>) {
        scratch.frac32 = frac;
        scratch.weight32 = weight;
    }
}

/// The coordinate bit pattern of a point — the lexicographic sort key
/// behind the copied-point candidate lookup ([`RewardEngine::gain`]).
/// Bitwise equality (not `==`) is the right relation: bit-equal points
/// produce bit-identical CSR rows, while `-0.0`/`0.0` or NaN lookups
/// simply miss and fall back to the dense reference scan.
#[inline]
pub(crate) fn point_bits<const D: usize>(p: &Point<D>) -> [u64; D] {
    std::array::from_fn(|d| p[d].to_bits())
}

/// Fills `order` with all point indices sorted by grid cell (cell side
/// = the interest radius) and index within a cell — the storage order
/// of the blocked CSR. Spatially adjacent candidates share most of
/// their neighbor sets, so evaluating them consecutively touches
/// overlapping residual cache lines.
pub(crate) fn spatial_order<const D: usize>(
    points: &[Point<D>],
    radius: f64,
    order: &mut Vec<u32>,
) {
    order.clear();
    order.extend(0..points.len() as u32);
    let cell = radius.max(1e-9);
    let mut lo = [f64::INFINITY; D];
    for p in points {
        for d in 0..D {
            lo[d] = lo[d].min(p[d]);
        }
    }
    // The key ends with the index, so the order is total (no unstable
    // tie arbitration) and ascending-index within each cell.
    order.sort_unstable_by_key(|&i| {
        let p = &points[i as usize];
        let cells: [u64; D] = std::array::from_fn(|d| ((p[d] - lo[d]) / cell) as u64);
        (cells, i)
    });
}

/// Precomputed fixed-radius adjacency in blocked CSR form: row `i`
/// holds the ascending-index neighbors `j` with `d(x_i, x_j) ≤ r` and
/// `frac(d_ij, r) > 0`, alongside the kernel fraction and the weight
/// `w_j`, in flat structure-of-arrays buffers. `frac` and `weight` are
/// kept separate (not premultiplied) because a gain term is
/// `w_j · min(frac, y_j)` — the min must see the raw fraction for
/// bit-identical scan semantics.
///
/// Two layout passes distinguish this from a plain CSR:
///
/// * **Lane padding** — every row is padded to a multiple of
///   [`SPARSE_LANES`] entries by repeating its last real neighbor with
///   `frac = weight = 0` (an exact `+0.0` gain term), so the kernel
///   walks fixed-width chunks with no tail loop and no per-entry
///   branches. `degrees` records the real (unpadded) length.
/// * **Row blocking** — rows are stored in grid-cell order
///   ([`spatial_order`]), not index order: `order[slot]` is the
///   candidate stored at `slot`, `slot_of[i]` its inverse. Scanning
///   candidates in `order` reads the CSR streams strictly sequentially
///   and revisits hot residual cache lines.
///
/// The candidate set and the target set are the same points and the
/// relation `d ≤ r` is symmetric, so this structure is simultaneously
/// the forward adjacency (row `i` = what candidate `i` covers) and the
/// reverse index (row `i` = which candidates cover point `i`) the
/// dirty-region test needs.
#[derive(Debug)]
pub(crate) struct SparseCsr<S> {
    /// Padded row *start* of each storage slot (not candidate index);
    /// every start is a multiple of [`SPARSE_LANES`]. A freshly built
    /// CSR is dense (each row ends where the next begins, and a final
    /// sentinel closes the last row); after incremental delta patching
    /// (`crate::incremental`) rows may be relocated to the tail, so a
    /// row's end is always derived from `degrees`, never from the next
    /// slot's start.
    pub(crate) offsets: Vec<u32>,
    /// Real (unpadded) entry count of each slot's row.
    pub(crate) degrees: Vec<u32>,
    /// Storage slot of candidate `i`.
    pub(crate) slot_of: Vec<u32>,
    /// Candidate stored at each slot — the cache-friendly eval order.
    pub(crate) order: Vec<u32>,
    /// Candidate indices sorted by coordinate bit pattern, for the
    /// copied-point lookup behind [`RewardEngine::gain`]. Cleared (and
    /// flagged stale) by delta patching; an empty permutation just
    /// routes copied-point lookups to the dense reference scan.
    pub(crate) by_coords: Vec<u32>,
    pub(crate) neighbors: Vec<u32>,
    pub(crate) frac: Vec<S>,
    pub(crate) weight: Vec<S>,
    pub(crate) stats: SparseStats,
}

/// Radius enumerator behind the CSR build: the uniform grid for the
/// common dense-bbox case, the kd-tree when the points are spread so
/// wide that grid cells would outnumber points.
pub(crate) enum Enumerator<const D: usize> {
    Grid(GridIndex<D>),
    Kd(KdTree<D>),
}

impl<const D: usize> Enumerator<D> {
    /// Grid unless the cell count at cell side `r` would exceed
    /// ~4n (high-spread input), in which case the kd-tree enumerates.
    pub(crate) fn build(points: &[Point<D>], radius: f64) -> Self {
        let mut cells = 1usize;
        for d in 0..D {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for p in points {
                lo = lo.min(p[d]);
                hi = hi.max(p[d]);
            }
            let side = ((hi - lo) / radius.max(1e-9)).floor() as usize + 1;
            cells = cells.saturating_mul(side.max(1));
        }
        if cells > 4 * points.len() + 1024 {
            return Enumerator::Kd(KdTree::build(points));
        }
        match GridIndex::build_for_radius(points, radius) {
            Ok(g) => Enumerator::Grid(g),
            Err(_) => Enumerator::Kd(KdTree::build(points)),
        }
    }

    pub(crate) fn for_each_within(
        &self,
        center: &Point<D>,
        radius: f64,
        norm: Norm,
        f: impl FnMut(usize, f64),
    ) {
        match self {
            Enumerator::Grid(g) => g.for_each_within(center, radius, norm, f),
            Enumerator::Kd(t) => t.for_each_within(center, radius, norm, f),
        }
    }

    fn used_grid(&self) -> bool {
        matches!(self, Enumerator::Grid(_))
    }

    /// Recovers the kd-tree when the memory-cap fallback can reuse it.
    fn into_kdtree(self, points: &[Point<D>]) -> KdTree<D> {
        match self {
            Enumerator::Kd(t) => t,
            Enumerator::Grid(_) => KdTree::build(points),
        }
    }
}

/// Reusable buffers for the sparse CSR adjacency: the flat CSR arrays
/// (including the lane-padded layout vectors and the `f32` streams of
/// the mixed-precision engine) plus the per-row sort buffer the serial
/// build uses. A [`RewardEngine::sparse_with_scratch`] or
/// [`RewardEngine::sparse_f32_with_scratch`] build *takes* the vectors
/// it needs (an O(1) move), refills them in place, and
/// [`RewardEngine::reclaim`] puts them back after the solve — so a
/// warm batch pipeline rebuilds the CSR for each new instance without
/// fresh heap allocations once capacities have grown to the workload's
/// steady state.
#[derive(Debug, Default)]
pub struct CsrScratch {
    offsets: Vec<u32>,
    degrees: Vec<u32>,
    slot_of: Vec<u32>,
    order: Vec<u32>,
    by_coords: Vec<u32>,
    neighbors: Vec<u32>,
    frac: Vec<f64>,
    weight: Vec<f64>,
    frac32: Vec<f32>,
    weight32: Vec<f32>,
    pub(crate) row: Vec<(u32, f64)>,
}

impl CsrScratch {
    /// Empty scratch; buffers grow on first use and are retained after.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes currently retained across all buffers (diagnostics).
    pub fn retained_bytes(&self) -> usize {
        (self.offsets.capacity()
            + self.degrees.capacity()
            + self.slot_of.capacity()
            + self.order.capacity()
            + self.by_coords.capacity()
            + self.neighbors.capacity())
            * 4
            + (self.frac.capacity() + self.weight.capacity()) * 8
            + (self.frac32.capacity() + self.weight32.capacity()) * 4
            + self.row.capacity() * 16
    }
}

/// Padded storage length of a row with `deg` real entries.
#[inline]
pub(crate) fn padded_len(deg: usize) -> usize {
    deg.div_ceil(SPARSE_LANES) * SPARSE_LANES
}

impl<S: LaneScalar> SparseCsr<S> {
    const BYTES_PER_ENTRY: usize = 4 + 2 * S::BYTES; // neighbor + frac + weight

    /// A zero-point CSR — the placeholder the incremental layer swaps
    /// in while its real CSR is transplanted into an engine.
    pub(crate) fn empty() -> Self {
        SparseCsr {
            offsets: Vec::new(),
            degrees: Vec::new(),
            slot_of: Vec::new(),
            order: Vec::new(),
            by_coords: Vec::new(),
            neighbors: Vec::new(),
            frac: Vec::new(),
            weight: Vec::new(),
            stats: SparseStats {
                build_nanos: 0,
                bytes: 0,
                entries: 0,
                padded_entries: 0,
                avg_degree: 0.0,
                max_degree: 0,
                used_grid: true,
            },
        }
    }

    /// Builds the CSR over `inst`'s points via `enumerator`, with fresh
    /// buffers and the serial fill path.
    pub(crate) fn build<const D: usize>(inst: &Instance<D>, enumerator: &Enumerator<D>) -> Self {
        Self::build_with(inst, enumerator, &mut CsrScratch::default(), false)
    }

    /// Builds the CSR into the buffers taken from `scratch` (leaving
    /// this scalar's buffers empty; see [`RewardEngine::reclaim`]).
    /// When `parallel` is set the rows are enumerated by contiguous
    /// slot chunks across the rayon pool and stitched together with a
    /// prefix-sum pass; each row's content (enumeration, sort, kernel
    /// math, padding) is untouched, so the resulting arrays are
    /// byte-identical to the serial build.
    pub(crate) fn build_with<const D: usize>(
        inst: &Instance<D>,
        enumerator: &Enumerator<D>,
        scratch: &mut CsrScratch,
        parallel: bool,
    ) -> Self {
        let started = std::time::Instant::now();
        let n = inst.n();
        let mut offsets = std::mem::take(&mut scratch.offsets);
        let mut degrees = std::mem::take(&mut scratch.degrees);
        let mut slot_of = std::mem::take(&mut scratch.slot_of);
        let mut order = std::mem::take(&mut scratch.order);
        let mut by_coords = std::mem::take(&mut scratch.by_coords);
        let mut neighbors = std::mem::take(&mut scratch.neighbors);
        let (mut frac, mut weight) = S::take_bufs(scratch);
        offsets.clear();
        degrees.clear();
        neighbors.clear();
        frac.clear();
        weight.clear();
        offsets.reserve(n + 1);
        degrees.reserve(n);
        spatial_order(inst.points(), inst.radius(), &mut order);
        slot_of.clear();
        slot_of.resize(n, 0);
        for (slot, &i) in order.iter().enumerate() {
            slot_of[i as usize] = slot as u32;
        }
        by_coords.clear();
        by_coords.extend(0..n as u32);
        by_coords.sort_unstable_by_key(|&j| point_bits(inst.point(j as usize)));
        offsets.push(0u32);
        let max_degree = if parallel && rayon::current_num_threads() > 1 && n > 1 {
            Self::fill_parallel(
                inst,
                enumerator,
                &order,
                &mut offsets,
                &mut degrees,
                &mut neighbors,
                &mut frac,
                &mut weight,
            )
        } else {
            let mut row = std::mem::take(&mut scratch.row);
            let max = Self::fill_serial(
                inst,
                enumerator,
                &order,
                &mut offsets,
                &mut degrees,
                &mut neighbors,
                &mut frac,
                &mut weight,
                &mut row,
            );
            scratch.row = row;
            max
        };
        let entries = degrees.iter().map(|&d| d as usize).sum::<usize>();
        let padded_entries = neighbors.len();
        let bytes = (offsets.len() + degrees.len() + slot_of.len() + order.len() + by_coords.len())
            * 4
            + padded_entries * Self::BYTES_PER_ENTRY;
        let stats = SparseStats {
            build_nanos: started.elapsed().as_nanos() as u64,
            bytes,
            entries,
            padded_entries,
            avg_degree: entries as f64 / n as f64,
            max_degree,
            used_grid: enumerator.used_grid(),
        };
        SparseCsr {
            offsets,
            degrees,
            slot_of,
            order,
            by_coords,
            neighbors,
            frac,
            weight,
            stats,
        }
    }

    /// Appends one enumerated-and-sorted row: keeps the entries with
    /// positive kernel fraction (a zero-`frac` entry — a point exactly
    /// on the rim — contributes an exact `+0.0` to every gain, so
    /// dropping it is bit-transparent), then pads to a lane multiple by
    /// repeating the last real neighbor with `frac = weight = 0`.
    /// Returns the real degree.
    pub(crate) fn append_row<const D: usize>(
        inst: &Instance<D>,
        kernel: &PreparedKernel,
        row: &[(u32, f64)],
        neighbors: &mut Vec<u32>,
        frac: &mut Vec<S>,
        weight: &mut Vec<S>,
    ) -> usize {
        let r = inst.radius();
        let before = neighbors.len();
        for &(j, d) in row {
            let f = kernel.frac(d, r);
            if f > 0.0 {
                neighbors.push(j);
                frac.push(S::narrow(f));
                weight.push(S::narrow(inst.weight(j as usize)));
            }
        }
        let deg = neighbors.len() - before;
        let target = before + padded_len(deg);
        if deg > 0 {
            // Padding duplicates a real in-range neighbor index so the
            // kernel's unchecked residual gather stays in bounds and the
            // dirty-region test sees no phantom points.
            let pad = *neighbors.last().expect("deg > 0");
            while neighbors.len() < target {
                neighbors.push(pad);
                frac.push(S::narrow(0.0));
                weight.push(S::narrow(0.0));
            }
        }
        deg
    }

    /// The reference row fill, in storage-slot order: enumerate, sort
    /// ascending, drop zero-`frac` entries, append, pad.
    #[allow(clippy::too_many_arguments)]
    fn fill_serial<const D: usize>(
        inst: &Instance<D>,
        enumerator: &Enumerator<D>,
        order: &[u32],
        offsets: &mut Vec<u32>,
        degrees: &mut Vec<u32>,
        neighbors: &mut Vec<u32>,
        frac: &mut Vec<S>,
        weight: &mut Vec<S>,
        row: &mut Vec<(u32, f64)>,
    ) -> usize {
        let r = inst.radius();
        let norm = inst.norm();
        let kernel = inst.kernel().prepared();
        let mut max_degree = 0usize;
        for &i in order {
            row.clear();
            enumerator.for_each_within(inst.point(i as usize), r, norm, |j, d| {
                row.push((j as u32, d));
            });
            // Enumerators emit in index-unrelated order (cell or leaf
            // order); ascending neighbor index is what makes the sparse
            // accumulation bit-identical to the dense scan.
            row.sort_unstable_by_key(|&(j, _)| j);
            let deg = Self::append_row(inst, &kernel, row, neighbors, frac, weight);
            max_degree = max_degree.max(deg);
            degrees.push(deg as u32);
            assert!(
                neighbors.len() <= u32::MAX as usize,
                "sparse engine: neighbor entries overflow u32 offsets"
            );
            offsets.push(neighbors.len() as u32);
        }
        max_degree
    }

    /// Parallel row fill: each worker enumerates a contiguous chunk of
    /// storage slots into local buffers (same per-row enumeration,
    /// sort, zero-drop, kernel math and padding as
    /// [`Self::fill_serial`]), then a serial prefix-sum pass
    /// concatenates the chunks in slot order — the flat arrays come
    /// out byte-identical to the serial build.
    #[allow(clippy::too_many_arguments)]
    fn fill_parallel<const D: usize>(
        inst: &Instance<D>,
        enumerator: &Enumerator<D>,
        order: &[u32],
        offsets: &mut Vec<u32>,
        degrees: &mut Vec<u32>,
        neighbors: &mut Vec<u32>,
        frac: &mut Vec<S>,
        weight: &mut Vec<S>,
    ) -> usize {
        use rayon::prelude::*;
        let n = order.len();
        let r = inst.radius();
        let norm = inst.norm();
        let kernel = inst.kernel().prepared();
        let threads = rayon::current_num_threads().max(1);
        let chunk = n.div_ceil(threads);
        let ranges: Vec<&[u32]> = order.chunks(chunk).collect();
        struct ChunkOut<S> {
            degrees: Vec<u32>,
            neighbors: Vec<u32>,
            frac: Vec<S>,
            weight: Vec<S>,
            max_degree: usize,
        }
        let parts: Vec<ChunkOut<S>> = ranges
            .into_par_iter()
            .map(|slots| {
                let mut out = ChunkOut {
                    degrees: Vec::with_capacity(slots.len()),
                    neighbors: Vec::new(),
                    frac: Vec::new(),
                    weight: Vec::new(),
                    max_degree: 0,
                };
                let mut row: Vec<(u32, f64)> = Vec::new();
                for &i in slots {
                    row.clear();
                    enumerator.for_each_within(inst.point(i as usize), r, norm, |j, d| {
                        row.push((j as u32, d));
                    });
                    row.sort_unstable_by_key(|&(j, _)| j);
                    let deg = Self::append_row(
                        inst,
                        &kernel,
                        &row,
                        &mut out.neighbors,
                        &mut out.frac,
                        &mut out.weight,
                    );
                    out.max_degree = out.max_degree.max(deg);
                    out.degrees.push(deg as u32);
                }
                out
            })
            .collect();
        let total: usize = parts.iter().map(|p| p.neighbors.len()).sum();
        assert!(
            total <= u32::MAX as usize,
            "sparse engine: neighbor entries overflow u32 offsets"
        );
        neighbors.reserve(total);
        frac.reserve(total);
        weight.reserve(total);
        let mut max_degree = 0usize;
        let mut running = 0u32;
        for part in parts {
            for &deg in &part.degrees {
                running += padded_len(deg as usize) as u32;
                offsets.push(running);
            }
            degrees.extend_from_slice(&part.degrees);
            neighbors.extend_from_slice(&part.neighbors);
            frac.extend_from_slice(&part.frac);
            weight.extend_from_slice(&part.weight);
            max_degree = max_degree.max(part.max_degree);
        }
        max_degree
    }

    /// Moves the flat buffers back into `scratch` for the next build.
    pub(crate) fn recycle(self, scratch: &mut CsrScratch) {
        scratch.offsets = self.offsets;
        scratch.degrees = self.degrees;
        scratch.slot_of = self.slot_of;
        scratch.order = self.order;
        scratch.by_coords = self.by_coords;
        scratch.neighbors = self.neighbors;
        S::put_bufs(scratch, self.frac, self.weight);
    }

    /// The half-open *padded* entry range of candidate `i`'s row — what
    /// the blocked kernel walks. The end is derived from the row's own
    /// degree (not the next slot's start) so rows relocated to the tail
    /// by delta patching stay addressable; on a fresh dense build the
    /// two are equal.
    #[inline]
    pub(crate) fn padded_row(&self, i: usize) -> std::ops::Range<usize> {
        let slot = self.slot_of[i] as usize;
        let start = self.offsets[slot] as usize;
        start..start + padded_len(self.degrees[slot] as usize)
    }

    /// The half-open *real* entry range of candidate `i`'s row (padding
    /// excluded) — what the scalar reference walk and the dirty-region
    /// test iterate.
    #[inline]
    pub(crate) fn real_row(&self, i: usize) -> std::ops::Range<usize> {
        let slot = self.slot_of[i] as usize;
        let start = self.offsets[slot] as usize;
        start..start + self.degrees[slot] as usize
    }

    /// Coverage reward of candidate `i` via the blocked lane kernel:
    /// fixed-width chunks of branchless
    /// `widen(w) · min(widen(frac), y[neighbor])` terms, each chunk's
    /// terms computed independently (the compiler vectorizes this) and
    /// then added to the accumulator *in entry order* — the same `f64`
    /// association as the scalar reference walk.
    ///
    /// Bit-identity with the reference for `S = f64` rests on three
    /// invariants: residuals are never negative (`y − min(frac, y) ≥ 0`
    /// exactly in IEEE arithmetic), so a `y = 0` entry contributes
    /// `w · 0.0 = +0.0`; padding and zero-weight terms are exact
    /// `+0.0`; and the accumulator starts at `+0.0` and only ever adds
    /// non-negative terms, so `x + 0.0` is always the identity on its
    /// bits.
    #[inline]
    fn gain_blocked(&self, i: usize, y: &[f64]) -> f64 {
        let range = self.padded_row(i);
        let nb = &self.neighbors[range.clone()];
        let fr = &self.frac[range.clone()];
        let wt = &self.weight[range];
        let mut total = 0.0f64;
        for ((nb8, fr8), wt8) in nb
            .chunks_exact(SPARSE_LANES)
            .zip(fr.chunks_exact(SPARSE_LANES))
            .zip(wt.chunks_exact(SPARSE_LANES))
        {
            let mut terms = [0.0f64; SPARSE_LANES];
            for l in 0..SPARSE_LANES {
                // SAFETY: every stored neighbor index is < n = y.len():
                // real entries come from the radius enumerator over the
                // instance's own points, and padding repeats a real
                // entry of the same row.
                let yv = unsafe { *y.get_unchecked(nb8[l] as usize) };
                terms[l] = wt8[l].widen() * fr8[l].widen().min(yv);
            }
            for t in terms {
                total += t;
            }
        }
        total
    }

    /// Commits candidate `i`'s row against `residuals`: subtract each
    /// real entry's claimed assignment and return the round gain — the
    /// O(degree) sparse twin of [`Residuals::apply`]. The real row is
    /// exactly the dense loop's post-guard visit set (positive-`frac`
    /// points, ascending index), so for `S = f64` the gain bits and the
    /// mutated residuals match the dense apply exactly.
    fn apply_row(&self, i: usize, residuals: &mut Residuals) -> f64 {
        residuals.version += 1;
        let version = residuals.version;
        let mut gain = 0.0;
        for idx in self.real_row(i) {
            let j = self.neighbors[idx] as usize;
            let y = residuals.y[j];
            if y <= 0.0 {
                continue;
            }
            let z = self.frac[idx].widen().min(y);
            if z > 0.0 {
                gain += self.weight[idx].widen() * z;
                residuals.y[j] = y - z;
                residuals.touched[j] = version;
            }
        }
        gain
    }

    /// The pre-blocking scalar reference: walk the real row with
    /// per-entry `y`/`frac` guards. Kept as the bit-identity witness
    /// for the blocked kernel (tests, `perfsuite --kernels`).
    #[inline]
    fn gain_unblocked(&self, i: usize, y: &[f64]) -> f64 {
        let mut total = 0.0;
        for idx in self.real_row(i) {
            let yv = y[self.neighbors[idx] as usize];
            if yv <= 0.0 {
                continue;
            }
            let f = self.frac[idx].widen();
            if f > 0.0 {
                total += self.weight[idx].widen() * f.min(yv);
            }
        }
        total
    }

    /// Coverage reward of the row at `slot` against *fresh* residuals
    /// (`y = 1.0` everywhere): `Σ w · min(frac, 1.0)` over the padded
    /// row, accumulated in entry order. Bit-identical to
    /// [`Self::gain_blocked`] on reset residuals — the gather would
    /// return `1.0` for every neighbor and padding terms stay exact
    /// `+0.0` — but needs no neighbor gather at all, and slot-order
    /// callers stream `frac`/`weight` sequentially instead of chasing
    /// rows through `slot_of`. This is the warm-polish pool builder's
    /// hot loop.
    #[inline]
    fn root_gain_at(&self, slot: usize) -> f64 {
        let start = self.offsets[slot] as usize;
        let len = padded_len(self.degrees[slot] as usize);
        let fr = &self.frac[start..start + len];
        let wt = &self.weight[start..start + len];
        let mut total = 0.0f64;
        for (fr8, wt8) in fr
            .chunks_exact(SPARSE_LANES)
            .zip(wt.chunks_exact(SPARSE_LANES))
        {
            let mut terms = [0.0f64; SPARSE_LANES];
            for l in 0..SPARSE_LANES {
                terms[l] = wt8[l].widen() * fr8[l].widen().min(1.0);
            }
            for t in terms {
                total += t;
            }
        }
        total
    }

    /// Estimates the full CSR footprint by probing every `stride`-th
    /// row's degree — cheap relative to the build, accurate on the
    /// near-uniform inputs the grid targets. Includes the layout
    /// vectors and an average half-lane of padding per row.
    fn estimate_bytes<const D: usize>(inst: &Instance<D>, enumerator: &Enumerator<D>) -> usize {
        let n = inst.n();
        let stride = (n / 256).max(1);
        let mut sampled = 0usize;
        let mut entries = 0usize;
        let mut i = 0;
        while i < n {
            enumerator.for_each_within(inst.point(i), inst.radius(), inst.norm(), |_, _| {
                entries += 1;
            });
            sampled += 1;
            i += stride;
        }
        let est_entries =
            entries as f64 / sampled as f64 * n as f64 + (n * SPARSE_LANES / 2) as f64;
        (n + 1) * 4 + n * 4 * 4 + (est_entries * Self::BYTES_PER_ENTRY as f64) as usize
    }
}

/// Reward evaluation engine: computes coverage rewards by dense linear
/// scan, tree radius query, or precomputed sparse CSR adjacency, and
/// counts evaluations (used by the CELF ablation to demonstrate the
/// saved work).
#[derive(Debug)]
pub struct RewardEngine<'a, const D: usize> {
    inst: &'a Instance<D>,
    backend: Backend<D>,
    /// Kernel with per-solve constants hoisted ([`Kernel::prepared`]).
    kernel: PreparedKernel,
    // Atomic (not Cell) so the engine is Sync and the parallel oracle can
    // share it across worker threads; ordering is Relaxed because the
    // counter is a pure statistic, never used for synchronization.
    evals: std::sync::atomic::AtomicU64,
}

/// The evaluation backend of a [`RewardEngine`].
#[derive(Debug)]
pub(crate) enum Backend<const D: usize> {
    Scan,
    Kd(KdTree<D>),
    Ball(BallTree<D>),
    Sparse(SparseCsr<f64>),
    SparseF32(SparseCsr<f32>),
}

impl<'a, const D: usize> RewardEngine<'a, D> {
    pub(crate) fn with_backend(inst: &'a Instance<D>, backend: Backend<D>) -> Self {
        RewardEngine {
            inst,
            backend,
            kernel: inst.kernel().prepared(),
            evals: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Engine wrapping an already-built `f64` CSR — the incremental
    /// layer transplants its delta-patched adjacency in without a
    /// rebuild ([`crate::incremental`]).
    pub(crate) fn from_csr(inst: &'a Instance<D>, csr: SparseCsr<f64>) -> Self {
        Self::with_backend(inst, Backend::Sparse(csr))
    }

    /// [`Self::from_csr`] for the mixed-precision `f32` streams.
    pub(crate) fn from_csr32(inst: &'a Instance<D>, csr: SparseCsr<f32>) -> Self {
        Self::with_backend(inst, Backend::SparseF32(csr))
    }

    /// Takes the `f64` CSR back out of a sparse engine (the inverse of
    /// [`Self::from_csr`]); `None` for other backends.
    pub(crate) fn take_csr(self) -> Option<SparseCsr<f64>> {
        match self.backend {
            Backend::Sparse(csr) => Some(csr),
            _ => None,
        }
    }

    /// Takes the `f32` CSR back out ([`Self::from_csr32`]'s inverse).
    pub(crate) fn take_csr32(self) -> Option<SparseCsr<f32>> {
        match self.backend {
            Backend::SparseF32(csr) => Some(csr),
            _ => None,
        }
    }

    /// Engine that evaluates by linear scan over all points.
    pub fn scan(inst: &'a Instance<D>) -> Self {
        Self::with_backend(inst, Backend::Scan)
    }

    /// Engine backed by a kd-tree radius query. Worth it when the
    /// interest radius covers a small fraction of the instance (see the
    /// `ablation_spatial_index` bench for the crossover).
    pub fn indexed(inst: &'a Instance<D>) -> Self {
        Self::with_backend(inst, Backend::Kd(KdTree::build(inst.points())))
    }

    /// Engine backed by a ball-tree radius query — same results as
    /// [`Self::indexed`], typically better pruning as `D` grows.
    pub fn ball_indexed(inst: &'a Instance<D>) -> Self {
        Self::with_backend(inst, Backend::Ball(BallTree::build(inst.points())))
    }

    /// Engine backed by a precomputed CSR neighbor adjacency: candidate
    /// gains become O(degree) sparse dot products, bit-identical to the
    /// dense scan. Forces the build regardless of footprint; use
    /// [`Self::auto`] for the memory-capped variant.
    pub fn sparse(inst: &'a Instance<D>) -> Self {
        let enumerator = Enumerator::build(inst.points(), inst.radius());
        Self::with_backend(inst, Backend::Sparse(SparseCsr::build(inst, &enumerator)))
    }

    /// Sparse engine whose CSR buffers are taken from (and on
    /// [`Self::reclaim`] returned to) a [`CsrScratch`] arena, with an
    /// optional rayon-parallel row fill. The produced adjacency is
    /// byte-identical to [`Self::sparse`] in either mode; only the
    /// allocation behaviour (and, with `parallel`, the build
    /// parallelism) differs.
    pub fn sparse_with_scratch(
        inst: &'a Instance<D>,
        scratch: &mut CsrScratch,
        parallel: bool,
    ) -> Self {
        let enumerator = Enumerator::build(inst.points(), inst.radius());
        Self::with_backend(
            inst,
            Backend::Sparse(SparseCsr::build_with(inst, &enumerator, scratch, parallel)),
        )
    }

    /// The mixed-precision sparse engine: same CSR build and blocked
    /// kernel as [`Self::sparse`], but `frac`/`weight` are narrowed to
    /// `f32` at build time (accumulation stays `f64`). Gains carry a
    /// documented relative error bound instead of the bit-identical
    /// guarantee — see DESIGN.md "Kernel layout & precision".
    pub fn sparse_f32(inst: &'a Instance<D>) -> Self {
        let enumerator = Enumerator::build(inst.points(), inst.radius());
        Self::with_backend(
            inst,
            Backend::SparseF32(SparseCsr::build(inst, &enumerator)),
        )
    }

    /// [`Self::sparse_f32`] over scratch-borrowed buffers, mirroring
    /// [`Self::sparse_with_scratch`].
    pub fn sparse_f32_with_scratch(
        inst: &'a Instance<D>,
        scratch: &mut CsrScratch,
        parallel: bool,
    ) -> Self {
        let enumerator = Enumerator::build(inst.points(), inst.radius());
        Self::with_backend(
            inst,
            Backend::SparseF32(SparseCsr::build_with(inst, &enumerator, scratch, parallel)),
        )
    }

    /// Returns the CSR buffers of a sparse engine to `scratch` so the
    /// next [`Self::sparse_with_scratch`] (or
    /// [`Self::sparse_f32_with_scratch`]) build reuses their capacity.
    /// A no-op for the other backends.
    pub fn reclaim(self, scratch: &mut CsrScratch) {
        match self.backend {
            Backend::Sparse(csr) => csr.recycle(scratch),
            Backend::SparseF32(csr) => csr.recycle(scratch),
            _ => {}
        }
    }

    /// Raw CSR arrays `(offsets, degrees, neighbors, frac, weight)` of
    /// the `f64` sparse backend (offsets are padded and indexed by
    /// storage slot; see [`Self::eval_order`] for the slot → candidate
    /// map) — exposed so tests and benches can assert the parallel
    /// build is byte-identical to the serial one.
    #[doc(hidden)]
    #[allow(clippy::type_complexity)]
    pub fn csr_parts(&self) -> Option<(&[u32], &[u32], &[u32], &[f64], &[f64])> {
        match &self.backend {
            Backend::Sparse(csr) => Some((
                &csr.offsets,
                &csr.degrees,
                &csr.neighbors,
                &csr.frac,
                &csr.weight,
            )),
            _ => None,
        }
    }

    /// The cache-friendly candidate evaluation order of a sparse
    /// backend: `order[slot]` is the candidate whose CSR row is stored
    /// at `slot`, so scanning candidates in this order reads the CSR
    /// streams strictly sequentially and keeps spatially-adjacent
    /// residual lines hot. `None` for non-sparse backends. The order is
    /// a permutation of `0..n`; an argmax over it with the explicit
    /// max-gain/min-index tie-break selects exactly the candidate the
    /// index-order first-max scan does.
    pub fn eval_order(&self) -> Option<&[u32]> {
        match &self.backend {
            Backend::Sparse(csr) => Some(&csr.order),
            Backend::SparseF32(csr) => Some(&csr.order),
            _ => None,
        }
    }

    /// Sparse when the estimated CSR footprint fits under
    /// [`DEFAULT_SPARSE_CAP_BYTES`], else kd-tree.
    pub fn auto(inst: &'a Instance<D>) -> Self {
        Self::auto_with_cap(inst, DEFAULT_SPARSE_CAP_BYTES)
    }

    /// [`Self::auto`] with an explicit cap in bytes.
    pub fn auto_with_cap(inst: &'a Instance<D>, cap_bytes: usize) -> Self {
        Self::auto_with_cap_kind(inst, cap_bytes, EngineKind::Sparse)
    }

    /// Cap-checked sparse engine for an explicit sparse scalar `kind`
    /// ([`EngineKind::Sparse`] or [`EngineKind::SparseF32`]; anything
    /// else is treated as `Sparse`). The footprint estimate uses the
    /// kind's *real* per-entry cost — 20 B for the `f64` streams,
    /// 12 B for `f32` — so under the same cap the mixed-precision
    /// engine stays sparse to roughly 1.67× more entries instead of
    /// falling back to the kd-tree at the `f64` threshold.
    pub fn auto_with_cap_kind(inst: &'a Instance<D>, cap_bytes: usize, kind: EngineKind) -> Self {
        let enumerator = Enumerator::build(inst.points(), inst.radius());
        let f32_kind = matches!(kind, EngineKind::SparseF32);
        let (est, per_entry) = if f32_kind {
            (
                SparseCsr::<f32>::estimate_bytes(inst, &enumerator),
                SparseCsr::<f32>::BYTES_PER_ENTRY,
            )
        } else {
            (
                SparseCsr::<f64>::estimate_bytes(inst, &enumerator),
                SparseCsr::<f64>::BYTES_PER_ENTRY,
            )
        };
        if est > cap_bytes || est / per_entry >= u32::MAX as usize {
            let tree = enumerator.into_kdtree(inst.points());
            return Self::with_backend(inst, Backend::Kd(tree));
        }
        if f32_kind {
            Self::with_backend(
                inst,
                Backend::SparseF32(SparseCsr::build(inst, &enumerator)),
            )
        } else {
            Self::with_backend(inst, Backend::Sparse(SparseCsr::build(inst, &enumerator)))
        }
    }

    /// The estimated CSR footprint in bytes that [`Self::auto_with_cap_kind`]
    /// would compare against the cap for `kind` (sampled row degrees ×
    /// the kind's per-entry bytes). `None` for non-sparse kinds.
    pub fn estimated_sparse_bytes(inst: &Instance<D>, kind: EngineKind) -> Option<usize> {
        match kind {
            EngineKind::Sparse | EngineKind::Auto => {
                let enumerator = Enumerator::build(inst.points(), inst.radius());
                Some(SparseCsr::<f64>::estimate_bytes(inst, &enumerator))
            }
            EngineKind::SparseF32 => {
                let enumerator = Enumerator::build(inst.points(), inst.radius());
                Some(SparseCsr::<f32>::estimate_bytes(inst, &enumerator))
            }
            _ => None,
        }
    }

    /// Engine for an [`EngineKind`] selection. [`EngineKind::Auto`]
    /// only ever chooses between the bit-identical backends; the
    /// approximate [`EngineKind::SparseF32`] must be named explicitly.
    pub fn with_kind(inst: &'a Instance<D>, kind: EngineKind) -> Self {
        match kind {
            EngineKind::Auto => Self::auto(inst),
            EngineKind::Scan => Self::scan(inst),
            EngineKind::Kd => Self::indexed(inst),
            EngineKind::Ball => Self::ball_indexed(inst),
            EngineKind::Sparse => Self::sparse(inst),
            EngineKind::SparseF32 => Self::sparse_f32(inst),
        }
    }

    /// The backend actually in use (never [`EngineKind::Auto`]).
    pub fn kind(&self) -> EngineKind {
        match self.backend {
            Backend::Scan => EngineKind::Scan,
            Backend::Kd(_) => EngineKind::Kd,
            Backend::Ball(_) => EngineKind::Ball,
            Backend::Sparse(_) => EngineKind::Sparse,
            Backend::SparseF32(_) => EngineKind::SparseF32,
        }
    }

    /// CSR build statistics when a sparse backend is active.
    pub fn sparse_stats(&self) -> Option<SparseStats> {
        match &self.backend {
            Backend::Sparse(csr) => Some(csr.stats),
            Backend::SparseF32(csr) => Some(csr.stats),
            _ => None,
        }
    }

    /// The instance this engine evaluates against.
    pub fn instance(&self) -> &Instance<D> {
        self.inst
    }

    /// Number of coverage-reward evaluations performed so far.
    pub fn evals(&self) -> u64 {
        self.evals.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Records one reward evaluation without computing anything — used
    /// by the oracle layer to charge whole-objective evaluations (swap
    /// moves, beam rescoring) to the same counter as candidate gains.
    pub(crate) fn note_eval(&self) {
        self.evals
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Resolves an arbitrary query point back to its candidate index
    /// when it *is* one of the instance's points. Two tiers: a pointer
    /// range check (catches `inst.point(i)` references for free), then
    /// a binary search over the coordinate-bits-sorted candidate
    /// permutation (catches *copied* points, e.g. the local-search
    /// polish loop's `*inst.point(cand)`). Bit-equal duplicates are
    /// interchangeable — identical coordinates produce identical CSR
    /// rows, hence identical gains.
    fn candidate_index(&self, c: &Point<D>, by_coords: &[u32]) -> Option<usize> {
        let points = self.inst.points();
        let size = std::mem::size_of::<Point<D>>();
        if size > 0 {
            let base = points.as_ptr() as usize;
            let addr = c as *const Point<D> as usize;
            if addr >= base
                && addr < base + std::mem::size_of_val(points)
                && (addr - base).is_multiple_of(size)
            {
                return Some((addr - base) / size);
            }
        }
        let key = point_bits(c);
        by_coords
            .binary_search_by(|&j| match points.get(j as usize) {
                Some(p) => point_bits(p).cmp(&key),
                // A stale out-of-range entry (incremental churn keeps
                // the permutation live between repairs): never a
                // match. Any consistent non-Equal answer is safe —
                // `Ok` requires bit-equality at the probed entry, so a
                // disordered probe path can only cause a miss, and a
                // miss falls back to the dense scan.
                None => std::cmp::Ordering::Greater,
            })
            .ok()
            .map(|pos| by_coords[pos] as usize)
    }

    /// Coverage reward of `c` against `residuals` (Eq. 13's inner
    /// objective), via the configured evaluation strategy. On the
    /// sparse backends a query point that is (bit-equal to) one of the
    /// instance's points routes through [`Self::candidate_gain`]'s
    /// O(degree) row walk — non-greedy callers like the local-search
    /// polish get the sparse path too. Genuinely arbitrary points have
    /// no CSR row and fall back to the dense reference scan.
    pub fn gain(&self, c: &Point<D>, residuals: &Residuals) -> f64 {
        let by_coords = match &self.backend {
            Backend::Sparse(csr) => Some(&csr.by_coords),
            Backend::SparseF32(csr) => Some(&csr.by_coords),
            _ => None,
        };
        if let Some(by) = by_coords {
            if let Some(i) = self.candidate_index(c, by) {
                return self.candidate_gain(i, residuals);
            }
        }
        self.note_eval();
        let r = self.inst.radius();
        let kernel = &self.kernel;
        let mut total = 0.0;
        let mut add = |i: usize, d: f64| {
            let y = residuals.y(i);
            if y > 0.0 {
                total += self.inst.weight(i) * kernel.frac(d, r).min(y);
            }
        };
        match &self.backend {
            Backend::Scan | Backend::Sparse(_) | Backend::SparseF32(_) => {
                return coverage_reward_with(self.inst, c, residuals, kernel);
            }
            Backend::Kd(tree) => tree.for_each_within(c, r, self.inst.norm(), &mut add),
            Backend::Ball(tree) => tree.for_each_within(c, r, self.inst.norm(), &mut add),
        }
        total
    }

    /// Coverage reward of candidate point `i` — the hot path of every
    /// point-candidate greedy. On the sparse backends this is the
    /// blocked O(degree) lane kernel over the precomputed row, with the
    /// same `f64` accumulation order as the dense scan (hence
    /// bit-identical on the `f64` backend); other backends delegate to
    /// [`Self::gain`]. Charges one evaluation.
    pub fn candidate_gain(&self, i: usize, residuals: &Residuals) -> f64 {
        match &self.backend {
            Backend::Sparse(csr) => {
                self.note_eval();
                csr.gain_blocked(i, residuals.as_slice())
            }
            Backend::SparseF32(csr) => {
                self.note_eval();
                csr.gain_blocked(i, residuals.as_slice())
            }
            _ => self.gain(self.inst.point(i), residuals),
        }
    }

    /// Appends `(gain(b | ∅), b)` for every candidate `b` with
    /// `dirty[b]` to `out`, visiting rows in **CSR slot order** so the
    /// `frac`/`weight` streams are read near-sequentially (index-order
    /// iteration would chase every row through `slot_of` — random
    /// access over the whole CSR). Each root gain is bit-identical to
    /// [`Self::candidate_gain`] against reset residuals (see
    /// `SparseCsr::root_gain_at`), and each charges one evaluation.
    /// Returns `false` (appending nothing) on non-sparse backends.
    ///
    /// This is how the warm re-solve prices its CELF swap-pool bounds:
    /// at 1% churn on n = 10⁶ the dirty set is ~half the instance, so
    /// the pool build dominates the warm resolve unless it streams.
    pub fn root_gains_into(&self, dirty: &[bool], out: &mut Vec<(f64, usize)>) -> bool {
        fn collect<S: LaneScalar>(
            csr: &SparseCsr<S>,
            dirty: &[bool],
            out: &mut Vec<(f64, usize)>,
        ) -> u64 {
            let mut evals = 0u64;
            for slot in 0..csr.order.len() {
                let i = csr.order[slot] as usize;
                if dirty.get(i).copied().unwrap_or(false) {
                    out.push((csr.root_gain_at(slot), i));
                    evals += 1;
                }
            }
            evals
        }
        let evals = match &self.backend {
            Backend::Sparse(csr) => collect(csr, dirty, out),
            Backend::SparseF32(csr) => collect(csr, dirty, out),
            _ => return false,
        };
        self.evals
            .fetch_add(evals, std::sync::atomic::Ordering::Relaxed);
        true
    }

    /// The scalar (unblocked) reference walk of candidate `i`'s CSR
    /// row: per-entry branches, padding excluded. `None` on non-sparse
    /// backends. Exposed as the bit-identity witness for
    /// [`Self::candidate_gain`]'s blocked kernel (the `kernel_layout`
    /// test and `perfsuite --kernels` compare the two); charges one
    /// evaluation so throughput comparisons stay symmetric.
    #[doc(hidden)]
    pub fn candidate_gain_unblocked(&self, i: usize, residuals: &Residuals) -> Option<f64> {
        match &self.backend {
            Backend::Sparse(csr) => {
                self.note_eval();
                Some(csr.gain_unblocked(i, residuals.as_slice()))
            }
            Backend::SparseF32(csr) => {
                self.note_eval();
                Some(csr.gain_unblocked(i, residuals.as_slice()))
            }
            _ => None,
        }
    }

    /// Commits candidate `i` as a center by walking its *real* CSR row:
    /// the sparse counterpart of [`Residuals::apply`], O(degree)
    /// instead of O(n). `None` on non-sparse backends.
    ///
    /// Bit-identity with the dense apply on the `f64` backend: the real
    /// row is exactly the set of points with positive kernel fraction,
    /// in ascending index order (the dense loop's visit order after its
    /// `z > 0` guard), each entry's `frac`/`weight` carry the same bits
    /// the dense path recomputes, and per-point updates are independent
    /// — so both the returned gain and the mutated residuals match the
    /// dense apply bit for bit. On the `f32` backend the row streams
    /// are narrowed, so the apply is self-consistent with
    /// [`Self::candidate_gain`] rather than with the dense reference
    /// (same documented error bound as every other f32 gain).
    pub fn apply_candidate(&self, i: usize, residuals: &mut Residuals) -> Option<f64> {
        match &self.backend {
            Backend::Sparse(csr) => Some(csr.apply_row(i, residuals)),
            Backend::SparseF32(csr) => Some(csr.apply_row(i, residuals)),
            _ => None,
        }
    }

    /// Dirty-region test for the CELF lazy oracle: has candidate `i`'s
    /// gain provably not changed since residual version `version`? Only
    /// the sparse backends can answer (`None` otherwise). `Some(true)`
    /// means every point the candidate can touch last shrank at or
    /// before `version`, so a gain computed then is still exact — the
    /// oracle may reuse it without charging an evaluation. Free: an
    /// O(degree) integer compare against the real (unpadded) CSR row,
    /// no kernel math.
    pub fn unchanged_since(&self, i: usize, residuals: &Residuals, version: u64) -> Option<bool> {
        let (neighbors, range) = match &self.backend {
            Backend::Sparse(csr) => (&csr.neighbors, csr.real_row(i)),
            Backend::SparseF32(csr) => (&csr.neighbors, csr.real_row(i)),
            _ => return None,
        };
        Some(
            neighbors[range]
                .iter()
                .all(|&j| residuals.touched(j as usize) <= version),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use mmph_geom::Point;

    fn line_instance(k: usize, r: f64) -> Instance<2> {
        InstanceBuilder::new()
            .point([0.0, 0.0], 1.0)
            .point([1.0, 0.0], 2.0)
            .point([2.0, 0.0], 3.0)
            .radius(r)
            .k(k)
            .build()
            .unwrap()
    }

    #[test]
    fn coverage_frac_cases() {
        assert_eq!(coverage_frac(0.0, 1.0), 1.0); // at the center
        assert_eq!(coverage_frac(1.0, 1.0), 0.0); // on the boundary
        assert_eq!(coverage_frac(0.5, 1.0), 0.5);
        assert_eq!(coverage_frac(2.0, 1.0), 0.0); // outside
        assert_eq!(coverage_frac(3.0, 2.0), 0.0);
    }

    #[test]
    fn psi_matches_equation_1() {
        let c = Point::new([0.0, 0.0]);
        let x = Point::new([0.6, 0.0]);
        // w (1 - d/r) = 2 * (1 - 0.6/1.0) = 0.8
        assert!((psi(2.0, &c, &x, 1.0, Norm::L2) - 0.8).abs() < 1e-12);
        // outside the radius: zero
        assert_eq!(psi(2.0, &c, &Point::new([1.5, 0.0]), 1.0, Norm::L2), 0.0);
    }

    #[test]
    fn objective_single_center() {
        let inst = line_instance(1, 1.0);
        // Center at point 1 (1,0): covers p0 at d=1 (frac 0), p1 at d=0
        // (frac 1), p2 at d=1 (frac 0). f = 2.
        let f = objective(&inst, &[Point::new([1.0, 0.0])]);
        assert!((f - 2.0).abs() < 1e-12);
    }

    #[test]
    fn objective_caps_overlapping_centers() {
        let inst = line_instance(2, 2.0);
        // Two identical centers at p1: each gives p1 frac 1; cap keeps
        // p1's contribution at w=2. p0/p2 at d=1, frac 0.5 each from both
        // centers -> cov = 1.0 (capped exactly), contributing w each.
        let c = Point::new([1.0, 0.0]);
        let f = objective(&inst, &[c, c]);
        assert!((f - (1.0 + 2.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn objective_empty_center_set_is_zero() {
        let inst = line_instance(1, 1.0);
        assert_eq!(objective(&inst, &[]), 0.0);
    }

    #[test]
    fn residuals_start_at_one_and_deplete() {
        let inst = line_instance(2, 2.0);
        let mut res = Residuals::new(inst.n());
        assert_eq!(res.as_slice(), &[1.0, 1.0, 1.0]);
        let c = Point::new([1.0, 0.0]);
        let g1 = res.apply(&inst, &c);
        // z = (0.5, 1.0, 0.5); gain = 1*0.5 + 2*1 + 3*0.5 = 4.0
        assert!((g1 - 4.0).abs() < 1e-12);
        assert!((res.y(0) - 0.5).abs() < 1e-12);
        assert_eq!(res.y(1), 0.0);
        assert!((res.y(2) - 0.5).abs() < 1e-12);
        // Re-applying the same center claims only the residual halves.
        let g2 = res.apply(&inst, &c);
        assert!((g2 - (1.0 * 0.5 + 3.0 * 0.5)).abs() < 1e-12);
        assert!(res.all_satisfied(1e-12));
    }

    #[test]
    fn round_gains_telescope_to_objective() {
        // The invariant that justifies Solution::total_reward.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..30 {
            let n = rng.gen_range(2..20);
            let pts: Vec<Point<2>> = (0..n)
                .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
                .collect();
            let ws: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..5.0)).collect();
            let inst = Instance::new(pts.clone(), ws, 1.5, 3, Norm::L2).unwrap();
            let centers: Vec<Point<2>> = (0..3)
                .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
                .collect();
            let mut res = Residuals::new(n);
            let total: f64 = centers.iter().map(|c| res.apply(&inst, c)).sum();
            let f = objective(&inst, &centers);
            assert!(
                (total - f).abs() < 1e-9,
                "telescoped {total} vs objective {f}"
            );
        }
    }

    #[test]
    fn coverage_reward_respects_residuals() {
        let inst = line_instance(1, 2.0);
        let mut res = Residuals::new(inst.n());
        let c = Point::new([1.0, 0.0]);
        let before = coverage_reward(&inst, &c, &res);
        assert!((before - 4.0).abs() < 1e-12);
        res.apply(&inst, &c);
        let after = coverage_reward(&inst, &c, &res);
        assert!((after - 2.0).abs() < 1e-12); // only the residual halves
    }

    #[test]
    fn assignments_do_not_mutate() {
        let inst = line_instance(1, 2.0);
        let res = Residuals::new(inst.n());
        let c = Point::new([1.0, 0.0]);
        let z = res.assignments(&inst, &c);
        assert_eq!(z.len(), 3);
        assert!((z[0] - 0.5).abs() < 1e-12);
        assert!((z[1] - 1.0).abs() < 1e-12);
        assert_eq!(res.as_slice(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn engine_scan_and_indexed_agree() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(88);
        let pts: Vec<Point<2>> = (0..100)
            .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
            .collect();
        let ws: Vec<f64> = (0..100).map(|_| rng.gen_range(1.0..5.0)).collect();
        for norm in [Norm::L1, Norm::L2] {
            let inst = Instance::new(pts.clone(), ws.clone(), 1.0, 2, norm).unwrap();
            let scan = RewardEngine::scan(&inst);
            let indexed = RewardEngine::indexed(&inst);
            let mut res = Residuals::new(inst.n());
            for trial in 0..20 {
                let c = Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]);
                let a = scan.gain(&c, &res);
                let b = indexed.gain(&c, &res);
                assert!(
                    (a - b).abs() < 1e-9,
                    "trial {trial} norm {norm}: {a} vs {b}"
                );
                if trial == 9 {
                    res.apply(&inst, &c); // change residual state mid-way
                }
            }
            assert_eq!(scan.evals(), 20);
            assert_eq!(indexed.evals(), 20);
        }
    }

    #[test]
    fn ball_engine_agrees_with_scan() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(123);
        let pts: Vec<Point<2>> = (0..80)
            .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
            .collect();
        let inst = Instance::new(pts, vec![1.0; 80], 1.2, 2, Norm::L2).unwrap();
        let scan = RewardEngine::scan(&inst);
        let ball = RewardEngine::ball_indexed(&inst);
        let res = Residuals::new(inst.n());
        for _ in 0..25 {
            let c = Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]);
            assert!((scan.gain(&c, &res) - ball.gain(&c, &res)).abs() < 1e-9);
        }
    }

    #[test]
    fn engine_counts_evaluations() {
        let inst = line_instance(1, 1.0);
        let engine = RewardEngine::scan(&inst);
        let res = Residuals::new(inst.n());
        assert_eq!(engine.evals(), 0);
        engine.gain(&Point::new([0.0, 0.0]), &res);
        engine.gain(&Point::new([1.0, 0.0]), &res);
        assert_eq!(engine.evals(), 2);
    }

    #[test]
    fn reset_matches_fresh_residuals() {
        let inst = line_instance(2, 2.0);
        let mut res = Residuals::new(inst.n());
        res.apply(&inst, &Point::new([1.0, 0.0]));
        assert!(res.version() > 0);
        res.reset(inst.n());
        let fresh = Residuals::new(inst.n());
        assert_eq!(res, fresh);
        assert_eq!(res.version(), 0);
        assert_eq!(res.touched(0), 0);
        // Shrinking reset (smaller n) must also match a fresh build.
        res.reset(2);
        assert_eq!(res.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn assignments_into_matches_allocating_form() {
        let inst = line_instance(1, 2.0);
        let mut res = Residuals::new(inst.n());
        res.apply(&inst, &Point::new([0.0, 0.0]));
        let c = Point::new([1.0, 0.0]);
        let alloc = res.assignments(&inst, &c);
        let mut buf = vec![99.0; 7]; // dirty, over-sized buffer
        res.assignments_into(&inst, &c, &mut buf);
        assert_eq!(alloc, buf);
    }

    fn random_instance_for_csr(seed: u64, n: usize) -> Instance<2> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Point<2>> = (0..n)
            .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
            .collect();
        let ws: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..5.0)).collect();
        Instance::new(pts, ws, 0.7, 4, Norm::L2).unwrap()
    }

    #[test]
    fn parallel_csr_is_byte_identical_to_serial() {
        // Force a multi-threaded pool so the parallel path actually
        // chunks (safe for concurrently-running tests: every parallel
        // consumer in this workspace is order-preserving).
        rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build_global()
            .unwrap();
        for seed in [1u64, 2, 3] {
            let inst = random_instance_for_csr(seed, 257); // not a multiple of 4
            let serial = RewardEngine::sparse(&inst);
            let mut scratch = CsrScratch::new();
            let parallel = RewardEngine::sparse_with_scratch(&inst, &mut scratch, true);
            let (so, sd, sn, sf, sw) = serial.csr_parts().unwrap();
            let (po, pd, pn, pf, pw) = parallel.csr_parts().unwrap();
            assert_eq!(so, po, "seed {seed}: offsets diverged");
            assert_eq!(sd, pd, "seed {seed}: degrees diverged");
            assert_eq!(sn, pn, "seed {seed}: neighbor indices diverged");
            let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(sf), bits(pf), "seed {seed}: frac bits diverged");
            assert_eq!(bits(sw), bits(pw), "seed {seed}: weight bits diverged");
            let (a, b) = (
                serial.sparse_stats().unwrap(),
                parallel.sparse_stats().unwrap(),
            );
            assert_eq!(a.entries, b.entries);
            assert_eq!(a.max_degree, b.max_degree);
        }
    }

    #[test]
    fn scratch_build_reuses_buffers_and_reclaims() {
        let inst = random_instance_for_csr(9, 120);
        let mut scratch = CsrScratch::new();
        let engine = RewardEngine::sparse_with_scratch(&inst, &mut scratch, false);
        let entries = engine.sparse_stats().unwrap().entries;
        // The CSR vectors were moved into the engine; only the
        // per-row sort buffer stays behind.
        assert!(scratch.retained_bytes() <= scratch.row.capacity() * 16);
        engine.reclaim(&mut scratch);
        assert!(scratch.retained_bytes() >= entries * SparseCsr::<f64>::BYTES_PER_ENTRY);
        // A rebuild through the warm scratch matches a fresh build.
        let warm = RewardEngine::sparse_with_scratch(&inst, &mut scratch, false);
        let cold = RewardEngine::sparse(&inst);
        assert_eq!(warm.csr_parts().unwrap().0, cold.csr_parts().unwrap().0);
        assert_eq!(warm.csr_parts().unwrap().1, cold.csr_parts().unwrap().1);
        assert_eq!(warm.csr_parts().unwrap().2, cold.csr_parts().unwrap().2);
        warm.reclaim(&mut scratch);
    }

    #[test]
    fn l1_norm_reward() {
        let inst = InstanceBuilder::new()
            .point([0.0, 0.0], 1.0)
            .point([0.5, 0.5], 1.0)
            .radius(1.0)
            .k(1)
            .norm(Norm::L1)
            .build()
            .unwrap();
        // L1 distance from origin to (0.5, 0.5) is 1.0: boundary, frac 0.
        let f = objective(&inst, &[Point::new([0.0, 0.0])]);
        assert!((f - 1.0).abs() < 1e-12);
    }

    /// The auto-cap estimate uses each kind's *real* per-entry cost:
    /// a cap wedged between the f32 (12 B/entry) and f64 (20 B/entry)
    /// footprints keeps `SparseF32` sparse while `Sparse` falls back
    /// to the kd-tree.
    #[test]
    fn auto_cap_uses_f32_footprint_for_sparse_f32() {
        let mut b = InstanceBuilder::new();
        for i in 0..64 {
            b = b.point([(i % 8) as f64, (i / 8) as f64], 1.0);
        }
        let inst = b.radius(1.5).k(4).build().unwrap();
        let est64 = RewardEngine::estimated_sparse_bytes(&inst, EngineKind::Sparse).unwrap();
        let est32 = RewardEngine::estimated_sparse_bytes(&inst, EngineKind::SparseF32).unwrap();
        assert!(
            est32 < est64,
            "f32 estimate {est32} !< f64 estimate {est64}"
        );
        // exact per-entry ratio: 4 + 2*BYTES (index u32 + frac + weight)
        assert_eq!(SparseCsr::<f64>::BYTES_PER_ENTRY, 20);
        assert_eq!(SparseCsr::<f32>::BYTES_PER_ENTRY, 12);
        let cap = (est32 + est64) / 2;
        let e64 = RewardEngine::auto_with_cap_kind(&inst, cap, EngineKind::Sparse);
        let e32 = RewardEngine::auto_with_cap_kind(&inst, cap, EngineKind::SparseF32);
        assert_eq!(e64.kind(), EngineKind::Kd, "f64 over cap must fall to kd");
        assert_eq!(
            e32.kind(),
            EngineKind::SparseF32,
            "f32 fits under the same cap"
        );
        // Same cap, generous: both stay sparse in their own scalar.
        let e64 = RewardEngine::auto_with_cap_kind(&inst, est64 + 1, EngineKind::Sparse);
        assert_eq!(e64.kind(), EngineKind::Sparse);
    }
}
