//! Budgeted, interruptible solving.
//!
//! The paper's system model re-solves the center-selection problem
//! every broadcast period; in a deployed base station that re-solve has
//! a hard deadline (the next slot). [`SolveBudget`] bounds a solve by
//! wall-clock time and/or by objective evaluations (the oracle's shared
//! eval counter), and [`SolveOutcome`] reports whether the solver ran
//! to completion or degraded to its best-so-far prefix.
//!
//! The contract every budgeted solver upholds:
//!
//! * the budget is checked at least once per round (and inside the
//!   expensive inner loops of the enumeration solvers), so overshoot is
//!   bounded by one round of work;
//! * on a trip the solver returns the centers committed so far — for
//!   the greedy family this is a *prefix* of the unbudgeted selection,
//!   so by monotonicity its objective value never exceeds the
//!   unbudgeted value;
//! * an already-exhausted budget (zero deadline or zero evals) yields
//!   `Degraded` with an empty center set, never a panic.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::cancel::CancelToken;
use crate::solver::Solution;

/// Resource limits for one solve. The default is unlimited.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SolveBudget {
    deadline: Option<Duration>,
    max_evals: Option<u64>,
    cancel: Option<CancelToken>,
}

impl SolveBudget {
    /// No limits: budgeted solving behaves exactly like `solve`.
    pub fn unlimited() -> Self {
        SolveBudget::default()
    }

    /// Caps wall-clock time, measured from [`SolveBudget::start`].
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps wall-clock time in milliseconds.
    pub fn with_deadline_ms(self, ms: u64) -> Self {
        self.with_deadline(Duration::from_millis(ms))
    }

    /// Caps objective evaluations (the oracle's shared eval counter).
    pub fn with_max_evals(mut self, max_evals: u64) -> Self {
        self.max_evals = Some(max_evals);
        self
    }

    /// Attaches a cancellation token: tripping any clone of the token
    /// degrades the solve to its committed prefix at the next
    /// eval-check (see [`CancelToken`]).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The configured evaluation cap, if any.
    pub fn max_evals(&self) -> Option<u64> {
        self.max_evals
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// True when the attached token (if any) has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|t| t.is_cancelled())
    }

    /// True when neither limit is set and no token is attached.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_evals.is_none() && self.cancel.is_none()
    }

    /// Starts the wall clock for this budget.
    pub fn start(&self) -> BudgetClock {
        BudgetClock {
            started: Instant::now(),
            budget: self.clone(),
        }
    }
}

/// A started [`SolveBudget`]: limits plus the instant the solve began.
#[derive(Debug, Clone)]
pub struct BudgetClock {
    started: Instant,
    budget: SolveBudget,
}

impl BudgetClock {
    /// A clock that never trips.
    pub fn unlimited() -> Self {
        SolveBudget::unlimited().start()
    }

    /// Checks the budget against `evals` spent so far. Returns the
    /// reason when a limit is reached. Cancellation is checked first
    /// (a dead client outranks resource accounting), then the eval cap
    /// trips at `evals >= max`, so a zero-eval budget is exhausted
    /// immediately — even for solvers whose argmax charges nothing.
    pub fn check(&self, evals: u64) -> Option<DegradeReason> {
        if self.budget.is_cancelled() {
            return Some(DegradeReason::Cancelled);
        }
        if let Some(max) = self.budget.max_evals {
            if evals >= max {
                return Some(DegradeReason::EvalsExhausted { evals, max });
            }
        }
        if let Some(deadline) = self.budget.deadline {
            if self.started.elapsed() >= deadline {
                return Some(DegradeReason::DeadlineExceeded {
                    deadline_ms: deadline.as_millis() as u64,
                });
            }
        }
        None
    }

    /// True when [`BudgetClock::check`] would report a trip.
    pub fn exceeded(&self, evals: u64) -> bool {
        self.check(evals).is_some()
    }

    /// True when the budget's cancellation token has been tripped.
    /// A plain (uncounted) read: the round loops use this to discard
    /// a round whose argmax raced the trip.
    pub fn cancelled(&self) -> bool {
        self.budget.is_cancelled()
    }

    /// The budget left after spending `evals`: the remaining wall-clock
    /// window and eval headroom, saturating at zero. Used by the
    /// degradation ladder to hand each rung what the previous rungs
    /// left over.
    pub fn remaining(&self, evals: u64) -> SolveBudget {
        SolveBudget {
            deadline: self
                .budget
                .deadline
                .map(|d| d.saturating_sub(self.started.elapsed())),
            max_evals: self.budget.max_evals.map(|m| m.saturating_sub(evals)),
            cancel: self.budget.cancel.clone(),
        }
    }
}

/// Why a budgeted solve stopped short of completion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradeReason {
    /// The wall-clock deadline passed.
    DeadlineExceeded {
        /// The deadline that tripped, in milliseconds.
        deadline_ms: u64,
    },
    /// The objective-evaluation cap was reached.
    EvalsExhausted {
        /// Evaluations spent when the cap tripped.
        evals: u64,
        /// The configured cap.
        max: u64,
    },
    /// The solve's [`CancelToken`] was tripped (client disconnect,
    /// shed queue, write failure); the prefix committed before the
    /// trip is returned.
    Cancelled,
    /// A ladder rung panicked and was isolated by `catch_unwind`.
    RungPanicked {
        /// Name of the rung that panicked.
        rung: String,
    },
    /// A ladder rung returned a typed error.
    RungFailed {
        /// Name of the rung that failed.
        rung: String,
        /// The error it reported.
        error: String,
    },
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradeReason::DeadlineExceeded { deadline_ms } => {
                write!(f, "deadline of {deadline_ms} ms exceeded")
            }
            DegradeReason::EvalsExhausted { evals, max } => {
                write!(f, "evaluation budget exhausted ({evals} of {max})")
            }
            DegradeReason::Cancelled => write!(f, "solve cancelled"),
            DegradeReason::RungPanicked { rung } => write!(f, "rung `{rung}` panicked"),
            DegradeReason::RungFailed { rung, error } => {
                write!(f, "rung `{rung}` failed: {error}")
            }
        }
    }
}

/// Whether a budgeted solve ran to completion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SolveStatus {
    /// The solver finished its full selection within budget.
    Completed,
    /// The budget tripped (or a rung failed); the attached solution
    /// holds the best-so-far centers.
    Degraded {
        /// Why the solve stopped short.
        reason: DegradeReason,
    },
}

impl SolveStatus {
    /// True for [`SolveStatus::Completed`].
    pub fn is_complete(&self) -> bool {
        matches!(self, SolveStatus::Completed)
    }
}

/// The result of a budgeted solve: the (possibly partial) solution plus
/// whether it completed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveOutcome<const D: usize> {
    /// The selected centers with per-round bookkeeping. When degraded,
    /// a valid best-so-far set (possibly empty).
    pub solution: Solution<D>,
    /// Completion status.
    pub status: SolveStatus,
}

impl<const D: usize> SolveOutcome<D> {
    /// Wraps a fully-solved solution.
    pub fn completed(solution: Solution<D>) -> Self {
        SolveOutcome {
            solution,
            status: SolveStatus::Completed,
        }
    }

    /// Wraps a best-so-far solution with the reason it stopped.
    pub fn degraded(solution: Solution<D>, reason: DegradeReason) -> Self {
        SolveOutcome {
            solution,
            status: SolveStatus::Degraded { reason },
        }
    }

    /// The selected centers.
    pub fn centers(&self) -> &[mmph_geom::Point<D>] {
        &self.solution.centers
    }

    /// Objective value of the selection (`f(centers)`).
    pub fn value(&self) -> f64 {
        self.solution.total_reward
    }

    /// True when the solve finished within budget.
    pub fn is_complete(&self) -> bool {
        self.status.is_complete()
    }

    /// Unwraps into the inner solution, discarding the status.
    pub fn into_solution(self) -> Solution<D> {
        self.solution
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let clock = BudgetClock::unlimited();
        assert!(clock.check(0).is_none());
        assert!(clock.check(u64::MAX).is_none());
    }

    #[test]
    fn zero_eval_budget_trips_immediately() {
        let clock = SolveBudget::unlimited().with_max_evals(0).start();
        assert!(matches!(
            clock.check(0),
            Some(DegradeReason::EvalsExhausted { .. })
        ));
    }

    #[test]
    fn eval_cap_trips_at_or_above_max() {
        let clock = SolveBudget::unlimited().with_max_evals(10).start();
        assert!(clock.check(9).is_none());
        assert!(clock.exceeded(10));
        assert!(clock.exceeded(11));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let clock = SolveBudget::unlimited()
            .with_deadline(Duration::ZERO)
            .start();
        assert!(matches!(
            clock.check(0),
            Some(DegradeReason::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let clock = SolveBudget::unlimited()
            .with_deadline(Duration::from_secs(3600))
            .start();
        assert!(clock.check(0).is_none());
    }

    #[test]
    fn remaining_saturates() {
        let clock = SolveBudget::unlimited().with_max_evals(5).start();
        assert_eq!(clock.remaining(3).max_evals(), Some(2));
        assert_eq!(clock.remaining(9).max_evals(), Some(0));
        assert_eq!(clock.remaining(9).deadline(), None);
    }

    #[test]
    fn eval_cap_checked_before_deadline() {
        // Both exhausted: the eval reason wins, deterministically.
        let clock = SolveBudget::unlimited()
            .with_max_evals(0)
            .with_deadline(Duration::ZERO)
            .start();
        assert!(matches!(
            clock.check(0),
            Some(DegradeReason::EvalsExhausted { .. })
        ));
    }

    #[test]
    fn cancelled_token_outranks_other_trips() {
        let token = CancelToken::new();
        let clock = SolveBudget::unlimited()
            .with_max_evals(0)
            .with_cancel(token.clone())
            .start();
        // Untripped token: the eval cap still reports first.
        assert!(matches!(
            clock.check(0),
            Some(DegradeReason::EvalsExhausted { .. })
        ));
        assert!(!clock.cancelled());
        token.cancel();
        assert!(clock.cancelled());
        assert!(matches!(clock.check(0), Some(DegradeReason::Cancelled)));
    }

    #[test]
    fn remaining_carries_the_token() {
        let token = CancelToken::new();
        let clock = SolveBudget::unlimited()
            .with_max_evals(5)
            .with_cancel(token.clone())
            .start();
        let rest = clock.remaining(3);
        assert_eq!(rest.cancel_token(), Some(&token));
        token.cancel();
        assert!(rest.is_cancelled());
    }

    #[test]
    fn budget_with_token_is_not_unlimited() {
        let b = SolveBudget::unlimited().with_cancel(CancelToken::new());
        assert!(!b.is_unlimited());
        assert!(!b.is_cancelled());
    }

    #[test]
    fn reasons_display() {
        let r = DegradeReason::DeadlineExceeded { deadline_ms: 50 };
        assert!(r.to_string().contains("50 ms"));
        let r = DegradeReason::EvalsExhausted { evals: 7, max: 5 };
        assert!(r.to_string().contains("7 of 5"));
        let r = DegradeReason::RungPanicked {
            rung: "greedy4".into(),
        };
        assert!(r.to_string().contains("greedy4"));
    }

    #[test]
    fn outcome_accessors() {
        let sol = Solution::<2> {
            solver: "s".into(),
            centers: vec![],
            round_gains: vec![],
            total_reward: 0.0,
            evals: 0,
            assignments: None,
        };
        let done = SolveOutcome::completed(sol.clone());
        assert!(done.is_complete());
        assert_eq!(done.value(), 0.0);
        let deg = SolveOutcome::degraded(sol, DegradeReason::EvalsExhausted { evals: 0, max: 0 });
        assert!(!deg.is_complete());
        assert!(deg.centers().is_empty());
    }
}
