//! Budgeted, interruptible solving.
//!
//! The paper's system model re-solves the center-selection problem
//! every broadcast period; in a deployed base station that re-solve has
//! a hard deadline (the next slot). [`SolveBudget`] bounds a solve by
//! wall-clock time and/or by objective evaluations (the oracle's shared
//! eval counter), and [`SolveOutcome`] reports whether the solver ran
//! to completion or degraded to its best-so-far prefix.
//!
//! The contract every budgeted solver upholds:
//!
//! * the budget is checked at least once per round (and inside the
//!   expensive inner loops of the enumeration solvers), so overshoot is
//!   bounded by one round of work;
//! * on a trip the solver returns the centers committed so far — for
//!   the greedy family this is a *prefix* of the unbudgeted selection,
//!   so by monotonicity its objective value never exceeds the
//!   unbudgeted value;
//! * an already-exhausted budget (zero deadline or zero evals) yields
//!   `Degraded` with an empty center set, never a panic.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::solver::Solution;

/// Resource limits for one solve. The default is unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveBudget {
    deadline: Option<Duration>,
    max_evals: Option<u64>,
}

impl SolveBudget {
    /// No limits: budgeted solving behaves exactly like `solve`.
    pub fn unlimited() -> Self {
        SolveBudget::default()
    }

    /// Caps wall-clock time, measured from [`SolveBudget::start`].
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps wall-clock time in milliseconds.
    pub fn with_deadline_ms(self, ms: u64) -> Self {
        self.with_deadline(Duration::from_millis(ms))
    }

    /// Caps objective evaluations (the oracle's shared eval counter).
    pub fn with_max_evals(mut self, max_evals: u64) -> Self {
        self.max_evals = Some(max_evals);
        self
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The configured evaluation cap, if any.
    pub fn max_evals(&self) -> Option<u64> {
        self.max_evals
    }

    /// True when neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_evals.is_none()
    }

    /// Starts the wall clock for this budget.
    pub fn start(&self) -> BudgetClock {
        BudgetClock {
            started: Instant::now(),
            budget: *self,
        }
    }
}

/// A started [`SolveBudget`]: limits plus the instant the solve began.
#[derive(Debug, Clone, Copy)]
pub struct BudgetClock {
    started: Instant,
    budget: SolveBudget,
}

impl BudgetClock {
    /// A clock that never trips.
    pub fn unlimited() -> Self {
        SolveBudget::unlimited().start()
    }

    /// Checks the budget against `evals` spent so far. Returns the
    /// reason when a limit is reached. The eval cap trips at
    /// `evals >= max`, so a zero-eval budget is exhausted immediately —
    /// even for solvers whose argmax charges nothing.
    pub fn check(&self, evals: u64) -> Option<DegradeReason> {
        if let Some(max) = self.budget.max_evals {
            if evals >= max {
                return Some(DegradeReason::EvalsExhausted { evals, max });
            }
        }
        if let Some(deadline) = self.budget.deadline {
            if self.started.elapsed() >= deadline {
                return Some(DegradeReason::DeadlineExceeded {
                    deadline_ms: deadline.as_millis() as u64,
                });
            }
        }
        None
    }

    /// True when [`BudgetClock::check`] would report a trip.
    pub fn exceeded(&self, evals: u64) -> bool {
        self.check(evals).is_some()
    }

    /// The budget left after spending `evals`: the remaining wall-clock
    /// window and eval headroom, saturating at zero. Used by the
    /// degradation ladder to hand each rung what the previous rungs
    /// left over.
    pub fn remaining(&self, evals: u64) -> SolveBudget {
        SolveBudget {
            deadline: self
                .budget
                .deadline
                .map(|d| d.saturating_sub(self.started.elapsed())),
            max_evals: self.budget.max_evals.map(|m| m.saturating_sub(evals)),
        }
    }
}

/// Why a budgeted solve stopped short of completion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradeReason {
    /// The wall-clock deadline passed.
    DeadlineExceeded {
        /// The deadline that tripped, in milliseconds.
        deadline_ms: u64,
    },
    /// The objective-evaluation cap was reached.
    EvalsExhausted {
        /// Evaluations spent when the cap tripped.
        evals: u64,
        /// The configured cap.
        max: u64,
    },
    /// A ladder rung panicked and was isolated by `catch_unwind`.
    RungPanicked {
        /// Name of the rung that panicked.
        rung: String,
    },
    /// A ladder rung returned a typed error.
    RungFailed {
        /// Name of the rung that failed.
        rung: String,
        /// The error it reported.
        error: String,
    },
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradeReason::DeadlineExceeded { deadline_ms } => {
                write!(f, "deadline of {deadline_ms} ms exceeded")
            }
            DegradeReason::EvalsExhausted { evals, max } => {
                write!(f, "evaluation budget exhausted ({evals} of {max})")
            }
            DegradeReason::RungPanicked { rung } => write!(f, "rung `{rung}` panicked"),
            DegradeReason::RungFailed { rung, error } => {
                write!(f, "rung `{rung}` failed: {error}")
            }
        }
    }
}

/// Whether a budgeted solve ran to completion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SolveStatus {
    /// The solver finished its full selection within budget.
    Completed,
    /// The budget tripped (or a rung failed); the attached solution
    /// holds the best-so-far centers.
    Degraded {
        /// Why the solve stopped short.
        reason: DegradeReason,
    },
}

impl SolveStatus {
    /// True for [`SolveStatus::Completed`].
    pub fn is_complete(&self) -> bool {
        matches!(self, SolveStatus::Completed)
    }
}

/// The result of a budgeted solve: the (possibly partial) solution plus
/// whether it completed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveOutcome<const D: usize> {
    /// The selected centers with per-round bookkeeping. When degraded,
    /// a valid best-so-far set (possibly empty).
    pub solution: Solution<D>,
    /// Completion status.
    pub status: SolveStatus,
}

impl<const D: usize> SolveOutcome<D> {
    /// Wraps a fully-solved solution.
    pub fn completed(solution: Solution<D>) -> Self {
        SolveOutcome {
            solution,
            status: SolveStatus::Completed,
        }
    }

    /// Wraps a best-so-far solution with the reason it stopped.
    pub fn degraded(solution: Solution<D>, reason: DegradeReason) -> Self {
        SolveOutcome {
            solution,
            status: SolveStatus::Degraded { reason },
        }
    }

    /// The selected centers.
    pub fn centers(&self) -> &[mmph_geom::Point<D>] {
        &self.solution.centers
    }

    /// Objective value of the selection (`f(centers)`).
    pub fn value(&self) -> f64 {
        self.solution.total_reward
    }

    /// True when the solve finished within budget.
    pub fn is_complete(&self) -> bool {
        self.status.is_complete()
    }

    /// Unwraps into the inner solution, discarding the status.
    pub fn into_solution(self) -> Solution<D> {
        self.solution
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let clock = BudgetClock::unlimited();
        assert!(clock.check(0).is_none());
        assert!(clock.check(u64::MAX).is_none());
    }

    #[test]
    fn zero_eval_budget_trips_immediately() {
        let clock = SolveBudget::unlimited().with_max_evals(0).start();
        assert!(matches!(
            clock.check(0),
            Some(DegradeReason::EvalsExhausted { .. })
        ));
    }

    #[test]
    fn eval_cap_trips_at_or_above_max() {
        let clock = SolveBudget::unlimited().with_max_evals(10).start();
        assert!(clock.check(9).is_none());
        assert!(clock.exceeded(10));
        assert!(clock.exceeded(11));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let clock = SolveBudget::unlimited()
            .with_deadline(Duration::ZERO)
            .start();
        assert!(matches!(
            clock.check(0),
            Some(DegradeReason::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let clock = SolveBudget::unlimited()
            .with_deadline(Duration::from_secs(3600))
            .start();
        assert!(clock.check(0).is_none());
    }

    #[test]
    fn remaining_saturates() {
        let clock = SolveBudget::unlimited().with_max_evals(5).start();
        assert_eq!(clock.remaining(3).max_evals(), Some(2));
        assert_eq!(clock.remaining(9).max_evals(), Some(0));
        assert_eq!(clock.remaining(9).deadline(), None);
    }

    #[test]
    fn eval_cap_checked_before_deadline() {
        // Both exhausted: the eval reason wins, deterministically.
        let clock = SolveBudget::unlimited()
            .with_max_evals(0)
            .with_deadline(Duration::ZERO)
            .start();
        assert!(matches!(
            clock.check(0),
            Some(DegradeReason::EvalsExhausted { .. })
        ));
    }

    #[test]
    fn reasons_display() {
        let r = DegradeReason::DeadlineExceeded { deadline_ms: 50 };
        assert!(r.to_string().contains("50 ms"));
        let r = DegradeReason::EvalsExhausted { evals: 7, max: 5 };
        assert!(r.to_string().contains("7 of 5"));
        let r = DegradeReason::RungPanicked {
            rung: "greedy4".into(),
        };
        assert!(r.to_string().contains("greedy4"));
    }

    #[test]
    fn outcome_accessors() {
        let sol = Solution::<2> {
            solver: "s".into(),
            centers: vec![],
            round_gains: vec![],
            total_reward: 0.0,
            evals: 0,
            assignments: None,
        };
        let done = SolveOutcome::completed(sol.clone());
        assert!(done.is_complete());
        assert_eq!(done.value(), 0.0);
        let deg = SolveOutcome::degraded(sol, DegradeReason::EvalsExhausted { evals: 0, max: 0 });
        assert!(!deg.is_complete());
        assert!(deg.centers().is_empty());
    }
}
