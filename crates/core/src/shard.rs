//! GreeDi-style shard-then-merge solving.
//!
//! The second large-n path: partition the point set spatially into `S`
//! shards, run the full greedy independently inside each shard (each
//! shard's CSR is ~`1/S` of the full footprint, so shards fit the
//! engine cap where the whole instance does not), then run one final
//! greedy over the union of the `S·k` shard candidates scored against
//! the *full-resolution* residuals. This is the two-round GreeDi
//! scheme: for the paper's coverage objective the merged selection
//! keeps a constant-factor guarantee, and in geometric instances the
//! shard optima are near-local so the realized quality tracks the
//! direct greedy closely.
//!
//! Determinism: shards are solved independently (their own engine,
//! oracle, and [`SolveScratch`] arena) and their results are collected
//! in shard order, so the merged selection is bit-identical whether
//! the shard sweep runs serially or under rayon with any thread count.
//! The per-shard budgets are equal slices of the caller's
//! [`SolveBudget`] sharing one [`CancelToken`] clone, so the overload
//! semantics (deadline propagation, cancellation mid-solve) survive
//! sharding unchanged.

use std::time::Instant;

use mmph_geom::Point;
use rayon::prelude::*;

use crate::budget::{DegradeReason, SolveBudget};
use crate::instance::Instance;
use crate::oracle::{GainOracle, OracleStrategy};
use crate::reward::{spatial_order, EngineKind, Residuals, RewardEngine, DEFAULT_SPARSE_CAP_BYTES};
use crate::scratch::SolveScratch;
use crate::{CoreError, Result};

/// Default shard count when the caller does not name one.
pub const DEFAULT_SHARDS: usize = 8;

/// Configuration for [`solve_sharded`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of spatial shards (clamped to `1..=n`).
    pub shards: usize,
    /// Engine kind for the per-shard solves. `Auto` (default) picks
    /// the capped sparse engine per shard.
    pub engine: EngineKind,
    /// Oracle strategy for the per-shard solves.
    pub strategy: OracleStrategy,
    /// Total budget; sliced evenly across the shards plus the merge,
    /// all sharing the caller's cancellation token.
    pub budget: SolveBudget,
    /// Sparse-CSR byte cap for the per-shard engine auto selection.
    pub cap_bytes: usize,
    /// Run the shard sweep under rayon (`true`) or serially (`false`).
    /// Both orders produce bit-identical selections.
    pub parallel: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: DEFAULT_SHARDS,
            engine: EngineKind::Auto,
            strategy: OracleStrategy::Lazy,
            budget: SolveBudget::unlimited(),
            cap_bytes: DEFAULT_SPARSE_CAP_BYTES,
            parallel: true,
        }
    }
}

/// Report of one shard-then-merge solve.
#[derive(Debug, Clone)]
pub struct ShardReport<const D: usize> {
    /// Shard count actually used (after clamping).
    pub shards: usize,
    /// Points per shard.
    pub shard_sizes: Vec<usize>,
    /// Size of the merged candidate union (≤ `S·k`).
    pub candidates: usize,
    /// Final selection as indices into the *full* instance.
    pub selection: Vec<usize>,
    /// Final selected centers.
    pub centers: Vec<Point<D>>,
    /// Full-resolution objective of the merged selection, telescoped
    /// through exact dense residual updates.
    pub objective: f64,
    /// First budget trip observed (shards in order, then the merge);
    /// the selection is the prefix committed before the trip.
    pub degraded: Option<DegradeReason>,
    /// Wall-clock of the shard sweep.
    pub shard_ms: f64,
    /// Wall-clock of the merge greedy.
    pub merge_ms: f64,
}

/// One slice of the total budget: `1/(shards+1)` of the deadline and
/// eval cap (the merge takes the extra slice), sharing the same token.
fn slice_budget(total: &SolveBudget, slices: u64) -> SolveBudget {
    let mut b = SolveBudget::unlimited();
    if let Some(d) = total.deadline() {
        b = b.with_deadline(d / slices as u32);
    }
    if let Some(m) = total.max_evals() {
        b = b.with_max_evals(m / slices);
    }
    if let Some(token) = total.cancel_token() {
        b = b.with_cancel(token.clone());
    }
    b
}

/// Greedy inside one shard; returns local picks plus any budget trip.
fn solve_shard<const D: usize>(
    sub: &Instance<D>,
    cfg: &ShardConfig,
    budget: &SolveBudget,
) -> (Vec<usize>, Option<DegradeReason>) {
    let engine = match cfg.engine {
        EngineKind::Auto => {
            RewardEngine::auto_with_cap_kind(sub, cfg.cap_bytes, EngineKind::Sparse)
        }
        kind => RewardEngine::with_kind(sub, kind),
    };
    let mut oracle = GainOracle::from_engine(engine, cfg.strategy);
    if let Some(token) = budget.cancel_token() {
        oracle.set_cancel(Some(token.clone()));
    }
    let mut scratch = SolveScratch::with_capacity(sub.n(), sub.k());
    let clock = budget.start();
    let (_, degraded) = crate::batch::solve_rounds_within(&oracle, &mut scratch, &clock);
    (scratch.picks().to_vec(), degraded)
}

/// Solves `inst` through the shard-then-merge path.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] when `shards == 0`.
pub fn solve_sharded<const D: usize>(
    inst: &Instance<D>,
    cfg: &ShardConfig,
) -> Result<ShardReport<D>> {
    if cfg.shards == 0 {
        return Err(CoreError::InvalidConfig("shard count must be >= 1".into()));
    }
    let n = inst.n();
    let shards = cfg.shards.min(n);
    let slices = shards as u64 + 1;
    let shard_budget = slice_budget(&cfg.budget, slices);
    let merge_budget = slice_budget(&cfg.budget, slices);

    // Spatial partition: grid-cell order (the CSR's storage order)
    // split into contiguous runs, so each shard is a compact region
    // and the partition is deterministic.
    let mut order = Vec::new();
    spatial_order(inst.points(), inst.radius(), &mut order);
    let per = n.div_ceil(shards);
    let mut subs: Vec<(Instance<D>, Vec<u32>)> = Vec::with_capacity(shards);
    for chunk in order.chunks(per) {
        let pts: Vec<Point<D>> = chunk.iter().map(|&i| *inst.point(i as usize)).collect();
        let ws: Vec<f64> = chunk.iter().map(|&i| inst.weight(i as usize)).collect();
        let k = inst.k().min(pts.len());
        let sub =
            Instance::new(pts, ws, inst.radius(), k, inst.norm())?.with_kernel(inst.kernel())?;
        subs.push((sub, chunk.to_vec()));
    }

    let t0 = Instant::now();
    let results: Vec<(Vec<usize>, Option<DegradeReason>)> = if cfg.parallel {
        subs.par_iter()
            .map(|(sub, _)| solve_shard(sub, cfg, &shard_budget))
            .collect()
    } else {
        subs.iter()
            .map(|(sub, _)| solve_shard(sub, cfg, &shard_budget))
            .collect()
    };
    let shard_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut degraded: Option<DegradeReason> = None;
    let mut candidates: Vec<usize> = Vec::with_capacity(shards * inst.k());
    for ((picks, trip), (_, ids)) in results.iter().zip(&subs) {
        if degraded.is_none() {
            degraded = trip.clone();
        }
        for &local in picks {
            candidates.push(ids[local] as usize);
        }
    }

    // Merge greedy: score the union candidates against full-resolution
    // residuals. The kd engine needs no CSR, so the merge never busts
    // the cap regardless of n.
    let t1 = Instant::now();
    let merge_kind = match cfg.engine {
        EngineKind::Auto => EngineKind::Kd,
        kind => kind,
    };
    let mut oracle = GainOracle::with_engine(inst, merge_kind, OracleStrategy::Seq);
    if let Some(token) = merge_budget.cancel_token() {
        oracle.set_cancel(Some(token.clone()));
    }
    let clock = merge_budget.start();
    let mut residuals = Residuals::new(n);
    let mut pool = candidates.clone();
    let mut selection = Vec::with_capacity(inst.k());
    let mut objective = 0.0;
    while selection.len() < inst.k() && !pool.is_empty() {
        let scored = oracle.best_among(&pool, &residuals);
        if let Some(reason) = clock.check(oracle.evals()) {
            // Discard the in-flight argmax, keep the committed prefix.
            if degraded.is_none() {
                degraded = Some(reason);
            }
            break;
        }
        if scored.gain <= 0.0 {
            break;
        }
        objective += residuals.apply(inst, inst.point(scored.index));
        selection.push(scored.index);
        pool.retain(|&c| c != scored.index);
    }
    let merge_ms = t1.elapsed().as_secs_f64() * 1e3;

    let centers = selection.iter().map(|&i| *inst.point(i)).collect();
    Ok(ShardReport {
        shards,
        shard_sizes: subs.iter().map(|(sub, _)| sub.n()).collect(),
        candidates: candidates.len(),
        selection,
        centers,
        objective,
        degraded,
        shard_ms,
        merge_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::solve_rounds;
    use mmph_geom::Norm;

    fn cluster_instance(clusters: usize, per: usize, k: usize) -> Instance<2> {
        let mut points = Vec::new();
        let mut weights = Vec::new();
        for c in 0..clusters {
            let cx = (c % 4) as f64 * 10.0;
            let cy = (c / 4) as f64 * 10.0;
            for i in 0..per {
                let dx = (i % 5) as f64 * 0.3;
                let dy = (i / 5) as f64 * 0.3;
                points.push(Point([cx + dx, cy + dy]));
                weights.push(1.0 + ((c + i) % 3) as f64);
            }
        }
        Instance::new(points, weights, 1.5, k, Norm::L2).unwrap()
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let inst = cluster_instance(6, 20, 4);
        for shards in [1, 2, 3, 5, 8] {
            let base = ShardConfig {
                shards,
                parallel: false,
                ..ShardConfig::default()
            };
            let serial = solve_sharded(&inst, &base).unwrap();
            let par = solve_sharded(
                &inst,
                &ShardConfig {
                    parallel: true,
                    ..base
                },
            )
            .unwrap();
            assert_eq!(serial.selection, par.selection, "shards={shards}");
            assert_eq!(
                serial.objective.to_bits(),
                par.objective.to_bits(),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn single_shard_matches_direct_greedy() {
        let inst = cluster_instance(4, 15, 3);
        let report = solve_sharded(
            &inst,
            &ShardConfig {
                shards: 1,
                ..ShardConfig::default()
            },
        )
        .unwrap();
        let oracle = GainOracle::with_engine(&inst, EngineKind::Sparse, OracleStrategy::Lazy);
        let mut scratch = SolveScratch::with_capacity(inst.n(), inst.k());
        let direct = solve_rounds(&oracle, &mut scratch);
        // One shard proposes the direct greedy's own picks; the merge
        // re-selects from them, so the objective matches.
        assert!(
            (report.objective - direct).abs() < 1e-9,
            "sharded {} vs direct {}",
            report.objective,
            direct
        );
        assert_eq!(report.selection.len(), inst.k());
    }

    #[test]
    fn sharded_quality_tracks_direct() {
        let inst = cluster_instance(8, 25, 6);
        let report = solve_sharded(&inst, &ShardConfig::default()).unwrap();
        let oracle = GainOracle::with_engine(&inst, EngineKind::Sparse, OracleStrategy::Lazy);
        let mut scratch = SolveScratch::with_capacity(inst.n(), inst.k());
        let direct = solve_rounds(&oracle, &mut scratch);
        assert!(
            report.objective >= 0.5 * direct,
            "sharded {} below half of direct {}",
            report.objective,
            direct
        );
    }

    #[test]
    fn cancellation_degrades_to_prefix() {
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        let inst = cluster_instance(4, 15, 3);
        let report = solve_sharded(
            &inst,
            &ShardConfig {
                budget: SolveBudget::unlimited().with_cancel(token),
                ..ShardConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.degraded, Some(DegradeReason::Cancelled));
        assert!(report.selection.is_empty());
    }

    #[test]
    fn eval_slices_cap_total_work() {
        let inst = cluster_instance(4, 15, 3);
        let report = solve_sharded(
            &inst,
            &ShardConfig {
                shards: 2,
                budget: SolveBudget::unlimited().with_max_evals(3),
                ..ShardConfig::default()
            },
        )
        .unwrap();
        // 3 evals over 3 slices = 1 eval each: every stage trips.
        assert!(report.degraded.is_some());
    }

    #[test]
    fn zero_shards_rejected() {
        let inst = cluster_instance(2, 10, 2);
        assert!(solve_sharded(
            &inst,
            &ShardConfig {
                shards: 0,
                ..ShardConfig::default()
            }
        )
        .is_err());
    }
}
