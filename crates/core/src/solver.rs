//! The [`Solver`] trait and [`Solution`] type shared by all algorithms.

use mmph_geom::Point;
use serde::{Deserialize, Serialize};

use crate::instance::Instance;
use crate::oracle::GainOracle;
use crate::reward::{objective, Residuals};
use crate::Result;

/// A solver for the optimal content distribution problem: selects
/// `inst.k()` broadcast centers.
pub trait Solver<const D: usize> {
    /// Short identifier (e.g. `"greedy3"`), used in experiment tables.
    fn name(&self) -> &'static str;

    /// Solves the instance, returning the selected centers with
    /// per-round bookkeeping.
    fn solve(&self, inst: &Instance<D>) -> Result<Solution<D>>;
}

/// The output of a solve: centers in selection order plus per-round
/// gains, whose sum equals `f(centers)` exactly (see
/// [`crate::reward::Residuals`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution<const D: usize> {
    /// Name of the solver that produced this solution.
    pub solver: String,
    /// Selected centers, in round order.
    pub centers: Vec<Point<D>>,
    /// Coverage reward gained in each round (the paper's `g(j)`;
    /// Table I reports exactly these numbers).
    pub round_gains: Vec<f64>,
    /// Total reward `Σ_j g(j) = f(centers)`.
    pub total_reward: f64,
    /// Number of coverage-reward evaluations performed (work metric for
    /// the CELF ablation).
    pub evals: u64,
    /// Per-round assignment vectors `z_i^j` when tracing was enabled.
    pub assignments: Option<Vec<Vec<f64>>>,
}

impl<const D: usize> Solution<D> {
    /// Recomputes `f(centers)` from scratch and asserts it matches the
    /// telescoped `total_reward`. Used in tests and debug assertions.
    pub fn verify_consistency(&self, inst: &Instance<D>) -> bool {
        let f = objective(inst, &self.centers);
        (f - self.total_reward).abs() <= 1e-9 * (1.0 + f.abs())
    }

    /// The cumulative reward after each round (`f(j)` in the paper's
    /// Theorem proofs).
    pub fn cumulative_gains(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.round_gains
            .iter()
            .map(|g| {
                acc += g;
                acc
            })
            .collect()
    }
}

/// Runs the shared round loop of Algorithms 1–4: `k` rounds, each round
/// asking `pick` for a center given the oracle and current residuals,
/// then committing it. Returns the assembled [`Solution`].
///
/// `pick` receives the 0-based round number; tie-breaking and candidate
/// policy live entirely inside it, which is the only place the four
/// algorithms differ.
pub(crate) fn run_rounds<const D: usize>(
    name: &str,
    inst: &Instance<D>,
    oracle: &GainOracle<'_, D>,
    trace: bool,
    mut pick: impl FnMut(&GainOracle<'_, D>, &Residuals, usize) -> Point<D>,
) -> Solution<D> {
    let mut residuals = Residuals::new(inst.n());
    let mut centers = Vec::with_capacity(inst.k());
    let mut round_gains = Vec::with_capacity(inst.k());
    let mut assignments = trace.then(Vec::new);
    for round in 0..inst.k() {
        let c = pick(oracle, &residuals, round);
        if let Some(tr) = assignments.as_mut() {
            tr.push(residuals.assignments(inst, &c));
        }
        let gain = residuals.apply(inst, &c);
        centers.push(c);
        round_gains.push(gain);
    }
    let total_reward = round_gains.iter().sum();
    Solution {
        solver: name.to_owned(),
        centers,
        round_gains,
        total_reward,
        evals: oracle.evals(),
        assignments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    fn inst() -> Instance<2> {
        InstanceBuilder::new()
            .point([0.0, 0.0], 1.0)
            .point([2.0, 0.0], 2.0)
            .radius(1.0)
            .k(2)
            .build()
            .unwrap()
    }

    #[test]
    fn run_rounds_assembles_solution() {
        let inst = inst();
        let oracle = GainOracle::new(&inst, crate::oracle::OracleStrategy::Seq);
        let sol = run_rounds("test", &inst, &oracle, true, |_, _, round| {
            *inst.point(round)
        });
        assert_eq!(sol.solver, "test");
        assert_eq!(sol.centers.len(), 2);
        assert_eq!(sol.round_gains, vec![1.0, 2.0]);
        assert_eq!(sol.total_reward, 3.0);
        assert!(sol.verify_consistency(&inst));
        let tr = sol.assignments.unwrap();
        assert_eq!(tr.len(), 2);
        assert_eq!(tr[0], vec![1.0, 0.0]);
        assert_eq!(tr[1], vec![0.0, 1.0]);
    }

    #[test]
    fn cumulative_gains() {
        let sol = Solution::<2> {
            solver: "s".into(),
            centers: vec![],
            round_gains: vec![3.0, 2.0, 1.0],
            total_reward: 6.0,
            evals: 0,
            assignments: None,
        };
        assert_eq!(sol.cumulative_gains(), vec![3.0, 5.0, 6.0]);
    }

    #[test]
    fn verify_consistency_detects_mismatch() {
        let inst = inst();
        let sol = Solution {
            solver: "bad".into(),
            centers: vec![*inst.point(0)],
            round_gains: vec![99.0],
            total_reward: 99.0,
            evals: 0,
            assignments: None,
        };
        assert!(!sol.verify_consistency(&inst));
    }

    #[test]
    fn trace_disabled_by_default_shape() {
        let inst = inst();
        let oracle = GainOracle::new(&inst, crate::oracle::OracleStrategy::Seq);
        let sol = run_rounds("t", &inst, &oracle, false, |_, _, _| *inst.point(0));
        assert!(sol.assignments.is_none());
    }
}
