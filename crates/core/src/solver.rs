//! The [`Solver`] trait and [`Solution`] type shared by all algorithms.

use mmph_geom::Point;
use serde::{Deserialize, Serialize};

use crate::budget::{BudgetClock, SolveBudget, SolveOutcome};
use crate::instance::Instance;
use crate::oracle::GainOracle;
use crate::reward::{objective, Residuals};
use crate::Result;

/// A solver for the optimal content distribution problem: selects
/// `inst.k()` broadcast centers.
pub trait Solver<const D: usize> {
    /// Short identifier (e.g. `"greedy3"`), used in experiment tables.
    fn name(&self) -> &'static str;

    /// Solves the instance, returning the selected centers with
    /// per-round bookkeeping.
    fn solve(&self, inst: &Instance<D>) -> Result<Solution<D>>;

    /// Solves under a resource budget, returning the best-so-far
    /// centers with a completion status when the budget trips.
    ///
    /// Every solver in this crate overrides this with a genuinely
    /// interruptible path; the default runs `solve` to completion and
    /// reports `Completed`, so third-party solvers keep compiling.
    fn solve_within(&self, inst: &Instance<D>, budget: &SolveBudget) -> Result<SolveOutcome<D>> {
        let _ = budget;
        Ok(SolveOutcome::completed(self.solve(inst)?))
    }
}

/// The output of a solve: centers in selection order plus per-round
/// gains, whose sum equals `f(centers)` exactly (see
/// [`crate::reward::Residuals`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution<const D: usize> {
    /// Name of the solver that produced this solution.
    pub solver: String,
    /// Selected centers, in round order.
    pub centers: Vec<Point<D>>,
    /// Coverage reward gained in each round (the paper's `g(j)`;
    /// Table I reports exactly these numbers).
    pub round_gains: Vec<f64>,
    /// Total reward `Σ_j g(j) = f(centers)`.
    pub total_reward: f64,
    /// Number of coverage-reward evaluations performed (work metric for
    /// the CELF ablation).
    pub evals: u64,
    /// Per-round assignment vectors `z_i^j` when tracing was enabled.
    pub assignments: Option<Vec<Vec<f64>>>,
}

impl<const D: usize> Solution<D> {
    /// Recomputes `f(centers)` from scratch and asserts it matches the
    /// telescoped `total_reward`. Used in tests and debug assertions.
    pub fn verify_consistency(&self, inst: &Instance<D>) -> bool {
        let f = objective(inst, &self.centers);
        (f - self.total_reward).abs() <= 1e-9 * (1.0 + f.abs())
    }

    /// The cumulative reward after each round (`f(j)` in the paper's
    /// Theorem proofs).
    pub fn cumulative_gains(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.round_gains
            .iter()
            .map(|g| {
                acc += g;
                acc
            })
            .collect()
    }
}

/// Runs the shared round loop of Algorithms 1–4: `k` rounds, each round
/// asking `pick` for a center given the oracle and current residuals,
/// then committing it. The budget is checked at every round boundary
/// against the oracle's eval counter; on a trip the rounds committed so
/// far — a *prefix* of the full selection — are returned as a degraded
/// [`SolveOutcome`].
///
/// `pick` receives the 0-based round number; tie-breaking and candidate
/// policy live entirely inside it, which is the only place the four
/// algorithms differ. A `pick` error aborts the solve with that error.
pub(crate) fn run_rounds<const D: usize>(
    name: &str,
    inst: &Instance<D>,
    oracle: &GainOracle<'_, D>,
    trace: bool,
    clock: &BudgetClock,
    mut pick: impl FnMut(&GainOracle<'_, D>, &Residuals, usize) -> Result<Point<D>>,
) -> Result<SolveOutcome<D>> {
    let mut residuals = Residuals::new(inst.n());
    let mut centers = Vec::with_capacity(inst.k());
    let mut round_gains = Vec::with_capacity(inst.k());
    let mut assignments = trace.then(Vec::new);
    let mut tripped = None;
    for round in 0..inst.k() {
        if let Some(reason) = clock.check(oracle.evals()) {
            tripped = Some(reason);
            break;
        }
        let c = pick(oracle, &residuals, round)?;
        // A cancel trip during `pick` poisons its result (post-trip
        // scores read 0.0): drop the round, keep the committed prefix.
        if clock.cancelled() {
            tripped = Some(crate::budget::DegradeReason::Cancelled);
            break;
        }
        if let Some(tr) = assignments.as_mut() {
            tr.push(residuals.assignments(inst, &c));
        }
        let gain = residuals.apply(inst, &c);
        centers.push(c);
        round_gains.push(gain);
    }
    let total_reward = round_gains.iter().sum();
    let solution = Solution {
        solver: name.to_owned(),
        centers,
        round_gains,
        total_reward,
        evals: oracle.evals(),
        assignments,
    };
    Ok(match tripped {
        Some(reason) => SolveOutcome::degraded(solution, reason),
        None => SolveOutcome::completed(solution),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    fn inst() -> Instance<2> {
        InstanceBuilder::new()
            .point([0.0, 0.0], 1.0)
            .point([2.0, 0.0], 2.0)
            .radius(1.0)
            .k(2)
            .build()
            .unwrap()
    }

    #[test]
    fn run_rounds_assembles_solution() {
        let inst = inst();
        let oracle = GainOracle::new(&inst, crate::oracle::OracleStrategy::Seq);
        let sol = run_rounds(
            "test",
            &inst,
            &oracle,
            true,
            &BudgetClock::unlimited(),
            |_, _, round| Ok(*inst.point(round)),
        )
        .unwrap()
        .into_solution();
        assert_eq!(sol.solver, "test");
        assert_eq!(sol.centers.len(), 2);
        assert_eq!(sol.round_gains, vec![1.0, 2.0]);
        assert_eq!(sol.total_reward, 3.0);
        assert!(sol.verify_consistency(&inst));
        let tr = sol.assignments.unwrap();
        assert_eq!(tr.len(), 2);
        assert_eq!(tr[0], vec![1.0, 0.0]);
        assert_eq!(tr[1], vec![0.0, 1.0]);
    }

    #[test]
    fn cumulative_gains() {
        let sol = Solution::<2> {
            solver: "s".into(),
            centers: vec![],
            round_gains: vec![3.0, 2.0, 1.0],
            total_reward: 6.0,
            evals: 0,
            assignments: None,
        };
        assert_eq!(sol.cumulative_gains(), vec![3.0, 5.0, 6.0]);
    }

    #[test]
    fn verify_consistency_detects_mismatch() {
        let inst = inst();
        let sol = Solution {
            solver: "bad".into(),
            centers: vec![*inst.point(0)],
            round_gains: vec![99.0],
            total_reward: 99.0,
            evals: 0,
            assignments: None,
        };
        assert!(!sol.verify_consistency(&inst));
    }

    #[test]
    fn trace_disabled_by_default_shape() {
        let inst = inst();
        let oracle = GainOracle::new(&inst, crate::oracle::OracleStrategy::Seq);
        let sol = run_rounds(
            "t",
            &inst,
            &oracle,
            false,
            &BudgetClock::unlimited(),
            |_, _, _| Ok(*inst.point(0)),
        )
        .unwrap()
        .into_solution();
        assert!(sol.assignments.is_none());
    }

    #[test]
    fn exhausted_budget_degrades_with_empty_prefix() {
        let inst = inst();
        let oracle = GainOracle::new(&inst, crate::oracle::OracleStrategy::Seq);
        let clock = SolveBudget::unlimited().with_max_evals(0).start();
        let out = run_rounds("t", &inst, &oracle, false, &clock, |_, _, _| {
            panic!("pick must not run on an exhausted budget")
        })
        .unwrap();
        assert!(!out.is_complete());
        assert!(out.centers().is_empty());
        assert_eq!(out.value(), 0.0);
    }

    #[test]
    fn partial_budget_returns_prefix() {
        let inst = inst();
        let oracle = GainOracle::new(&inst, crate::oracle::OracleStrategy::Seq);
        // One eval allowed: round 0 passes the check (0 < 1), charges an
        // eval in pick, and round 1's check trips.
        let clock = SolveBudget::unlimited().with_max_evals(1).start();
        let out = run_rounds("t", &inst, &oracle, false, &clock, |o, res, _| {
            Ok(*inst.point(o.best_candidate(res).index))
        })
        .unwrap();
        assert!(!out.is_complete());
        assert_eq!(out.centers().len(), 1);
        assert!(out.value() > 0.0);
    }
}
