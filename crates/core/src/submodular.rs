//! Empirical verification of the objective's structural properties.
//!
//! The paper's NP-hardness proof (Theorem 0, Lemmas 0a/0b) rests on
//! `f(C)` being a **monotone submodular** set function. These helpers
//! verify the properties on concrete instances — they back the property
//! tests and the `validation` integration suite, and catch regressions
//! in the reward implementation (e.g. a mis-placed cap would silently
//! break submodularity and with it every greedy guarantee).

use mmph_geom::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instance::Instance;
use crate::reward::objective;

/// The marginal gain `f(C ∪ {s}) − f(C)`.
pub fn marginal_gain<const D: usize>(inst: &Instance<D>, set: &[Point<D>], s: &Point<D>) -> f64 {
    let mut with_s: Vec<Point<D>> = set.to_vec();
    with_s.push(*s);
    objective(inst, &with_s) - objective(inst, set)
}

/// Checks monotonicity on one pair: `f(A ∪ {s}) >= f(A)`.
pub fn check_monotone<const D: usize>(
    inst: &Instance<D>,
    a: &[Point<D>],
    s: &Point<D>,
    eps: f64,
) -> bool {
    marginal_gain(inst, a, s) >= -eps
}

/// Checks the submodularity (diminishing-returns) inequality of Lemma
/// 0b on one triple: with `A ⊆ B`,
/// `f(A ∪ {s}) − f(A) >= f(B ∪ {s}) − f(B)`.
pub fn check_submodular<const D: usize>(
    inst: &Instance<D>,
    a: &[Point<D>],
    b_extra: &[Point<D>],
    s: &Point<D>,
    eps: f64,
) -> bool {
    let mut b: Vec<Point<D>> = a.to_vec();
    b.extend_from_slice(b_extra);
    marginal_gain(inst, a, s) >= marginal_gain(inst, &b, s) - eps
}

/// Outcome of a randomized structural audit of an instance's objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditReport {
    /// Trials exercised.
    pub trials: usize,
    /// Monotonicity violations found.
    pub monotone_violations: usize,
    /// Submodularity violations found.
    pub submodular_violations: usize,
}

impl AuditReport {
    /// True iff no violations were observed.
    pub fn passed(&self) -> bool {
        self.monotone_violations == 0 && self.submodular_violations == 0
    }
}

/// Randomized audit: samples random center sets `A ⊆ B` and probes `s`,
/// checking both properties `trials` times. Centers are drawn uniformly
/// from a slightly inflated bounding box so boundary behaviour is
/// exercised too.
pub fn audit<const D: usize>(inst: &Instance<D>, trials: usize, seed: u64) -> AuditReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let bbox = inst.bounding_box();
    let random_center = |rng: &mut StdRng| -> Point<D> {
        let mut coords = [0.0f64; D];
        for (d, c) in coords.iter_mut().enumerate() {
            let pad = 0.25 * (bbox.extent(d) + 1.0);
            *c = rng.gen_range(bbox.lo[d] - pad..=bbox.hi[d] + pad);
        }
        Point::new(coords)
    };
    let mut report = AuditReport {
        trials,
        monotone_violations: 0,
        submodular_violations: 0,
    };
    const EPS: f64 = 1e-9;
    for _ in 0..trials {
        let a_len = rng.gen_range(0..4);
        let extra_len = rng.gen_range(1..4);
        let a: Vec<Point<D>> = (0..a_len).map(|_| random_center(&mut rng)).collect();
        let extra: Vec<Point<D>> = (0..extra_len).map(|_| random_center(&mut rng)).collect();
        let s = random_center(&mut rng);
        if !check_monotone(inst, &a, &s, EPS) {
            report.monotone_violations += 1;
        }
        if !check_submodular(inst, &a, &extra, &s, EPS) {
            report.submodular_violations += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use mmph_geom::Norm;

    fn random_instance(n: usize, norm: Norm, seed: u64) -> Instance<2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Point<2>> = (0..n)
            .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
            .collect();
        let ws: Vec<f64> = (0..n).map(|_| rng.gen_range(1..=5) as f64).collect();
        Instance::new(pts, ws, 1.0, 2, norm).unwrap()
    }

    #[test]
    fn audit_passes_on_random_instances_all_norms() {
        for (i, norm) in [Norm::L1, Norm::L2, Norm::LInf, Norm::Lp(3.0)]
            .into_iter()
            .enumerate()
        {
            let inst = random_instance(25, norm, i as u64);
            let report = audit(&inst, 500, 99);
            assert!(report.passed(), "norm {norm}: {report:?}");
        }
    }

    #[test]
    fn marginal_gain_of_empty_set_is_objective() {
        let inst = random_instance(10, Norm::L2, 5);
        let s = *inst.point(0);
        let mg = marginal_gain(&inst, &[], &s);
        assert!((mg - objective(&inst, &[s])).abs() < 1e-12);
    }

    #[test]
    fn duplicate_center_adds_nothing_beyond_cap() {
        // f({c, c}) = f({c}) when c fully satisfies its coverage — the
        // second copy's marginal must be >= 0 and <= the first's.
        let inst = InstanceBuilder::new()
            .point([0.0, 0.0], 1.0)
            .point([0.5, 0.0], 2.0)
            .radius(1.0)
            .k(2)
            .build()
            .unwrap();
        let c = Point::new([0.25, 0.0]);
        let first = marginal_gain(&inst, &[], &c);
        let second = marginal_gain(&inst, &[c], &c);
        assert!(second >= -1e-12);
        assert!(second <= first + 1e-12);
    }

    #[test]
    fn far_away_center_has_zero_marginal() {
        let inst = random_instance(10, Norm::L2, 6);
        let far = Point::new([100.0, 100.0]);
        assert!(marginal_gain(&inst, &[], &far).abs() < 1e-12);
    }

    #[test]
    fn lemma_0a_inequality_direct() {
        // The scalar inequality behind Lemma 0b, checked numerically:
        // min(y+a,1) - min(a,1) - min(y+a+b,1) + min(a+b,1) >= 0.
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let a: f64 = rng.gen_range(0.0..2.0);
            let b: f64 = rng.gen_range(0.0..2.0);
            let y: f64 = rng.gen_range(0.0..2.0);
            let g = (y + a).min(1.0) - a.min(1.0) - (y + a + b).min(1.0) + (a + b).min(1.0);
            assert!(g >= -1e-12, "a={a} b={b} y={y} g={g}");
        }
    }

    #[test]
    fn audit_report_accessors() {
        let r = AuditReport {
            trials: 10,
            monotone_violations: 0,
            submodular_violations: 1,
        };
        assert!(!r.passed());
    }
}
