//! # mmph-core — the paper's contribution
//!
//! Problem model and solvers for the optimal content distribution problem
//! of Wang, Guo & Wu, *"Making Many People Happy: Greedy Solutions for
//! Content Distribution"* (ICPP 2011).
//!
//! The problem (paper §III–IV): given `n` user interest points `x_i` with
//! maximum rewards `w_i` in `R^D`, choose `k` broadcast centers
//! `C = {c_1..c_k}` of interest radius `r` maximizing
//!
//! ```text
//! f(C) = Σ_i  w_i · min( Σ_j [1 − d(c_j, x_i)/r]_+ , 1 )
//! ```
//!
//! `f` is monotone submodular (paper Lemma 0b; verified empirically in
//! [`submodular`]) and maximizing it under `|C| = k` is NP-hard.
//!
//! Solvers provided (paper §IV–V):
//!
//! | module | paper | bound |
//! |---|---|---|
//! | [`solvers::RoundBased`] | Algorithm 1 | `1−(1−1/k)^k` (Thm 1) |
//! | [`solvers::LocalGreedy`] | Algorithm 2 ("greedy 2") | `1−(1−1/n)^k` (Thm 2) |
//! | [`solvers::SimpleGreedy`] | Algorithm 3 ("greedy 3") | `1−(1−1/n)^k` |
//! | [`solvers::ComplexGreedy`] | Algorithm 4 ("greedy 4") | open |
//! | [`solvers::Exhaustive`] | the evaluation's "exhaustive reward" | exact over candidates |
//! | [`solvers::LazyGreedy`] | — (CELF extension) | ≡ Algorithm 2 |
//! | [`solvers::StochasticGreedy`] | — (extension) | `1−1/e−ε` in expectation |
//!
//! All solvers share the residual-satisfaction state machine
//! [`reward::Residuals`] implementing the `y_i^j` updates of the paper's
//! round framework, so their per-round gains telescope exactly to `f(C)`.

// Solver hot loops index several parallel arrays (points, weights,
// residuals) by a shared index; that is clearer than zipped iterators
// here and compiles identically.
#![allow(clippy::needless_range_loop)]

pub mod analysis;
pub mod batch;
pub mod bounds;
pub mod budget;
pub mod cancel;
pub mod coreset;
pub mod incremental;
pub mod instance;
pub mod kernel;
pub mod oracle;
pub mod reward;
pub mod scratch;
pub mod shard;
pub mod solver;
pub mod solvers;
pub mod submodular;

pub use batch::{
    recycle, solve_rounds, solve_rounds_within, verify_reports, BatchReport, BatchResult,
    BatchRunner,
};
pub use budget::{DegradeReason, SolveBudget, SolveOutcome, SolveStatus};
pub use cancel::CancelToken;
pub use coreset::{
    build_coreset, plan_scale, solve_coreset, streaming_objective, Coreset, CoresetConfig,
    CoresetReport, ScalePlan, DEFAULT_CORESET_CELLS,
};
pub use incremental::{
    IncrementalInstance, ResolveConfig, ResolveOutcome, DEFAULT_CHURN_THRESHOLD,
};
pub use instance::{Delta, Instance, InstanceBuilder};
pub use kernel::{Kernel, PreparedKernel};
pub use oracle::{GainOracle, LazyScratch, OracleStrategy, Pruning, Scored};
pub use reward::{
    coverage_reward, objective, psi, CsrScratch, EngineKind, Residuals, RewardEngine, SparseStats,
    DEFAULT_SPARSE_CAP_BYTES, SPARSE_LANES,
};
pub use scratch::SolveScratch;
pub use shard::{solve_sharded, ShardConfig, ShardReport, DEFAULT_SHARDS};
pub use solver::{Solution, Solver};

/// Runtime failures inside a solver: conditions a malformed-but-validated
/// instance can trigger mid-solve. Typed so callers can degrade instead
/// of unwinding.
#[derive(Debug, Clone, PartialEq, thiserror::Error)]
pub enum SolverError {
    /// A geometric construction (enclosing ball, projection center)
    /// collapsed — e.g. an empty grown set.
    #[error("solver `{solver}`: degenerate geometry: {detail}")]
    DegenerateGeometry {
        /// Solver name.
        solver: &'static str,
        /// What collapsed.
        detail: String,
    },
    /// An argmax ran over an empty candidate pool.
    #[error("solver `{solver}`: no candidates to select from: {detail}")]
    NoCandidates {
        /// Solver name.
        solver: &'static str,
        /// Which pool was empty.
        detail: String,
    },
    /// A sampling distribution could not be constructed from the
    /// instance's parameters.
    #[error("solver `{solver}`: sampling distribution rejected: {detail}")]
    BadDistribution {
        /// Solver name.
        solver: &'static str,
        /// The distribution error.
        detail: String,
    },
}

/// Errors produced by instance construction and solvers.
#[derive(Debug, Clone, PartialEq, thiserror::Error)]
pub enum CoreError {
    /// The instance failed validation.
    #[error("invalid instance: {0}")]
    InvalidInstance(String),
    /// A solver restricted to point-located candidates needs `k <= n`.
    #[error("solver `{solver}` requires k <= n (k = {k}, n = {n})")]
    KTooLarge {
        /// Solver name.
        solver: &'static str,
        /// Requested number of centers.
        k: usize,
        /// Number of points.
        n: usize,
    },
    /// A geometry error surfaced from `mmph-geom`.
    #[error(transparent)]
    Geom(#[from] mmph_geom::GeomError),
    /// A solver parameter is out of range.
    #[error("invalid solver configuration: {0}")]
    InvalidConfig(String),
    /// A solver hit a runtime failure mid-solve.
    #[error(transparent)]
    Solver(#[from] SolverError),
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
