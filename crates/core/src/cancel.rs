//! Cooperative mid-solve cancellation.
//!
//! A [`CancelToken`] is a shared atomic flag threaded through
//! [`crate::SolveBudget`] into the oracle's eval-check path. Any holder
//! of a clone — a transport reader thread that saw its client
//! disconnect, an admission controller shedding stale work — can trip
//! it, and the in-flight solve observes the trip at its next
//! candidate-gain evaluation: post-trip evaluations return exact `0.0`
//! without charging the eval counter, and the round loop discards the
//! poisoned round and returns the committed prefix as
//! [`crate::SolveStatus::Degraded`] with
//! [`crate::DegradeReason::Cancelled`]. Cancellation latency is
//! therefore bounded by one eval-check, and overshoot of committed work
//! by one round — the same contract the budget trips already uphold.
//!
//! Every observation made *inside the eval path* goes through
//! [`CancelToken::check`], which counts. [`CancelToken::tripping_after`]
//! builds a token that self-trips on the `j`-th such check, giving
//! tests a deterministic way to cut a solve at an exact point in its
//! evaluation schedule; the committed prefix is then bit-reproducible
//! run over run.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Shared cancellation flag for one in-flight solve. Cloning shares
/// the underlying state; tripping any clone trips them all.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    checks: AtomicU64,
    /// `u64::MAX` means "never self-trips"; otherwise the token trips
    /// itself when the counted check number reaches this value.
    trip_after: u64,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            cancelled: AtomicBool::new(false),
            checks: AtomicU64::new(0),
            trip_after: u64::MAX,
        }
    }
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that trips itself on the `j`-th counted check (1-based):
    /// `tripping_after(0)` is tripped before any work happens, and
    /// `tripping_after(j)` lets checks `1..j` pass and fails check `j`
    /// and every later one. Deterministic cancellation for tests.
    pub fn tripping_after(j: u64) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(j == 0),
                checks: AtomicU64::new(0),
                trip_after: j.max(1),
            }),
        }
    }

    /// Trips the token. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Current state without counting a check — for round-boundary and
    /// transport-side observations outside the eval path.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Counted observation from the eval-check path: increments the
    /// check counter, self-trips when the configured check number is
    /// reached, and returns the (possibly just-tripped) state.
    pub fn check(&self) -> bool {
        let seen = self.inner.checks.fetch_add(1, Ordering::Relaxed) + 1;
        if seen >= self.inner.trip_after {
            self.inner.cancelled.store(true, Ordering::Relaxed);
        }
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Number of counted checks so far.
    pub fn checks(&self) -> u64 {
        self.inner.checks.load(Ordering::Relaxed)
    }
}

/// Tokens compare by identity: two clones of one token are equal, two
/// independently created tokens are not (even if both are untripped).
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Eq for CancelToken {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_untripped() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.check());
        assert_eq!(t.checks(), 1);
    }

    #[test]
    fn cancel_is_visible_through_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert!(t.check());
    }

    #[test]
    fn tripping_after_is_deterministic() {
        let t = CancelToken::tripping_after(3);
        assert!(!t.check());
        assert!(!t.check());
        assert!(t.check(), "trips exactly on the j-th check");
        assert!(t.check(), "stays tripped");
        assert!(t.is_cancelled());
    }

    #[test]
    fn tripping_after_zero_is_pre_tripped() {
        let t = CancelToken::tripping_after(0);
        assert!(t.is_cancelled());
        assert!(t.check());
    }

    #[test]
    fn is_cancelled_does_not_count() {
        let t = CancelToken::tripping_after(1);
        assert!(!t.is_cancelled());
        assert_eq!(t.checks(), 0);
        assert!(t.check());
    }

    #[test]
    fn equality_is_identity() {
        let a = CancelToken::new();
        let b = a.clone();
        let c = CancelToken::new();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
