//! Solution diagnostics: who is served by what, how much coverage
//! overlaps, and how satisfaction is distributed.
//!
//! These are the questions an operator asks *after* solving — the paper
//! stops at total reward, but a deployable system needs to explain its
//! broadcast plan. Used by `mmph report` and the examples.

use mmph_geom::Point;
use serde::{Deserialize, Serialize};

use crate::instance::Instance;
use crate::reward::Residuals;

/// The raw coverage fractions `frac_{j,i} = kernel((d(c_j, x_i))/r)`
/// for every center `j` and point `i` — before residual capping.
pub fn coverage_matrix<const D: usize>(inst: &Instance<D>, centers: &[Point<D>]) -> Vec<Vec<f64>> {
    let r = inst.radius();
    let norm = inst.norm();
    let kernel = inst.kernel();
    centers
        .iter()
        .map(|c| {
            (0..inst.n())
                .map(|i| kernel.frac(norm.dist(c, inst.point(i)), r))
                .collect()
        })
        .collect()
}

/// Per-center diagnostics for a solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CenterReport {
    /// Index of the center in selection order.
    pub index: usize,
    /// Number of points inside this center's interest radius.
    pub points_in_range: usize,
    /// Points for which this center is the *closest* one.
    pub primary_points: usize,
    /// Reward this center actually claimed in its round (capped by
    /// residuals left by earlier centers).
    pub claimed_reward: f64,
    /// Reward this center would claim alone on a fresh instance —
    /// `claimed / standalone` measures how much earlier centers ate.
    pub standalone_reward: f64,
}

impl CenterReport {
    /// Fraction of this center's standalone value it actually realized
    /// (1.0 = no overlap with earlier centers).
    pub fn efficiency(&self) -> f64 {
        if self.standalone_reward > 0.0 {
            self.claimed_reward / self.standalone_reward
        } else {
            1.0
        }
    }
}

/// Full diagnostics of a center set against an instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolutionReport {
    /// Per-center breakdown, in selection order.
    pub centers: Vec<CenterReport>,
    /// Points covered by no center at all.
    pub uncovered_points: usize,
    /// Points covered by 2+ centers (overlap).
    pub multiply_covered_points: usize,
    /// Mean number of covering centers per point.
    pub mean_coverage_multiplicity: f64,
    /// Histogram of final satisfaction fractions in ten 0.1-wide bins
    /// (`bins[9]` additionally holds exactly-1.0).
    pub satisfaction_histogram: [usize; 10],
}

/// Computes the [`SolutionReport`] for `centers` on `inst`.
pub fn analyze<const D: usize>(inst: &Instance<D>, centers: &[Point<D>]) -> SolutionReport {
    let matrix = coverage_matrix(inst, centers);
    let n = inst.n();
    let norm = inst.norm();
    // Per-center round rewards (with residuals) and standalone rewards.
    let mut residuals = Residuals::new(n);
    let mut reports = Vec::with_capacity(centers.len());
    for (j, c) in centers.iter().enumerate() {
        let mut standalone = Residuals::new(n);
        let standalone_reward = standalone.apply(inst, c);
        let claimed_reward = residuals.apply(inst, c);
        let points_in_range = matrix[j].iter().filter(|&&f| f > 0.0).count();
        let primary_points = (0..n)
            .filter(|&i| {
                let d = norm.dist(c, inst.point(i));
                centers
                    .iter()
                    .enumerate()
                    .all(|(jj, cc)| jj == j || norm.dist(cc, inst.point(i)) >= d)
            })
            .count();
        reports.push(CenterReport {
            index: j,
            points_in_range,
            primary_points,
            claimed_reward,
            standalone_reward,
        });
    }
    // Coverage multiplicity.
    let mut uncovered = 0usize;
    let mut multiple = 0usize;
    let mut total_mult = 0usize;
    for i in 0..n {
        let covering = matrix.iter().filter(|row| row[i] > 0.0).count();
        total_mult += covering;
        if covering == 0 {
            uncovered += 1;
        } else if covering >= 2 {
            multiple += 1;
        }
    }
    // Satisfaction histogram from the final residuals.
    let mut histogram = [0usize; 10];
    for &y in residuals.as_slice() {
        let satisfied = 1.0 - y;
        let bin = ((satisfied * 10.0) as usize).min(9);
        histogram[bin] += 1;
    }
    SolutionReport {
        centers: reports,
        uncovered_points: uncovered,
        multiply_covered_points: multiple,
        mean_coverage_multiplicity: total_mult as f64 / n as f64,
        satisfaction_histogram: histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::solvers::LocalGreedy;
    use crate::Solver;

    fn inst() -> Instance<2> {
        InstanceBuilder::new()
            .point([0.0, 0.0], 1.0)
            .point([0.5, 0.0], 2.0)
            .point([3.0, 3.0], 3.0)
            .radius(1.0)
            .k(2)
            .build()
            .unwrap()
    }

    #[test]
    fn coverage_matrix_values() {
        let inst = inst();
        let m = coverage_matrix(&inst, &[Point::new([0.0, 0.0])]);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].len(), 3);
        assert!((m[0][0] - 1.0).abs() < 1e-12);
        assert!((m[0][1] - 0.5).abs() < 1e-12);
        assert_eq!(m[0][2], 0.0);
    }

    #[test]
    fn analyze_disjoint_centers() {
        let inst = inst();
        let report = analyze(&inst, &[Point::new([0.25, 0.0]), Point::new([3.0, 3.0])]);
        assert_eq!(report.centers.len(), 2);
        assert_eq!(report.uncovered_points, 0);
        // Center 0 covers p0+p1, center 1 covers p2: no overlap.
        assert_eq!(report.multiply_covered_points, 0);
        assert!((report.mean_coverage_multiplicity - 1.0).abs() < 1e-12);
        // Disjoint centers claim their full standalone value.
        for c in &report.centers {
            assert!((c.efficiency() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn analyze_overlapping_centers() {
        let inst = inst();
        let c = Point::new([0.25, 0.0]);
        let report = analyze(&inst, &[c, c]);
        // Everything the second copy could claim was already taken.
        assert!(report.centers[1].claimed_reward < report.centers[1].standalone_reward);
        assert!(report.centers[1].efficiency() < 1.0);
        assert_eq!(report.multiply_covered_points, 2);
        assert_eq!(report.uncovered_points, 1); // the far point
    }

    #[test]
    fn primary_points_partition_when_unique() {
        let inst = inst();
        let report = analyze(&inst, &[Point::new([0.0, 0.0]), Point::new([3.0, 3.0])]);
        let total_primary: usize = report.centers.iter().map(|c| c.primary_points).sum();
        // Every point has a unique closest center here.
        assert_eq!(total_primary, 3);
    }

    #[test]
    fn histogram_counts_all_points() {
        let inst = inst();
        let sol = LocalGreedy::new().solve(&inst).unwrap();
        let report = analyze(&inst, &sol.centers);
        let total: usize = report.satisfaction_histogram.iter().sum();
        assert_eq!(total, inst.n());
    }

    #[test]
    fn fully_satisfied_points_land_in_top_bin() {
        let inst = InstanceBuilder::new()
            .point([0.0, 0.0], 1.0)
            .radius(1.0)
            .k(1)
            .build()
            .unwrap();
        let report = analyze(&inst, &[Point::new([0.0, 0.0])]);
        assert_eq!(report.satisfaction_histogram[9], 1);
        assert_eq!(report.uncovered_points, 0);
    }

    #[test]
    fn empty_center_set() {
        let inst = inst();
        let report = analyze(&inst, &[]);
        assert_eq!(report.uncovered_points, 3);
        assert_eq!(report.mean_coverage_multiplicity, 0.0);
        assert_eq!(report.satisfaction_histogram[0], 3);
    }

    #[test]
    fn serde_roundtrip() {
        let inst = inst();
        let report = analyze(&inst, &[Point::new([0.0, 0.0])]);
        let json = serde_json::to_string(&report).unwrap();
        let back: SolutionReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
