//! The paper's algorithms and our extensions.
//!
//! * [`LocalGreedy`] — Algorithm 2: every input point is a candidate
//!   center each round; pick the max coverage reward.
//! * [`SimpleGreedy`] — Algorithm 3: pick the point with the largest
//!   residual single-point reward `w_i y_i` as the center.
//! * [`ComplexGreedy`] — Algorithm 4: grow candidate centers off every
//!   point with the smallest-enclosing-ball "new-center" procedure;
//!   centers may lie anywhere in space.
//! * [`RoundBased`] — Algorithm 1 with a pluggable (approximate)
//!   continuous round oracle.
//! * [`Exhaustive`] — the evaluation's "exhaustive reward" baseline:
//!   exact maximum of `f` over all `C(n, k)` point-located center sets.
//! * [`LazyGreedy`] — CELF-accelerated Algorithm 2 (identical output,
//!   far fewer evaluations).
//! * [`StochasticGreedy`] — subsampled-candidate greedy.
//! * [`LocalSearch`] — greedy-seeded best-improvement swap polish.
//! * [`SeededGreedy`] — partial prefix enumeration + greedy completion.
//! * [`KCenter`] / [`KMeans`] — facility-location clustering baselines.
//! * [`BeamSearch`] — width-B beam over point candidates (greedy ⊂ beam
//!   ⊂ exhaustive).
//! * [`AdaptiveSolver`] — budget-aware degradation ladder
//!   (greedy4 → greedy2-lazy → greedy3) with panic isolation.

mod adaptive;
mod beam_search;
mod clustering;
mod complex_greedy;
mod exhaustive;
mod lazy_greedy;
mod local_greedy;
mod local_search;
mod round_based;
mod seeded_greedy;
mod simple_greedy;
mod stochastic_greedy;

pub mod combinations;

pub use adaptive::AdaptiveSolver;
pub use beam_search::BeamSearch;
pub use clustering::{KCenter, KMeans};
pub use complex_greedy::{ComplexGreedy, RecenterRule};
pub use exhaustive::Exhaustive;
pub use lazy_greedy::LazyGreedy;
pub use local_greedy::LocalGreedy;
pub use local_search::LocalSearch;
pub use round_based::{
    AnnealingOracle, CandidateOracle, GridOracle, MultistartOracle, RoundBased, RoundOracle,
};
pub use seeded_greedy::SeededGreedy;
pub use simple_greedy::SimpleGreedy;
pub use stochastic_greedy::StochasticGreedy;
