//! Clustering baselines (extension).
//!
//! The paper's related work connects the problem to **facility
//! location** (§II-C: the smallest circle problem "is an example of a
//! facility location problem"). The natural facility-location baselines
//! are therefore worth having on the shelf:
//!
//! * [`KCenter`] — Gonzalez's farthest-point traversal, the classic
//!   2-approximation for minimax k-center. It optimizes the *wrong*
//!   objective (cover everyone's distance, ignore weights and the
//!   reward cap), which is exactly why it makes an instructive
//!   baseline: it spreads centers for worst-case coverage rather than
//!   chasing reward mass.
//! * [`KMeans`] — weighted Lloyd's algorithm (k-means) seeded by
//!   [`KCenter`]. Minimizes weighted squared Euclidean distortion;
//!   again reward-agnostic, but its centroids land near dense weighted
//!   clusters, so it often scores surprisingly well under the paper's
//!   linear kernel.
//!
//! Both implement [`Solver`], so they drop into every harness, table
//! and figure next to the paper's greedies.

use mmph_geom::{Norm, Point};

use crate::budget::{BudgetClock, DegradeReason, SolveBudget, SolveOutcome};
use crate::instance::Instance;
use crate::reward::Residuals;
use crate::solver::{Solution, Solver};
use crate::{CoreError, Result};

/// Gonzalez's farthest-point k-center baseline.
#[derive(Debug, Clone, Default)]
pub struct KCenter;

impl KCenter {
    /// Creates the baseline.
    pub fn new() -> Self {
        KCenter
    }

    /// The raw farthest-point traversal: returns the chosen point
    /// indices (first center = the point of maximum weight, a
    /// deterministic and sensible anchor).
    pub fn select<const D: usize>(inst: &Instance<D>) -> Vec<usize> {
        let n = inst.n();
        let k = inst.k().min(n);
        let norm = inst.norm();
        let mut chosen = Vec::with_capacity(k);
        // Anchor: heaviest point (ties -> smallest index).
        let mut first = 0;
        for i in 1..n {
            if inst.weight(i) > inst.weight(first) {
                first = i;
            }
        }
        chosen.push(first);
        // dist[i] = distance from i to its nearest chosen center.
        let mut dist: Vec<f64> = (0..n)
            .map(|i| norm.dist(inst.point(i), inst.point(first)))
            .collect();
        while chosen.len() < k {
            let mut far = 0;
            for i in 1..n {
                if dist[i] > dist[far] {
                    far = i;
                }
            }
            chosen.push(far);
            for i in 0..n {
                let d = norm.dist(inst.point(i), inst.point(far));
                if d < dist[i] {
                    dist[i] = d;
                }
            }
        }
        chosen
    }
}

impl<const D: usize> Solver<D> for KCenter {
    fn name(&self) -> &'static str {
        "kcenter"
    }

    fn solve(&self, inst: &Instance<D>) -> Result<Solution<D>> {
        Ok(self
            .solve_within(inst, &SolveBudget::unlimited())?
            .into_solution())
    }

    fn solve_within(&self, inst: &Instance<D>, budget: &SolveBudget) -> Result<SolveOutcome<D>> {
        let clock = budget.start();
        let mut centers: Vec<Point<D>> = KCenter::select(inst)
            .into_iter()
            .map(|i| *inst.point(i))
            .collect();
        // k > n: pad by repeating the anchor (legal multiset).
        while centers.len() < inst.k() {
            centers.push(centers[0]);
        }
        Ok(finish_within("kcenter", inst, centers, &clock))
    }
}

/// Weighted Lloyd's algorithm (k-means), seeded by the k-center
/// traversal. Euclidean-only by nature (centroids minimize squared L2);
/// rejected for other norms.
#[derive(Debug, Clone)]
pub struct KMeans {
    max_iters: usize,
    tol: f64,
}

impl Default for KMeans {
    fn default() -> Self {
        KMeans {
            max_iters: 100,
            tol: 1e-9,
        }
    }
}

impl KMeans {
    /// Default configuration (up to 100 Lloyd iterations).
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of Lloyd iterations.
    pub fn with_max_iters(mut self, iters: usize) -> Result<Self> {
        if iters == 0 {
            return Err(CoreError::InvalidConfig("max_iters must be >= 1".into()));
        }
        self.max_iters = iters;
        Ok(self)
    }

    /// Runs weighted Lloyd iterations from the given initial centers;
    /// returns the final centers.
    pub fn lloyd<const D: usize>(
        &self,
        inst: &Instance<D>,
        mut centers: Vec<Point<D>>,
    ) -> Vec<Point<D>> {
        let n = inst.n();
        let k = centers.len();
        let mut assign = vec![0usize; n];
        for _ in 0..self.max_iters {
            // Assignment step (squared L2).
            for i in 0..n {
                let p = inst.point(i);
                let mut best = 0;
                let mut best_d = p.dist_sq(&centers[0]);
                for (j, c) in centers.iter().enumerate().skip(1) {
                    let d = p.dist_sq(c);
                    if d < best_d {
                        best_d = d;
                        best = j;
                    }
                }
                assign[i] = best;
            }
            // Update step: weighted centroids.
            let mut sums = vec![Point::<D>::ORIGIN; k];
            let mut mass = vec![0.0f64; k];
            for i in 0..n {
                let j = assign[i];
                sums[j] += *inst.point(i) * inst.weight(i);
                mass[j] += inst.weight(i);
            }
            let mut moved: f64 = 0.0;
            for j in 0..k {
                if mass[j] > 0.0 {
                    let next = sums[j] / mass[j];
                    moved = moved.max(next.dist_l2(&centers[j]));
                    centers[j] = next;
                }
                // Empty cluster: keep the old center (deterministic).
            }
            if moved <= self.tol {
                break;
            }
        }
        centers
    }
}

impl<const D: usize> Solver<D> for KMeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn solve(&self, inst: &Instance<D>) -> Result<Solution<D>> {
        Ok(self
            .solve_within(inst, &SolveBudget::unlimited())?
            .into_solution())
    }

    fn solve_within(&self, inst: &Instance<D>, budget: &SolveBudget) -> Result<SolveOutcome<D>> {
        if inst.norm() != Norm::L2 {
            return Err(CoreError::InvalidConfig(format!(
                "kmeans centroids assume the L2 norm; instance uses {}",
                inst.norm()
            )));
        }
        let clock = budget.start();
        let mut seed: Vec<Point<D>> = KCenter::select(inst)
            .into_iter()
            .map(|i| *inst.point(i))
            .collect();
        while seed.len() < inst.k() {
            seed.push(seed[0]);
        }
        let centers = self.lloyd(inst, seed);
        Ok(finish_within("kmeans", inst, centers, &clock))
    }
}

/// Packages arbitrary centers as a [`Solution`] with replayed per-round
/// gains, checking the budget before each center is committed. Neither
/// clustering baseline charges objective evaluations, so only a zero
/// eval cap or an elapsed deadline can trip; the kept prefix's replayed
/// value is at most the full set's (gains are non-negative).
fn finish_within<const D: usize>(
    name: &str,
    inst: &Instance<D>,
    centers: Vec<Point<D>>,
    clock: &BudgetClock,
) -> SolveOutcome<D> {
    let mut residuals = Residuals::new(inst.n());
    let mut kept: Vec<Point<D>> = Vec::with_capacity(centers.len());
    let mut round_gains: Vec<f64> = Vec::with_capacity(centers.len());
    let mut tripped: Option<DegradeReason> = None;
    for c in centers {
        if let Some(reason) = clock.check(0) {
            tripped = Some(reason);
            break;
        }
        round_gains.push(residuals.apply(inst, &c));
        kept.push(c);
    }
    let total_reward = round_gains.iter().sum();
    let sol = Solution {
        solver: name.to_owned(),
        centers: kept,
        round_gains,
        total_reward,
        evals: 0,
        assignments: None,
    };
    match tripped {
        Some(reason) => SolveOutcome::degraded(sol, reason),
        None => SolveOutcome::completed(sol),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::solvers::LocalGreedy;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(n: usize, k: usize, seed: u64) -> Instance<2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Point<2>> = (0..n)
            .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
            .collect();
        let ws: Vec<f64> = (0..n).map(|_| rng.gen_range(1..=5) as f64).collect();
        Instance::new(pts, ws, 1.0, k, Norm::L2).unwrap()
    }

    #[test]
    fn kcenter_picks_spread_out_points() {
        // Two tight clusters: the two centers must land in different
        // clusters (that is the whole point of farthest-point traversal).
        let inst = InstanceBuilder::new()
            .point([0.0, 0.0], 1.0)
            .point([0.1, 0.0], 1.0)
            .point([4.0, 4.0], 1.0)
            .point([3.9, 4.0], 1.0)
            .radius(1.0)
            .k(2)
            .build()
            .unwrap();
        let idx = KCenter::select(&inst);
        let a = inst.point(idx[0]);
        let b = inst.point(idx[1]);
        assert!(a.dist_l2(b) > 5.0, "centers {a} and {b} not spread");
    }

    #[test]
    fn kcenter_anchor_is_heaviest_point() {
        let inst = InstanceBuilder::new()
            .point([0.0, 0.0], 1.0)
            .point([2.0, 2.0], 5.0)
            .point([4.0, 0.0], 2.0)
            .radius(1.0)
            .k(2)
            .build()
            .unwrap();
        assert_eq!(KCenter::select(&inst)[0], 1);
    }

    #[test]
    fn kcenter_solution_is_consistent() {
        let inst = random_instance(30, 4, 1);
        let sol = KCenter::new().solve(&inst).unwrap();
        assert_eq!(sol.centers.len(), 4);
        assert!(sol.verify_consistency(&inst));
    }

    #[test]
    fn kcenter_pads_when_k_exceeds_n() {
        let inst = InstanceBuilder::new()
            .point([1.0, 1.0], 1.0)
            .point([2.0, 2.0], 1.0)
            .radius(1.0)
            .k(4)
            .build()
            .unwrap();
        let sol = KCenter::new().solve(&inst).unwrap();
        assert_eq!(sol.centers.len(), 4);
        assert!(sol.verify_consistency(&inst));
    }

    #[test]
    fn kmeans_requires_l2() {
        let inst = random_instance(10, 2, 2).with_norm(Norm::L1).unwrap();
        assert!(matches!(
            KMeans::new().solve(&inst),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn kmeans_centroids_settle_on_clusters() {
        // Two clusters with distinct masses: Lloyd must place one
        // centroid per cluster near the weighted centroid.
        let inst = InstanceBuilder::new()
            .point([0.0, 0.0], 1.0)
            .point([0.2, 0.0], 1.0)
            .point([3.8, 4.0], 1.0)
            .point([4.0, 4.0], 1.0)
            .radius(1.0)
            .k(2)
            .build()
            .unwrap();
        let sol = KMeans::new().solve(&inst).unwrap();
        let mut xs: Vec<f64> = sol.centers.iter().map(|c| c[0]).collect();
        xs.sort_by(f64::total_cmp);
        assert!((xs[0] - 0.1).abs() < 1e-9, "low centroid {}", xs[0]);
        assert!((xs[1] - 3.9).abs() < 1e-9, "high centroid {}", xs[1]);
    }

    #[test]
    fn kmeans_respects_weights() {
        // One cluster, two points of very different weight: the single
        // centroid must sit close to the heavy point.
        let inst = InstanceBuilder::new()
            .point([0.0, 0.0], 9.0)
            .point([1.0, 0.0], 1.0)
            .radius(2.0)
            .k(1)
            .build()
            .unwrap();
        let sol = KMeans::new().solve(&inst).unwrap();
        assert!((sol.centers[0][0] - 0.1).abs() < 1e-9);
    }

    #[test]
    fn greedy_beats_or_ties_baselines_on_reward() {
        // The baselines optimize different objectives; on the reward
        // metric the purpose-built greedy must win on average.
        let mut greedy_wins = 0;
        let trials = 20;
        for seed in 0..trials {
            let inst = random_instance(40, 4, 100 + seed);
            let g2 = LocalGreedy::new().solve(&inst).unwrap();
            let kc = KCenter::new().solve(&inst).unwrap();
            let km = KMeans::new().solve(&inst).unwrap();
            if g2.total_reward >= kc.total_reward - 1e-9
                && g2.total_reward >= km.total_reward - 1e-9
            {
                greedy_wins += 1;
            }
        }
        assert!(
            greedy_wins >= trials * 3 / 4,
            "greedy won only {greedy_wins}/{trials}"
        );
    }

    #[test]
    fn lloyd_is_deterministic() {
        let inst = random_instance(25, 3, 5);
        let a = KMeans::new().solve(&inst).unwrap();
        let b = KMeans::new().solve(&inst).unwrap();
        assert_eq!(a.centers, b.centers);
    }

    #[test]
    fn kmeans_iteration_cap_config() {
        assert!(KMeans::new().with_max_iters(0).is_err());
        let inst = random_instance(20, 2, 6);
        let one_iter = KMeans::new()
            .with_max_iters(1)
            .unwrap()
            .solve(&inst)
            .unwrap();
        assert!(one_iter.verify_consistency(&inst));
    }
}
