//! Algorithm 2 — the local greedy algorithm ("greedy 2").
//!
//! Each of the `k` rounds considers **every input point** as a candidate
//! center and selects the one with the maximum coverage reward against
//! the current residuals (Eq. 13). Ties are broken by point index, as
//! the paper specifies: *"If there are a number of points which have the
//! same maximum coverage reward, our selection will be based on the
//! index of the points."*
//!
//! Complexity `O(k n²)` (paper §V-A); approximation ratio
//! `1 − (1 − 1/n)^k` (Theorem 2). The per-round argmax is delegated to
//! [`GainOracle`], so the same solver runs sequentially, in parallel, or
//! with CELF lazy evaluation depending on the configured
//! [`OracleStrategy`].

use crate::budget::{SolveBudget, SolveOutcome};
use crate::instance::Instance;
use crate::oracle::{GainOracle, OracleStrategy, Pruning};
use crate::reward::EngineKind;
use crate::solver::{run_rounds, Solution, Solver};
use crate::Result;

/// Algorithm 2 of the paper. See the module docs.
///
/// ```
/// use mmph_core::solvers::LocalGreedy;
/// use mmph_core::{InstanceBuilder, Solver};
///
/// let inst = InstanceBuilder::new()
///     .point([0.0, 0.0], 1.0)
///     .point([0.5, 0.0], 2.0)
///     .point([3.0, 3.0], 1.0)
///     .radius(1.0)
///     .k(2)
///     .build()
///     .unwrap();
/// let sol = LocalGreedy::new().solve(&inst).unwrap();
/// assert_eq!(sol.centers.len(), 2);
/// assert!(sol.verify_consistency(&inst));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LocalGreedy {
    engine: EngineKind,
    strategy: OracleStrategy,
    pruning: Pruning,
    trace: bool,
}

impl LocalGreedy {
    /// Plain configuration: sequential oracle, linear-scan evaluation,
    /// no tracing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluate coverage rewards through a kd-tree radius query instead
    /// of the default engine (identical results; see
    /// `ablation_spatial_index` for when this pays off). Kept for
    /// back-compat; [`Self::with_engine`] is the general form.
    pub fn with_spatial_index(mut self, yes: bool) -> Self {
        self.engine = if yes {
            EngineKind::Kd
        } else {
            EngineKind::Auto
        };
        self
    }

    /// Selects the reward-evaluation engine. The default
    /// [`EngineKind::Auto`] builds the sparse CSR engine when its
    /// estimated footprint fits the memory cap and falls back to the
    /// kd-tree otherwise; every choice is bit-identical.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the candidate-argmax strategy (identical results under
    /// all of them; see [`GainOracle`]).
    pub fn with_oracle(mut self, strategy: OracleStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Enables spatial pruning of provably-zero-gain candidates.
    pub fn with_pruning(mut self, pruning: Pruning) -> Self {
        self.pruning = pruning;
        self
    }

    /// Record per-round assignment vectors in the solution.
    pub fn with_trace(mut self, yes: bool) -> Self {
        self.trace = yes;
        self
    }

    fn oracle<'a, const D: usize>(&self, inst: &'a Instance<D>) -> GainOracle<'a, D> {
        GainOracle::with_engine(inst, self.engine, self.strategy).with_pruning(self.pruning)
    }
}

impl<const D: usize> Solver<D> for LocalGreedy {
    fn name(&self) -> &'static str {
        "greedy2"
    }

    fn solve(&self, inst: &Instance<D>) -> Result<Solution<D>> {
        Ok(self
            .solve_within(inst, &SolveBudget::unlimited())?
            .into_solution())
    }

    fn solve_within(&self, inst: &Instance<D>, budget: &SolveBudget) -> Result<SolveOutcome<D>> {
        let oracle = self
            .oracle(inst)
            .with_cancel(budget.cancel_token().cloned());
        let clock = budget.start();
        run_rounds(
            Solver::<D>::name(self),
            inst,
            &oracle,
            self.trace,
            &clock,
            |oracle, residuals, _| Ok(*inst.point(oracle.best_candidate(residuals).index)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::reward::objective;
    use mmph_geom::Norm;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cluster_instance() -> Instance<2> {
        // A heavy pair near (0,0) and a single heavy point at (3,3).
        InstanceBuilder::new()
            .point([0.0, 0.0], 2.0)
            .point([0.2, 0.0], 2.0)
            .point([3.0, 3.0], 3.0)
            .radius(1.0)
            .k(2)
            .build()
            .unwrap()
    }

    #[test]
    fn picks_cluster_then_singleton() {
        let sol = LocalGreedy::new().solve(&cluster_instance()).unwrap();
        // Round 1: centering on p0 or p1 earns 2 + 2*(1-0.2) = 3.6,
        // beating p2's 3.0. Round 2: p2's 3.0 is all that remains.
        assert_eq!(sol.centers.len(), 2);
        assert!(sol.centers[0][1] < 1.0, "first center is in the cluster");
        assert_eq!(sol.centers[1], mmph_geom::Point::new([3.0, 3.0]));
        assert!((sol.round_gains[0] - 3.6).abs() < 1e-12);
        assert!((sol.round_gains[1] - 3.0).abs() < 1e-12);
        assert!(sol.verify_consistency(&cluster_instance()));
    }

    #[test]
    fn tie_breaks_to_lower_index() {
        // Two isolated points with equal weight: both candidates give the
        // same round-1 gain; index 0 must win.
        let inst = InstanceBuilder::new()
            .point([0.0, 0.0], 1.0)
            .point([3.0, 0.0], 1.0)
            .radius(1.0)
            .k(1)
            .build()
            .unwrap();
        let sol = LocalGreedy::new().solve(&inst).unwrap();
        assert_eq!(sol.centers[0], *inst.point(0));
    }

    #[test]
    fn spatial_index_gives_identical_solution() {
        let mut rng = StdRng::seed_from_u64(5);
        for norm in [Norm::L1, Norm::L2] {
            let pts: Vec<mmph_geom::Point<2>> = (0..60)
                .map(|_| mmph_geom::Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
                .collect();
            let ws: Vec<f64> = (0..60).map(|_| rng.gen_range(1..=5) as f64).collect();
            let inst = Instance::new(pts, ws, 1.0, 4, norm).unwrap();
            let plain = LocalGreedy::new().solve(&inst).unwrap();
            let indexed = LocalGreedy::new()
                .with_spatial_index(true)
                .solve(&inst)
                .unwrap();
            assert_eq!(plain.centers, indexed.centers);
            assert!((plain.total_reward - indexed.total_reward).abs() < 1e-9);
        }
    }

    #[test]
    fn gains_are_monotone_nonincreasing() {
        // Submodularity + greedy selection implies per-round gains
        // cannot increase.
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let pts: Vec<mmph_geom::Point<2>> = (0..30)
                .map(|_| mmph_geom::Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
                .collect();
            let ws: Vec<f64> = (0..30).map(|_| rng.gen_range(1..=5) as f64).collect();
            let inst = Instance::new(pts, ws, 1.0, 5, Norm::L2).unwrap();
            let sol = LocalGreedy::new().solve(&inst).unwrap();
            for w in sol.round_gains.windows(2) {
                assert!(w[1] <= w[0] + 1e-9, "gains {:?}", sol.round_gains);
            }
        }
    }

    #[test]
    fn total_matches_objective() {
        let inst = cluster_instance();
        let sol = LocalGreedy::new().solve(&inst).unwrap();
        let f = objective(&inst, &sol.centers);
        assert!((sol.total_reward - f).abs() < 1e-9);
    }

    #[test]
    fn k_larger_than_n_is_allowed() {
        // With residual depletion the algorithm may re-pick points;
        // gains go to zero once everyone is satisfied.
        let inst = InstanceBuilder::new()
            .point([0.0, 0.0], 1.0)
            .radius(1.0)
            .k(3)
            .build()
            .unwrap();
        let sol = LocalGreedy::new().solve(&inst).unwrap();
        assert_eq!(sol.centers.len(), 3);
        assert!((sol.total_reward - 1.0).abs() < 1e-12);
        assert_eq!(sol.round_gains[1], 0.0);
        assert_eq!(sol.round_gains[2], 0.0);
    }

    #[test]
    fn eval_count_is_kn() {
        let inst = cluster_instance();
        let sol = LocalGreedy::new().solve(&inst).unwrap();
        // k rounds × n candidates.
        assert_eq!(sol.evals, (inst.k() * inst.n()) as u64);
    }
}
