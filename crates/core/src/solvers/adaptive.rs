//! Budget-aware degradation ladder (robustness extension).
//!
//! Real broadcast schedulers must produce *some* center set before the
//! next period starts, even when the preferred algorithm is too slow or
//! crashes. [`AdaptiveSolver`] encodes the paper's own quality ordering
//! as a ladder:
//!
//! 1. `greedy4` ([`ComplexGreedy`]) — continuous centers, best quality,
//!    most expensive;
//! 2. `greedy2-lazy` ([`LazyGreedy`]) — point candidates with CELF
//!    acceleration;
//! 3. `greedy3` ([`SimpleGreedy`]) — `O(kn)`, charges zero objective
//!    evaluations, essentially cannot run out of budget.
//!
//! Each rung runs under the *remaining* budget (wall-clock deadline and
//! eval cap both carry over) and inside `catch_unwind`, so a panicking
//! rung steps the ladder down instead of unwinding into the caller. The
//! first rung to complete wins; if none completes, the best-valued
//! degraded prefix collected on the way down is returned. The ladder
//! itself never panics.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::budget::{DegradeReason, SolveBudget, SolveOutcome, SolveStatus};
use crate::instance::Instance;
use crate::solver::{Solution, Solver};
use crate::solvers::{ComplexGreedy, LazyGreedy, SimpleGreedy};
use crate::{CoreError, Result};

/// Degradation-ladder solver. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveSolver;

impl AdaptiveSolver {
    /// The default ladder: greedy4 → greedy2-lazy → greedy3.
    pub fn new() -> Self {
        AdaptiveSolver
    }
}

/// Runs `rungs` in order under a shared budget. Extracted from
/// [`AdaptiveSolver`] so tests can inject misbehaving rungs.
fn run_ladder<const D: usize>(
    inst: &Instance<D>,
    budget: &SolveBudget,
    rungs: &[(&str, &dyn Solver<D>)],
) -> Result<SolveOutcome<D>> {
    let clock = budget.start();
    let mut evals_spent = 0u64;
    let mut best: Option<(Solution<D>, DegradeReason)> = None;
    let mut last_reason: Option<DegradeReason> = None;
    let mut last_err: Option<CoreError> = None;
    for &(name, rung) in rungs {
        let remaining = clock.remaining(evals_spent);
        match catch_unwind(AssertUnwindSafe(|| rung.solve_within(inst, &remaining))) {
            Ok(Ok(outcome)) => {
                evals_spent += outcome.solution.evals;
                match outcome.status {
                    SolveStatus::Completed => {
                        let mut sol = outcome.solution;
                        sol.solver = format!("adaptive:{name}");
                        sol.evals = evals_spent;
                        return Ok(SolveOutcome::completed(sol));
                    }
                    SolveStatus::Degraded { reason } => {
                        last_reason = Some(reason.clone());
                        if best
                            .as_ref()
                            .is_none_or(|(b, _)| outcome.solution.total_reward > b.total_reward)
                        {
                            best = Some((outcome.solution, reason));
                        }
                    }
                }
            }
            Ok(Err(e)) => {
                last_reason = Some(DegradeReason::RungFailed {
                    rung: name.to_owned(),
                    error: e.to_string(),
                });
                last_err = Some(e);
            }
            Err(_panic_payload) => {
                last_reason = Some(DegradeReason::RungPanicked {
                    rung: name.to_owned(),
                });
            }
        }
    }
    // No rung completed: return the best degraded prefix, then a typed
    // error, and only as a last resort an empty degraded solution (all
    // rungs panicked).
    if let Some((mut sol, reason)) = best {
        sol.solver = format!("adaptive:{}", sol.solver);
        sol.evals = evals_spent;
        return Ok(SolveOutcome::degraded(sol, reason));
    }
    if let Some(e) = last_err {
        return Err(e);
    }
    let sol = Solution {
        solver: "adaptive".to_owned(),
        centers: Vec::new(),
        round_gains: Vec::new(),
        total_reward: 0.0,
        evals: evals_spent,
        assignments: None,
    };
    let reason = last_reason.unwrap_or(DegradeReason::RungPanicked {
        rung: "adaptive".to_owned(),
    });
    Ok(SolveOutcome::degraded(sol, reason))
}

impl<const D: usize> Solver<D> for AdaptiveSolver {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn solve(&self, inst: &Instance<D>) -> Result<Solution<D>> {
        Ok(self
            .solve_within(inst, &SolveBudget::unlimited())?
            .into_solution())
    }

    fn solve_within(&self, inst: &Instance<D>, budget: &SolveBudget) -> Result<SolveOutcome<D>> {
        let g4 = ComplexGreedy::new();
        let lazy = LazyGreedy::new();
        let g3 = SimpleGreedy::new();
        run_ladder(
            inst,
            budget,
            &[("greedy4", &g4), ("greedy2-lazy", &lazy), ("greedy3", &g3)],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmph_geom::{Norm, Point};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::Duration;

    fn random_instance(n: usize, k: usize, seed: u64) -> Instance<2> {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<Point<2>> = (0..n)
            .map(|_| Point::new([rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)]))
            .collect();
        let ws: Vec<f64> = (0..n).map(|_| rng.gen_range(1..=5) as f64).collect();
        Instance::new(pts, ws, 1.0, k, Norm::L2).unwrap()
    }

    struct PanickingSolver;

    impl<const D: usize> Solver<D> for PanickingSolver {
        fn name(&self) -> &'static str {
            "panicking"
        }

        fn solve(&self, _inst: &Instance<D>) -> Result<Solution<D>> {
            panic!("intentional test panic");
        }

        fn solve_within(
            &self,
            _inst: &Instance<D>,
            _budget: &SolveBudget,
        ) -> Result<SolveOutcome<D>> {
            panic!("intentional test panic");
        }
    }

    struct FailingSolver;

    impl<const D: usize> Solver<D> for FailingSolver {
        fn name(&self) -> &'static str {
            "failing"
        }

        fn solve(&self, _inst: &Instance<D>) -> Result<Solution<D>> {
            Err(CoreError::InvalidConfig("intentional test error".into()))
        }
    }

    #[test]
    fn unlimited_budget_completes_on_first_rung() {
        let inst = random_instance(25, 3, 1);
        let out = AdaptiveSolver::new()
            .solve_within(&inst, &SolveBudget::unlimited())
            .unwrap();
        assert!(out.is_complete());
        assert_eq!(out.solution.solver, "adaptive:greedy4");
        assert_eq!(out.centers().len(), 3);
        let direct = ComplexGreedy::new().solve(&inst).unwrap();
        assert_eq!(out.centers(), &direct.centers[..]);
    }

    #[test]
    fn exhausted_budget_degrades_without_panic() {
        let inst = random_instance(25, 3, 2);
        let out = AdaptiveSolver::new()
            .solve_within(&inst, &SolveBudget::unlimited().with_max_evals(0))
            .unwrap();
        assert!(!out.is_complete());
        assert!(out.value() <= ComplexGreedy::new().solve(&inst).unwrap().total_reward + 1e-9);
    }

    #[test]
    fn zero_deadline_degrades_without_panic() {
        let inst = random_instance(25, 3, 3);
        let out = AdaptiveSolver::new()
            .solve_within(
                &inst,
                &SolveBudget::unlimited().with_deadline(Duration::ZERO),
            )
            .unwrap();
        assert!(!out.is_complete());
    }

    #[test]
    fn panicking_rung_steps_down_to_next() {
        let inst = random_instance(20, 2, 4);
        let g3 = SimpleGreedy::new();
        let out = run_ladder(
            &inst,
            &SolveBudget::unlimited(),
            &[("panicking", &PanickingSolver), ("greedy3", &g3)],
        )
        .unwrap();
        assert!(out.is_complete());
        assert_eq!(out.solution.solver, "adaptive:greedy3");
        let direct = SimpleGreedy::new().solve(&inst).unwrap();
        assert_eq!(out.centers(), &direct.centers[..]);
    }

    #[test]
    fn all_rungs_panicking_returns_empty_degraded() {
        let inst = random_instance(10, 2, 5);
        let out = run_ladder(
            &inst,
            &SolveBudget::unlimited(),
            &[("p1", &PanickingSolver), ("p2", &PanickingSolver)],
        )
        .unwrap();
        assert!(!out.is_complete());
        assert!(out.centers().is_empty());
        match out.status {
            SolveStatus::Degraded {
                reason: DegradeReason::RungPanicked { ref rung },
            } => assert_eq!(rung, "p2"),
            ref other => panic!("unexpected status {other:?}"),
        }
    }

    #[test]
    fn failing_rung_steps_down_and_error_is_last_resort() {
        let inst = random_instance(10, 2, 6);
        let g3 = SimpleGreedy::new();
        let out = run_ladder(
            &inst,
            &SolveBudget::unlimited(),
            &[("failing", &FailingSolver), ("greedy3", &g3)],
        )
        .unwrap();
        assert!(out.is_complete());
        // All rungs failing surfaces the typed error instead.
        let err = run_ladder(
            &inst,
            &SolveBudget::unlimited(),
            &[("failing", &FailingSolver)],
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)));
    }

    #[test]
    fn plain_solve_matches_complex_greedy() {
        let inst = random_instance(30, 4, 7);
        let a = AdaptiveSolver::new().solve(&inst).unwrap();
        let b = ComplexGreedy::new().solve(&inst).unwrap();
        assert_eq!(a.centers, b.centers);
        assert!((a.total_reward - b.total_reward).abs() < 1e-12);
    }
}
